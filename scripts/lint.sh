#!/usr/bin/env bash
# lint.sh — build the project multichecker and run the invariant suite
# (DESIGN.md §7) plus gofmt over the tree. CI runs this as the Lint
# step; run it locally before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== building cmd/vettool"
go build -o "$tmp/vettool" ./cmd/vettool

echo "== go vet (standard analyzers)"
go vet ./...

echo "== go vet -vettool (mapfloatsum, nodeterm, bufown, nakedgo, deadlineio, errclass, metriclint)"
# go vet analyzes the test variant of every package, so _test.go files
# are under the same rules as production code. Diagnostics are also
# collected as JSONL (one object per finding) for the CI artifact; set
# LINT_JSON to keep the file, otherwise it lives in the script tempdir.
export ETA_LINT_JSON="${LINT_JSON:-$tmp/lint.json}"
: > "$ETA_LINT_JSON"
go vet -vettool="$tmp/vettool" ./...
echo "   diagnostics (JSONL): $ETA_LINT_JSON"

echo "== lint:allow justification audit"
# Every suppression must record why it is sound after the analyzer
# list; a bare //lint:allow silences a finding without leaving the
# reviewer anything to check. Fixtures under testdata are exempt (they
# exercise the directive itself).
bare_allows="$(grep -rn --include='*.go' --exclude-dir=testdata --exclude-dir=.git \
    -E '//lint:allow[[:space:]]+[a-z0-9_,]+[[:space:]]*$' . || true)"
if [ -n "$bare_allows" ]; then
    echo "//lint:allow without a trailing justification:" >&2
    echo "$bare_allows" >&2
    exit 1
fi

echo "== obs dependency audit (stdlib only)"
# The telemetry package must stay dependency-free so every layer can
# import it without cycles; fail if it grows a non-stdlib dependency.
bad_deps="$(go list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./internal/obs \
    | grep -v '^$' | grep -v '^github.com/didclab/eta/internal/obs$' || true)"
if [ -n "$bad_deps" ]; then
    echo "internal/obs must only depend on the stdlib, found:" >&2
    echo "$bad_deps" >&2
    exit 1
fi

echo "== span dependency audit (stdlib + internal/obs only)"
# The tracing layer inherits the obs rules: spans ride the obs event
# stream and registry, and nothing else — so every layer (chaos
# included) can adopt tracing without new edges.
bad_deps="$(go list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./internal/obs/span \
    | grep -v '^$' \
    | grep -v '^github.com/didclab/eta/internal/obs$' \
    | grep -v '^github.com/didclab/eta/internal/obs/span$' || true)"
if [ -n "$bad_deps" ]; then
    echo "internal/obs/span must only depend on the stdlib and internal/obs, found:" >&2
    echo "$bad_deps" >&2
    exit 1
fi

echo "== chaos dependency audit (stdlib + obs/span only)"
# The fault-injection package must stay import-light so any test layer
# can wrap a connection in it without dragging in the transfer stack.
bad_deps="$(go list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./internal/chaos \
    | grep -v '^$' \
    | grep -v '^github.com/didclab/eta/internal/chaos$' \
    | grep -v '^github.com/didclab/eta/internal/obs$' \
    | grep -v '^github.com/didclab/eta/internal/obs/span$' || true)"
if [ -n "$bad_deps" ]; then
    echo "internal/chaos must only depend on the stdlib, internal/obs and internal/obs/span, found:" >&2
    echo "$bad_deps" >&2
    exit 1
fi

echo "== proto dependency audit (stdlib + first-party allowlist)"
# The data plane must stay stdlib-plus-first-party: its hot paths lean
# on exact stdlib behaviour (net.Buffers writev, sync.Pool, hash/crc32)
# and a third-party dependency creeping in here would be the first place
# supply-chain risk meets every byte transferred. The allowlist is the
# current closure; extending it is a reviewed decision, not an accident.
proto_allow='^github.com/didclab/eta/internal/(proto|obs|obs/span|units|dataset|transfer|endsys|netem|power|netpower|testbed)$'
bad_deps="$(go list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./internal/proto \
    | grep -v '^$' | grep -Ev "$proto_allow" || true)"
if [ -n "$bad_deps" ]; then
    echo "internal/proto must only depend on the stdlib and allow-listed first-party packages, found:" >&2
    echo "$bad_deps" >&2
    exit 1
fi

echo "== gofmt"
# testdata fixtures are excluded: they are analyzer inputs, not code.
unformatted="$(find . -name '*.go' -not -path '*/testdata/*' -not -path './.git/*' -print0 | xargs -0 gofmt -l)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "lint OK"
