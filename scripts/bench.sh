#!/usr/bin/env bash
# Run the benchmark suite and emit one JSON object per benchmark on stdout.
#
#   scripts/bench.sh                 # full suite
#   scripts/bench.sh ProtoLoopback   # filter by benchmark name regexp
#
# Each line is {"name":..., "iterations":..., "ns_per_op":..., ...} with any
# custom metrics (MB/s, B/op, allocs/op, figure metrics) included, so results
# can be diffed across commits with plain jq.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"

go test -run '^$' -bench "$pattern" -benchmem . | awk '
/^Benchmark/ {
    printf "{\"name\":\"%s\",\"iterations\":%s", $1, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_.%]/, "_", unit)
        printf ",\"%s\":%s", unit, $i
    }
    print "}"
}
'
