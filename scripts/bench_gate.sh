#!/usr/bin/env bash
# bench_gate.sh — throughput regression gate for the proto data plane.
#
#   scripts/bench_gate.sh                 # run + compare against results/bench_baseline.json
#   scripts/bench_gate.sh --rebaseline    # run + rewrite the committed baseline
#   BENCH_TOLERANCE_PCT=25 scripts/bench_gate.sh
#   BENCH_PATTERN='LoopbackVectored' scripts/bench_gate.sh
#
# Runs the loopback benchmarks through bench.sh, archives the result as
# the next free BENCH_<n>.json at the repo root, and fails if any
# benchmark present in the baseline dropped more than BENCH_TOLERANCE_PCT
# percent (default 15) in MB/s — or vanished entirely. Benchmarks that
# exist only in the new run are recorded but not gated, so adding a
# benchmark does not require a baseline refresh in the same change.
#
# Loopback throughput is machine-relative: the committed baseline tracks
# the hardware CI runs on, and the default tolerance absorbs its normal
# run-to-run noise. After a hardware change — or a deliberate perf
# change — refresh with --rebaseline and commit the result.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-ProtoLoopback|LoopbackVectored|LoopbackMultiEndpoint|LoopbackJournal|LoopbackTraced}"
tolerance="${BENCH_TOLERANCE_PCT:-15}"
baseline="results/bench_baseline.json"

echo "== running benchmarks ($pattern)"
out="$(scripts/bench.sh "$pattern")"

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
printf '%s\n' "$out" >"BENCH_${n}.json"
echo "== wrote BENCH_${n}.json"

if [ "${1:-}" = "--rebaseline" ]; then
    mkdir -p results
    printf '%s\n' "$out" >"$baseline"
    echo "== rebaselined $baseline"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "no $baseline — run scripts/bench_gate.sh --rebaseline and commit it" >&2
    exit 1
fi

printf '%s\n' "$out" | awk -v tol="$tolerance" -v base="$baseline" '
function jname(line) {
    if (match(line, /"name":"[^"]+"/))
        return substr(line, RSTART + 8, RLENGTH - 9)
    return ""
}
function jmbs(line) {
    if (match(line, /"MB_per_s":[0-9.]+/))
        return substr(line, RSTART + 11, RLENGTH - 11) + 0
    return -1
}
BEGIN {
    while ((getline line < base) > 0) {
        n = jname(line); m = jmbs(line)
        if (n != "" && m > 0) want[n] = m
    }
    close(base)
}
{
    n = jname($0); m = jmbs($0)
    if (n == "" || m < 0) next
    if (!(n in want)) {
        printf "%-32s %9.2f MB/s (no baseline, recorded only)\n", n, m
        next
    }
    floor = want[n] * (1 - tol / 100)
    printf "%-32s %9.2f MB/s (baseline %.2f, floor %.2f)\n", n, m, want[n], floor
    if (m < floor) {
        bad = 1
        printf "REGRESSION: %s fell more than %s%% below its baseline\n", n, tol
    }
    seen[n] = 1
}
END {
    for (n in want)
        if (!(n in seen)) {
            bad = 1
            printf "MISSING: baseline benchmark %s did not run\n", n
        }
    exit bad
}
'
echo "bench gate OK (tolerance ${tolerance}%)"
