package eta_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark regenerates its figure's data on the
// simulated testbeds and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` reprints the evaluation:
//
//	Fig. 2  — XSEDE concurrency sweep        (BenchmarkFig2XSEDE)
//	Fig. 3  — FutureGrid concurrency sweep   (BenchmarkFig3FutureGrid)
//	Fig. 4  — DIDCLAB LAN concurrency sweep  (BenchmarkFig4DIDCLAB)
//	Fig. 5  — SLAEE on XSEDE                 (BenchmarkFig5SLAXSEDE)
//	Fig. 6  — SLAEE on FutureGrid            (BenchmarkFig6SLAFutureGrid)
//	Fig. 7  — SLAEE on DIDCLAB               (BenchmarkFig7SLADIDCLAB)
//	Fig. 8  — device rate-power relations    (BenchmarkFig8NetPowerModels)
//	Fig. 10 — end-system vs network energy   (BenchmarkFig10EnergySplit)
//	§2.2    — power-model validation         (BenchmarkTable2ModelError)
//
// plus micro-benchmarks of the load-bearing primitives.

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/experiments"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

func benchSweep(b *testing.B, tb testbed.Testbed) {
	b.Helper()
	ctx := context.Background()
	var sweep *experiments.Sweep
	for i := 0; i < b.N; i++ {
		var err error
		sweep, err = experiments.RunSweep(ctx, tb, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	top := sweep.Reports[core.NameProMC][12]
	mine := sweep.Reports[core.NameMinE][12]
	htee := sweep.Reports[core.NameHTEE][12]
	b.ReportMetric(top.Throughput.Mbit(), "ProMC@12_Mbps")
	b.ReportMetric(float64(mine.EndSystemEnergy), "MinE@12_J")
	b.ReportMetric(sweep.NormalizedEfficiency(htee), "HTEE_eff_of_BF")
	b.ReportMetric(float64(sweep.BF.Best), "BF_best_cc")
}

func BenchmarkFig2XSEDE(b *testing.B)      { benchSweep(b, testbed.XSEDE()) }
func BenchmarkFig3FutureGrid(b *testing.B) { benchSweep(b, testbed.FutureGrid()) }
func BenchmarkFig4DIDCLAB(b *testing.B)    { benchSweep(b, testbed.DIDCLAB()) }

// BenchmarkSweepXSEDESerial is the one-worker baseline for the
// parallel experiment engine: compare against BenchmarkFig2XSEDE
// (which runs the same sweep at GOMAXPROCS workers) to measure the
// fan-out speedup on this machine.
func BenchmarkSweepXSEDESerial(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweepSerial(ctx, testbed.XSEDE(), experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSLA(b *testing.B, tb testbed.Testbed) {
	b.Helper()
	ctx := context.Background()
	var sweep *experiments.SLASweep
	for i := 0; i < b.N; i++ {
		var err error
		sweep, err = experiments.RunSLA(ctx, tb, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	var meanAbsDev float64
	for _, t := range sweep.Targets {
		meanAbsDev += math.Abs(sweep.Results[t].Deviation())
	}
	meanAbsDev /= float64(len(sweep.Targets))
	b.ReportMetric(sweep.MaxThroughput.Mbit(), "max_Mbps")
	b.ReportMetric(meanAbsDev, "mean_abs_deviation_pct")
	b.ReportMetric(sweep.EnergySaving(0.50), "saving_at_50pct_target_pct")
}

func BenchmarkFig5SLAXSEDE(b *testing.B)      { benchSLA(b, testbed.XSEDE()) }
func BenchmarkFig6SLAFutureGrid(b *testing.B) { benchSLA(b, testbed.FutureGrid()) }
func BenchmarkFig7SLADIDCLAB(b *testing.B)    { benchSLA(b, testbed.DIDCLAB()) }

func BenchmarkFig8NetPowerModels(b *testing.B) {
	var points []experiments.RatePowerPoint
	for i := 0; i < b.N; i++ {
		points = experiments.RatePowerCurves(1000)
	}
	mid := points[len(points)/2]
	b.ReportMetric(mid.NonLinear, "nonlinear_at_50pct")
	b.ReportMetric(mid.Linear, "linear_at_50pct")
}

func BenchmarkFig10EnergySplit(b *testing.B) {
	ctx := context.Background()
	var splits []experiments.EnergySplit
	for i := 0; i < b.N; i++ {
		var err error
		splits, err = experiments.RunEnergySplits(ctx, testbed.All(), experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range splits {
		b.ReportMetric(s.NetworkShare, s.Testbed+"_net_pct")
	}
}

func BenchmarkTable2ModelError(b *testing.B) {
	var results []power.ValidationResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = power.Validate(power.DefaultGroundTruth(), 200, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstFG, worstCO float64
	for _, r := range results {
		if r.FineGrainedError > worstFG {
			worstFG = r.FineGrainedError
		}
		if r.CPUOnlyError > worstCO {
			worstCO = r.CPUOnlyError
		}
	}
	b.ReportMetric(worstFG, "worst_finegrained_pct")
	b.ReportMetric(worstCO, "worst_cpuonly_pct")
}

// --- micro-benchmarks of the primitives the harness leans on ---

func BenchmarkSimProMCXSEDE(b *testing.B) {
	tb := testbed.XSEDE()
	ds := tb.Dataset(experiments.DefaultSeed)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProMC(ctx, transfer.NewSim(tb), ds, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionAndMerge(b *testing.B) {
	ds := testbed.XSEDE().Dataset(experiments.DefaultSeed)
	bdp := testbed.XSEDE().Path.BDP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataset.PartitionAndMerge(ds, bdp)
	}
}

func BenchmarkFitFineGrained(b *testing.B) {
	calib := power.CalibrationSweep(power.DefaultGroundTruth(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := power.BuildFineGrained(calib); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthFill(b *testing.B) {
	buf := make([]byte, 1<<20)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		proto.FillSynth("bench.dat", int64(i)<<20, buf)
	}
}

func BenchmarkProtoLoopback(b *testing.B) {
	// Real-TCP end-to-end throughput on loopback: 64 MB per iteration
	// across 4 striped streams, re-dialing the channel every iteration
	// (connection setup included).
	ds := dataset.NewGenerator(1).Uniform(16, 4*units.MB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.SetBytes(int64(ds.TotalSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := &proto.Client{Addr: srv.Addr()}
		ch, err := client.OpenChannel(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Fetch(ds.Files, 4, discardSink{}); err != nil {
			b.Fatal(err)
		}
		ch.Close()
	}
}

// BenchmarkProtoLoopbackSteady reuses one channel across iterations —
// the steady state the block-buffer pool targets. Run with -benchmem:
// allocs/op here is the per-64MB-transfer allocation cost with dialing
// excluded, so the zero-alloc data path is directly visible.
func BenchmarkProtoLoopbackSteady(b *testing.B) {
	ds := dataset.NewGenerator(1).Uniform(16, 4*units.MB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := &proto.Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(4)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	b.SetBytes(int64(ds.TotalSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Fetch(ds.Files, 4, discardSink{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackTraced is BenchmarkProtoLoopbackSteady with span
// tracing on for both ends (events discarded, metrics live): the
// steady-state cost of the tracer on the hot path. Compare its MB/s
// against the untraced steady benchmark to see the instrumentation
// overhead; the bench gate holds it to the same tolerance as the rest
// of the data plane.
func BenchmarkLoopbackTraced(b *testing.B) {
	ds := dataset.NewGenerator(1).Uniform(16, 4*units.MB)
	reg := obs.NewRegistry()
	events := obs.NewLog(nil)
	tracer := span.NewTracer(reg, events)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{
		Store:  proto.NewSynthStore(ds),
		Events: events,
		Trace:  tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := &proto.Client{Addr: srv.Addr(), Trace: tracer}
	ch, err := client.OpenChannel(4)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	b.SetBytes(int64(ds.TotalSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Fetch(ds.Files, 4, discardSink{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if n := int64(b.N); n > 0 {
		b.ReportMetric(float64(reg.Counter("spans_started").Value())/float64(n), "spans_per_op")
	}
}

// BenchmarkLoopbackVectored measures the vectored data plane in its
// steady state: one reused channel, 64 MB per iteration across 4
// striped streams, with the server's CRC sidecar warm after the first
// iteration. Beyond throughput it reports writes_per_block — vectored
// write batches issued per block served, where 1.0 means every block
// cost exactly one writev (header coalesced) and below 1.0 means
// backlog batching merged blocks — and crc_hit_pct, the share of
// blocks whose checksum came from the sidecar instead of a hash pass.
func BenchmarkLoopbackVectored(b *testing.B) {
	ds := dataset.NewGenerator(1).Uniform(16, 4*units.MB)
	reg := obs.NewRegistry()
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{
		Store:   proto.NewSynthStore(ds),
		Metrics: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := &proto.Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(4)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	batches := reg.Counter("server_writev_batches")
	blocks := reg.Counter("server_writev_blocks")
	hits := reg.Counter("server_crc_cache_hits")
	// Warm the sidecar (first serve hashes every block) outside the
	// timed region.
	if _, err := ch.Fetch(ds.Files, 4, discardSink{}); err != nil {
		b.Fatal(err)
	}
	batches0, blocks0, hits0 := batches.Value(), blocks.Value(), hits.Value()
	b.SetBytes(int64(ds.TotalSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Fetch(ds.Files, 4, discardSink{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	servedBlocks := blocks.Value() - blocks0
	if servedBlocks > 0 {
		b.ReportMetric(float64(batches.Value()-batches0)/float64(servedBlocks), "writes_per_block")
		b.ReportMetric(100*float64(hits.Value()-hits0)/float64(servedBlocks), "crc_hit_pct")
	}
}

// BenchmarkLoopbackMultiEndpoint measures the multi-endpoint data
// plane: two loopback replicas behind an equal-weight EndpointPool, one
// steady channel per replica, 64 MB per iteration split across them.
// This is the 2-endpoint datapoint the bench gate records so placement
// overhead (pool picks, per-endpoint instruments) stays visible.
func BenchmarkLoopbackMultiEndpoint(b *testing.B) {
	ds := dataset.NewGenerator(1).Uniform(16, 4*units.MB)
	srvs := make([]*proto.Server, 2)
	eps := make([]proto.Endpoint, 2)
	for i := range srvs {
		srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		srvs[i] = srv
		eps[i] = proto.Endpoint{Addr: srv.Addr(), Weight: 1}
	}
	pool, err := proto.NewEndpointPool(eps...)
	if err != nil {
		b.Fatal(err)
	}
	client := &proto.Client{Endpoints: pool}
	chans := make([]*proto.Channel, 2)
	for i := range chans {
		ch, err := client.OpenChannel(2)
		if err != nil {
			b.Fatal(err)
		}
		defer ch.Close()
		chans[i] = ch
	}
	halves := [][]dataset.File{ds.Files[:len(ds.Files)/2], ds.Files[len(ds.Files)/2:]}
	ctx := context.Background()
	b.SetBytes(int64(ds.TotalSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Map(ctx, 2, 2, func(_ context.Context, k int) (proto.FetchResult, error) {
			return chans[k].Fetch(halves[k], 4, discardSink{})
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackJournal measures the durability tax: a journal-enabled
// transfer to a real DirSink (fsync-on-close, receipt journal with the
// default 25ms group commit) versus the discard-path benchmarks above.
// Each iteration delivers 16 MB into a fresh destination and reports
// appends_per_mb — journaled receipts per delivered megabyte — so a
// change that starts journaling per-write instead of per-block shows up
// even when tmpfs hides the fsync cost.
func BenchmarkLoopbackJournal(b *testing.B) {
	ds := dataset.NewGenerator(1).Uniform(16, 1*units.MB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	reg := obs.NewRegistry()
	b.SetBytes(int64(ds.TotalSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dest := b.TempDir()
		b.StartTimer()
		jr, err := proto.OpenJournal(filepath.Join(dest, proto.JournalFileName), proto.JournalOptions{Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		sink := proto.NewDirSink(dest)
		sink.SyncOnClose = true
		client := &proto.Client{Addr: srv.Addr(), Journal: jr}
		ch, err := client.OpenChannel(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Fetch(ds.Files, 4, sink); err != nil {
			b.Fatal(err)
		}
		ch.Close()
		if err := jr.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if appends := reg.Counter("journal_appends").Value(); b.N > 0 {
		perMB := float64(appends) / float64(b.N) / (float64(ds.TotalSize()) / float64(units.MB))
		b.ReportMetric(perMB, "appends_per_mb")
	}
}

// discardSink drops payload as fast as possible for throughput benches.
type discardSink struct{}

func (discardSink) WriteAt(_ string, p []byte, _ int64) (int, error) { return len(p), nil }
func (discardSink) Close(string) error                               { return nil }

func BenchmarkAblationsXSEDE(b *testing.B) {
	ctx := context.Background()
	var abl []experiments.Ablation
	for i := 0; i < b.N; i++ {
		var err error
		abl, err = experiments.RunAblations(ctx, testbed.XSEDE(), experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, a := range abl {
		b.ReportMetric(a.EnergyDelta(), a.Name+"_energy_pct")
	}
}
