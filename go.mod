module github.com/didclab/eta

go 1.22
