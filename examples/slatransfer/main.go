// SLATransfer: the SLA-based Energy-Efficient algorithm on the
// simulated FutureGrid testbed. A provider promises a fraction of the
// maximum achievable throughput; SLAEE delivers it with the fewest
// channels — and therefore the least energy — adjusting concurrency
// every five seconds (Fig. 6's experiment).
//
//	go run ./examples/slatransfer
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/experiments"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

func main() {
	tb := testbed.FutureGrid()
	ds := tb.Dataset(experiments.DefaultSeed)
	ctx := context.Background()

	// The reference maximum: ProMC at the testbed's reference
	// concurrency (12), as in §3.
	ref, err := core.ProMC(ctx, transfer.NewSim(tb), ds, tb.SLARefConcurrency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testbed: %s, dataset %v\n", tb.Name, ds.TotalSize())
	fmt.Printf("maximum throughput (ProMC@%d): %v using %v\n\n",
		tb.SLARefConcurrency, ref.Throughput, ref.EndSystemEnergy)

	fmt.Printf("%8s %12s %12s %10s %10s %8s\n",
		"target%", "target", "achieved", "deviation", "energy", "saving")
	for _, level := range experiments.SLATargets {
		res, err := core.SLAEE(ctx, transfer.NewSim(tb), ds, ref.Throughput, level, tb.MaxConcurrency)
		if err != nil {
			log.Fatalf("SLAEE@%.0f%%: %v", level*100, err)
		}
		saving := (1 - float64(res.EndSystemEnergy)/float64(ref.EndSystemEnergy)) * 100
		fmt.Printf("%8.0f %12s %12s %+9.1f%% %10s %7.0f%%\n",
			level*100, res.Target, res.Throughput, res.Deviation(),
			res.EndSystemEnergy, saving)
	}
	fmt.Println("\nCustomers flexible on delivery time let the provider cut energy")
	fmt.Println("consumption substantially — the paper's 'low-cost transfer' option.")
}
