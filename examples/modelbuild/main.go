// ModelBuild: the one-time power-model building phase of §2.2. A
// hidden "real server" is profiled with per-component load ramps, both
// the fine-grained (Eq. 1–2) and CPU-only (Eq. 3) models are fitted by
// least squares, and each is validated against the utilization
// signatures of five transfer tools — reproducing the paper's error
// bands (fine-grained <6%, CPU-only <5% for ftp/bbcp/gridftp and <8%
// for scp/rsync).
//
//	go run ./examples/modelbuild
package main

import (
	"fmt"
	"log"

	"github.com/didclab/eta/internal/power"
)

func main() {
	truth := power.DefaultGroundTruth()

	calib := power.CalibrationSweep(truth, 7)
	fmt.Printf("calibration sweep: %d (utilization, power) samples\n", len(calib))

	coeff, err := power.BuildFineGrained(calib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted fine-grained coefficients: C_cpu,1=%.3f, C_mem=%.3f, C_disk=%.3f, C_nic=%.3f\n",
		coeff.CPU.At(1), coeff.Mem, coeff.Disk, coeff.NIC)
	fmt.Printf("Eq. 2 shape: C_cpu,n minimal at n=%d processes\n\n", coeff.CPU.MinAt(12))

	results, err := power.Validate(truth, 200, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %14s %12s\n", "tool", "fine-grained", "CPU-only")
	for _, r := range results {
		fmt.Printf("%-10s %13.2f%% %11.2f%%\n", r.Tool, r.FineGrainedError, r.CPUOnlyError)
	}
	fmt.Println("\nmean absolute % error vs the hidden ground truth; the CPU-only")
	fmt.Println("model trails the fine-grained one but stays usable where only CPU")
	fmt.Println("statistics are readable (shared data centers, §2.2).")
}
