// Quickstart: start an in-process transfer server with a synthetic
// dataset, then let the High Throughput Energy-Efficient algorithm
// (HTEE) move it over real TCP sockets — searching concurrency levels
// and settling on the most energy-efficient one — with end-to-end
// integrity verification.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/monitor"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

func main() {
	// A 256 MB synthetic dataset of mixed file sizes.
	ds := dataset.NewGenerator(42).Mixed(256*units.MB, 200*units.KB, 32*units.MB)
	fmt.Printf("dataset: %d files, %v\n", ds.Count(), ds.TotalSize())

	// Server with WAN-ish shaping: 40 Mbps per stream, 400 Mbps link,
	// 20 ms control RTT — so parallelism, concurrency and pipelining
	// all matter, exactly like on the paper's testbeds.
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{
		Store:         proto.NewSynthStore(ds),
		PerStreamRate: 40 * units.Mbps,
		LinkRate:      400 * units.Mbps,
		ControlRTT:    20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client := &proto.Client{Addr: srv.Addr(), Counters: &proto.Counters{}}
	files, err := client.List()
	if err != nil {
		log.Fatal(err)
	}

	// Energy estimation: hardware RAPL counters when available, else
	// the paper's fine-grained power model over procfs utilization.
	energy, usedRAPL, err := monitor.AutoSource(monitor.Monitor{},
		monitor.LocalServerModel(runtime.NumCPU(), 10*units.Gbps, 0),
		power.FineGrained{Coeff: power.Coefficients{
			CPU: power.PaperCPUQuad, Mem: 0.11, Disk: 0.08, NIC: 0.2,
		}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy source: RAPL=%v\n", usedRAPL)

	sink := proto.NewVerifySink()
	exec := &proto.Executor{
		Client: client,
		Sink:   sink,
		Energy: energy,
		Environment: transfer.Environment{
			Path: netem.Path{
				Bandwidth:       400 * units.Mbps,
				RTT:             20 * time.Millisecond,
				MaxTCPBuffer:    4 * units.MB,
				EffStreamBuffer: 512 * units.KB,
			},
			MaxChannels:    8,
			ServersPerSite: 1,
		},
	}

	start := time.Now()
	res, err := core.HTEE(context.Background(), exec, dataset.Dataset{Files: files}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTEE settled on concurrency %d\n", res.ChosenConcurrency)
	fmt.Printf("moved %v in %v → %v, estimated transfer energy %v\n",
		res.Bytes, time.Since(start).Round(time.Millisecond), res.Throughput, res.EndSystemEnergy)
	if bad := sink.Corrupt(); len(bad) > 0 {
		log.Fatalf("integrity check failed: %v", bad)
	}
	fmt.Println("integrity: every byte verified against the synthetic generator")
}
