// MinEnergy: the paper's headline trade-off on the simulated XSEDE
// testbed (10 Gbps, 40 ms RTT). The Minimum Energy algorithm moves the
// same 160 GB dataset as the throughput-oriented baselines while
// consuming substantially less end-system energy — by pinning the Large
// chunk to one channel and pipelining the Small chunk hard.
//
//	go run ./examples/minenergy
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/experiments"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

func main() {
	tb := testbed.XSEDE()
	ds := tb.Dataset(experiments.DefaultSeed)
	ctx := context.Background()
	const concurrency = 8

	fmt.Printf("testbed: %s (%v, RTT %v), dataset %v in %d files\n\n",
		tb.Name, tb.Path.Bandwidth, tb.Path.RTT, ds.TotalSize(), ds.Count())

	type row struct {
		name string
		run  func() (transfer.Report, error)
	}
	rows := []row{
		{"GUC (untuned)", func() (transfer.Report, error) {
			return core.GUC(ctx, transfer.NewSim(tb), ds, core.GUCOptions{})
		}},
		{"SC (single chunk)", func() (transfer.Report, error) {
			return core.SC(ctx, transfer.NewSim(tb), ds, concurrency)
		}},
		{"ProMC (throughput)", func() (transfer.Report, error) {
			return core.ProMC(ctx, transfer.NewSim(tb), ds, concurrency)
		}},
		{"MinE (min energy)", func() (transfer.Report, error) {
			return core.MinE(ctx, transfer.NewSim(tb), ds, concurrency)
		}},
	}

	fmt.Printf("%-20s %12s %12s %10s\n", "algorithm", "throughput", "energy", "duration")
	var promc, mine transfer.Report
	for _, r := range rows {
		rep, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("%-20s %12s %12s %10s\n", r.name, rep.Throughput, rep.EndSystemEnergy, rep.Duration.Round(1e9))
		switch rep.Algorithm {
		case core.NameProMC:
			promc = rep
		case core.NameMinE:
			mine = rep
		}
	}

	saving := (1 - float64(mine.EndSystemEnergy)/float64(promc.EndSystemEnergy)) * 100
	slowdown := (1 - float64(mine.Throughput)/float64(promc.Throughput)) * 100
	fmt.Printf("\nMinE vs ProMC at concurrency %d: %.0f%% less energy for %.0f%% less throughput\n",
		concurrency, saving, slowdown)
}
