// Adaptation: cross traffic claims 35% of the simulated XSEDE link a
// quarter of the way into a transfer. A statically tuned ProMC run just
// slows down; SLAEE's five-second control loop notices the missed SLA
// and climbs concurrency to defend it — the operational payoff of
// measuring throughput and energy continuously.
//
//	go run ./examples/adaptation
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/didclab/eta/internal/experiments"
	"github.com/didclab/eta/internal/testbed"
)

func main() {
	a, err := experiments.RunAdaptation(context.Background(), testbed.XSEDE(), experiments.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testbed %s: cross traffic takes %.0f%% of the link at t=%v\n",
		a.Testbed, a.StepFraction*100, a.StepAt.Round(1e9))
	fmt.Printf("SLA target: %v\n\n", a.Target)
	fmt.Printf("%-28s %14s %12s\n", "run", "post-step rate", "meets SLA")
	fmt.Printf("%-28s %14s %12v\n", "static ProMC (pre-tuned)",
		a.StaticLateThroughput, a.StaticLateThroughput >= a.Target)
	fmt.Printf("%-28s %14s %12v (climbed to cc=%d)\n", "SLAEE (adaptive)",
		a.SLAEELateThroughput, a.SLAEELateThroughput >= a.Target, a.SLAEELateConcurrency)
}
