// Package eta is a from-scratch reproduction of "Energy-Aware Data
// Transfer Algorithms" (Alan, Arslan, Kosar — SC 2015): the MinE, HTEE
// and SLAEE application-layer transfer algorithms, the baselines they
// are evaluated against, the end-system and network-device power models
// they rely on, a simulated version of the paper's three testbeds, and
// a real-TCP GridFTP-like protocol stack the same algorithms can drive.
//
// The public surface of this repository is its commands and examples;
// the library lives under internal/ and is organized as:
//
//   - internal/core — MinE, HTEE, SLAEE + GUC/GO/SC/ProMC/BF baselines
//   - internal/transfer — the executor contract and the simulator
//   - internal/proto — the real-TCP protocol (server, client, executor)
//   - internal/power, internal/netpower — Eq. 1–5 power models
//   - internal/testbed, internal/netem, internal/endsys — environments
//   - internal/experiments — one runner per paper figure/table
//   - internal/monitor — procfs/RAPL measurement for real transfers
//
// See README.md for usage and EXPERIMENTS.md for the paper-vs-measured
// record of every reproduced figure.
package eta

// Version identifies this release of the reproduction.
const Version = "1.0.0"
