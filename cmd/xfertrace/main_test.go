package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// constantPower is a fake cumulative energy source that also records
// the energy_model_sample curve the flight recorder attributes from.
type constantPower struct {
	start time.Time
	watts float64
	log   *obs.Log
}

func (c *constantPower) Total() (units.Joules, error) {
	j := c.watts * time.Since(c.start).Seconds()
	c.log.Emit(obs.EvEnergyModel, "joules_total", j, "watts", c.watts)
	return units.Joules(j), nil
}

// recordTracedRun performs one fully traced loopback transfer and
// returns the path of its recorded JSONL event stream.
func recordTracedRun(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "run.jsonl")
	f, err := os.Create(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	events := obs.NewLog(f)
	reg := obs.NewRegistry()
	tracer := span.NewTracer(reg, events)

	ds := dataset.NewGenerator(7).Uniform(8, 256*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{
		Store:  proto.NewSynthStore(ds),
		Events: events,
		Trace:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	exec := &proto.Executor{
		Client: &proto.Client{Addr: srv.Addr(), Counters: &proto.Counters{}},
		Sink:   proto.NewVerifySink(),
		Energy: &constantPower{start: time.Now(), watts: 35, log: events},
		Environment: transfer.Environment{
			Path: netem.Path{
				Bandwidth:       1 * units.Gbps,
				RTT:             10 * time.Millisecond,
				MaxTCPBuffer:    4 * units.MB,
				EffStreamBuffer: 256 * units.KB,
			},
			MaxChannels:    8,
			ServersPerSite: 1,
		},
		Events: events,
		Trace:  tracer,
		Label:  "flight-test",
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 3}
	plan := transfer.Plan{Chunks: []transfer.ChunkPlan{{Chunk: chunk, Channels: 2, Weight: 1}}}
	if _, err := exec.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for tracer.LiveCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d spans still open after teardown", tracer.LiveCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := events.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return eventsPath
}

// TestFlightRecorder drives the full xfertrace pipeline over a real
// traced loopback run: the -check gate must pass (balanced forest,
// per-span joules summing to the source total within 1%), the default
// report must include the timeline and critical path, and the Chrome
// export must be loadable JSON with one event per span.
func TestFlightRecorder(t *testing.T) {
	eventsPath := recordTracedRun(t)

	// CI gate: -check.
	var checkOut bytes.Buffer
	if err := run([]string{eventsPath}, true, 0.01, 10, "", &checkOut); err != nil {
		t.Fatalf("xfertrace -check failed: %v\n%s", err, checkOut.String())
	}
	if !strings.HasPrefix(checkOut.String(), "ok:") {
		t.Errorf("-check output = %q, want ok", checkOut.String())
	}

	// Human report plus Chrome export.
	chromePath := filepath.Join(t.TempDir(), "trace.json")
	var report bytes.Buffer
	if err := run([]string{eventsPath}, false, 0.01, 5, chromePath, &report); err != nil {
		t.Fatalf("xfertrace report failed: %v", err)
	}
	out := report.String()
	for _, want := range []string{"timeline:", "critical path", "top 5 spans by attributed energy", "transfer", "server_session"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" || len(chrome.TraceEvents) == 0 {
		t.Fatalf("degenerate chrome export: %d events, unit %q", len(chrome.TraceEvents), chrome.DisplayTimeUnit)
	}
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	forest, err := span.ReadForest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) != forest.SpanCount() {
		t.Errorf("chrome export has %d events, forest has %d spans", len(chrome.TraceEvents), forest.SpanCount())
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" || ev.TS < 0 || ev.Name == "" {
			t.Fatalf("bad chrome event %+v", ev)
		}
	}
}

// TestCheckRejectsUnbalanced feeds -check a stream whose span never
// ends and expects a failure.
func TestCheckRejectsUnbalanced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	line := `{"seq":1,"t":"2026-08-06T10:00:00Z","type":"span_begin","trace":"t1","span":1,"parent":0,"name":"transfer"}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, true, 0.01, 10, "", &out); err == nil {
		t.Fatalf("-check accepted a leaked span:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "leaked") {
		t.Errorf("failure output %q does not mention the leak", out.String())
	}
}
