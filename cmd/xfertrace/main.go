// Command xfertrace is the flight recorder for traced transfers: it
// replays a recorded JSONL event stream (obs.Log format, as written by
// xferd/xferbench/energytransfer with -trace), reconstructs the span
// forest, and reports where the time and the energy went.
//
//	xfertrace run.jsonl                  timeline, critical path, top energy
//	xfertrace -top 20 run.jsonl          more top-energy spans
//	xfertrace -chrome trace.json run.jsonl   Chrome trace-event export
//	xfertrace -check run.jsonl           CI mode: balanced forest + energy accounting
//
// With no file argument the stream is read from stdin. Energy figures
// come from the offline attribution pass: the recorded
// energy_model_sample curve is replayed over the forest and each
// interval's exact energy split among the spans that were live leaves,
// so self-joules sum to the source total.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"github.com/didclab/eta/internal/obs/span"
)

func main() {
	check := flag.Bool("check", false, "verify the forest (balanced begin/end, energy accounting) and exit nonzero on failure")
	tol := flag.Float64("tol", 0.01, "relative tolerance for the -check energy accounting")
	top := flag.Int("top", 10, "how many top-energy spans to list")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON export (chrome://tracing, Perfetto) to this file")
	flag.Parse()

	if err := run(flag.Args(), *check, *tol, *top, *chrome, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xfertrace:", err)
		os.Exit(1)
	}
}

func run(args []string, check bool, tol float64, top int, chrome string, w io.Writer) error {
	var in io.Reader = os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one events file (got %d)", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	forest, err := span.ReadForest(in)
	if err != nil {
		return err
	}
	span.Attribute(forest)

	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			return fmt.Errorf("-chrome: %w", err)
		}
		if err := span.WriteChromeTrace(f, forest); err != nil {
			f.Close()
			return fmt.Errorf("-chrome: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-chrome: %w", err)
		}
		fmt.Fprintf(w, "wrote Chrome trace (%d spans) to %s\n", forest.SpanCount(), chrome)
	}

	if check {
		return runCheck(forest, tol, w)
	}

	printSummary(w, forest)
	printTimeline(w, forest)
	printCriticalPaths(w, forest)
	printTopEnergy(w, forest, top)
	return nil
}

// runCheck is the CI gate: a recorded run must reconstruct into a
// balanced forest whose attributed energy accounts for the source's
// final total.
func runCheck(f *span.Forest, tol float64, w io.Writer) error {
	if f.SpanCount() == 0 {
		return fmt.Errorf("check: no spans in the stream")
	}
	var failures []string
	if n := len(f.Leaked); n > 0 {
		names := make(map[string]int)
		for _, rec := range f.Leaked {
			names[rec.Name]++
		}
		failures = append(failures, fmt.Sprintf("%d leaked spans (span_begin without span_end): %v", n, names))
	}
	if f.Dangling > 0 {
		failures = append(failures, fmt.Sprintf("%d dangling span_end events (no matching begin)", f.Dangling))
	}
	total := f.FinalJoules()
	if total > 0 {
		attributed := f.SumSelfJoules()
		// Accounting identity: every sampled joule lands either on a
		// leaf span or in the unattributed bucket.
		if gap := math.Abs(attributed + f.Unattributed - total); gap > tol*total {
			failures = append(failures, fmt.Sprintf(
				"energy accounting broken: attributed %.3fJ + unattributed %.3fJ vs source total %.3fJ",
				attributed, f.Unattributed, total))
		}
		// Coverage: the per-span joules must sum to the source total —
		// unattributed energy means intervals no span covered.
		if math.Abs(attributed-total) > tol*total {
			failures = append(failures, fmt.Sprintf(
				"per-span joules sum %.3fJ misses source total %.3fJ by %.2f%% (tolerance %.2f%%)",
				attributed, total, math.Abs(attributed-total)/total*100, tol*100))
		}
	}
	if len(failures) > 0 {
		for _, msg := range failures {
			fmt.Fprintln(w, "FAIL:", msg)
		}
		return fmt.Errorf("check failed (%d problems)", len(failures))
	}
	fmt.Fprintf(w, "ok: %d spans, %d traces, balanced; ", f.SpanCount(), len(f.Roots))
	if total > 0 {
		fmt.Fprintf(w, "%.3fJ attributed of %.3fJ sampled (%.2f%% unattributed)\n",
			f.SumSelfJoules(), total, f.Unattributed/total*100)
	} else {
		fmt.Fprintln(w, "no energy samples")
	}
	return nil
}

func printSummary(w io.Writer, f *span.Forest) {
	fmt.Fprintf(w, "spans %d  roots %d  leaked %d  dangling %d  energy samples %d\n",
		f.SpanCount(), len(f.Roots), len(f.Leaked), f.Dangling, len(f.Samples))
	if total := f.FinalJoules(); total > 0 {
		fmt.Fprintf(w, "energy: %.3f J sampled total, %.3f J attributed to spans, %.3f J unattributed\n",
			total, f.SumSelfJoules(), f.Unattributed)
	}
	fmt.Fprintln(w)
}

// epoch returns the earliest span start — the timeline's zero.
func epoch(f *span.Forest) time.Time {
	var e time.Time
	for _, rec := range f.ByID {
		if e.IsZero() || rec.Start.Before(e) {
			e = rec.Start
		}
	}
	return e
}

// sortedRoots returns the forest roots by start time (ID as tiebreak so
// output is stable).
func sortedRoots(f *span.Forest) []*span.Record {
	roots := append([]*span.Record(nil), f.Roots...)
	sort.Slice(roots, func(i, j int) bool {
		if !roots[i].Start.Equal(roots[j].Start) {
			return roots[i].Start.Before(roots[j].Start)
		}
		return roots[i].ID < roots[j].ID
	})
	return roots
}

func printTimeline(w io.Writer, f *span.Forest) {
	fmt.Fprintln(w, "timeline:")
	e := epoch(f)
	for _, root := range sortedRoots(f) {
		printSpanTree(w, root, e, 1)
	}
	fmt.Fprintln(w)
}

// printSpanTree renders one span and its children, indented, children
// in start order.
func printSpanTree(w io.Writer, rec *span.Record, e time.Time, depth int) {
	at := float64(rec.Start.Sub(e)) / float64(time.Millisecond)
	fmt.Fprintf(w, "%*s%s [%s] +%.1fms", 2*depth, "", rec.Name, rec.Trace, at)
	if rec.Open {
		fmt.Fprintf(w, " OPEN")
	} else {
		fmt.Fprintf(w, " %.1fms", rec.DurMS)
	}
	if rec.Bytes > 0 {
		fmt.Fprintf(w, " %dB", rec.Bytes)
	}
	if rec.SelfJoules > 0 {
		fmt.Fprintf(w, " %.3fJ", rec.SelfJoules)
	}
	for _, key := range []string{"label", "file", "cause", "kind", "error"} {
		if v, ok := rec.Attrs[key]; ok {
			fmt.Fprintf(w, " %s=%v", key, v)
		}
	}
	fmt.Fprintln(w)
	kids := append([]*span.Record(nil), rec.Children...)
	sort.Slice(kids, func(i, j int) bool {
		if !kids[i].Start.Equal(kids[j].Start) {
			return kids[i].Start.Before(kids[j].Start)
		}
		return kids[i].ID < kids[j].ID
	})
	for _, c := range kids {
		printSpanTree(w, c, e, depth+1)
	}
}

func printCriticalPaths(w io.Writer, f *span.Forest) {
	printed := false
	for _, root := range sortedRoots(f) {
		if root.Name != span.NameTransfer {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "critical path (last-finishing chain per transfer):")
			printed = true
		}
		for i, rec := range span.CriticalPath(root) {
			marker := "└─"
			if i == 0 {
				marker = "• "
			}
			fmt.Fprintf(w, "  %*s%s %s %.1fms", 2*i, "", marker, rec.Name, rec.DurMS)
			if v, ok := rec.Attrs["file"]; ok {
				fmt.Fprintf(w, " file=%v", v)
			}
			fmt.Fprintln(w)
		}
	}
	if printed {
		fmt.Fprintln(w)
	}
}

func printTopEnergy(w io.Writer, f *span.Forest, n int) {
	if n <= 0 || f.FinalJoules() <= 0 {
		return
	}
	recs := make([]*span.Record, 0, f.SpanCount())
	for _, rec := range f.ByID {
		if rec.SelfJoules > 0 {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].SelfJoules != recs[j].SelfJoules {
			return recs[i].SelfJoules > recs[j].SelfJoules
		}
		return recs[i].ID < recs[j].ID
	})
	if len(recs) > n {
		recs = recs[:n]
	}
	total := f.FinalJoules()
	fmt.Fprintf(w, "top %d spans by attributed energy:\n", len(recs))
	for _, rec := range recs {
		fmt.Fprintf(w, "  %8.3fJ %5.1f%%  %s [%s]", rec.SelfJoules, rec.SelfJoules/total*100, rec.Name, rec.Trace)
		if v, ok := rec.Attrs["file"]; ok {
			fmt.Fprintf(w, " file=%v", v)
		}
		fmt.Fprintln(w)
	}
}
