// Command powermon prints this host's live component utilization and
// the power predicted by the paper's fine-grained model (§2.2), plus
// hardware RAPL readings where available — a tiny standalone version of
// the measurement layer the transfer algorithms rely on.
//
// Usage:
//
//	powermon [-interval 2s] [-count 10] [-nic 1gbps]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/didclab/eta/internal/cliutil"
	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/monitor"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/units"
)

func main() {
	interval := flag.Duration("interval", 2*time.Second, "sampling interval")
	count := flag.Int("count", 0, "number of samples (0 = run forever)")
	nic := flag.String("nic", "10gbps", "NIC line rate for utilization scaling")
	flag.Parse()

	if err := run(*interval, *count, *nic); err != nil {
		fmt.Fprintln(os.Stderr, "powermon:", err)
		os.Exit(1)
	}
}

func run(interval time.Duration, count int, nicStr string) error {
	nicRate, err := cliutil.ParseRate(nicStr)
	if err != nil {
		return err
	}
	mon := monitor.Monitor{}
	server := monitor.LocalServerModel(runtime.NumCPU(), nicRate, 0)
	model := power.FineGrained{Coeff: power.Coefficients{
		CPU: power.PaperCPUQuad, Mem: 0.11, Disk: 0.08, NIC: 0.2,
	}}

	rapl, haveRAPL, err := monitor.OpenRAPL(mon)
	if err != nil {
		return err
	}
	var lastRAPL units.Joules
	if haveRAPL {
		if lastRAPL, err = rapl.Total(); err != nil {
			haveRAPL = false
		}
	}

	prevCPU, err := mon.ReadCPU()
	if err != nil {
		return err
	}
	prevNet, err := mon.ReadNet("")
	if err != nil {
		return err
	}
	prevDisk, err := mon.ReadDisk()
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %6s %6s %6s %9s %10s", "time", "cpu%", "nic%", "disk%", "model(W)", "net(Mbps)")
	if haveRAPL {
		fmt.Printf(" %9s", "rapl(W)")
	}
	fmt.Println()

	for i := 0; count == 0 || i < count; i++ {
		time.Sleep(interval)
		cpu, err := mon.ReadCPU()
		if err != nil {
			return err
		}
		net, err := mon.ReadNet("")
		if err != nil {
			return err
		}
		disk, err := mon.ReadDisk()
		if err != nil {
			return err
		}
		moved := float64(net.RxBytes - prevNet.RxBytes)
		if tx := float64(net.TxBytes - prevNet.TxBytes); tx > moved {
			moved = tx
		}
		netRate := units.Rate(moved * 8 / interval.Seconds())
		sectors := float64(disk.SectorsRead-prevDisk.SectorsRead) +
			float64(disk.SectorsWritten-prevDisk.SectorsWritten)
		u := endsys.Utilization{
			CPU:  monitor.CPUUtil(prevCPU, cpu),
			NIC:  float64(netRate) / float64(server.NICRate) * 100,
			Disk: sectors * 512 * 8 / interval.Seconds() / float64(server.Disk.MaxRate()) * 100,
		}
		u.Mem = u.NIC / 4
		u = u.Clamp()
		watts := model.Power(u, 1)

		fmt.Printf("%-8s %6.1f %6.1f %6.1f %9.2f %10.1f",
			time.Now().Format("15:04:05"), u.CPU, u.NIC, u.Disk, float64(watts), netRate.Mbit())
		if haveRAPL {
			if total, err := rapl.Total(); err == nil {
				fmt.Printf(" %9.2f", float64(total-lastRAPL)/interval.Seconds())
				lastRAPL = total
			}
		}
		fmt.Println()
		prevCPU, prevNet, prevDisk = cpu, net, disk
	}
	return nil
}
