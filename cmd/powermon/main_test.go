package main

import (
	"os"
	"testing"
	"time"
)

func TestRunOneSample(t *testing.T) {
	if _, err := os.Stat("/proc/stat"); err != nil {
		t.Skip("no procfs on this host")
	}
	if err := run(30*time.Millisecond, 1, "1gbps"); err != nil {
		t.Fatal(err)
	}
	if err := run(time.Millisecond, 1, "junk"); err == nil {
		t.Error("bad NIC rate accepted")
	}
}
