package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/proto"
)

func TestRunWritesManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.json")
	if err := run("2MB", 0, "100KB", "500KB", 0, 7, manifest, "", "unit"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := dataset.ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "unit" || m.Seed != 7 || len(m.Files) == 0 {
		t.Errorf("manifest wrong: %+v", m)
	}
}

func TestRunMaterializesVerifiableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("600KB", 0, "100KB", "200KB", 0, 3, "", dir, "unit"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no files materialized")
	}
	// On-disk content must match the protocol's canonical generator.
	name := entries[0].Name()
	got, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(got))
	proto.FillSynth(name, 0, want)
	if !bytes.Equal(got, want) {
		t.Error("materialized content does not match FillSynth")
	}
}

func TestRunPareto(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "p.json")
	if err := run("", 50, "100KB", "10MB", 1.2, 1, manifest, "", "heavy"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := dataset.ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 50 {
		t.Errorf("pareto manifest has %d files, want 50", len(m.Files))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, "1MB", "2MB", 0, 1, "x", "", "n"); err == nil {
		t.Error("missing generator config accepted")
	}
	if err := run("1MB", 0, "1MB", "2MB", 0, 1, "", "", "n"); err == nil {
		t.Error("no output target accepted")
	}
	if err := run("junk", 0, "1MB", "2MB", 0, 1, "x", "", "n"); err == nil {
		t.Error("bad total accepted")
	}
}
