// Command datagen materializes synthetic datasets: either as a JSON
// manifest (for xferd's synthetic store and repeatable experiments) or
// as real files on disk (for xferd -root and disk-bound benchmarking).
// On-disk content matches the protocol's deterministic generator, so a
// -verify client can check transfers from a datagen tree end to end.
//
// Usage:
//
//	datagen -total 10GB -min 3MB -max 1GB -manifest dataset.json
//	datagen -total 1GB -min 1MB -max 64MB -dir /data
//	datagen -count 5000 -min 1MB -max 10GB -pareto 1.2 -manifest heavy.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/didclab/eta/internal/cliutil"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

func main() {
	total := flag.String("total", "", "total dataset size for the mixed generator (e.g. 10GB)")
	count := flag.Int("count", 0, "file count for the Pareto generator")
	minSize := flag.String("min", "3MB", "minimum file size")
	maxSize := flag.String("max", "1GB", "maximum file size")
	pareto := flag.Float64("pareto", 0, "Pareto tail index; 0 uses the log-uniform mixed generator")
	seed := flag.Int64("seed", 1, "generator seed")
	manifest := flag.String("manifest", "", "write a JSON manifest to this path")
	dir := flag.String("dir", "", "materialize real files under this directory")
	name := flag.String("name", "synthetic", "workload name recorded in the manifest")
	flag.Parse()

	if err := run(*total, *count, *minSize, *maxSize, *pareto, *seed, *manifest, *dir, *name); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(totalStr string, count int, minStr, maxStr string, pareto float64,
	seed int64, manifestPath, dir, name string) error {
	min, err := cliutil.ParseSize(minStr)
	if err != nil {
		return err
	}
	max, err := cliutil.ParseSize(maxStr)
	if err != nil {
		return err
	}

	g := dataset.NewGenerator(seed)
	var ds dataset.Dataset
	switch {
	case pareto > 0 && count > 0:
		ds = g.Pareto(count, min, max, pareto)
	case totalStr != "":
		total, err := cliutil.ParseSize(totalStr)
		if err != nil {
			return err
		}
		ds = g.Mixed(total, min, max)
	default:
		return fmt.Errorf("need -total (mixed) or -count with -pareto")
	}
	st := dataset.ComputeStats(ds)
	log.Printf("generated %d files, %v total (median %v, p90 %v, gini %.2f)",
		st.Count, st.Total, st.Median, st.P90, st.GiniBytes)

	if manifestPath == "" && dir == "" {
		return fmt.Errorf("nothing to do: pass -manifest and/or -dir")
	}
	if manifestPath != "" {
		f, err := os.Create(manifestPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteManifest(f, dataset.ToManifest(name, seed, ds)); err != nil {
			return err
		}
		log.Printf("wrote manifest %s", manifestPath)
	}
	if dir != "" {
		if err := materialize(dir, ds); err != nil {
			return err
		}
		log.Printf("materialized %d files under %s", ds.Count(), dir)
	}
	return nil
}

// materialize writes each file's canonical synthetic content to disk in
// 1 MiB slabs.
func materialize(dir string, ds dataset.Dataset) error {
	buf := make([]byte, 1<<20)
	for _, file := range ds.Files {
		path := filepath.Join(dir, filepath.FromSlash(file.Name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		var off units.Bytes
		for off < file.Size {
			n := units.Bytes(len(buf))
			if file.Size-off < n {
				n = file.Size - off
			}
			proto.FillSynth(file.Name, int64(off), buf[:n])
			if _, err := f.Write(buf[:n]); err != nil {
				f.Close()
				return fmt.Errorf("writing %s: %w", path, err)
			}
			off += n
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
