// Command energytransfer is the client CLI: it moves a remote server's
// dataset using one of the energy-aware algorithms (or a baseline) over
// the real-TCP stack, reporting throughput and estimated energy. Energy
// comes from hardware RAPL counters when the host exposes them, else
// from the paper's fine-grained power model over procfs utilization.
//
// Usage:
//
//	energytransfer -server host:7632 -algo htee -max-channels 8 -out /dst
//	energytransfer -server host:7632 -algo slaee -sla 0.9 -max-mbps 900 -verify
//	energytransfer -addrs hostA:7632=2,hostB:7632 -algo go -out /dst
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/didclab/eta/internal/cliutil"
	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/monitor"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/trace"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

func main() {
	server := flag.String("server", "127.0.0.1:7632", "xferd address")
	addrs := flag.String("addrs", "", "weighted xferd replica list (addr, addr=weight or host:port:weight, comma-separated); overrides -server")
	algo := flag.String("algo", "htee", "algorithm: mine|htee|slaee|guc|go|sc|promc|bf")
	maxChannels := flag.Int("max-channels", 8, "concurrency budget")
	sla := flag.Float64("sla", 0.9, "SLAEE throughput target as a fraction of -max-mbps")
	maxMbps := flag.Float64("max-mbps", 0, "SLAEE: maximum achievable throughput in Mbps (required for slaee)")
	out := flag.String("out", "", "write received files into this directory")
	verify := flag.Bool("verify", false, "discard payload, verify against synthetic content")
	resume := flag.Bool("resume", false, "skip bytes already present under -out")
	checksum := flag.Bool("checksum", false, "verify each file's CRC-32C against the server's")
	retries := flag.Int("retries", 3, "re-attempts per file after transport failures")
	bw := flag.String("bandwidth", "1gbps", "assumed path bandwidth (BDP input)")
	rtt := flag.Duration("rtt", 10*time.Millisecond, "assumed path RTT (BDP input)")
	buf := flag.String("buffer", "32MB", "assumed max TCP buffer (parallelism input)")
	samplesOut := flag.String("samples", "", "write the 5s sample timeline to this CSV file")
	traceOut := flag.String("trace", "", "record the JSONL event stream with spans and energy samples to this file (replay with xfertrace)")
	flag.Parse()

	opts := options{
		server: *server, addrs: *addrs, algo: *algo, maxChannels: *maxChannels,
		sla: *sla, maxMbps: *maxMbps, out: *out, verify: *verify,
		resume: *resume, checksum: *checksum, retries: *retries,
		bw: *bw, rtt: *rtt, buf: *buf, samplesOut: *samplesOut,
		traceOut: *traceOut,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "energytransfer:", err)
		os.Exit(1)
	}
}

// options carries the parsed command line.
type options struct {
	server, addrs, algo string
	maxChannels         int
	sla, maxMbps        float64
	out                 string
	verify, resume      bool
	checksum            bool
	retries             int
	bw, buf, samplesOut string
	traceOut            string
	rtt                 time.Duration
}

func run(o options) error {
	bandwidth, err := cliutil.ParseRate(o.bw)
	if err != nil {
		return err
	}
	bufSize, err := cliutil.ParseSize(o.buf)
	if err != nil {
		return err
	}

	var sink proto.Sink
	switch {
	case o.verify && o.out != "":
		return fmt.Errorf("-out and -verify are mutually exclusive")
	case o.verify:
		sink = proto.NewVerifySink()
	case o.out != "":
		sink = proto.NewDirSink(o.out)
	default:
		return fmt.Errorf("one of -out or -verify is required")
	}
	if o.resume && o.out == "" {
		return fmt.Errorf("-resume needs -out")
	}

	client := &proto.Client{Addr: o.server, Counters: &proto.Counters{}, VerifyChecksums: o.checksum}
	serversPerSite := 1
	if o.addrs != "" {
		eps, err := proto.ParseEndpoints(o.addrs)
		if err != nil {
			return fmt.Errorf("-addrs: %w", err)
		}
		pool, err := proto.NewEndpointPool(eps...)
		if err != nil {
			return fmt.Errorf("-addrs: %w", err)
		}
		client.Endpoints = pool
		// The algorithms' parameter formulas see the replica count the
		// same way the simulator's GO baseline does.
		serversPerSite = pool.Len()
	}
	files, err := client.List()
	if err != nil {
		return fmt.Errorf("listing %s: %w", client.Target(), err)
	}
	ds := dataset.Dataset{Files: files}
	log.Printf("dataset: %d files, %v", ds.Count(), ds.TotalSize())

	var resumeOffsets map[string]units.Bytes
	if o.resume {
		ranges, skipped, err := proto.ResumeRanges(o.out, files)
		if err != nil {
			return fmt.Errorf("planning resume: %w", err)
		}
		// Every file starts presumed complete; the planned ranges then
		// record what still needs moving. Files absent from the plan
		// keep their full-size offset and are skipped entirely.
		resumeOffsets = make(map[string]units.Bytes, ds.Count())
		for _, f := range files {
			resumeOffsets[f.Name] = f.Size
		}
		partial := 0
		for _, r := range ranges {
			resumeOffsets[r.File.Name] = r.Offset
			if r.Offset > 0 {
				partial++
			}
		}
		complete := ds.Count() - len(ranges)
		log.Printf("resume: %v already present (%d files complete, %d partial)",
			skipped, complete, partial)
	}

	// -trace records the full JSONL event stream — spans, transfer
	// events and the energy-model sample curve — for cmd/xfertrace.
	var events *obs.Log
	var tracer *span.Tracer
	var metrics *obs.Registry
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		// The buffered log owns f: its deferred Close flushes the tail
		// of the stream before closing the file.
		events = obs.NewBufferedLog(f, 0)
		defer events.Close()
		metrics = obs.NewRegistry()
		tracer = span.NewTracer(metrics, events)
	}

	localModel := power.FineGrained{Coeff: power.Coefficients{
		CPU: power.PaperCPUQuad, Mem: 0.11, Disk: 0.08, NIC: 0.2,
	}}
	hostModel := monitor.LocalServerModel(runtime.NumCPU(), bandwidth, 0)
	energy, usedRAPL, err := monitor.AutoSource(monitor.Monitor{}, hostModel, localModel)
	if err != nil {
		return fmt.Errorf("setting up energy estimation: %w", err)
	}
	if usedRAPL {
		log.Print("energy: hardware RAPL counters")
	} else {
		log.Print("energy: fine-grained model over procfs utilization")
		if ms, ok := energy.(*monitor.ModelSource); ok && tracer != nil {
			// The model source feeds the tracer at its own sampling
			// cadence, so span joules estimates stay current and the
			// recorded curve is what xfertrace attributes from.
			ms.Events = events
			ms.Trace = tracer
		}
	}

	exec := &proto.Executor{
		Client: client,
		Sink:   sink,
		Energy: energy,
		Environment: transfer.Environment{
			Path: netem.Path{
				Bandwidth:       bandwidth,
				RTT:             o.rtt,
				MaxTCPBuffer:    bufSize,
				EffStreamBuffer: bufSize / 8,
			},
			MaxChannels:    o.maxChannels,
			ServersPerSite: serversPerSite,
		},
		ResumeOffsets: resumeOffsets,
		MaxRetries:    o.retries,
		Metrics:       metrics,
		Events:        events,
		Trace:         tracer,
		Label:         strings.ToUpper(o.algo),
	}

	ctx := context.Background()
	start := time.Now()
	var report transfer.Report
	switch strings.ToLower(o.algo) {
	case "mine":
		report, err = core.MinE(ctx, exec, ds, o.maxChannels)
	case "htee":
		var res core.HTEEResult
		res, err = core.HTEE(ctx, exec, ds, o.maxChannels)
		if err == nil {
			log.Printf("HTEE settled on concurrency %d", res.ChosenConcurrency)
			report = res.Report
		}
	case "slaee":
		if o.maxMbps <= 0 {
			return fmt.Errorf("slaee needs -max-mbps (the reference maximum throughput)")
		}
		var res core.SLAResult
		res, err = core.SLAEE(ctx, exec, ds, units.Rate(o.maxMbps)*units.Mbps, o.sla, o.maxChannels)
		if err == nil {
			log.Printf("SLAEE target %v, deviation %+.1f%%, final concurrency %d",
				res.Target, res.Deviation(), res.FinalConcurrency)
			report = res.Report
		}
	case "guc":
		report, err = core.GUC(ctx, exec, ds, core.GUCOptions{})
	case "go":
		report, err = core.GO(ctx, exec, ds)
	case "sc":
		report, err = core.SC(ctx, exec, ds, o.maxChannels)
	case "promc":
		report, err = core.ProMC(ctx, exec, ds, o.maxChannels)
	case "bf":
		var res core.BFResult
		// One shared executor over one real link: probe the levels
		// serially so they do not distort each other's measurements.
		res, err = core.BFWith(ctx, func() transfer.Executor { return exec },
			ds, o.maxChannels, core.BFOptions{Workers: 1})
		if err == nil {
			log.Printf("brute force best concurrency: %d", res.Best)
			report = res.BestReport()
		}
	default:
		return fmt.Errorf("unknown algorithm %q", o.algo)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%s: %v in %v → %v, energy %v (avg %v)\n",
		report.Algorithm, report.Bytes, time.Since(start).Round(time.Millisecond),
		report.Throughput, report.EndSystemEnergy, report.AvgPower)
	if report.EnergyJoules > 0 && o.traceOut != "" {
		fmt.Printf("span attribution: %.1f J on the transfer root (replay with: xfertrace %s)\n",
			report.EnergyJoules, o.traceOut)
	}
	if v, ok := sink.(*proto.VerifySink); ok {
		if bad := v.Corrupt(); len(bad) > 0 {
			return fmt.Errorf("integrity check failed for %d ranges: %v", len(bad), bad[:minI(3, len(bad))])
		}
		fmt.Println("integrity: all payload bytes verified")
	}
	if o.samplesOut != "" {
		f, err := os.Create(o.samplesOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, report.Samples); err != nil {
			return err
		}
		log.Printf("samples: wrote %d windows to %s", len(report.Samples), o.samplesOut)
	}
	return nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
