package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

func startServer(t *testing.T) (*proto.Server, dataset.Dataset) {
	t.Helper()
	ds := dataset.NewGenerator(9).ManySmall(12, 50*units.KB, 300*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ds
}

func baseOptions(addr string) options {
	return options{
		server:      addr,
		algo:        "promc",
		maxChannels: 3,
		sla:         0.9,
		bw:          "1gbps",
		buf:         "4MB",
		rtt:         5 * time.Millisecond,
		verify:      true,
		checksum:    true,
	}
}

func TestRunVerifyTransfer(t *testing.T) {
	srv, _ := startServer(t)
	for _, algo := range []string{"promc", "sc", "guc", "go", "mine", "htee"} {
		o := baseOptions(srv.Addr())
		o.algo = algo
		if err := run(o); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunSLAEE(t *testing.T) {
	srv, _ := startServer(t)
	o := baseOptions(srv.Addr())
	o.algo = "slaee"
	if err := run(o); err == nil {
		t.Error("slaee without -max-mbps accepted")
	}
	o.maxMbps = 200
	o.sla = 0.5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunToDirectoryWithResumeAndSamples(t *testing.T) {
	srv, ds := startServer(t)
	dst := t.TempDir()
	samples := filepath.Join(t.TempDir(), "s.csv")
	o := baseOptions(srv.Addr())
	o.verify = false
	o.checksum = false
	o.out = dst
	o.samplesOut = samples
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(samples); err != nil {
		t.Errorf("samples CSV missing: %v", err)
	}
	// Every file must be on disk at full size.
	for _, f := range ds.Files {
		info, err := os.Stat(filepath.Join(dst, filepath.FromSlash(f.Name)))
		if err != nil || units.Bytes(info.Size()) != f.Size {
			t.Fatalf("file %s wrong on disk: %v", f.Name, err)
		}
	}
	// Resumed run moves nothing.
	o.resume = true
	o.samplesOut = ""
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunOptionValidation(t *testing.T) {
	srv, _ := startServer(t)
	o := baseOptions(srv.Addr())
	o.verify = false
	if err := run(o); err == nil {
		t.Error("no sink accepted")
	}
	o = baseOptions(srv.Addr())
	o.out = t.TempDir()
	if err := run(o); err == nil {
		t.Error("-out together with -verify accepted")
	}
	o = baseOptions(srv.Addr())
	o.verify = false
	o.resume = true
	if err := run(o); err == nil {
		t.Error("-resume without -out accepted")
	}
	o = baseOptions(srv.Addr())
	o.algo = "warp"
	if err := run(o); err == nil {
		t.Error("unknown algorithm accepted")
	}
	o = baseOptions(srv.Addr())
	o.bw = "junk"
	if err := run(o); err == nil {
		t.Error("bad bandwidth accepted")
	}
}
