package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

func TestParseValues(t *testing.T) {
	got, err := parseValues("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("parseValues = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-1", "1,,2"} {
		if _, err := parseValues(bad); err == nil {
			t.Errorf("parseValues(%q) accepted", bad)
		}
	}
}

func TestMeasureAgainstServer(t *testing.T) {
	ds := dataset.NewGenerator(1).Uniform(10, 300*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &proto.Client{Addr: srv.Addr()}
	files, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	thr, dur, n, err := measure(client, chooseRanges(files, 1*units.MB), 2, 2, 2, discard{})
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 || dur <= 0 || n < 4 {
		t.Errorf("measure = %v, %v, %d", thr, dur, n)
	}
}

func TestRunSweepTable(t *testing.T) {
	ds := dataset.NewGenerator(2).Uniform(6, 200*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(srv.Addr(), "", "concurrency", "1,2", "400KB", 1, 1, 2, "", "", "", "", 0, 0, "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(srv.Addr(), "", "bogus", "1", "400KB", 1, 1, 2, "", "", "", "", 0, 0, "", false, 0); err == nil {
		t.Error("unknown sweep parameter accepted")
	}
	if err := run("127.0.0.1:1", "", "concurrency", "1", "400KB", 1, 1, 2, "", "", "", "", 0, 0, "", false, 0); err == nil {
		t.Error("dead server accepted")
	}
	if err := run(srv.Addr(), "", "concurrency", "1", "400KB", 1, 1, 2, "", "", "", "", 0, 0, "", true, 0); err == nil {
		t.Error("-journal without -dest accepted")
	}
}

func TestRunMultiEndpoint(t *testing.T) {
	ds := dataset.NewGenerator(4).Uniform(6, 200*units.KB)
	srvA, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	addrs := srvA.Addr() + "=2," + srvB.Addr()
	if err := run("ignored:0", addrs, "concurrency", "2", "400KB", 1, 1, 2, "", "", "", "", 0, 0, "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("ignored:0", "not-an-endpoint-list=", "concurrency", "1", "400KB", 1, 1, 2, "", "", "", "", 0, 0, "", false, 0); err == nil {
		t.Error("malformed -addrs accepted")
	}
}

func TestRunJournalModeDeliversAndRetires(t *testing.T) {
	// Journal mode turns the sweep into a real delivery: a full run
	// leaves a byte-complete destination and retires the journal; a
	// rerun over the complete destination fetches nothing.
	ds := dataset.NewGenerator(5).Uniform(5, 200*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dest := t.TempDir()
	for i := 0; i < 2; i++ {
		if err := run(srv.Addr(), "", "concurrency", "1", "2MB", 1, 1, 2, "", "", "", "", 0, 0, dest, true, -1); err != nil {
			t.Fatalf("journal run %d: %v", i, err)
		}
	}
	for _, f := range ds.Files {
		got, err := os.ReadFile(filepath.Join(dest, filepath.FromSlash(f.Name)))
		if err != nil {
			t.Fatalf("%s not delivered: %v", f.Name, err)
		}
		want := make([]byte, f.Size)
		proto.FillSynth(f.Name, 0, want)
		if string(got) != string(want) {
			t.Errorf("%s: delivered bytes differ from source", f.Name)
		}
	}
	if _, err := os.Stat(filepath.Join(dest, proto.JournalFileName)); !os.IsNotExist(err) {
		t.Errorf("journal not retired after complete delivery (stat err: %v)", err)
	}
}

func TestRunDumpsMetricsAndEvents(t *testing.T) {
	ds := dataset.NewGenerator(3).Uniform(4, 200*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	events := filepath.Join(dir, "events.jsonl")
	if err := run(srv.Addr(), "", "concurrency", "1", "300KB", 1, 1, 2, metrics, events, "", "", 2*time.Second, proto.DefaultBlockSize, "", false, 0); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if snap.Counters["bytes_received"] <= 0 {
		t.Errorf("bytes_received = %d, want > 0", snap.Counters["bytes_received"])
	}
	if snap.Counters["sched_tasks_completed"] <= 0 {
		t.Errorf("sched_tasks_completed = %d, want > 0", snap.Counters["sched_tasks_completed"])
	}

	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	for sc := bufio.NewScanner(f); sc.Scan(); lines++ {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d does not parse: %v", lines, err)
		}
		for _, key := range []string{"seq", "t", "type"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event line %d missing %q: %s", lines, key, sc.Text())
			}
		}
	}
	if lines == 0 {
		t.Error("event log is empty")
	}
}
