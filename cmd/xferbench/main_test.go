package main

import (
	"testing"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

func TestParseValues(t *testing.T) {
	got, err := parseValues("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("parseValues = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-1", "1,,2"} {
		if _, err := parseValues(bad); err == nil {
			t.Errorf("parseValues(%q) accepted", bad)
		}
	}
}

func TestMeasureAgainstServer(t *testing.T) {
	ds := dataset.NewGenerator(1).Uniform(10, 300*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &proto.Client{Addr: srv.Addr()}
	files, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	thr, dur, n, err := measure(client, files, 1*units.MB, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 || dur <= 0 || n < 4 {
		t.Errorf("measure = %v, %v, %d", thr, dur, n)
	}
}

func TestRunSweepTable(t *testing.T) {
	ds := dataset.NewGenerator(2).Uniform(6, 200*units.KB)
	srv, err := proto.ListenAndServe("127.0.0.1:0", proto.ServerConfig{Store: proto.NewSynthStore(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(srv.Addr(), "concurrency", "1,2", "400KB", 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(srv.Addr(), "bogus", "1", "400KB", 1, 1, 2); err == nil {
		t.Error("unknown sweep parameter accepted")
	}
	if err := run("127.0.0.1:1", "concurrency", "1", "400KB", 1, 1, 2); err == nil {
		t.Error("dead server accepted")
	}
}
