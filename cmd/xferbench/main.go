// Command xferbench sweeps the three protocol parameters against a
// live server and prints a throughput table — the measurement
// methodology behind the paper's tuning decisions, runnable on any pair
// of hosts (or loopback with xferd's shaping).
//
// Usage:
//
//	xferbench -server host:7632 -sweep concurrency -values 1,2,4,8
//	xferbench -server host:7632 -sweep parallelism -values 1,2,4 -per-point 30MB
//	xferbench -addrs hostA:7632=2,hostB:7632 -sweep concurrency -values 2,4,8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/didclab/eta/internal/cliutil"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/units"
)

func main() {
	server := flag.String("server", "127.0.0.1:7632", "xferd address")
	addrs := flag.String("addrs", "", "weighted xferd replica list (addr, addr=weight or host:port:weight, comma-separated); overrides -server")
	sweep := flag.String("sweep", "concurrency", "parameter to sweep: concurrency|parallelism|pipelining")
	valuesStr := flag.String("values", "1,2,4,8", "comma-separated parameter values")
	perPoint := flag.String("per-point", "64MB", "payload per sweep point")
	concurrency := flag.Int("concurrency", 1, "fixed concurrency when sweeping another parameter")
	parallelism := flag.Int("parallelism", 1, "fixed parallelism when sweeping another parameter")
	pipelining := flag.Int("pipelining", 2, "fixed pipelining when sweeping another parameter")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	eventsOut := flag.String("events", "", "append the JSONL event log to this file as the sweep runs")
	stallTimeout := flag.Duration("stall-timeout", 0, "fail a channel whose pending requests see no bytes for this long (0 disables the watchdog)")
	block := flag.Int("block", proto.DefaultBlockSize, "expected server block size in bytes (sizes stream read buffers)")
	dest := flag.String("dest", "", "write received files into this directory (DirSink) instead of discarding payload")
	journal := flag.Bool("journal", false, "with -dest: keep a crash-safe block-receipt journal in the destination and resume via verified recovery — each point fetches only what is still missing")
	fsyncInterval := flag.Duration("fsync-interval", 0, "journal group-commit fsync interval (0 = 25ms default, negative = fsync every append)")
	traceOut := flag.String("trace", "", "record the JSONL event stream with client-side spans to this file (replay with xfertrace); extends -events with span_begin/span_end")
	pprofAddr := flag.String("pprof", "", "serve /metrics, /events, /spans and /debug/pprof/ on this address while the sweep runs")
	flag.Parse()

	if err := run(*server, *addrs, *sweep, *valuesStr, *perPoint, *concurrency, *parallelism, *pipelining, *metricsOut, *eventsOut, *traceOut, *pprofAddr, *stallTimeout, *block, *dest, *journal, *fsyncInterval); err != nil {
		fmt.Fprintln(os.Stderr, "xferbench:", err)
		os.Exit(1)
	}
}

func run(server, addrs, sweep, valuesStr, perPointStr string, conc, par, pipe int, metricsOut, eventsOut, traceOut, pprofAddr string, stallTimeout time.Duration, block int, dest string, journal bool, fsyncInterval time.Duration) error {
	values, err := parseValues(valuesStr)
	if err != nil {
		return err
	}
	perPoint, err := cliutil.ParseSize(perPointStr)
	if err != nil {
		return err
	}
	if traceOut != "" && eventsOut != "" {
		return fmt.Errorf("-trace and -events both record the event stream; pick one file")
	}

	client := &proto.Client{Addr: server, StallTimeout: stallTimeout, BlockSize: block}
	if addrs != "" {
		eps, err := proto.ParseEndpoints(addrs)
		if err != nil {
			return fmt.Errorf("-addrs: %w", err)
		}
		pool, err := proto.NewEndpointPool(eps...)
		if err != nil {
			return fmt.Errorf("-addrs: %w", err)
		}
		client.Endpoints = pool
	}
	if metricsOut != "" || eventsOut != "" || traceOut != "" || pprofAddr != "" {
		reg := obs.NewRegistry()
		var events *obs.Log
		if streamOut := eventsOut + traceOut; streamOut != "" { // at most one is set
			f, err := os.Create(streamOut)
			if err != nil {
				return fmt.Errorf("event stream: %w", err)
			}
			// The buffered log owns f: its deferred Close flushes the
			// tail of the event stream before closing the file.
			events = obs.NewBufferedLog(f, 0)
			defer events.Close()
		} else {
			events = obs.NewLog(nil)
		}
		client.Metrics = reg
		client.Events = events
		var tracer *span.Tracer
		if traceOut != "" || pprofAddr != "" {
			tracer = span.NewTracer(reg, events)
			client.Trace = tracer
		}
		if pprofAddr != "" {
			ms, err := obs.ServeOpts(pprofAddr, obs.HandlerOpts{
				Registry: reg,
				Log:      events,
				Spans:    tracer,
				Pprof:    true,
			})
			if err != nil {
				return fmt.Errorf("-pprof: %w", err)
			}
			defer ms.Close()
			fmt.Printf("observability on http://%s/metrics, /spans and /debug/pprof/\n", ms.Addr())
		}
		sched.SetMetrics(reg)
		defer sched.SetMetrics(nil)
		if metricsOut != "" {
			defer func() {
				f, err := os.Create(metricsOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "xferbench: -metrics:", err)
					return
				}
				defer f.Close()
				if err := reg.WriteJSON(f); err != nil {
					fmt.Fprintln(os.Stderr, "xferbench: -metrics:", err)
				}
			}()
		}
	}
	if journal && dest == "" {
		return fmt.Errorf("-journal requires -dest")
	}
	var sink proto.Sink = discard{}
	if dest != "" {
		ds := proto.NewDirSink(dest)
		// With a journal the marker/fsync discipline matters; without
		// one the destination is best-effort anyway.
		ds.SyncOnClose = journal
		sink = ds
	}
	var jr *proto.Journal
	if journal {
		var err error
		jr, err = proto.OpenJournal(filepath.Join(dest, proto.JournalFileName), proto.JournalOptions{
			FsyncInterval: fsyncInterval,
			Metrics:       client.Metrics,
			Events:        client.Events,
		})
		if err != nil {
			return err
		}
		defer jr.Close()
		client.Journal = jr
	}

	files, err := client.List()
	if err != nil {
		return fmt.Errorf("listing %s: %w", client.Target(), err)
	}
	if len(files) == 0 {
		return fmt.Errorf("server has no files")
	}

	fmt.Printf("sweeping %s over %v (payload ≈%v per point; fixed cc=%d par=%d q=%d)\n\n",
		sweep, values, perPoint, conc, par, pipe)
	fmt.Printf("%12s %12s %10s %10s\n", sweep, "throughput", "duration", "files")
	for _, v := range values {
		c, p, q := conc, par, pipe
		switch sweep {
		case "concurrency":
			c = v
		case "parallelism":
			p = v
		case "pipelining":
			q = v
		default:
			return fmt.Errorf("unknown sweep parameter %q", sweep)
		}
		if c < 1 || p < 1 || q < 1 {
			return fmt.Errorf("parameters must be ≥1")
		}
		ranges := chooseRanges(files, perPoint)
		pointSink := sink
		if jr != nil {
			// Journal mode fetches the verified-recovery plan — whatever
			// the destination is still missing — instead of a synthetic
			// per-point payload, so an interrupted run picks up where the
			// receipts end.
			if err := jr.Sync(); err != nil {
				return err
			}
			plan, err := proto.PlanResume(dest, files, proto.ResumeOptions{
				JournalPath: jr.Path(),
				Metrics:     client.Metrics,
				Events:      client.Events,
			})
			if err != nil {
				return err
			}
			fmt.Printf("resume: %v verified via journal, %v already present, %v to fetch in %d ranges\n",
				plan.Verified, plan.Skipped, plan.Refetch, len(plan.Ranges))
			if len(plan.Ranges) == 0 {
				fmt.Printf("%12d %12s %10s %10d\n", v, "complete", "-", 0)
				continue
			}
			ranges = plan.Ranges
			pointSink = proto.NewCompletionSink(sink, ranges)
		}
		thr, dur, n, err := measure(client, ranges, c, p, q, pointSink)
		if err != nil {
			return fmt.Errorf("%s=%d: %w", sweep, v, err)
		}
		fmt.Printf("%12d %12s %10s %10d\n", v, thr, dur.Round(time.Millisecond), n)
	}
	if jr != nil {
		// A destination proven complete no longer needs its journal.
		if err := jr.Sync(); err != nil {
			return err
		}
		plan, err := proto.PlanResume(dest, files, proto.ResumeOptions{JournalPath: jr.Path()})
		if err == nil && len(plan.Ranges) == 0 {
			jr.Close()
			if err := os.Remove(jr.Path()); err == nil {
				fmt.Println("destination complete: receipt journal removed")
			}
		}
	}
	return nil
}

// chooseRanges picks ≈perPoint bytes of whole-file fetches, wrapping
// around the manifest when it is smaller than the point payload (the
// same name refetches under an independent request).
func chooseRanges(files []dataset.File, perPoint units.Bytes) []proto.FileRange {
	var chosen []dataset.File
	var total units.Bytes
	for i := 0; total < perPoint; i++ {
		f := files[i%len(files)]
		chosen = append(chosen, f)
		total += f.Size
	}
	return proto.WholeFiles(chosen)
}

func parseValues(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad sweep value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sweep values")
	}
	return out, nil
}

// measure transfers the given ranges at the given parameters, splitting
// them round-robin across `conc` channels into sink.
func measure(client *proto.Client, ranges []proto.FileRange, conc, par, pipe int, sink proto.Sink) (units.Rate, time.Duration, int, error) {
	parts := make([][]proto.FileRange, conc)
	for i, r := range ranges {
		parts[i%conc] = append(parts[i%conc], r)
	}

	start := time.Now()
	results, err := sched.Map(context.Background(), conc, conc, func(_ context.Context, i int) (proto.FetchResult, error) {
		part := parts[i]
		if len(part) == 0 {
			return proto.FetchResult{}, nil
		}
		ch, err := client.OpenChannel(par)
		if err != nil {
			return proto.FetchResult{}, err
		}
		defer ch.Close()
		return ch.FetchRanges(part, pipe, sink)
	})
	if err != nil {
		return 0, 0, 0, err
	}
	var moved units.Bytes
	var count int
	for _, r := range results {
		moved += r.Bytes
		count += r.Files
	}
	dur := time.Since(start)
	return units.RateOf(moved, dur), dur, count, nil
}

// discard drops payload; xferbench measures the wire, not the disk.
type discard struct{}

func (discard) WriteAt(_ string, p []byte, _ int64) (int, error) { return len(p), nil }
func (discard) Close(string) error                               { return nil }
