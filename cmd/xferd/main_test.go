package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/didclab/eta/internal/proto"
)

// These tests drive the REAL daemon binary with REAL signals — the drain
// path only exists between a kernel-delivered SIGTERM and os.Exit, so an
// in-process fake would test nothing.

func buildXferd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xferd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building xferd: %v\n%s", err, out)
	}
	return bin
}

type xferdProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error // cmd.Wait result, after stderr hits EOF
}

func startXferd(t *testing.T, bin string, args ...string) *xferdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	p := &xferdProc{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("xferd never reported its listen address")
	}
	return p
}

func waitExit(t *testing.T, p *xferdProc, timeout time.Duration) int {
	t.Helper()
	select {
	case err := <-p.done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("xferd wait: %v", err)
	case <-time.After(timeout):
		t.Fatalf("xferd still running after %v", timeout)
	}
	return -1
}

type nullSink struct{}

func (nullSink) WriteAt(_ string, p []byte, _ int64) (int, error) { return len(p), nil }
func (nullSink) Close(string) error                               { return nil }

func TestXferdDrainCompletesInflight(t *testing.T) {
	bin := buildXferd(t)
	p := startXferd(t, bin,
		"-addr", "127.0.0.1:0",
		"-synth", "6MB", "-synth-min", "500KB", "-synth-max", "1MB",
		"-stream-rate", "40mbps", // slow enough that SIGTERM lands mid-transfer
		"-drain-timeout", "30s")

	client := &proto.Client{Addr: p.addr}
	files, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	fetched := make(chan error, 1)
	var moved int64
	go func() {
		res, err := ch.Fetch(files, 2, nullSink{})
		moved = int64(res.Bytes)
		ch.Close() // the finished client hangs up; the drain completes on that
		fetched <- err
	}()
	time.Sleep(100 * time.Millisecond)

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Signal handling is asynchronous: poll until new sessions bounce.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := (&proto.Client{Addr: p.addr}).OpenChannel(1)
		if err != nil {
			break // refused — the server is draining
		}
		c2.Close()
		if time.Now().After(deadline) {
			t.Fatal("server kept accepting sessions after SIGTERM")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := <-fetched; err != nil {
		t.Errorf("in-flight transfer did not survive the drain: %v", err)
	}
	var want int64
	for _, f := range files {
		want += int64(f.Size)
	}
	if moved != want {
		t.Errorf("in-flight transfer moved %d of %d bytes", moved, want)
	}
	if code := waitExit(t, p, 10*time.Second); code != 0 {
		t.Errorf("graceful drain exited %d, want 0", code)
	}
}

func TestXferdSecondSignalForcesExit(t *testing.T) {
	bin := buildXferd(t)
	p := startXferd(t, bin,
		"-addr", "127.0.0.1:0",
		"-synth", "1MB", "-synth-min", "200KB", "-synth-max", "500KB",
		"-drain-timeout", "60s")

	// Hold a session open so the drain can never finish on its own.
	client := &proto.Client{Addr: p.addr}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the drain start and block
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The second signal must NOT be swallowed by the blocked drain: the
	// daemon force-exits with a nonzero code well before -drain-timeout.
	if code := waitExit(t, p, 5*time.Second); code != 1 {
		t.Errorf("second signal exited %d, want 1", code)
	}
}
