// Command xferd is the transfer server daemon: it serves either a real
// directory tree or a deterministic synthetic dataset over the
// GridFTP-like protocol, optionally shaping traffic to emulate WAN
// conditions (per-stream window cap, link capacity, control RTT).
//
// Usage:
//
//	xferd -addr :7632 -root /data
//	xferd -addr :7632 -synth 10GB -stream-rate 800mbps -rtt 40ms
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/didclab/eta/internal/cliutil"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/proto"
)

func main() {
	addr := flag.String("addr", ":7632", "listen address")
	root := flag.String("root", "", "serve files from this directory")
	synth := flag.String("synth", "", "serve a synthetic dataset of this total size (e.g. 10GB)")
	synthMin := flag.String("synth-min", "3MB", "synthetic minimum file size")
	synthMax := flag.String("synth-max", "1GB", "synthetic maximum file size")
	seed := flag.Int64("seed", 1, "synthetic dataset seed")
	streamRate := flag.String("stream-rate", "", "per-stream rate cap (e.g. 800mbps)")
	linkRate := flag.String("link-rate", "", "aggregate link rate cap (e.g. 10gbps)")
	rtt := flag.Duration("rtt", 0, "emulated control-channel RTT")
	block := flag.Int("block", proto.DefaultBlockSize, "striping block size in bytes")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /events on this address (e.g. :7633)")
	stallTimeout := flag.Duration("stall-timeout", 0, "tear down sessions whose control/data writes stall this long (0 disables)")
	writevBatch := flag.Int("writev-batch", 0, "max blocks gathered into one vectored write on unshaped streams (0 = default 8, 1 disables batching)")
	crcCache := flag.Bool("crc-cache", true, "cache per-file block CRCs so repeat serves of unchanged files skip re-hashing")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on the first SIGINT/SIGTERM, stop accepting sessions and wait up to this long for in-flight transfers before closing")
	traceOut := flag.String("trace", "", "record the JSONL event stream with server-side spans to this file (replay with xfertrace)")
	pprof := flag.Bool("pprof", false, "with -metrics-addr: expose net/http/pprof under /debug/pprof/ on the metrics address")
	flag.Parse()

	cfg := proto.ServerConfig{
		ControlRTT:      *rtt,
		BlockSize:       *block,
		StallTimeout:    *stallTimeout,
		MaxBatchBlocks:  *writevBatch,
		DisableCRCCache: !*crcCache,
		Logf:            log.Printf,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("xferd: -trace: %v", err)
		}
		// The buffered log owns f: its deferred Close flushes the tail
		// of the event stream before closing the file.
		cfg.Events = obs.NewBufferedLog(f, 0)
		defer cfg.Events.Close()
	}
	var tracer *span.Tracer
	if *metricsAddr != "" || *traceOut != "" {
		cfg.Metrics = obs.NewRegistry()
		if cfg.Events == nil {
			cfg.Events = obs.NewLog(nil)
		}
		tracer = span.NewTracer(cfg.Metrics, cfg.Events)
		cfg.Trace = tracer
	}
	if *metricsAddr != "" {
		ms, err := obs.ServeOpts(*metricsAddr, obs.HandlerOpts{
			Registry: cfg.Metrics,
			Log:      cfg.Events,
			Spans:    tracer,
			Pprof:    *pprof,
		})
		if err != nil {
			log.Fatalf("xferd: -metrics-addr: %v", err)
		}
		defer ms.Close()
		log.Printf("xferd: observability on http://%s/metrics, /events and /spans", ms.Addr())
		if *pprof {
			log.Printf("xferd: pprof on http://%s/debug/pprof/", ms.Addr())
		}
	}
	var err error
	if cfg.PerStreamRate, err = cliutil.ParseRate(*streamRate); err != nil {
		log.Fatalf("xferd: -stream-rate: %v", err)
	}
	if cfg.LinkRate, err = cliutil.ParseRate(*linkRate); err != nil {
		log.Fatalf("xferd: -link-rate: %v", err)
	}

	switch {
	case *root != "" && *synth != "":
		log.Fatal("xferd: -root and -synth are mutually exclusive")
	case *root != "":
		cfg.Store = proto.DirStore{Root: *root}
	case *synth != "":
		total, err := cliutil.ParseSize(*synth)
		if err != nil {
			log.Fatalf("xferd: -synth: %v", err)
		}
		min, err := cliutil.ParseSize(*synthMin)
		if err != nil {
			log.Fatalf("xferd: -synth-min: %v", err)
		}
		max, err := cliutil.ParseSize(*synthMax)
		if err != nil {
			log.Fatalf("xferd: -synth-max: %v", err)
		}
		ds := dataset.NewGenerator(*seed).Mixed(total, min, max)
		log.Printf("xferd: serving synthetic dataset: %d files, %v total", ds.Count(), ds.TotalSize())
		cfg.Store = proto.NewSynthStore(ds)
	default:
		log.Fatal("xferd: one of -root or -synth is required")
	}

	srv, err := proto.ListenAndServe(*addr, cfg)
	if err != nil {
		log.Fatalf("xferd: %v", err)
	}
	log.Printf("xferd: listening on %s", srv.Addr())

	// Graceful drain: the first signal refuses new sessions and lets the
	// in-flight ones finish under -drain-timeout; a second signal at ANY
	// point — including while Drain/Close is still running — force-exits
	// immediately instead of being swallowed by a blocked shutdown.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	first := <-sig
	log.Printf("xferd: %v: draining (waiting up to %v for in-flight sessions; signal again to force exit)", first, *drainTimeout)
	drained := make(chan error, 1)
	//lint:allow nakedgo single signal-lifetime shutdown goroutine in main; it must keep running while main selects on a second signal, which a bounded pool cannot express
	go func() { drained <- srv.Drain(*drainTimeout) }()
	select {
	case err := <-drained:
		if err != nil {
			log.Printf("xferd: close: %v", err)
		}
		log.Print("xferd: drained, shutting down")
	case second := <-sig:
		log.Printf("xferd: second signal (%v) during drain: forcing exit", second)
		os.Exit(1)
	}
}
