// Command vettool is the project's multichecker: a `go vet -vettool`
// binary bundling the invariant analyzers under internal/analysis that
// turn the determinism, buffer-ownership, deadline-I/O, error-taxonomy
// and telemetry-hygiene rules of DESIGN.md §6–§9 into machine-checked
// CI gates (scripts/lint.sh). Analyzers exchange per-object facts
// through the vet .vetx channel, so interprocedural properties
// (pool-releasing helpers, deadline-disciplined forwarders, sentinel
// errors, bounded label sources) survive package boundaries.
//
// The analyzer list below is mirrored in DESIGN.md §7.1; CI asserts
// the two stay in sync.
//
// Usage:
//
//	go build -o /tmp/vettool ./cmd/vettool
//	go vet -vettool=/tmp/vettool ./...
package main

import (
	"github.com/didclab/eta/internal/analysis/bufown"
	"github.com/didclab/eta/internal/analysis/deadlineio"
	"github.com/didclab/eta/internal/analysis/errclass"
	"github.com/didclab/eta/internal/analysis/framework"
	"github.com/didclab/eta/internal/analysis/mapfloatsum"
	"github.com/didclab/eta/internal/analysis/metriclint"
	"github.com/didclab/eta/internal/analysis/nakedgo"
	"github.com/didclab/eta/internal/analysis/nodeterm"
	"github.com/didclab/eta/internal/analysis/unitchecker"
)

// analyzers is the full suite; kept as a slice so tests can count it
// against the DESIGN §7.1 table.
var analyzers = []*framework.Analyzer{
	mapfloatsum.Analyzer,
	nodeterm.Analyzer,
	bufown.Analyzer,
	nakedgo.Analyzer,
	deadlineio.Analyzer,
	errclass.Analyzer,
	metriclint.Analyzer,
}

func main() {
	unitchecker.Main(analyzers...)
}
