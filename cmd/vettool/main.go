// Command vettool is the project's multichecker: a `go vet -vettool`
// binary bundling the invariant analyzers under internal/analysis that
// turn the determinism, buffer-ownership and scheduling rules of
// DESIGN.md §6–§7 into machine-checked CI gates (scripts/lint.sh).
//
// Usage:
//
//	go build -o /tmp/vettool ./cmd/vettool
//	go vet -vettool=/tmp/vettool ./...
package main

import (
	"github.com/didclab/eta/internal/analysis/bufown"
	"github.com/didclab/eta/internal/analysis/mapfloatsum"
	"github.com/didclab/eta/internal/analysis/nakedgo"
	"github.com/didclab/eta/internal/analysis/nodeterm"
	"github.com/didclab/eta/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		mapfloatsum.Analyzer,
		nodeterm.Analyzer,
		bufown.Analyzer,
		nakedgo.Analyzer,
	)
}
