package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolProtocol builds the tool and drives it end to end through
// `go vet -vettool` over representative clean packages, plus the two
// protocol queries cmd/go issues (-V=full for the build cache key,
// -flags for flag discovery).
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and shells out to the go tool")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "vettool")

	build := exec.Command(goTool, "build", "-o", bin, "./cmd/vettool")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[0] != "vettool" || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not match the \"<tool> version ...\" shape cmd/go requires", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(out)), "[") {
		t.Fatalf("-flags output %q is not a JSON array", out)
	}

	vet := exec.Command(goTool, "vet", "-vettool="+bin,
		"./internal/sched", "./internal/units", "./internal/core")
	vet.Dir = repoRoot
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool on clean packages failed: %v\n%s", err, stderr.String())
	}
}
