package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFullDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole evaluation")
	}
	out := t.TempDir()
	if err := run(out, 20150615, "", filepath.Join(out, "metrics.json")); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"summary.md", "metrics.json",
		"sweep_xsede.csv", "sweep_futuregrid.csv", "sweep_didclab.csv",
		"sla_xsede.csv", "sla_futuregrid.csv", "sla_didclab.csv",
		filepath.Join("figures", "fig8_rate_power.svg"),
		filepath.Join("figures", "sweep_xsede_throughput.svg"),
	} {
		if _, err := os.Stat(filepath.Join(out, want)); err != nil {
			t.Errorf("missing output %s: %v", want, err)
		}
	}
}

func TestRunUnknownTestbed(t *testing.T) {
	if err := run(t.TempDir(), 1, "Mars", ""); err == nil {
		t.Error("unknown testbed accepted")
	}
}
