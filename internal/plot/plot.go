// Package plot renders line and grouped-bar charts as standalone SVG
// using only the standard library, so the reproduction can regenerate
// the paper's figures as images (results/figures/*.svg) without any
// plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line (or bar group member).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Kind selects the mark type.
type Kind int

// Chart kinds.
const (
	Line Kind = iota
	Bars
)

// Chart is a renderable figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Kind   Kind
	// Width and Height of the SVG; 640×420 when zero.
	Width, Height int
	// YMin/YMax pin the y-range; nil means auto.
	YMin, YMax *float64
	// XTickLabels overrides numeric x labels for bar charts (indexed
	// by position).
	XTickLabels []string
}

// palette holds the line/bar colors (colorblind-safe Okabe–Ito).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 48.0
	legendRow    = 16.0
)

// SVG renders the chart.
func (c Chart) SVG() string {
	w, h := float64(c.Width), float64(c.Height)
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 420
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)

	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom
	xMin, xMax, yMin, yMax := c.bounds()

	xScale := func(x float64) float64 {
		if xMax == xMin {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-xMin)/(xMax-xMin)*plotW
	}
	yScale := func(y float64) float64 {
		if yMax == yMin {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	// Axes and ticks.
	fmt.Fprintf(&b, `<text x="%.0f" y="18" text-anchor="middle" font-weight="bold">%s</text>`+"\n", w/2, escape(c.Title))
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)

	for _, tick := range NiceTicks(yMin, yMax, 6) {
		y := yScale(tick)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginLeft-6, y, formatTick(tick))
	}
	if c.Kind == Bars || len(c.XTickLabels) > 0 {
		for i, label := range c.XTickLabels {
			x := xScale(float64(i))
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
				x, marginTop+plotH+16, escape(label))
		}
	} else {
		for _, tick := range NiceTicks(xMin, xMax, 7) {
			x := xScale(tick)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
				x, marginTop+plotH+16, formatTick(tick))
		}
	}
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.0f" text-anchor="middle" transform="rotate(-90 14 %.0f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Marks.
	switch c.Kind {
	case Bars:
		c.renderBars(&b, xScale, yScale, yMin, plotW)
	default:
		c.renderLines(&b, xScale, yScale)
	}

	// Legend (top-right, one row per series).
	lx := marginLeft + plotW - 120
	ly := marginTop + 6
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly+float64(i)*legendRow, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`+"\n", lx+14, ly+float64(i)*legendRow+9, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	return b.String()
}

func (c Chart) renderLines(b *strings.Builder, xScale, yScale func(float64) float64) {
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var points []string
		for j := range s.X {
			points = append(points, fmt.Sprintf("%.1f,%.1f", xScale(s.X[j]), yScale(s.Y[j])))
		}
		if len(points) > 1 {
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(points, " "), color)
		}
		for j := range s.X {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xScale(s.X[j]), yScale(s.Y[j]), color)
		}
	}
}

func (c Chart) renderBars(b *strings.Builder, xScale, yScale func(float64) float64, yMin float64, plotW float64) {
	groups := 0
	for _, s := range c.Series {
		if len(s.X) > groups {
			groups = len(s.X)
		}
	}
	if groups == 0 {
		return
	}
	groupWidth := plotW / float64(groups)
	barWidth := groupWidth * 0.8 / float64(len(c.Series))
	base := yScale(math.Max(yMin, 0))
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		for j := range s.Y {
			x := xScale(float64(j)) - groupWidth*0.4 + float64(i)*barWidth
			y := yScale(s.Y[j])
			top, height := y, base-y
			if height < 0 {
				top, height = base, -height
			}
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barWidth, height, color)
		}
	}
}

// bounds computes the data envelope (with bar charts pinned to zero).
func (c Chart) bounds() (xMin, xMax, yMin, yMax float64) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		xMin, xMax, yMin, yMax = 0, 1, 0, 1
	}
	if c.Kind == Bars {
		yMin = math.Min(yMin, 0)
		xMin -= 0.5
		xMax += 0.5
	}
	if c.YMin != nil {
		yMin = *c.YMin
	}
	if c.YMax != nil {
		yMax = *c.YMax
	}
	if yMin == yMax {
		yMax = yMin + 1
	}
	// Headroom so lines do not hug the frame.
	pad := (yMax - yMin) * 0.05
	if c.YMax == nil {
		yMax += pad
	}
	if c.YMin == nil && c.Kind != Bars {
		yMin -= pad
	}
	return xMin, xMax, yMin, yMax
}

// NiceTicks returns ~n round tick positions covering [lo, hi].
func NiceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi <= lo {
		return []float64{lo}
	}
	step := niceStep((hi - lo) / float64(n))
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step*1e-9; v += step {
		// Normalize -0.
		if math.Abs(v) < step*1e-9 {
			v = 0
		}
		ticks = append(ticks, v)
	}
	return ticks
}

// niceStep rounds a raw step to 1, 2 or 5 × 10^k.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag <= 1:
		return mag
	case raw/mag <= 2:
		return 2 * mag
	case raw/mag <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
