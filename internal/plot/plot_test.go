package plot

import (
	"encoding/xml"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func lineChart() Chart {
	return Chart{
		Title:  "Throughput vs concurrency",
		XLabel: "concurrency",
		YLabel: "Mbps",
		Series: []Series{
			{Name: "ProMC", X: []float64{1, 2, 4, 8}, Y: []float64{800, 1600, 3200, 6000}},
			{Name: "MinE", X: []float64{1, 2, 4, 8}, Y: []float64{2400, 2400, 3200, 4400}},
		},
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	svg := lineChart().SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestSVGContainsMarksAndLabels(t *testing.T) {
	svg := lineChart().SVG()
	for _, want := range []string{"<polyline", "<circle", "ProMC", "MinE", "Throughput vs concurrency", "concurrency", "Mbps"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<circle"); got != 8 {
		t.Errorf("expected 8 point markers, found %d", got)
	}
}

func TestBarChart(t *testing.T) {
	c := Chart{
		Title: "Energy split",
		Kind:  Bars,
		Series: []Series{
			{Name: "end-system", X: []float64{0, 1, 2}, Y: []float64{14.5, 2.0, 2.9}},
			{Name: "network", X: []float64{0, 1, 2}, Y: []float64{10.2, 1.6, 0.4}},
		},
		XTickLabels: []string{"XSEDE", "FutureGrid", "DIDCLAB"},
	}
	svg := c.SVG()
	if got := strings.Count(svg, "<rect"); got < 7 { // background + 6 bars
		t.Errorf("expected ≥7 rects, found %d", got)
	}
	for _, want := range []string{"XSEDE", "FutureGrid", "DIDCLAB"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing tick label %q", want)
		}
	}
}

func TestEmptyChartDoesNotPanic(t *testing.T) {
	svg := Chart{Title: "empty"}.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("empty chart produced malformed SVG")
	}
}

func TestEscape(t *testing.T) {
	c := Chart{Title: `a<b & "c"`}
	svg := c.SVG()
	if strings.Contains(svg, `a<b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestNiceTicksCoverRange(t *testing.T) {
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw) - 30000
		span := float64(spanRaw%10000) + 1
		hi := lo + span
		ticks := NiceTicks(lo, hi, 6)
		if len(ticks) < 2 || len(ticks) > 14 {
			return false
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				return false
			}
		}
		return ticks[0] >= lo-1e-9 && ticks[len(ticks)-1] <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNiceTicksDegenerate(t *testing.T) {
	if got := NiceTicks(5, 5, 4); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate range ticks = %v", got)
	}
	if got := NiceTicks(10, 5, 4); len(got) != 1 {
		t.Errorf("inverted range ticks = %v", got)
	}
}

func TestNiceStepValues(t *testing.T) {
	cases := map[float64]float64{
		0.7:  1,
		1.5:  2,
		3:    5,
		7:    10,
		12:   20,
		230:  500,
		0.03: 0.05,
	}
	for raw, want := range cases {
		if got := niceStep(raw); math.Abs(got-want) > want*1e-9 {
			t.Errorf("niceStep(%v) = %v, want %v", raw, got, want)
		}
	}
	if niceStep(0) != 1 {
		t.Error("zero step should default to 1")
	}
}

func TestYBoundsPinned(t *testing.T) {
	zero := 0.0
	one := 1.0
	c := lineChart()
	c.YMin, c.YMax = &zero, &one
	_, _, yMin, yMax := c.bounds()
	if yMin != 0 || yMax != 1 {
		t.Errorf("pinned bounds = [%v,%v]", yMin, yMax)
	}
}
