package plot_test

import (
	"fmt"

	"github.com/didclab/eta/internal/plot"
)

func ExampleNiceTicks() {
	fmt.Println(plot.NiceTicks(0, 10, 5))
	fmt.Println(plot.NiceTicks(0, 7500, 6))
	// Output:
	// [0 2 4 6 8 10]
	// [0 2000 4000 6000]
}
