// Package transfer defines the contract between the energy-aware
// algorithms (internal/core) and the machinery that actually moves
// bytes. The algorithms only ever:
//
//   - inspect the environment (bandwidth, RTT, buffer, channel budget),
//   - submit a Plan: per-chunk pipelining/parallelism plus a channel
//     allocation and scheduling flags,
//   - sample throughput and energy over five-second windows,
//   - re-allocate channels mid-flight.
//
// Both the simulated executor (sim.go, used by the paper-reproduction
// experiments) and the real-TCP executor (internal/proto, used by the
// CLI and examples) implement this contract.
package transfer

import (
	"context"
	"fmt"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/units"
)

// Environment is what an algorithm may know about the transfer setting
// before choosing parameters — exactly the inputs of Algorithms 1–3
// (bandwidth, RTT, TCP buffer size, the channel budget, and the site's
// server count).
type Environment struct {
	Path           netem.Path
	MaxChannels    int
	ServersPerSite int
}

// BDP returns the environment's bandwidth-delay product.
func (e Environment) BDP() units.Bytes { return e.Path.BDP() }

// BufferSize returns the maximum TCP buffer size, the "bufSize" of the
// paper's parallelism formula.
func (e Environment) BufferSize() units.Bytes { return e.Path.MaxTCPBuffer }

// ChunkPlan is one chunk with its chosen parameters and channel share.
type ChunkPlan struct {
	Chunk dataset.Chunk
	// Channels is the concurrency assigned to this chunk.
	Channels int
	// Weight drives mid-flight channel redistribution (HTEE's
	// log(size)·log(count) weights). Zero-weight chunks receive spare
	// channels last.
	Weight float64
	// AcceptRealloc marks whether this chunk may receive extra
	// channels freed by completed chunks. MinE pins its Large chunk to
	// a single channel "regardless of its weight", so Large gets false
	// there.
	AcceptRealloc bool
}

// Pipelining returns the chunk's pipelining depth (minimum 1).
func (cp ChunkPlan) Pipelining() int {
	if cp.Chunk.Pipelining < 1 {
		return 1
	}
	return cp.Chunk.Pipelining
}

// Parallelism returns the chunk's stream count per channel (minimum 1).
func (cp ChunkPlan) Parallelism() int {
	if cp.Chunk.Parallelism < 1 {
		return 1
	}
	return cp.Chunk.Parallelism
}

// Plan is a complete transfer submission.
type Plan struct {
	Chunks []ChunkPlan
	// Sequential transfers chunks one at a time (Single Chunk, Globus
	// Online, GUC) instead of simultaneously (ProMC, MinE, HTEE).
	Sequential bool
	// SpreadServers distributes channels round-robin across the site's
	// transfer servers the way Globus Online does; the custom client
	// "tries to initiate connections on a single end server" (§3).
	SpreadServers bool
	// ReallocOnComplete moves a finished chunk's channels to the
	// remaining chunks (the Multi-Chunk mechanism).
	ReallocOnComplete bool
}

// TotalChannels returns the sum of the per-chunk allocations.
func (p Plan) TotalChannels() int {
	total := 0
	for _, c := range p.Chunks {
		total += c.Channels
	}
	return total
}

// TotalBytes returns the plan's payload size.
func (p Plan) TotalBytes() units.Bytes {
	var total units.Bytes
	for _, c := range p.Chunks {
		total += c.Chunk.TotalSize()
	}
	return total
}

// Validate rejects structurally broken plans.
func (p Plan) Validate(env Environment) error {
	if len(p.Chunks) == 0 {
		return fmt.Errorf("transfer: empty plan")
	}
	for i, c := range p.Chunks {
		if c.Chunk.Count() == 0 {
			return fmt.Errorf("transfer: chunk %d (%v) has no files", i, c.Chunk.Class)
		}
		if c.Channels < 0 {
			return fmt.Errorf("transfer: chunk %d has negative channels", i)
		}
		if c.Weight < 0 {
			return fmt.Errorf("transfer: chunk %d has negative weight", i)
		}
	}
	if p.TotalChannels() == 0 {
		return fmt.Errorf("transfer: plan allocates no channels")
	}
	if env.MaxChannels > 0 && p.TotalChannels() > env.MaxChannels {
		return fmt.Errorf("transfer: plan allocates %d channels, budget is %d",
			p.TotalChannels(), env.MaxChannels)
	}
	return nil
}

// Sample is the measurement an adaptive algorithm sees after letting
// the transfer run for a window ("each concurrency level is executed
// for five second time intervals and then the power consumption and
// throughput of each interval are calculated", §2.4).
type Sample struct {
	Start    time.Duration
	Duration time.Duration
	Bytes    units.Bytes
	// Throughput is the window-average data rate.
	Throughput units.Rate
	// EndSystemEnergy is the window's end-system energy (both sites).
	EndSystemEnergy units.Joules
	// NetworkEnergy is the window's load-dependent network-device
	// energy along the path.
	NetworkEnergy units.Joules
	// ActiveChannels is the concurrency in effect during the window.
	ActiveChannels int
}

// Efficiency returns the window's throughput/energy ratio in Mbps per
// joule.
func (s Sample) Efficiency() float64 {
	if s.EndSystemEnergy <= 0 {
		return 0
	}
	return s.Throughput.Mbit() / float64(s.EndSystemEnergy)
}

// EfficiencyScore is the window-based estimator of the *whole-transfer*
// throughput/energy ratio that HTEE maximizes. The full-run ratio is
// thr/E = thr/(P·T) with T = bytes/thr, i.e. ∝ thr²/P; a fixed-length
// window's thr/energy only estimates thr/P and would systematically
// favour lower concurrency. Scoring windows by thr²/energy ranks
// operating points exactly as the final ratio does.
func (s Sample) EfficiencyScore() float64 {
	if s.EndSystemEnergy <= 0 {
		return 0
	}
	mb := s.Throughput.Mbit()
	return mb * mb / float64(s.EndSystemEnergy)
}

// ChunkReport is one chunk's completion record.
type ChunkReport struct {
	Class dataset.Class
	// Files and Bytes describe the chunk's workload.
	Files int
	Bytes units.Bytes
	// CompletedAt is when the chunk's last byte moved, relative to the
	// transfer start.
	CompletedAt time.Duration
	// InitialChannels is the concurrency the chunk started with.
	InitialChannels int
}

// Report summarizes a completed transfer.
type Report struct {
	Algorithm string
	Testbed   string

	Duration   time.Duration
	Bytes      units.Bytes
	Throughput units.Rate

	// Files counts files completed at the destination and Retries
	// counts retry-budget consumptions (failed GETs, re-dial attempts).
	// Filled by the real-TCP executor; simulated runs report per-chunk
	// completion in Chunks instead.
	Files   int64
	Retries int64

	EndSystemEnergy units.Joules
	NetworkEnergy   units.Joules
	AvgPower        units.Watts
	PeakPower       units.Watts

	// EnergyJoules is the energy attributed to this transfer's root span
	// by the tracer (the span-based figure; equals EndSystemEnergy for
	// untraced runs). Filled by the real-TCP executor.
	EnergyJoules float64

	// Samples is the five-second timeline (empty unless requested).
	Samples []Sample
	// Chunks records per-chunk completion (simulated runs).
	Chunks []ChunkReport
}

// Efficiency returns the whole-transfer throughput/energy ratio in
// Mbps per joule.
func (r Report) Efficiency() float64 {
	if r.EndSystemEnergy <= 0 {
		return 0
	}
	return r.Throughput.Mbit() / float64(r.EndSystemEnergy)
}

// TotalEnergy returns end-system plus network energy.
func (r Report) TotalEnergy() units.Joules {
	return r.EndSystemEnergy + r.NetworkEnergy
}

// String formats the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("%s on %s: %v in %v (%v), end-system %v, network %v",
		r.Algorithm, r.Testbed, r.Bytes, r.Duration.Round(time.Millisecond),
		r.Throughput, r.EndSystemEnergy, r.NetworkEnergy)
}

// Executor runs transfer plans.
type Executor interface {
	// Env describes the environment plans will run in.
	Env() Environment
	// Run executes the plan to completion.
	Run(ctx context.Context, plan Plan) (Report, error)
	// Start begins an adaptive transfer the caller steers via the
	// returned Session.
	Start(ctx context.Context, plan Plan) (Session, error)
}

// Session is a running transfer under algorithmic control.
type Session interface {
	// Advance lets the transfer proceed for (up to) d and returns the
	// window's sample. Advancing a finished transfer returns a
	// zero-duration sample.
	Advance(d time.Duration) (Sample, error)
	// SetTotalChannels redistributes a new total concurrency across
	// the unfinished chunks proportionally to their weights.
	SetTotalChannels(n int) error
	// SetAllocation pins an explicit per-chunk channel allocation
	// (indexes match the submitted plan's chunks).
	SetAllocation(channels []int) error
	// Done reports whether all bytes have been moved.
	Done() bool
	// Remaining returns the bytes still to move.
	Remaining() units.Bytes
	// Finish runs the transfer to completion with the current
	// settings and returns the final report.
	Finish() (Report, error)
}
