package transfer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/units"
)

// DefaultTick is the simulation quantum. Rates are recomputed and power
// integrated once per tick; file completions are resolved exactly
// within a tick.
const DefaultTick = 100 * time.Millisecond

// DefaultMaxSimTime aborts runaway simulations.
const DefaultMaxSimTime = 96 * time.Hour

// SampleWindow is the paper's measurement interval: adaptive algorithms
// evaluate each operating point for five seconds (§2.4, §2.5).
const SampleWindow = 5 * time.Second

// Sim is the simulated Executor: it moves a plan's bytes across a
// testbed's analytic network, disk and power models.
type Sim struct {
	TB   testbed.Testbed
	Tick time.Duration
	// MaxSimTime bounds simulated (not wall-clock) time.
	MaxSimTime time.Duration
	// Label names the algorithm in reports.
	Label string
	// Background, when non-nil, returns the fraction of the path's
	// bandwidth consumed by cross traffic at a simulated time — shared
	// research networks are rarely idle, and the adaptive algorithms
	// must cope with capacity that moves under them. Values are
	// clamped to [0, 0.95].
	Background func(at time.Duration) float64
}

// NewSim returns a simulator for tb.
func NewSim(tb testbed.Testbed) *Sim {
	return &Sim{TB: tb, Tick: DefaultTick, MaxSimTime: DefaultMaxSimTime}
}

// Env implements Executor.
func (s *Sim) Env() Environment {
	return Environment{
		Path:           s.TB.Path,
		MaxChannels:    s.TB.BFMaxConcurrency,
		ServersPerSite: s.TB.ServersPerSite,
	}
}

// Run implements Executor.
func (s *Sim) Run(ctx context.Context, plan Plan) (Report, error) {
	sess, err := s.Start(ctx, plan)
	if err != nil {
		return Report{}, err
	}
	return sess.Finish()
}

// Start implements Executor.
func (s *Sim) Start(ctx context.Context, plan Plan) (Session, error) {
	if err := s.TB.Validate(); err != nil {
		return nil, fmt.Errorf("transfer: invalid testbed: %w", err)
	}
	if err := plan.Validate(s.Env()); err != nil {
		return nil, err
	}
	tick := s.Tick
	if tick <= 0 {
		tick = DefaultTick
	}
	maxSim := s.MaxSimTime
	if maxSim <= 0 {
		maxSim = DefaultMaxSimTime
	}
	sess := &simSession{
		ctx:     ctx,
		sim:     s,
		plan:    plan,
		tick:    tick,
		maxSim:  maxSim,
		perByte: chainEnergyPerByte(s),
	}
	for i := range plan.Chunks {
		cp := plan.Chunks[i]
		ch := &simChunk{plan: cp}
		for _, f := range cp.Chunk.Files {
			ch.queue = append(ch.queue, float64(f.Size))
			ch.bytesLeft += float64(f.Size)
		}
		sess.chunks = append(sess.chunks, ch)
		sess.total += cp.Chunk.TotalSize()
	}
	// Sequential mode starts with every channel on the first chunk;
	// concurrent mode honours the per-chunk allocation.
	if plan.Sequential {
		alloc := make([]int, len(plan.Chunks))
		alloc[0] = plan.TotalChannels()
		sess.applyAllocation(alloc)
	} else {
		alloc := make([]int, len(plan.Chunks))
		for i, c := range plan.Chunks {
			alloc[i] = c.Channels
		}
		sess.applyAllocation(alloc)
	}
	return sess, nil
}

// chainEnergyPerByte linearizes the per-packet device model into joules
// per payload byte for cheap per-tick accumulation.
func chainEnergyPerByte(s *Sim) float64 {
	mss := s.TB.Path.MSS
	if mss <= 0 {
		mss = 1500
	}
	var perPacket float64
	for _, d := range s.TB.NetChain {
		perPacket += float64(d.PerPacketEnergy(mss))
	}
	return perPacket / float64(mss)
}

// simChunk is a chunk's live transfer state. Fresh files are consumed
// from queue[head:]; files returned by de-allocated channels are pushed
// onto partials and drained first.
type simChunk struct {
	plan        ChunkPlan
	queue       []float64
	head        int
	partials    []float64
	bytesLeft   float64
	completedAt time.Duration
	completed   bool
}

func (c *simChunk) popFile() (float64, bool) {
	if n := len(c.partials); n > 0 {
		f := c.partials[n-1]
		c.partials = c.partials[:n-1]
		return f, true
	}
	if c.head < len(c.queue) {
		f := c.queue[c.head]
		c.head++
		return f, true
	}
	return 0, false
}

func (c *simChunk) hasQueuedFiles() bool {
	return len(c.partials) > 0 || c.head < len(c.queue)
}

// simChannel is one data channel: a control connection plus
// `parallelism` data streams working on one file at a time.
type simChannel struct {
	chunk     *simChunk
	serverIdx int
	hasFile   bool
	fileLeft  float64
	coldLeft  float64
	gap       time.Duration
	rate      units.Rate // set each tick
}

type simSession struct {
	ctx    context.Context
	sim    *Sim
	plan   Plan
	tick   time.Duration
	maxSim time.Duration

	now      time.Duration
	chunks   []*simChunk
	channels []*simChannel
	nextSrv  int

	total      units.Bytes
	movedF     float64
	meter      power.Meter
	perByte    float64
	netEnergy  units.Joules
	samples    []Sample
	finished   bool
	activeConc int
}

var errSimTimeout = errors.New("transfer: simulation exceeded MaxSimTime (transfer starved?)")

// Done implements Session: every chunk is drained and no channel holds
// an unfinished file. This is exact regardless of floating-point byte
// accounting.
func (s *simSession) Done() bool {
	for _, c := range s.chunks {
		if c.hasQueuedFiles() {
			return false
		}
	}
	for _, ch := range s.channels {
		if ch.hasFile {
			return false
		}
	}
	return true
}

func (s *simSession) remainingF() float64 { return float64(s.total) - s.movedF }

// Remaining implements Session.
func (s *simSession) Remaining() units.Bytes {
	r := s.remainingF()
	if r < 0 {
		return 0
	}
	return units.Bytes(r)
}

// SetTotalChannels implements Session: weight-proportional distribution
// of n channels over the chunks that still have work (Algorithm 2 line
// 12: channelAllocation[i] = ⌊maxChannel · weights[i]⌋, with the
// remainder going to the heaviest chunks so all n channels are used).
func (s *simSession) SetTotalChannels(n int) error {
	if n < 1 {
		return fmt.Errorf("transfer: total channels %d < 1", n)
	}
	if env := s.sim.Env(); env.MaxChannels > 0 && n > env.MaxChannels {
		return fmt.Errorf("transfer: total channels %d exceeds budget %d", n, env.MaxChannels)
	}
	type cw struct {
		idx  int
		frac float64
	}
	var totalWeight float64
	live := make([]int, 0, len(s.chunks))
	for i, c := range s.chunks {
		if s.chunkRemaining(c) {
			live = append(live, i)
			totalWeight += c.plan.Weight
		}
	}
	if len(live) == 0 {
		return nil
	}
	alloc := make([]int, len(s.chunks))
	used := 0
	fracs := make([]cw, 0, len(live))
	for _, i := range live {
		w := s.chunks[i].plan.Weight
		if totalWeight <= 0 {
			w = 1.0 / float64(len(live)) // unweighted plans share equally
		} else {
			w /= totalWeight
		}
		exact := float64(n) * w
		alloc[i] = int(exact)
		used += alloc[i]
		fracs = append(fracs, cw{idx: i, frac: exact - float64(alloc[i])})
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].frac > fracs[b].frac })
	for k := 0; used < n; k++ {
		alloc[fracs[k%len(fracs)].idx]++
		used++
	}
	s.applyAllocation(alloc)
	return nil
}

// SetAllocation implements Session.
func (s *simSession) SetAllocation(channels []int) error {
	if len(channels) != len(s.chunks) {
		return fmt.Errorf("transfer: allocation for %d chunks, plan has %d", len(channels), len(s.chunks))
	}
	total := 0
	for i, n := range channels {
		if n < 0 {
			return fmt.Errorf("transfer: chunk %d allocated %d channels", i, n)
		}
		total += n
	}
	if total == 0 {
		return errors.New("transfer: allocation has no channels")
	}
	if env := s.sim.Env(); env.MaxChannels > 0 && total > env.MaxChannels {
		return fmt.Errorf("transfer: allocation of %d channels exceeds budget %d", total, env.MaxChannels)
	}
	s.applyAllocation(channels)
	return nil
}

// chunkRemaining reports whether the chunk still has queued files or
// in-flight bytes.
func (s *simSession) chunkRemaining(c *simChunk) bool { return c.bytesLeft > 0 }

// applyAllocation reshapes the channel set to match the target per
// chunk. Surplus channels return their in-progress file to the chunk;
// new channels start cold.
func (s *simSession) applyAllocation(target []int) {
	current := make([][]*simChannel, len(s.chunks))
	for _, ch := range s.channels {
		idx := s.chunkIndex(ch.chunk)
		current[idx] = append(current[idx], ch)
	}
	var next []*simChannel
	for i, c := range s.chunks {
		want := target[i]
		have := current[i]
		if want < len(have) {
			for _, ch := range have[want:] {
				if ch.hasFile {
					c.partials = append(c.partials, ch.fileLeft)
					ch.hasFile = false
				}
			}
			have = have[:want]
		}
		for len(have) < want {
			have = append(have, s.newChannel(c))
		}
		next = append(next, have...)
	}
	s.channels = next
}

func (s *simSession) chunkIndex(c *simChunk) int {
	for i := range s.chunks {
		if s.chunks[i] == c {
			return i
		}
	}
	panic("transfer: channel references unknown chunk")
}

func (s *simSession) newChannel(c *simChunk) *simChannel {
	ch := &simChannel{
		chunk:    c,
		coldLeft: float64(s.sim.TB.Path.SlowStartBytes()) * float64(maxInt(1, c.plan.Parallelism())),
	}
	if s.plan.SpreadServers {
		ch.serverIdx = s.nextSrv % maxInt(1, s.sim.Env().ServersPerSite)
		s.nextSrv++
	}
	return ch
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Advance implements Session.
func (s *simSession) Advance(d time.Duration) (Sample, error) {
	if d <= 0 {
		return Sample{}, fmt.Errorf("transfer: non-positive advance %v", d)
	}
	start := s.now
	startBytes := s.movedF
	startEnergy := s.meter.Total()
	startNet := s.netEnergy
	var elapsed time.Duration
	for elapsed < d && !s.Done() {
		if err := s.ctxErr(); err != nil {
			return Sample{}, err
		}
		if s.now > s.maxSim {
			return Sample{}, errSimTimeout
		}
		step := s.tick
		if rem := d - elapsed; rem < step {
			step = rem
		}
		s.step(step)
		elapsed += step
	}
	sample := Sample{
		Start:           start,
		Duration:        elapsed,
		Bytes:           units.Bytes(s.movedF - startBytes),
		EndSystemEnergy: s.meter.Total() - startEnergy,
		NetworkEnergy:   s.netEnergy - startNet,
		ActiveChannels:  s.activeConc,
	}
	sample.Throughput = units.RateOf(sample.Bytes, sample.Duration)
	s.samples = append(s.samples, sample)
	return sample, nil
}

func (s *simSession) ctxErr() error {
	if s.ctx == nil {
		return nil
	}
	return s.ctx.Err()
}

// Finish implements Session.
func (s *simSession) Finish() (Report, error) {
	for !s.Done() {
		if _, err := s.Advance(SampleWindow); err != nil {
			return Report{}, err
		}
	}
	s.finished = true
	r := Report{
		Algorithm:       s.sim.Label,
		Testbed:         s.sim.TB.Name,
		Duration:        s.now,
		Bytes:           units.Bytes(s.movedF + 0.5),
		Throughput:      units.RateOf(units.Bytes(s.movedF), s.now),
		EndSystemEnergy: s.meter.Total(),
		NetworkEnergy:   s.netEnergy,
		AvgPower:        s.meter.Average(),
		PeakPower:       s.meter.Peak(),
		Samples:         s.samples,
	}
	for _, c := range s.chunks {
		completedAt := c.completedAt
		if !c.completed {
			completedAt = s.now
		}
		r.Chunks = append(r.Chunks, ChunkReport{
			Class:           c.plan.Chunk.Class,
			Files:           c.plan.Chunk.Count(),
			Bytes:           c.plan.Chunk.TotalSize(),
			CompletedAt:     completedAt,
			InitialChannels: c.plan.Channels,
		})
	}
	return r, nil
}

// step advances the simulation by dt: assigns files, computes rates,
// moves bytes, reallocates drained channels, and integrates power.
func (s *simSession) step(dt time.Duration) {
	s.assignFiles()

	// Rates for this tick. Bandwidth is shared among the streams that
	// are actually transferring; channels sitting in a per-file gap do
	// not reserve link share (their streams are idle), but they still
	// get a provisional rate so a file picked up mid-tick proceeds
	// immediately — otherwise gap differences smaller than the tick
	// would be quantized away and pipelining would appear useless.
	totalStreams := 0
	for _, ch := range s.channels {
		if ch.hasFile {
			totalStreams += ch.chunk.plan.Parallelism()
		}
	}
	if totalStreams == 0 {
		for _, ch := range s.channels {
			if s.channelLive(ch) {
				totalStreams += ch.chunk.plan.Parallelism()
			}
		}
	}
	path := s.sim.TB.Path
	if bg := s.sim.Background; bg != nil {
		frac := units.ClampF(bg(s.now), 0, 0.95)
		path.Bandwidth = units.Rate(float64(path.Bandwidth) * (1 - frac))
	}
	var perStream float64
	if totalStreams > 0 {
		perStream = float64(path.AggregateRate(totalStreams)) / float64(totalStreams)
	}
	srcAcc, dstAcc := s.accessorCounts()
	for _, ch := range s.channels {
		if !s.channelLive(ch) {
			ch.rate = 0
			continue
		}
		rate := perStream * float64(ch.chunk.plan.Parallelism())
		if r := s.diskShare(s.sim.TB.Source, srcAcc[ch.serverIdx]); r < rate {
			rate = r
		}
		if r := s.diskShare(s.sim.TB.Dest, dstAcc[ch.serverIdx]); r < rate {
			rate = r
		}
		if ch.coldLeft > 0 {
			rate *= 0.5
		}
		ch.rate = units.Rate(rate)
	}

	// Move bytes; a channel may finish several small files in one tick.
	for _, ch := range s.channels {
		s.advanceChannel(ch, dt)
	}

	// Count live channels (for the sample's concurrency) and integrate
	// power.
	s.integratePower(dt)
	s.now += dt
}

// assignFiles hands queued files to idle channels and reallocates
// channels whose chunk has drained.
func (s *simSession) assignFiles() {
	for _, ch := range s.channels {
		if ch.hasFile || ch.gap > 0 {
			continue
		}
		if f, ok := ch.chunk.popFile(); ok {
			ch.hasFile = true
			ch.fileLeft = f
			continue
		}
		// Chunk drained: move the channel elsewhere if policy allows.
		if next := s.nextChunkFor(ch); next != nil {
			ch.chunk = next
			if f, ok := next.popFile(); ok {
				ch.hasFile = true
				ch.fileLeft = f
			}
		}
	}
}

// nextChunkFor picks the chunk a drained channel should move to, or nil
// to retire the channel.
func (s *simSession) nextChunkFor(ch *simChannel) *simChunk {
	if s.plan.Sequential {
		// Chunks run in plan order; help the next one with work.
		for _, c := range s.chunks {
			if c != ch.chunk && c.hasQueuedFiles() {
				return c
			}
		}
		return nil
	}
	if !s.plan.ReallocOnComplete {
		return nil
	}
	var best *simChunk
	for _, c := range s.chunks {
		if c == ch.chunk || !c.plan.AcceptRealloc || !c.hasQueuedFiles() {
			continue
		}
		if best == nil || c.bytesLeft > best.bytesLeft {
			best = c
		}
	}
	return best
}

// channelLive reports whether a channel is still part of the transfer
// (holding a file, paying a per-file gap, or with work left in its
// chunk) as opposed to retired.
func (s *simSession) channelLive(ch *simChannel) bool {
	return ch.hasFile || ch.gap > 0 || ch.chunk.hasQueuedFiles()
}

// accessorCounts returns, per site server, how many channels are
// actively reading (source) / writing (destination) a file.
func (s *simSession) accessorCounts() (src, dst map[int]int) {
	src = make(map[int]int)
	dst = make(map[int]int)
	for _, ch := range s.channels {
		if s.channelLive(ch) {
			src[ch.serverIdx]++
			dst[ch.serverIdx]++
		}
	}
	return src, dst
}

// diskShare returns the per-channel disk throughput on a server with n
// concurrent accessors.
func (s *simSession) diskShare(server endsys.Server, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(server.Disk.AggregateRate(n)) / float64(n)
}

// advanceChannel walks a channel through dt of simulated time.
func (s *simSession) advanceChannel(ch *simChannel, dt time.Duration) {
	t := dt.Seconds()
	for t > 1e-12 {
		if ch.gap > 0 {
			g := ch.gap.Seconds()
			if g > t {
				ch.gap -= time.Duration(t * float64(time.Second))
				return
			}
			t -= g
			ch.gap = 0
			// The channel idled at a chunk boundary; it may pick up a
			// file now.
			if !ch.hasFile {
				if f, ok := ch.chunk.popFile(); ok {
					ch.hasFile = true
					ch.fileLeft = f
				} else if next := s.nextChunkFor(ch); next != nil {
					ch.chunk = next
					if f, ok := next.popFile(); ok {
						ch.hasFile = true
						ch.fileLeft = f
					}
				}
			}
			continue
		}
		if !ch.hasFile || ch.rate <= 0 {
			return
		}
		bytesBudget := float64(ch.rate) / 8 * t
		if bytesBudget >= ch.fileLeft {
			// Finish the file and pay the per-file gap (control-channel
			// RTT amortized by pipelining, plus un-hideable per-file
			// service overhead).
			t -= ch.fileLeft / (float64(ch.rate) / 8)
			s.consume(ch, ch.fileLeft)
			ch.fileLeft = 0
			ch.hasFile = false
			q := ch.chunk.plan.Pipelining()
			ch.gap = s.sim.TB.Path.PerFileIdle(q) + s.sim.TB.PerFileOverhead
			continue
		}
		s.consume(ch, bytesBudget)
		ch.fileLeft -= bytesBudget
		return
	}
}

// consume books moved bytes against the channel's chunk and warms the
// connection.
func (s *simSession) consume(ch *simChannel, bytes float64) {
	s.movedF += bytes
	s.netEnergy += units.Joules(bytes * s.perByte)
	ch.chunk.bytesLeft -= bytes
	if ch.chunk.bytesLeft <= 0.5 {
		ch.chunk.bytesLeft = 0
		if !ch.chunk.completed {
			ch.chunk.completed = true
			ch.chunk.completedAt = s.now
		}
	}
	if ch.coldLeft > 0 {
		ch.coldLeft -= bytes
	}
}

// integratePower books both sites' server power for dt.
func (s *simSession) integratePower(dt time.Duration) {
	type srvLoad struct {
		rate    float64
		procs   int
		streams int
	}
	loads := make(map[int]*srvLoad)
	live := 0
	for _, ch := range s.channels {
		if !s.channelLive(ch) {
			continue // retired channel
		}
		live++
		l := loads[ch.serverIdx]
		if l == nil {
			l = &srvLoad{}
			loads[ch.serverIdx] = l
		}
		l.procs++
		l.streams += ch.chunk.plan.Parallelism()
		if ch.hasFile {
			l.rate += float64(ch.rate)
		}
	}
	s.activeConc = live
	// A hosted service that spreads channels (Globus Online) keeps the
	// site's whole transfer-server pool engaged for the duration: every
	// pool server pays its base activity floor even when it currently
	// holds no channel. This is the mechanism behind GO's multi-server
	// energy premium (§3).
	if s.plan.SpreadServers && live > 0 {
		for idx := 0; idx < s.sim.Env().ServersPerSite; idx++ {
			if loads[idx] == nil {
				loads[idx] = &srvLoad{}
			}
		}
	}
	// Sum in server-index order: float addition is not associative, so
	// iterating the map directly would make the energy totals differ in
	// the last ulp from run to run (and break the determinism contract
	// of the parallel experiment engine, DESIGN.md §6).
	idxs := make([]int, 0, len(loads))
	for idx := range loads {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var total units.Watts
	for _, idx := range idxs {
		l := loads[idx]
		for _, server := range []endsys.Server{s.sim.TB.Source, s.sim.TB.Dest} {
			var u endsys.Utilization
			if l.procs == 0 && l.rate == 0 {
				u = endsys.Utilization{CPU: server.CPUBaseActive}.Clamp()
			} else {
				u = server.UtilizationFor(endsys.Load{
					Throughput: units.Rate(l.rate),
					Processes:  l.procs,
					Streams:    l.streams,
				})
			}
			total += s.sim.TB.Power.Power(u, l.procs)
		}
	}
	s.meter.Add(total, dt)
}

var _ Executor = (*Sim)(nil)
var _ Session = (*simSession)(nil)
