package transfer

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/units"
)

// smallPlan builds a one-chunk plan of n uniform files.
func smallPlan(n int, size units.Bytes, channels, par, pipe int) Plan {
	d := dataset.NewGenerator(1).Uniform(n, size)
	chunk := dataset.Chunk{Class: dataset.Large, Files: d.Files, Parallelism: par, Pipelining: pipe}
	return Plan{Chunks: []ChunkPlan{{Chunk: chunk, Channels: channels, Weight: 1, AcceptRealloc: true}}}
}

func TestSimMovesAllBytes(t *testing.T) {
	sim := NewSim(testbed.DIDCLAB())
	plan := smallPlan(10, 50*units.MB, 2, 1, 4)
	r, err := sim.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.TotalBytes()
	if diff := math.Abs(float64(r.Bytes - want)); diff > 10 {
		t.Errorf("moved %v, want %v (diff %v bytes)", r.Bytes, want, diff)
	}
	if r.Duration <= 0 || r.Throughput <= 0 {
		t.Errorf("degenerate report: %+v", r)
	}
	if r.EndSystemEnergy <= 0 || r.NetworkEnergy <= 0 {
		t.Errorf("no energy accounted: %+v", r)
	}
}

func TestSimThroughputBounded(t *testing.T) {
	tb := testbed.XSEDE()
	sim := NewSim(tb)
	r, err := sim.Run(context.Background(), smallPlan(4, 2*units.GB, 4, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput > tb.Path.Bandwidth {
		t.Errorf("throughput %v exceeds link %v", r.Throughput, tb.Path.Bandwidth)
	}
}

func TestSimMoreStreamsFasterOnWAN(t *testing.T) {
	sim := NewSim(testbed.XSEDE())
	one, err := sim.Run(context.Background(), smallPlan(8, 4*units.GB, 1, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := sim.Run(context.Background(), smallPlan(8, 4*units.GB, 8, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if eight.Throughput < 3*one.Throughput {
		t.Errorf("parallel channels barely helped: 1ch=%v 8ch=%v", one.Throughput, eight.Throughput)
	}
}

func TestSimConcurrencyHurtsOnLAN(t *testing.T) {
	// DIDCLAB's single disk must make 12 channels slower than 1 (Fig. 4a).
	sim := NewSim(testbed.DIDCLAB())
	one, err := sim.Run(context.Background(), smallPlan(12, 500*units.MB, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	many, err := sim.Run(context.Background(), smallPlan(12, 500*units.MB, 12, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if many.Throughput >= one.Throughput {
		t.Errorf("LAN concurrency didn't hurt: 1ch=%v 12ch=%v", one.Throughput, many.Throughput)
	}
}

func TestSimPipeliningHelpsSmallFiles(t *testing.T) {
	mk := func(pipe int) Plan {
		d := dataset.NewGenerator(2).Uniform(400, 5*units.MB)
		chunk := dataset.Chunk{Class: dataset.Small, Files: d.Files, Parallelism: 1, Pipelining: pipe}
		return Plan{Chunks: []ChunkPlan{{Chunk: chunk, Channels: 2, Weight: 1}}}
	}
	sim := NewSim(testbed.XSEDE())
	slow, err := sim.Run(context.Background(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sim.Run(context.Background(), mk(10))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Throughput <= slow.Throughput {
		t.Errorf("pipelining did not help: q=1 %v vs q=10 %v", slow.Throughput, fast.Throughput)
	}
}

func TestSimSequentialVsConcurrent(t *testing.T) {
	// A dataset with a slow small chunk: transferring chunks
	// simultaneously (ProMC style) must beat one-at-a-time (SC style).
	g := dataset.NewGenerator(3)
	small := dataset.Chunk{Class: dataset.Small, Files: g.ManySmall(600, 3*units.MB, 8*units.MB).Files, Parallelism: 1, Pipelining: 8}
	large := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(24, 1*units.GB).Files, Parallelism: 2, Pipelining: 1}
	mk := func(sequential bool) Plan {
		return Plan{
			Chunks: []ChunkPlan{
				{Chunk: small, Channels: 3, Weight: 2, AcceptRealloc: true},
				{Chunk: large, Channels: 3, Weight: 1, AcceptRealloc: true},
			},
			Sequential:        sequential,
			ReallocOnComplete: true,
		}
	}
	sim := NewSim(testbed.XSEDE())
	seq, err := sim.Run(context.Background(), mk(true))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sim.Run(context.Background(), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if conc.Duration >= seq.Duration {
		t.Errorf("multi-chunk not faster: sequential %v vs concurrent %v", seq.Duration, conc.Duration)
	}
}

func TestSimSpreadServersCostsEnergy(t *testing.T) {
	// Spreading 2 channels over 2 servers (GO) must cost more energy
	// than packing them on one server (custom client), at similar
	// throughput — the §3 explanation of GO's 60% penalty.
	mk := func(spread bool) Plan {
		p := smallPlan(8, 2*units.GB, 2, 2, 4)
		p.SpreadServers = spread
		return p
	}
	sim := NewSim(testbed.XSEDE())
	packed, err := sim.Run(context.Background(), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	spread, err := sim.Run(context.Background(), mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if spread.EndSystemEnergy <= packed.EndSystemEnergy {
		t.Errorf("spreading channels did not cost energy: packed %v spread %v",
			packed.EndSystemEnergy, spread.EndSystemEnergy)
	}
	if relDiff(float64(spread.Throughput), float64(packed.Throughput)) > 0.25 {
		t.Errorf("throughput should be similar: packed %v spread %v",
			packed.Throughput, spread.Throughput)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return math.Abs(a-b) / b
}

func TestSimAdaptiveConcurrencyChange(t *testing.T) {
	sim := NewSim(testbed.FutureGrid())
	plan := smallPlan(40, 500*units.MB, 1, 1, 2)
	sess, err := sim.Start(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sess.Advance(SampleWindow)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetTotalChannels(6); err != nil {
		t.Fatal(err)
	}
	s2, err := sess.Advance(SampleWindow)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Throughput <= s1.Throughput {
		t.Errorf("raising concurrency on WAN didn't help: %v then %v", s1.Throughput, s2.Throughput)
	}
	if s2.ActiveChannels != 6 {
		t.Errorf("active channels = %d, want 6", s2.ActiveChannels)
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(float64(r.Bytes - plan.TotalBytes())); diff > 10 {
		t.Errorf("bytes lost in adaptive run: moved %v want %v", r.Bytes, plan.TotalBytes())
	}
}

func TestSimSetAllocationExplicit(t *testing.T) {
	g := dataset.NewGenerator(5)
	a := dataset.Chunk{Class: dataset.Small, Files: g.Uniform(30, 30*units.MB).Files, Parallelism: 1, Pipelining: 4}
	b := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(4, 2*units.GB).Files, Parallelism: 2, Pipelining: 1}
	plan := Plan{Chunks: []ChunkPlan{
		{Chunk: a, Channels: 1, Weight: 1, AcceptRealloc: true},
		{Chunk: b, Channels: 1, Weight: 1, AcceptRealloc: true},
	}}
	sim := NewSim(testbed.XSEDE())
	sess, err := sim.Start(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetAllocation([]int{3, 2}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetAllocation([]int{1}); err == nil {
		t.Error("wrong-length allocation accepted")
	}
	if err := sess.SetAllocation([]int{0, 0}); err == nil {
		t.Error("empty allocation accepted")
	}
	if err := sess.SetAllocation([]int{-1, 2}); err == nil {
		t.Error("negative allocation accepted")
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSimPlanValidation(t *testing.T) {
	sim := NewSim(testbed.XSEDE())
	ctx := context.Background()
	if _, err := sim.Run(ctx, Plan{}); err == nil {
		t.Error("empty plan accepted")
	}
	empty := Plan{Chunks: []ChunkPlan{{Chunk: dataset.Chunk{}, Channels: 1}}}
	if _, err := sim.Run(ctx, empty); err == nil {
		t.Error("plan with empty chunk accepted")
	}
	noChan := smallPlan(2, units.MB, 0, 1, 1)
	if _, err := sim.Run(ctx, noChan); err == nil {
		t.Error("plan with zero channels accepted")
	}
	over := smallPlan(2, units.MB, 100, 1, 1)
	if _, err := sim.Run(ctx, over); err == nil {
		t.Error("plan exceeding channel budget accepted")
	}
}

func TestSimContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim := NewSim(testbed.XSEDE())
	sess, err := sim.Start(ctx, smallPlan(4, units.GB, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(time.Second); err == nil {
		t.Error("cancelled context not honoured")
	}
}

func TestSimEnergyConservation(t *testing.T) {
	// Sum of sample energies must equal the report totals.
	sim := NewSim(testbed.FutureGrid())
	plan := smallPlan(20, 200*units.MB, 4, 1, 2)
	r, err := sim.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	var sumE, sumN units.Joules
	var sumB units.Bytes
	for _, s := range r.Samples {
		sumE += s.EndSystemEnergy
		sumN += s.NetworkEnergy
		sumB += s.Bytes
	}
	if relDiff(float64(sumE), float64(r.EndSystemEnergy)) > 1e-9 {
		t.Errorf("sample energy %v != total %v", sumE, r.EndSystemEnergy)
	}
	if relDiff(float64(sumN), float64(r.NetworkEnergy)) > 1e-9 {
		t.Errorf("sample net energy %v != total %v", sumN, r.NetworkEnergy)
	}
	if math.Abs(float64(sumB-r.Bytes)) > 10 {
		t.Errorf("sample bytes %v != total %v", sumB, r.Bytes)
	}
}

func TestSimAdvanceErrors(t *testing.T) {
	sim := NewSim(testbed.DIDCLAB())
	sess, err := sim.Start(context.Background(), smallPlan(1, units.MB, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(0); err == nil {
		t.Error("zero advance accepted")
	}
	if _, err := sess.Advance(-time.Second); err == nil {
		t.Error("negative advance accepted")
	}
	if err := sess.SetTotalChannels(0); err == nil {
		t.Error("zero total channels accepted")
	}
	if err := sess.SetTotalChannels(10000); err == nil {
		t.Error("over-budget total channels accepted")
	}
}

func TestSimAdvancePastCompletion(t *testing.T) {
	sim := NewSim(testbed.DIDCLAB())
	sess, err := sim.Start(context.Background(), smallPlan(1, units.MB, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if _, err := sess.Advance(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sess.Advance(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration != 0 || s.Bytes != 0 {
		t.Errorf("advancing a finished transfer moved things: %+v", s)
	}
	if sess.Remaining() != 0 {
		t.Errorf("remaining = %v after completion", sess.Remaining())
	}
}

func TestSimReallocMovesChannelsToLargeChunk(t *testing.T) {
	// With realloc on, channels that finish the small chunk join the
	// large chunk and shorten the run versus realloc off.
	g := dataset.NewGenerator(7)
	small := dataset.Chunk{Class: dataset.Small, Files: g.Uniform(20, 20*units.MB).Files, Parallelism: 1, Pipelining: 6}
	large := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(8, 2*units.GB).Files, Parallelism: 2, Pipelining: 1}
	mk := func(realloc, acceptLarge bool) Plan {
		return Plan{
			Chunks: []ChunkPlan{
				{Chunk: small, Channels: 5, Weight: 1, AcceptRealloc: true},
				{Chunk: large, Channels: 1, Weight: 1, AcceptRealloc: acceptLarge},
			},
			ReallocOnComplete: realloc,
		}
	}
	sim := NewSim(testbed.XSEDE())
	with, err := sim.Run(context.Background(), mk(true, true))
	if err != nil {
		t.Fatal(err)
	}
	without, err := sim.Run(context.Background(), mk(false, true))
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := sim.Run(context.Background(), mk(true, false))
	if err != nil {
		t.Fatal(err)
	}
	if with.Duration >= without.Duration {
		t.Errorf("realloc did not shorten run: with %v without %v", with.Duration, without.Duration)
	}
	// MinE-style pinning: the Large chunk keeps one channel, so the run
	// is as slow as no realloc at all.
	if relDiff(float64(pinned.Duration), float64(without.Duration)) > 0.05 {
		t.Errorf("pinned large chunk should match no-realloc duration: %v vs %v",
			pinned.Duration, without.Duration)
	}
}

func TestSimReportString(t *testing.T) {
	sim := NewSim(testbed.DIDCLAB())
	sim.Label = "test"
	r, err := sim.Run(context.Background(), smallPlan(2, 10*units.MB, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(); s == "" || r.Algorithm != "test" || r.Testbed != "DIDCLAB" {
		t.Errorf("report naming wrong: %q %+v", s, r)
	}
}

func TestSimChunkReports(t *testing.T) {
	g := dataset.NewGenerator(13)
	small := dataset.Chunk{Class: dataset.Small, Files: g.Uniform(30, 20*units.MB).Files, Parallelism: 1, Pipelining: 4}
	large := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(4, 3*units.GB).Files, Parallelism: 2, Pipelining: 1}
	plan := Plan{
		Chunks: []ChunkPlan{
			{Chunk: small, Channels: 3, Weight: 1, AcceptRealloc: true},
			{Chunk: large, Channels: 1, Weight: 1},
		},
		ReallocOnComplete: true,
	}
	r, err := NewSim(testbed.XSEDE()).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Chunks) != 2 {
		t.Fatalf("got %d chunk reports", len(r.Chunks))
	}
	sm, lg := r.Chunks[0], r.Chunks[1]
	if sm.Class != dataset.Small || lg.Class != dataset.Large {
		t.Fatalf("chunk order wrong: %+v", r.Chunks)
	}
	if sm.Files != 30 || lg.Files != 4 {
		t.Errorf("chunk file counts wrong: %+v", r.Chunks)
	}
	// The small chunk (600 MB on 3 channels) completes well before the
	// large chunk (12 GB on 1 channel).
	if sm.CompletedAt >= lg.CompletedAt {
		t.Errorf("small chunk finished at %v, large at %v", sm.CompletedAt, lg.CompletedAt)
	}
	// The last chunk completes when the transfer does (within a tick).
	if diff := r.Duration - lg.CompletedAt; diff < 0 || diff > time.Second {
		t.Errorf("large completion %v vs duration %v", lg.CompletedAt, r.Duration)
	}
	if sm.InitialChannels != 3 || lg.InitialChannels != 1 {
		t.Errorf("initial channels wrong: %+v", r.Chunks)
	}
}

func TestSimWeightedRedistributionSkipsDrainedChunks(t *testing.T) {
	// After the small chunk drains, SetTotalChannels must hand all
	// channels to the surviving chunk regardless of weights.
	g := dataset.NewGenerator(17)
	small := dataset.Chunk{Class: dataset.Small, Files: g.Uniform(2, 5*units.MB).Files, Parallelism: 1, Pipelining: 2}
	large := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(24, 1*units.GB).Files, Parallelism: 2, Pipelining: 1}
	plan := Plan{
		Chunks: []ChunkPlan{
			{Chunk: small, Channels: 1, Weight: 5, AcceptRealloc: true},
			{Chunk: large, Channels: 1, Weight: 1, AcceptRealloc: true},
		},
		ReallocOnComplete: true,
	}
	sess, err := NewSim(testbed.XSEDE()).Start(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// 10 MB of small files drain within seconds of sim time; the 24 GB
	// large chunk keeps running.
	if _, err := sess.Advance(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetTotalChannels(6); err != nil {
		t.Fatal(err)
	}
	s, err := sess.Advance(SampleWindow)
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveChannels != 6 {
		t.Errorf("active channels = %d, want all 6 on the surviving chunk", s.ActiveChannels)
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSimBackgroundClamped(t *testing.T) {
	// A pathological background schedule (≥100%) must not stall the
	// transfer: the clamp leaves 5% of the link.
	sim := NewSim(testbed.DIDCLAB())
	sim.Background = func(time.Duration) float64 { return 5.0 }
	r, err := sim.Run(context.Background(), smallPlan(2, 10*units.MB, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Error("transfer stalled under clamped background traffic")
	}
}

func TestSimGOStyleSpreadUsesAllPoolServers(t *testing.T) {
	// With SpreadServers and 4 channels on a 4-server site, every
	// channel lands on a distinct server — observable through the extra
	// energy versus packing (monotone in spread width).
	tb := testbed.XSEDE()
	mk := func(spread bool, channels int) Plan {
		p := smallPlan(8, 1*units.GB, channels, 1, 1)
		p.SpreadServers = spread
		return p
	}
	sim := NewSim(tb)
	packed2, _ := sim.Run(context.Background(), mk(false, 2))
	spread2, err := sim.Run(context.Background(), mk(true, 2))
	if err != nil {
		t.Fatal(err)
	}
	spread4, err := sim.Run(context.Background(), mk(true, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !(packed2.EndSystemEnergy < spread2.EndSystemEnergy) {
		t.Errorf("spread(2) should cost more than packed(2): %v vs %v",
			spread2.EndSystemEnergy, packed2.EndSystemEnergy)
	}
	if spread4.Throughput <= spread2.Throughput {
		t.Errorf("4 spread channels should outrun 2: %v vs %v",
			spread4.Throughput, spread2.Throughput)
	}
}
