// Package testbed encodes the three evaluation environments of the
// paper's §3 (Fig. 1 specifications, Fig. 9 network maps):
//
//   - XSEDE: Stampede (TACC) ↔ Gordon (SDSC), 10 Gbps, 40 ms RTT,
//     32 MB max TCP buffer, four 4-core data-transfer servers per site
//     backed by a parallel filesystem,
//   - FutureGrid: Alamo (TACC) ↔ Hotel (UChicago), 1 Gbps, 28 ms RTT,
//     32 MB max TCP buffer,
//   - DIDCLAB: WS9 ↔ WS6, 1 Gbps LAN, single-disk workstations.
//
// Every simulator constant lives here so that the calibration of the
// reproduction against the paper's figures is inspectable in one place.
package testbed

import (
	"fmt"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/netpower"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/units"
)

// Testbed is one complete evaluation environment.
type Testbed struct {
	Name string
	// Path is the end-to-end network model between the sites.
	Path netem.Path
	// Source and Dest describe one data-transfer server at each site
	// (all servers of a site are identical).
	Source, Dest endsys.Server
	// ServersPerSite is how many data-transfer servers each site runs;
	// Globus Online spreads channels across them (§3: "XSEDE systems
	// consist of four data transfer servers").
	ServersPerSite int
	// Power is the fine-grained end-system power model with this
	// testbed's fitted coefficients.
	Power power.FineGrained
	// NetChain is the device path of Fig. 9 between the end-systems.
	NetChain netpower.Chain
	// PerFileOverhead is the per-file service time a channel pays that
	// pipelining cannot hide (file open/close, metadata on the striped
	// filesystem). It is what keeps many-small-file throughput below
	// stream capacity even at deep pipelining.
	PerFileOverhead time.Duration
	// MaxConcurrency is the evaluation sweep bound (12 in Figs. 2–4).
	MaxConcurrency int
	// BFMaxConcurrency bounds the brute-force search (20 in Fig. 2c).
	BFMaxConcurrency int
	// SLARefConcurrency is the ProMC concurrency whose throughput
	// defines "maximum throughput" for the SLA experiments (§3: levels
	// 12, 12 and 1 for XSEDE, FutureGrid and DIDCLAB).
	SLARefConcurrency int
	// DatasetSize and file envelope for this testbed's workload (§3).
	DatasetSize      units.Bytes
	MinFile, MaxFile units.Bytes
	ClassShares      [3]float64 // byte share generated per size class
}

// Dataset generates this testbed's evaluation workload. The paper's
// datasets mix file sizes such that every chunk class carries real byte
// mass (otherwise multi-chunk scheduling would be pointless); we
// generate the stated envelope with fixed byte shares per class.
func (tb Testbed) Dataset(seed int64) dataset.Dataset {
	g := dataset.NewGenerator(seed)
	bdp := tb.Path.BDP()
	type span struct {
		lo, hi units.Bytes
		share  float64
	}
	spans := []span{
		{tb.MinFile, dataset.MediumFactor * bdp, tb.ClassShares[0]},
		{dataset.MediumFactor * bdp, dataset.LargeFactor * bdp, tb.ClassShares[1]},
		{dataset.LargeFactor * bdp, tb.MaxFile, tb.ClassShares[2]},
	}
	// Clip spans to the file envelope; shares of empty spans roll into
	// the remaining ones so the dataset always totals DatasetSize (on a
	// LAN the BDP is tiny and every file lands in one class).
	var valid []span
	var validShare float64
	for _, sp := range spans {
		if sp.lo < tb.MinFile {
			sp.lo = tb.MinFile
		}
		if sp.hi > tb.MaxFile {
			sp.hi = tb.MaxFile
		}
		if sp.share > 0 && sp.lo < sp.hi {
			valid = append(valid, sp)
			validShare += sp.share
		}
	}
	var files []dataset.File
	for i, sp := range valid {
		sub := g.Mixed(units.Bytes(float64(tb.DatasetSize)*sp.share/validShare), sp.lo, sp.hi)
		for j := range sub.Files {
			sub.Files[j].Name = fmt.Sprintf("span%d/%s", i, sub.Files[j].Name)
		}
		files = append(files, sub.Files...)
	}
	return dataset.Dataset{Files: files}
}

// XSEDE returns the Stampede↔Gordon environment.
func XSEDE() Testbed {
	server := func(name string) endsys.Server {
		return endsys.Server{
			Name:    name,
			Cores:   4,
			TDP:     115,
			NICRate: 10 * units.Gbps,
			Disk: endsys.Disk{
				Kind:    endsys.ParallelArray,
				Rate:    3 * units.Gbps,
				Stripes: 4,
			},
			CPUPerGbps:    3,
			CPUPerStream:  0.8,
			CPUBaseActive: 6,
			MemPerGbps:    2,
		}
	}
	side := []netpower.Device{
		{Class: netpower.EdgeSwitch},
		{Class: netpower.EnterpriseSwitch},
		{Class: netpower.EdgeRouter},
	}
	chain := netpower.Chain{}
	chain = append(chain, side...)
	chain = append(chain, netpower.Device{Class: netpower.MetroRouter, Name: "internet2-a"},
		netpower.Device{Class: netpower.MetroRouter, Name: "internet2-b"})
	chain = append(chain, side...)
	return Testbed{
		Name: "XSEDE",
		Path: netem.Path{
			Bandwidth:       10 * units.Gbps,
			RTT:             40 * time.Millisecond,
			MaxTCPBuffer:    32 * units.MB,
			EffStreamBuffer: 4500 * units.KB,
			CongestionCoeff: 0.011,
		},
		Source:         server("stampede-dtn"),
		Dest:           server("gordon-dtn"),
		ServersPerSite: 4,
		Power: power.FineGrained{Coeff: power.Coefficients{
			CPU: power.PaperCPUQuad, Mem: 0.11, Disk: 0.08, NIC: 0.3,
		}},
		NetChain:          chain,
		PerFileOverhead:   250 * time.Millisecond,
		MaxConcurrency:    12,
		BFMaxConcurrency:  20,
		SLARefConcurrency: 12,
		DatasetSize:       160 * units.GB,
		MinFile:           3 * units.MB,
		MaxFile:           20 * units.GB,
		ClassShares:       [3]float64{0.25, 0.35, 0.40},
	}
}

// FutureGrid returns the Alamo↔Hotel environment.
func FutureGrid() Testbed {
	server := func(name string) endsys.Server {
		return endsys.Server{
			Name:    name,
			Cores:   8,
			TDP:     80,
			NICRate: 1 * units.Gbps,
			Disk: endsys.Disk{
				Kind:    endsys.ParallelArray,
				Rate:    800 * units.Mbps,
				Stripes: 2,
			},
			CPUPerGbps:    8,
			CPUPerStream:  0.35,
			CPUBaseActive: 1.2,
			MemPerGbps:    6,
		}
	}
	return Testbed{
		Name: "FutureGrid",
		Path: netem.Path{
			Bandwidth:       1 * units.Gbps,
			RTT:             28 * time.Millisecond,
			MaxTCPBuffer:    32 * units.MB,
			EffStreamBuffer: 512 * units.KB,
			CongestionCoeff: 0.008,
		},
		Source:         server("alamo-dtn"),
		Dest:           server("hotel-dtn"),
		ServersPerSite: 1,
		Power: power.FineGrained{Coeff: power.Coefficients{
			CPU: power.CPUQuad{0.011 * 0.3, -0.082 * 0.3, 0.344 * 0.3},
			Mem: 0.015, Disk: 0.01, NIC: 0.012,
		}},
		NetChain: netpower.Chain{
			{Class: netpower.EdgeSwitch},
			{Class: netpower.MetroRouter},
			{Class: netpower.MetroRouter, Name: "internet2"},
			{Class: netpower.EdgeSwitch},
		},
		PerFileOverhead:   100 * time.Millisecond,
		MaxConcurrency:    12,
		BFMaxConcurrency:  20,
		SLARefConcurrency: 12,
		DatasetSize:       40 * units.GB,
		MinFile:           3 * units.MB,
		MaxFile:           5 * units.GB,
		ClassShares:       [3]float64{0.35, 0.45, 0.20},
	}
}

// DIDCLAB returns the WS9↔WS6 LAN environment.
func DIDCLAB() Testbed {
	server := func(name string) endsys.Server {
		return endsys.Server{
			Name:    name,
			Cores:   4,
			TDP:     84,
			NICRate: 1 * units.Gbps,
			Disk: endsys.Disk{
				Kind:            endsys.SingleDisk,
				Rate:            620 * units.Mbps,
				ContentionAlpha: 0.15,
			},
			CPUPerGbps:    10,
			CPUPerStream:  0.15,
			CPUBaseActive: 2,
			MemPerGbps:    8,
		}
	}
	return Testbed{
		Name: "DIDCLAB",
		Path: netem.Path{
			Bandwidth:       1 * units.Gbps,
			RTT:             400 * time.Microsecond,
			MaxTCPBuffer:    32 * units.MB,
			EffStreamBuffer: 1 * units.MB,
			CongestionCoeff: 0.005,
		},
		Source:         server("ws9"),
		Dest:           server("ws6"),
		ServersPerSite: 1,
		Power: power.FineGrained{Coeff: power.Coefficients{
			CPU: power.CPUQuad{0.011 * 0.15, -0.082 * 0.15, 0.344 * 0.15},
			Mem: 0.013, Disk: 0.016, NIC: 0.013,
		}},
		NetChain: netpower.Chain{
			{Class: netpower.EdgeSwitch, Name: "lan-switch"},
		},
		PerFileOverhead:   40 * time.Millisecond,
		MaxConcurrency:    12,
		BFMaxConcurrency:  20,
		SLARefConcurrency: 1,
		DatasetSize:       40 * units.GB,
		MinFile:           3 * units.MB,
		MaxFile:           5 * units.GB,
		ClassShares:       [3]float64{0.20, 0.35, 0.45},
	}
}

// All returns the three testbeds in the paper's presentation order.
func All() []Testbed {
	return []Testbed{XSEDE(), FutureGrid(), DIDCLAB()}
}

// Validate checks the whole environment for consistency.
func (tb Testbed) Validate() error {
	if err := tb.Path.Validate(); err != nil {
		return err
	}
	if err := tb.Source.Validate(); err != nil {
		return err
	}
	if err := tb.Dest.Validate(); err != nil {
		return err
	}
	return tb.Power.Coeff.Validate()
}
