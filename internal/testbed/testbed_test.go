package testbed

import (
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/units"
)

func TestAllTestbedsValid(t *testing.T) {
	for _, tb := range All() {
		if err := tb.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tb.Name, err)
		}
	}
}

func TestPaperPathParameters(t *testing.T) {
	xs := XSEDE()
	if xs.Path.Bandwidth != 10*units.Gbps || xs.Path.RTT != 40*time.Millisecond ||
		xs.Path.MaxTCPBuffer != 32*units.MB {
		t.Errorf("XSEDE path wrong: %+v", xs.Path)
	}
	if xs.Path.BDP() != 50*units.MB {
		t.Errorf("XSEDE BDP = %v, want 50MB", xs.Path.BDP())
	}
	if xs.ServersPerSite != 4 {
		t.Errorf("XSEDE should have 4 transfer servers per site, got %d", xs.ServersPerSite)
	}
	if xs.Source.Cores != 4 {
		t.Errorf("XSEDE servers are 4-core (Eq. 2's sweet spot), got %d", xs.Source.Cores)
	}

	fg := FutureGrid()
	if fg.Path.Bandwidth != 1*units.Gbps || fg.Path.RTT != 28*time.Millisecond {
		t.Errorf("FutureGrid path wrong: %+v", fg.Path)
	}

	lab := DIDCLAB()
	if lab.Path.Bandwidth != 1*units.Gbps {
		t.Errorf("DIDCLAB path wrong: %+v", lab.Path)
	}
	if lab.Source.Disk.Kind != endsys.SingleDisk {
		t.Error("DIDCLAB workstations must have single disks (Fig. 4's premise)")
	}
	if lab.SLARefConcurrency != 1 {
		t.Errorf("DIDCLAB SLA reference concurrency = %d, want 1", lab.SLARefConcurrency)
	}
}

func TestDatasetsMatchPaperSizes(t *testing.T) {
	for _, tb := range All() {
		ds := tb.Dataset(1)
		total := ds.TotalSize()
		lo := units.Bytes(float64(tb.DatasetSize) * 0.99)
		if total < lo || total > tb.DatasetSize {
			t.Errorf("%s dataset = %v, want ≈%v", tb.Name, total, tb.DatasetSize)
		}
		if min := ds.MinSize(); min < tb.MinFile {
			t.Errorf("%s has file below envelope: %v < %v", tb.Name, min, tb.MinFile)
		}
	}
}

func TestDatasetDeterministicPerSeed(t *testing.T) {
	a := XSEDE().Dataset(9)
	b := XSEDE().Dataset(9)
	if a.Count() != b.Count() || a.TotalSize() != b.TotalSize() {
		t.Error("dataset generation not deterministic")
	}
	c := XSEDE().Dataset(10)
	if a.Count() == c.Count() && a.TotalSize() == c.TotalSize() && a.Files[0] == c.Files[0] {
		t.Error("different seeds produced identical datasets")
	}
}

func TestWANDatasetCoversAllClasses(t *testing.T) {
	for _, tb := range []Testbed{XSEDE(), FutureGrid()} {
		ds := tb.Dataset(2)
		chunks := dataset.Partition(ds, tb.Path.BDP())
		if len(chunks) != 3 {
			t.Errorf("%s dataset spans %d classes, want 3", tb.Name, len(chunks))
			continue
		}
		for _, c := range chunks {
			share := float64(c.TotalSize()) / float64(ds.TotalSize())
			if share < 0.05 {
				t.Errorf("%s %v chunk holds only %.1f%% of bytes", tb.Name, c.Class, share*100)
			}
		}
	}
}

func TestLANDatasetIsOneClassButFullSize(t *testing.T) {
	tb := DIDCLAB()
	ds := tb.Dataset(3)
	if got := ds.TotalSize(); got < units.Bytes(float64(tb.DatasetSize)*0.99) {
		t.Errorf("LAN dataset shrunk to %v (empty-class shares must roll over)", got)
	}
	chunks := dataset.Partition(ds, tb.Path.BDP())
	if len(chunks) != 1 || chunks[0].Class != dataset.Large {
		t.Errorf("LAN dataset should be a single Large chunk, got %d chunks", len(chunks))
	}
}

func TestNetChainsMatchFig9(t *testing.T) {
	// XSEDE: symmetric chain through Internet2; FutureGrid: two metro
	// routers around the Internet2 core; DIDCLAB: one switch.
	if n := len(XSEDE().NetChain); n != 8 {
		t.Errorf("XSEDE chain has %d devices, want 8", n)
	}
	if n := len(FutureGrid().NetChain); n != 4 {
		t.Errorf("FutureGrid chain has %d devices, want 4", n)
	}
	if n := len(DIDCLAB().NetChain); n != 1 {
		t.Errorf("DIDCLAB chain has %d devices, want 1", n)
	}
}
