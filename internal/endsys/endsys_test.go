package endsys

import (
	"testing"
	"testing/quick"

	"github.com/didclab/eta/internal/units"
)

func testServer() Server {
	return Server{
		Name:    "ws",
		Cores:   4,
		TDP:     95,
		NICRate: 10 * units.Gbps,
		Disk: Disk{
			Kind:    ParallelArray,
			Rate:    2 * units.Gbps,
			Stripes: 4,
		},
		CPUPerGbps:    4,
		CPUPerStream:  1.5,
		CPUBaseActive: 5,
		MemPerGbps:    2,
	}
}

func TestServerValidate(t *testing.T) {
	if err := testServer().Validate(); err != nil {
		t.Fatalf("valid server rejected: %v", err)
	}
	bad := []func(*Server){
		func(s *Server) { s.Cores = 0 },
		func(s *Server) { s.TDP = 0 },
		func(s *Server) { s.NICRate = 0 },
		func(s *Server) { s.CPUPerGbps = -1 },
		func(s *Server) { s.Disk.Rate = 0 },
		func(s *Server) { s.Disk = Disk{Kind: ParallelArray, Rate: units.Gbps, Stripes: 0} },
		func(s *Server) { s.Disk.ContentionAlpha = -0.1 },
	}
	for i, mutate := range bad {
		s := testServer()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid server accepted", i)
		}
	}
}

func TestSingleDiskDegradesWithAccessors(t *testing.T) {
	d := Disk{Kind: SingleDisk, Rate: 600 * units.Mbps, ContentionAlpha: 0.15}
	prev := d.AggregateRate(1)
	if prev != 600*units.Mbps {
		t.Fatalf("single accessor rate = %v", prev)
	}
	for n := 2; n <= 12; n++ {
		cur := d.AggregateRate(n)
		if cur >= prev {
			t.Fatalf("single disk did not degrade at n=%d: %v >= %v", n, cur, prev)
		}
		prev = cur
	}
	// The paper's DIDCLAB throughput at concurrency 12 is roughly half
	// the concurrency-1 value; the model should be in that regime.
	if ratio := float64(d.AggregateRate(12)) / float64(d.AggregateRate(1)); ratio > 0.6 || ratio < 0.2 {
		t.Errorf("12-accessor degradation ratio %.2f outside [0.2,0.6]", ratio)
	}
}

func TestParallelArrayScalesToStripes(t *testing.T) {
	d := Disk{Kind: ParallelArray, Rate: 2 * units.Gbps, Stripes: 4}
	if d.AggregateRate(1) != 2*units.Gbps {
		t.Error("one accessor should get one stripe rate")
	}
	if d.AggregateRate(4) != 8*units.Gbps {
		t.Error("four accessors should aggregate four stripes")
	}
	if d.AggregateRate(12) != 8*units.Gbps {
		t.Error("aggregate must cap at stripe width")
	}
	if d.MaxRate() != 8*units.Gbps {
		t.Error("MaxRate should be stripes × rate")
	}
}

func TestAggregateRateZeroAccessors(t *testing.T) {
	d := Disk{Kind: SingleDisk, Rate: units.Gbps}
	if d.AggregateRate(0) != 0 || d.AggregateRate(-1) != 0 {
		t.Error("no accessors should mean no throughput")
	}
}

func TestUtilizationForIdle(t *testing.T) {
	s := testServer()
	if u := s.UtilizationFor(Load{}); u != (Utilization{}) {
		t.Errorf("idle server utilization = %+v, want zero", u)
	}
}

func TestUtilizationForScalesWithLoad(t *testing.T) {
	s := testServer()
	light := s.UtilizationFor(Load{Throughput: 1 * units.Gbps, Processes: 1, Streams: 2})
	heavy := s.UtilizationFor(Load{Throughput: 8 * units.Gbps, Processes: 8, Streams: 16})
	if light.CPU >= heavy.CPU || light.NIC >= heavy.NIC || light.Mem >= heavy.Mem || light.Disk >= heavy.Disk {
		t.Errorf("utilization did not grow with load: light=%+v heavy=%+v", light, heavy)
	}
	// NIC utilization must be exact: 8/10 Gbps = 80%.
	if heavy.NIC != 80 {
		t.Errorf("NIC utilization = %v, want 80", heavy.NIC)
	}
}

func TestUtilizationBounded(t *testing.T) {
	s := testServer()
	f := func(gbps uint8, procs, streams uint8) bool {
		u := s.UtilizationFor(Load{
			Throughput: units.Rate(gbps) * units.Gbps,
			Processes:  int(procs),
			Streams:    int(streams),
		})
		for _, v := range []float64{u.CPU, u.Mem, u.Disk, u.NIC} {
			if v < 0 || v > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseActiveCPUCharged(t *testing.T) {
	// A server that participates with one idle-ish channel still pays
	// the base overhead — the mechanism behind GO's multi-server energy
	// penalty.
	s := testServer()
	u := s.UtilizationFor(Load{Throughput: 0, Processes: 1, Streams: 1})
	if u.CPU < s.CPUBaseActive {
		t.Errorf("CPU %v below base overhead %v", u.CPU, s.CPUBaseActive)
	}
}

func TestDiskKindString(t *testing.T) {
	if SingleDisk.String() != "SingleDisk" || ParallelArray.String() != "ParallelArray" {
		t.Error("names wrong")
	}
	if DiskKind(7).String() != "DiskKind(7)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestUtilizationClamp(t *testing.T) {
	u := Utilization{CPU: 150, Mem: -3, Disk: 50, NIC: 101}.Clamp()
	if u.CPU != 100 || u.Mem != 0 || u.Disk != 50 || u.NIC != 100 {
		t.Errorf("clamp wrong: %+v", u)
	}
}
