// Package endsys models the sender and receiver nodes of a transfer:
// CPU, memory, disk subsystem and NIC. The paper's central claim is
// that "at least one quarter of the data transfer power consumption
// happens at the end-systems", and all three proposed algorithms tune
// parameters that change *end-system* resource utilization. This
// package turns a transfer operating point (throughput, processes,
// streams) into per-component utilization percentages that the power
// models in internal/power consume.
package endsys

import (
	"fmt"

	"github.com/didclab/eta/internal/units"
)

// DiskKind distinguishes the two storage subsystems the evaluation
// contrasts: the parallel arrays on the XSEDE/FutureGrid data-transfer
// nodes versus the single-disk DIDCLAB workstations whose "IO speed
// decreases when the number of concurrent accesses increases" (§3).
type DiskKind int

// Disk subsystem kinds.
const (
	SingleDisk DiskKind = iota
	ParallelArray
)

// String names the disk kind.
func (k DiskKind) String() string {
	switch k {
	case SingleDisk:
		return "SingleDisk"
	case ParallelArray:
		return "ParallelArray"
	default:
		return fmt.Sprintf("DiskKind(%d)", int(k))
	}
}

// Disk models a storage subsystem.
type Disk struct {
	Kind DiskKind
	// Rate is the sequential throughput of one accessor on one
	// spindle/stripe.
	Rate units.Rate
	// Stripes is the stripe width of a parallel array (ignored for
	// SingleDisk).
	Stripes int
	// ContentionAlpha is the single-disk seek-thrash coefficient: with
	// n concurrent accessors the aggregate drops to Rate/(1+α(n−1)).
	ContentionAlpha float64
}

// Validate reports a descriptive error for meaningless disks.
func (d Disk) Validate() error {
	switch {
	case d.Rate <= 0:
		return fmt.Errorf("endsys: non-positive disk rate %v", d.Rate)
	case d.Kind == ParallelArray && d.Stripes < 1:
		return fmt.Errorf("endsys: parallel array with %d stripes", d.Stripes)
	case d.ContentionAlpha < 0:
		return fmt.Errorf("endsys: negative contention alpha %v", d.ContentionAlpha)
	default:
		return nil
	}
}

// AggregateRate returns the total IO throughput available to n
// concurrent accessors. For a single disk this *decreases* with n
// (seek thrash); for a parallel array it scales up to the stripe width.
func (d Disk) AggregateRate(n int) units.Rate {
	if n <= 0 {
		return 0
	}
	switch d.Kind {
	case ParallelArray:
		k := n
		if k > d.Stripes {
			k = d.Stripes
		}
		return d.Rate * units.Rate(k)
	default:
		return units.Rate(float64(d.Rate) / (1 + d.ContentionAlpha*float64(n-1)))
	}
}

// MaxRate returns the best-case aggregate throughput of the subsystem.
func (d Disk) MaxRate() units.Rate {
	if d.Kind == ParallelArray {
		return d.Rate * units.Rate(d.Stripes)
	}
	return d.Rate
}

// Server describes one end-system node and its utilization response to
// transfer load. Utilization coefficients are percentages.
type Server struct {
	Name  string
	Cores int
	// TDP is the CPU's thermal design power, used by the CPU-only
	// power model's cross-machine scaling (Eq. 3).
	TDP units.Watts
	// NICRate is the network interface line rate.
	NICRate units.Rate
	Disk    Disk

	// CPUPerGbps is CPU% consumed per Gbps moved (protocol and copy
	// overhead).
	CPUPerGbps float64
	// CPUPerStream is CPU% consumed per active TCP stream (interrupt,
	// locking and syscall overhead per connection).
	CPUPerStream float64
	// CPUBaseActive is the CPU% floor paid as soon as the server takes
	// part in a transfer at all (transfer service processes, control
	// channels). This is what makes Globus Online's habit of spreading
	// channels across many servers expensive (§3).
	CPUBaseActive float64
	// MemPerGbps is memory-bus utilization % per Gbps.
	MemPerGbps float64
}

// Validate reports a descriptive error for meaningless servers.
func (s Server) Validate() error {
	switch {
	case s.Cores < 1:
		return fmt.Errorf("endsys: server %q has %d cores", s.Name, s.Cores)
	case s.TDP <= 0:
		return fmt.Errorf("endsys: server %q has TDP %v", s.Name, s.TDP)
	case s.NICRate <= 0:
		return fmt.Errorf("endsys: server %q has NIC rate %v", s.Name, s.NICRate)
	case s.CPUPerGbps < 0 || s.CPUPerStream < 0 || s.CPUBaseActive < 0 || s.MemPerGbps < 0:
		return fmt.Errorf("endsys: server %q has negative utilization coefficients", s.Name)
	default:
		return s.Disk.Validate()
	}
}

// Utilization holds per-component utilization percentages in [0,100],
// the exact inputs of the paper's fine-grained power model (Eq. 1).
type Utilization struct {
	CPU  float64
	Mem  float64
	Disk float64
	NIC  float64
}

// Clamp bounds every component to [0,100] and returns the result.
func (u Utilization) Clamp() Utilization {
	u.CPU = units.ClampF(u.CPU, 0, 100)
	u.Mem = units.ClampF(u.Mem, 0, 100)
	u.Disk = units.ClampF(u.Disk, 0, 100)
	u.NIC = units.ClampF(u.NIC, 0, 100)
	return u
}

// Load is a transfer operating point on one server.
type Load struct {
	// Throughput is the data rate this server is moving.
	Throughput units.Rate
	// Processes is the number of transfer processes (channels) running
	// here; the paper's Eq. 2 coefficient depends on it.
	Processes int
	// Streams is the total TCP stream count (channels × parallelism).
	Streams int
}

// UtilizationFor maps a load to component utilizations.
func (s Server) UtilizationFor(l Load) Utilization {
	if l.Processes <= 0 && l.Throughput <= 0 {
		return Utilization{}
	}
	gbps := float64(l.Throughput / units.Gbps)
	u := Utilization{
		CPU:  s.CPUBaseActive + s.CPUPerGbps*gbps + s.CPUPerStream*float64(l.Streams),
		Mem:  s.MemPerGbps * gbps,
		NIC:  100 * float64(l.Throughput) / float64(s.NICRate),
		Disk: 0,
	}
	if max := s.Disk.MaxRate(); max > 0 {
		u.Disk = 100 * float64(l.Throughput) / float64(max)
	}
	return u.Clamp()
}
