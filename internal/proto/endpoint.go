package proto

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/didclab/eta/internal/obs"
)

// Endpoint is one transfer-server replica plus its placement weight.
// The paper's GO baseline spreads channels "across all available
// transfer servers" and ProMC allocates them by weight; an Endpoint is
// one such server as the real-TCP client sees it.
type Endpoint struct {
	Addr string
	// Weight is the endpoint's share of channel placements relative to
	// its peers; values below 1 are treated as 1.
	Weight int
}

// ParseEndpoints parses a comma-separated weighted endpoint list, the
// value of the CLI `-addrs` flag. Each element is `addr` (weight 1),
// `addr=weight`, or `host:port:weight` — the trailing `:weight` form is
// only recognized when what precedes it still contains a colon and does
// not end in `]`, so plain `host:port` and bracketed IPv6 addresses
// parse as addresses.
func ParseEndpoints(list string) ([]Endpoint, error) {
	var eps []Endpoint
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, weight := part, 1
		if k := strings.LastIndexByte(part, '='); k >= 0 {
			w, err := strconv.Atoi(part[k+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("proto: bad endpoint weight in %q", part)
			}
			addr, weight = part[:k], w
		} else if k := strings.LastIndexByte(part, ':'); k > 0 {
			head, tail := part[:k], part[k+1:]
			if strings.Contains(head, ":") && !strings.HasSuffix(head, "]") {
				w, err := strconv.Atoi(tail)
				if err != nil || w < 1 {
					return nil, fmt.Errorf("proto: bad endpoint weight in %q", part)
				}
				addr, weight = head, w
			}
		}
		if addr == "" {
			return nil, fmt.Errorf("proto: empty endpoint address in %q", list)
		}
		eps = append(eps, Endpoint{Addr: addr, Weight: weight})
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("proto: empty endpoint list %q", list)
	}
	return eps, nil
}

// Default health parameters; see the EndpointPool fields for semantics.
const (
	defaultFailThreshold = 3
	defaultProbation     = 250 * time.Millisecond
	defaultProbationCap  = 5 * time.Second
)

// epState is one endpoint's live health record.
type epState struct {
	ep  Endpoint
	cur int // smooth weighted round-robin accumulator

	fails   int           // consecutive failures since the last success
	dark    bool          // blacklisted (possibly past expiry, i.e. on probation)
	until   time.Time     // blacklist expiry; after it one probe is allowed
	backoff time.Duration // the NEXT blacklist period (doubles, capped)
}

// EndpointPool holds N server replicas with per-endpoint health state
// and hands out placement decisions. Pick is a smooth weighted
// round-robin over the endpoints currently eligible: an endpoint
// disappears from rotation after FailThreshold consecutive failures
// (blacklisting) and reappears when its blacklist period lapses
// (probation) — a failed probe re-blacklists it for twice the period,
// capped at ProbationCap, while one success clears the record entirely.
// When every endpoint is dark, Pick returns the one whose blacklist
// expires soonest instead of failing, so a transfer against a wholly
// unreachable site keeps feeding the executor's redial/backoff path
// rather than erroring out of band.
//
// All methods are safe for concurrent use; a nil pool is inert (Len 0).
type EndpointPool struct {
	// FailThreshold is how many consecutive failures blacklist an
	// endpoint; defaultFailThreshold when zero.
	FailThreshold int
	// Probation is the first blacklist period; defaultProbation when
	// zero. Each re-blacklist doubles it up to ProbationCap.
	Probation time.Duration
	// ProbationCap bounds the doubled blacklist periods;
	// defaultProbationCap when zero.
	ProbationCap time.Duration
	// Metrics receives per-endpoint health counters; optional. Set
	// before first use.
	Metrics *obs.Registry
	// Events receives endpoint_blacklisted/endpoint_recovered events;
	// optional. Set before first use.
	Events *obs.Log

	mu  sync.Mutex
	eps []*epState
	now obs.Clock

	instOnce sync.Once
	inst     poolInstruments
}

// poolInstruments caches the pool's per-endpoint counter families.
type poolInstruments struct {
	picks      *obs.Family
	failures   *obs.Family
	blacklists *obs.Family
	recoveries *obs.Family
}

// NewEndpointPool builds a pool over the given replicas. Weights below
// 1 are lifted to 1.
func NewEndpointPool(eps ...Endpoint) (*EndpointPool, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("proto: endpoint pool needs at least one endpoint")
	}
	p := &EndpointPool{now: time.Now}
	for _, ep := range eps {
		if ep.Addr == "" {
			return nil, fmt.Errorf("proto: endpoint with empty address")
		}
		if ep.Weight < 1 {
			ep.Weight = 1
		}
		p.eps = append(p.eps, &epState{ep: ep})
	}
	return p, nil
}

// SetClock overrides the pool's time source (tests).
func (p *EndpointPool) SetClock(c obs.Clock) {
	if p == nil || c == nil {
		return
	}
	p.mu.Lock()
	p.now = c
	p.mu.Unlock()
}

// instruments resolves the pool's metric handles once; with no Metrics
// registry every handle is nil and every update a no-op.
func (p *EndpointPool) instruments() *poolInstruments {
	p.instOnce.Do(func() {
		r := p.Metrics
		p.inst = poolInstruments{
			picks:      r.Family("endpoint_picks", "endpoint"),
			failures:   r.Family("endpoint_failures", "endpoint"),
			blacklists: r.Family("endpoint_blacklists", "endpoint"),
			recoveries: r.Family("endpoint_recoveries", "endpoint"),
		}
	})
	return &p.inst
}

// endpointLabel is the bounded metric label for an endpoint index:
// small pools label each replica individually, anything past the first
// eight shares one overflow bucket so label cardinality stays fixed.
func endpointLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	case 2:
		return "2"
	case 3:
		return "3"
	case 4:
		return "4"
	case 5:
		return "5"
	case 6:
		return "6"
	case 7:
		return "7"
	}
	if i < 0 {
		return "unknown"
	}
	return "8plus"
}

// Len returns the number of endpoints in the pool.
func (p *EndpointPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.eps)
}

// Addr returns endpoint i's address ("" when out of range).
func (p *EndpointPool) Addr(i int) string {
	if p == nil || i < 0 || i >= len(p.eps) {
		return ""
	}
	return p.eps[i].ep.Addr
}

func (p *EndpointPool) failThreshold() int {
	if p.FailThreshold > 0 {
		return p.FailThreshold
	}
	return defaultFailThreshold
}

func (p *EndpointPool) probation() time.Duration {
	if p.Probation > 0 {
		return p.Probation
	}
	return defaultProbation
}

func (p *EndpointPool) probationCap() time.Duration {
	if p.ProbationCap > 0 {
		return p.ProbationCap
	}
	return defaultProbationCap
}

// eligible reports whether endpoint s may be handed out at time now:
// healthy, or dark with its blacklist period lapsed (a probe).
func (s *epState) eligible(now time.Time) bool {
	return !s.dark || !now.Before(s.until)
}

// Pick returns the next endpoint (index and address) under smooth
// weighted round-robin over the currently eligible endpoints. Within
// any window of totalEligibleWeight consecutive picks each eligible
// endpoint is returned exactly Weight times, so channel placement
// follows the configured weights without randomness. When every
// endpoint is blacklisted the one recovering soonest is returned.
func (p *EndpointPool) Pick() (int, string) {
	p.mu.Lock()
	now := p.now()
	best, weightSum := -1, 0
	for i, s := range p.eps {
		if !s.eligible(now) {
			continue
		}
		s.cur += s.ep.Weight
		weightSum += s.ep.Weight
		if best < 0 || s.cur > p.eps[best].cur {
			best = i
		}
	}
	if best >= 0 {
		p.eps[best].cur -= weightSum
	} else {
		// Every endpoint is dark: hand out the one whose blacklist
		// lapses soonest so a restored replica is probed first.
		for i, s := range p.eps {
			if best < 0 || s.until.Before(p.eps[best].until) {
				best = i
			}
		}
	}
	addr := p.eps[best].ep.Addr
	p.mu.Unlock()
	p.instruments().picks.With(endpointLabel(best)).Inc()
	return best, addr
}

// ReportSuccess clears endpoint i's failure record. A success on a dark
// endpoint (a probe that worked, or an in-flight channel outliving the
// blacklist) restores it to full rotation and emits endpoint_recovered.
func (p *EndpointPool) ReportSuccess(i int) {
	if p == nil || i < 0 || i >= len(p.eps) {
		return
	}
	p.mu.Lock()
	s := p.eps[i]
	recovered := s.dark
	s.fails = 0
	s.dark = false
	s.until = time.Time{}
	s.backoff = 0
	p.mu.Unlock()
	if recovered {
		p.instruments().recoveries.With(endpointLabel(i)).Inc()
		p.Events.Emit(obs.EvEndpointRecovered, "endpoint", i, "addr", s.ep.Addr)
	}
}

// ReportFailure books one failure against endpoint i. Crossing
// FailThreshold consecutive failures — or failing a probe after the
// blacklist lapsed — blacklists the endpoint with a capped doubling
// backoff. Failures reported while the endpoint is already serving its
// blacklist period (e.g. several in-flight channels dying together when
// a replica goes down) are counted but do not extend the period.
func (p *EndpointPool) ReportFailure(i int, err error) {
	if p == nil || i < 0 || i >= len(p.eps) {
		return
	}
	p.mu.Lock()
	s := p.eps[i]
	now := p.now()
	s.fails++
	fails := s.fails
	blacklist := fails >= p.failThreshold() && (!s.dark || !now.Before(s.until))
	var period time.Duration
	if blacklist {
		period = s.backoff
		if period <= 0 {
			period = p.probation()
		}
		s.dark = true
		s.until = now.Add(period)
		if s.backoff = period * 2; s.backoff > p.probationCap() {
			s.backoff = p.probationCap()
		}
	}
	p.mu.Unlock()
	p.instruments().failures.With(endpointLabel(i)).Inc()
	if blacklist {
		p.instruments().blacklists.With(endpointLabel(i)).Inc()
		p.Events.Emit(obs.EvEndpointBlacklisted,
			"endpoint", i,
			"addr", s.ep.Addr,
			"consecutive_failures", fails,
			"retry_in_ms", period.Milliseconds(),
			"error", fmt.Sprint(err))
	}
}

// EndpointHealth is one endpoint's health snapshot.
type EndpointHealth struct {
	Addr             string
	Weight           int
	ConsecutiveFails int
	Blacklisted      bool      // dark and still inside the blacklist period
	RetryAt          time.Time // when a dark endpoint becomes probeable
}

// Health snapshots every endpoint's state, in pool order.
func (p *EndpointPool) Health() []EndpointHealth {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	out := make([]EndpointHealth, len(p.eps))
	for i, s := range p.eps {
		out[i] = EndpointHealth{
			Addr:             s.ep.Addr,
			Weight:           s.ep.Weight,
			ConsecutiveFails: s.fails,
			Blacklisted:      s.dark && now.Before(s.until),
			RetryAt:          s.until,
		}
	}
	return out
}

// HealthyCount returns how many endpoints are currently eligible for
// placement (healthy or probeable).
func (p *EndpointPool) HealthyCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	n := 0
	for _, s := range p.eps {
		if s.eligible(now) {
			n++
		}
	}
	return n
}
