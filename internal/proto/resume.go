package proto

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/units"
)

// FileRange is a contiguous span of one file — the unit of resumable
// transfers. A zero Offset with a zero Length fetches the whole file; a
// zero Length alone runs through EOF (a suffix resume); a non-zero
// Length is a fine-grained mid-file range, the shape journal-verified
// recovery plans for the gaps between receipts.
type FileRange struct {
	File   dataset.File
	Offset units.Bytes
	// Length bounds the range; 0 means through the end of the file.
	Length units.Bytes
}

// Remaining returns the bytes the range will move.
func (r FileRange) Remaining() units.Bytes {
	if r.Offset >= r.File.Size {
		return 0
	}
	rem := r.File.Size - r.Offset
	if r.Length > 0 && r.Length < rem {
		rem = r.Length
	}
	return rem
}

// WholeFiles wraps files as full-fetch ranges.
func WholeFiles(files []dataset.File) []FileRange {
	ranges := make([]FileRange, len(files))
	for i, f := range files {
		ranges[i] = FileRange{File: f}
	}
	return ranges
}

// ResumeOptions configures PlanResume.
type ResumeOptions struct {
	// JournalPath points at the destination's block-receipt journal;
	// empty disables journal-verified recovery (marked files refetch
	// whole, the pre-journal behavior).
	JournalPath string
	// Metrics receives journal_recovered_bytes/recovery_refetch_bytes;
	// optional.
	Metrics *obs.Registry
	// Events receives one recovery_planned event; optional.
	Events *obs.Log
}

// RecoveryPlan is the minimal transfer completing a destination tree.
type RecoveryPlan struct {
	// Ranges is every range still to fetch, in file order.
	Ranges []FileRange
	// ByFile maps each incomplete file's name to its ranges. A file
	// with no entry is already complete at the destination.
	ByFile map[string][]FileRange
	// Skipped counts bytes trusted without the journal: complete files
	// and the length-implied prefixes of unmarked partial files.
	Skipped units.Bytes
	// Verified counts bytes of marked files proven present by replaying
	// the journal and re-hashing the destination ranges it claims.
	Verified units.Bytes
	// Refetch counts the bytes the plan will move. Skipped + Verified +
	// Refetch always equals the dataset's total size.
	Refetch units.Bytes
	// JournalTorn reports that the journal decode stopped at a
	// truncated or garbled tail (expected after a crash; the receipts
	// before the tear were still used).
	JournalTorn bool
}

// destFilePath confines name to the destination root, rejecting only a
// leading ".." *path element*; a name that merely starts with two dots
// ("..config") is legitimate.
func destFilePath(root, name string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
		return "", fmt.Errorf("proto: path %q escapes destination root", name)
	}
	return filepath.Join(root, clean), nil
}

// PlanResume inspects a DirSink destination tree and plans the minimal
// transfer completing it. Files already at full size are skipped,
// unmarked partial files resume from their current length, and missing
// files fetch whole. Files carrying the partial marker — preallocated,
// so their length lies — are recovered through the receipt journal:
// every journaled range is re-read from disk and re-hashed, the verified
// ranges are kept, and only the gaps are planned for refetch. Nothing
// the journal claims is trusted without matching bytes on disk, so a
// lying, stale, or torn journal degrades to refetching more, never to
// corruption. Without a journal a marked file refetches whole.
func PlanResume(root string, files []dataset.File, opt ResumeOptions) (*RecoveryPlan, error) {
	receipts, torn, err := loadReceipts(opt.JournalPath)
	if err != nil {
		return nil, err
	}
	plan := &RecoveryPlan{ByFile: make(map[string][]FileRange), JournalTorn: torn}
	for _, f := range files {
		path, err := destFilePath(root, f.Name)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(path + partialMarkerSuffix); err == nil {
			// Preallocated but unfinished: the length lies. Recover what
			// the journal can prove, refetch the gaps.
			verified, gaps := recoverMarked(path, f, receipts[f.Name])
			plan.Verified += verified
			if len(gaps) == 0 {
				// Every byte re-hashed clean: the file is complete, the
				// marker just outlived the crash. Lift it.
				if err := os.Remove(path + partialMarkerSuffix); err != nil && !os.IsNotExist(err) {
					return nil, err
				}
				continue
			}
			for _, g := range gaps {
				plan.Refetch += g.Remaining()
			}
			plan.ByFile[f.Name] = gaps
			plan.Ranges = append(plan.Ranges, gaps...)
			continue
		}
		info, err := os.Stat(path)
		switch {
		case err == nil && units.Bytes(info.Size()) >= f.Size:
			plan.Skipped += f.Size
			continue
		case err == nil:
			have := units.Bytes(info.Size())
			plan.Skipped += have
			r := FileRange{File: f, Offset: have}
			plan.Refetch += r.Remaining()
			plan.ByFile[f.Name] = []FileRange{r}
			plan.Ranges = append(plan.Ranges, r)
		case os.IsNotExist(err):
			r := FileRange{File: f}
			plan.Refetch += r.Remaining()
			plan.ByFile[f.Name] = []FileRange{r}
			plan.Ranges = append(plan.Ranges, r)
		default:
			return nil, err
		}
	}
	opt.Metrics.Counter("journal_recovered_bytes").Add(int64(plan.Verified))
	opt.Metrics.Counter("recovery_refetch_bytes").Add(int64(plan.Refetch))
	opt.Events.Emit(obs.EvRecoveryPlanned,
		"files_incomplete", len(plan.ByFile),
		"ranges", len(plan.Ranges),
		"skipped_bytes", int64(plan.Skipped),
		"verified_bytes", int64(plan.Verified),
		"refetch_bytes", int64(plan.Refetch),
		"journal_torn", plan.JournalTorn)
	return plan, nil
}

// loadReceipts reads the journal (if any) and keeps, per file and per
// block span, the most recent receipt — a block refetched after a
// checksum failure appends a newer record whose CRC supersedes the
// older one.
func loadReceipts(path string) (map[string][]Receipt, bool, error) {
	if path == "" {
		return nil, false, nil
	}
	recs, torn, err := ReadJournal(path)
	if err != nil {
		return nil, torn, err
	}
	type span struct {
		off, n int64
	}
	latest := make(map[string]map[span]uint32)
	for _, r := range recs {
		m := latest[r.Name]
		if m == nil {
			m = make(map[span]uint32)
			latest[r.Name] = m
		}
		m[span{r.Off, r.N}] = r.CRC
	}
	out := make(map[string][]Receipt, len(latest))
	for name, m := range latest {
		rs := make([]Receipt, 0, len(m))
		for s, crc := range m {
			rs = append(rs, Receipt{Name: name, Off: s.off, N: s.n, CRC: crc})
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].Off < rs[j].Off })
		out[name] = rs
	}
	return out, torn, nil
}

// recoverMarked re-verifies a marked file's journaled receipts against
// the bytes on disk and returns the verified byte count plus the gap
// ranges still to fetch. Any receipt that is out of bounds, unreadable,
// or hashes differently is simply not verified — its span lands in a
// gap and refetches.
func recoverMarked(path string, f dataset.File, recs []Receipt) (units.Bytes, []FileRange) {
	wholeFile := []FileRange{{File: f}}
	if len(recs) == 0 {
		return 0, wholeFile
	}
	df, err := os.Open(path)
	if err != nil {
		return 0, wholeFile
	}
	defer df.Close()
	// Verify each receipt by re-hashing its span, then merge the clean
	// spans into disjoint intervals (receipts arrive block-sized and
	// adjacent, so merging collapses them into a few runs).
	type iv struct{ lo, hi int64 }
	var ivs []iv
	buf := make([]byte, 256*1024)
	for _, r := range recs {
		if r.Off < 0 || r.N <= 0 || r.Off+r.N > int64(f.Size) {
			continue
		}
		if verifyDiskRange(df, r.Off, r.N, r.CRC, buf) {
			ivs = append(ivs, iv{r.Off, r.Off + r.N})
		}
	}
	if len(ivs) == 0 {
		return 0, wholeFile
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	merged := ivs[:1]
	for _, v := range ivs[1:] {
		if last := &merged[len(merged)-1]; v.lo <= last.hi {
			if v.hi > last.hi {
				last.hi = v.hi
			}
		} else {
			merged = append(merged, v)
		}
	}
	var verified units.Bytes
	var gaps []FileRange
	cursor := int64(0)
	for _, v := range merged {
		if v.lo > cursor {
			gaps = append(gaps, FileRange{File: f, Offset: units.Bytes(cursor), Length: units.Bytes(v.lo - cursor)})
		}
		verified += units.Bytes(v.hi - v.lo)
		cursor = v.hi
	}
	if cursor < int64(f.Size) {
		gaps = append(gaps, FileRange{File: f, Offset: units.Bytes(cursor)})
	}
	return verified, gaps
}

// verifyDiskRange reports whether file bytes [off, off+n) hash to crc
// (CRC-32C), streaming through buf.
func verifyDiskRange(f *os.File, off, n int64, crc uint32, buf []byte) bool {
	sum := uint32(0)
	for n > 0 {
		chunk := buf
		if int64(len(chunk)) > n {
			chunk = chunk[:n]
		}
		if _, err := f.ReadAt(chunk, off); err != nil {
			return false
		}
		sum = crc32.Update(sum, crcTable, chunk)
		off += int64(len(chunk))
		n -= int64(len(chunk))
	}
	return sum == crc
}

// ResumeRanges inspects a DirSink destination tree and plans the
// minimal transfer completing it: files already at full size are
// skipped, partial files resume from their current length, missing and
// marked files fetch whole. It returns the ranges plus the byte count
// already present (skipped work). Journal-aware callers use PlanResume
// directly; this wrapper keeps the journal out of the loop.
func ResumeRanges(root string, files []dataset.File) ([]FileRange, units.Bytes, error) {
	plan, err := PlanResume(root, files, ResumeOptions{})
	if err != nil {
		return nil, 0, err
	}
	return plan.Ranges, plan.Skipped, nil
}
