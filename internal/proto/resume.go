package proto

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

// FileRange is a file together with the offset transfer should start
// from — the unit of resumable transfers. A zero offset fetches the
// whole file.
type FileRange struct {
	File   dataset.File
	Offset units.Bytes
}

// Remaining returns the bytes the range will move.
func (r FileRange) Remaining() units.Bytes {
	if r.Offset >= r.File.Size {
		return 0
	}
	return r.File.Size - r.Offset
}

// WholeFiles wraps files as full-fetch ranges.
func WholeFiles(files []dataset.File) []FileRange {
	ranges := make([]FileRange, len(files))
	for i, f := range files {
		ranges[i] = FileRange{File: f}
	}
	return ranges
}

// ResumeRanges inspects a DirSink destination tree and plans the
// minimal transfer completing it: files already at full size are
// skipped, partial files resume from their current length, missing
// files fetch whole. It returns the ranges plus the byte count already
// present (skipped work).
func ResumeRanges(root string, files []dataset.File) ([]FileRange, units.Bytes, error) {
	var ranges []FileRange
	var skipped units.Bytes
	for _, f := range files {
		clean := filepath.Clean(filepath.FromSlash(f.Name))
		// Only a leading ".." *path element* escapes the root; a name
		// that merely starts with two dots ("..config") is legitimate.
		if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
			return nil, 0, fmt.Errorf("proto: path %q escapes destination root", f.Name)
		}
		path := filepath.Join(root, clean)
		// A partial marker means the file was preallocated to full size
		// but its transfer never completed: the length lies (holes may
		// hide anywhere), so the only sound resume is a whole refetch.
		if _, err := os.Stat(path + partialMarkerSuffix); err == nil {
			ranges = append(ranges, FileRange{File: f})
			continue
		}
		info, err := os.Stat(path)
		switch {
		case err == nil && units.Bytes(info.Size()) >= f.Size:
			skipped += f.Size
			continue
		case err == nil:
			have := units.Bytes(info.Size())
			skipped += have
			ranges = append(ranges, FileRange{File: f, Offset: have})
		case os.IsNotExist(err):
			ranges = append(ranges, FileRange{File: f})
		default:
			return nil, 0, err
		}
	}
	return ranges, skipped, nil
}
