package proto

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/didclab/eta/internal/obs"
)

// ErrStalled marks a transfer the stall watchdog killed: requests were
// outstanding but no bytes arrived on any of the channel's connections
// for the configured stall timeout. A black-holed path produces exactly
// this — the connection stays open, nothing ever arrives — which no
// read loop can distinguish from a slow server without a progress
// deadline. The executor treats ErrStalled like any transport failure:
// the outstanding window is requeued and the channel re-dialed against
// the retry budget, with the retry booked under cause "stall".
var ErrStalled = errors.New("proto: transfer stalled")

// progressConn counts every byte read off a connection into the
// channel's shared progress counter — the signal the stall watchdog
// compares between checks. Byte-level (rather than per-block)
// granularity matters: on a heavily shaped link a single block can
// legitimately take longer than the stall timeout to assemble, but TCP
// still delivers something continuously unless the path is truly dead.
type progressConn struct {
	net.Conn
	progress *atomic.Int64
}

func (c progressConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.progress.Add(int64(n))
	}
	return n, err
}

// watchdog converts a hung channel into a transport error. Every
// timeout/4 it snapshots the channel's progress counter and pending
// request count; when requests have been outstanding with zero bytes
// arriving for a full timeout, it fails every pending request with
// ErrStalled and severs the connections so the blocked read loops
// unwind. An idle channel (nothing pending) never trips — idleness is
// the normal state between fetches.
func (ch *Channel) watchdog(timeout time.Duration) {
	defer ch.wg.Done()
	period := timeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	last := int64(-1)
	var idle time.Duration
	for {
		select {
		case <-ch.watchStop:
			return
		case <-time.After(period):
		}
		cur := ch.progress.Load()
		ch.mu.Lock()
		pending := len(ch.pending)
		ch.mu.Unlock()
		if pending == 0 || cur != last {
			last = cur
			idle = 0
			continue
		}
		if idle += period; idle < timeout {
			continue
		}
		err := fmt.Errorf("%w: no bytes for %v with %d request(s) outstanding (stall timeout %v)",
			ErrStalled, idle, pending, timeout)
		ch.inst.stallsDetected.Inc()
		ch.client.Events.Emit(obs.EvStallDetected,
			"sid", ch.sid,
			"pending", pending,
			"idle_ms", idle.Milliseconds(),
			"timeout_ms", timeout.Milliseconds())
		ch.failAll(err)
		// Sever the connections: the control and stream read loops are
		// blocked inside Read and only a close unblocks them.
		ch.ctrl.Close()
		for _, s := range ch.streams {
			s.Close()
		}
		return
	}
}
