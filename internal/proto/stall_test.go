package proto

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

// muteServer accepts connections and never writes a byte — the
// degenerate peer that used to hang the client handshake forever.
func muteServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return ln.Addr().String()
}

func TestOpenChannelStallTimeoutBoundsHandshake(t *testing.T) {
	client := &Client{Addr: muteServer(t), StallTimeout: 150 * time.Millisecond}
	start := time.Now()
	if _, err := client.OpenChannel(1); err == nil {
		t.Fatal("handshake against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("handshake stall took %v to surface; the deadline should bound it near 150ms", elapsed)
	}
}

func TestListStallTimeoutBoundsHandshake(t *testing.T) {
	client := &Client{Addr: muteServer(t), StallTimeout: 150 * time.Millisecond}
	start := time.Now()
	if _, err := client.List(); err == nil {
		t.Fatal("LIST against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("LIST stall took %v to surface", elapsed)
	}
}

// TestWatchdogIgnoresIdleChannel proves the watchdog is progress-based,
// not deadline-based: a channel with no outstanding requests can sit
// idle far past the stall timeout and still work afterwards.
func TestWatchdogIgnoresIdleChannel(t *testing.T) {
	ds := dataset.NewGenerator(40).Uniform(3, 100*units.KB)
	srv := synthServer(t, ds, nil)
	client := &Client{Addr: srv.Addr(), StallTimeout: 100 * time.Millisecond}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	time.Sleep(400 * time.Millisecond) // 4× the stall timeout, zero pending
	res, err := ch.Fetch(ds.Files, 2, NewVerifySink())
	if err != nil {
		t.Fatalf("fetch after a long idle failed: %v", err)
	}
	if res.Bytes != ds.TotalSize() {
		t.Errorf("moved %v of %v", res.Bytes, ds.TotalSize())
	}
}

// wedgeServer speaks just enough protocol to let a channel open, then
// swallows every GET without sending a byte back — the cleanest
// possible black-hole: the sockets stay healthy, the data never comes.
func wedgeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go func(c net.Conn) {
				br := bufio.NewReader(c)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					switch {
					case strings.HasPrefix(line, "HELLO"), strings.HasPrefix(line, cmdOpen):
						if _, err := io.WriteString(c, respOK+" 1\n"); err != nil {
							return
						}
					default:
						// DATA registration, GET, QUIT: black-holed.
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestWatchdogConvertsStallToError issues a GET against a server that
// acknowledges the handshake and then goes silent, and checks the
// watchdog turns the wedge into ErrStalled instead of hanging.
func TestWatchdogConvertsStallToError(t *testing.T) {
	client := &Client{Addr: wedgeServer(t), StallTimeout: 150 * time.Millisecond}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	files := []dataset.File{{Name: "wedged.dat", Size: 1 * units.MB}}
	done := make(chan error, 1)
	go func() {
		_, err := ch.Fetch(files, 1, NewVerifySink())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("stalled fetch returned %v, want ErrStalled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never converted the stall into an error")
	}
}

// TestFetchHangsWithoutWatchdog is the control for the test above: the
// identical wedge with no stall timeout keeps Fetch blocked — the
// pre-watchdog behavior this PR exists to fix.
func TestFetchHangsWithoutWatchdog(t *testing.T) {
	client := &Client{Addr: wedgeServer(t)} // StallTimeout zero: unarmed
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	files := []dataset.File{{Name: "wedged.dat", Size: 1 * units.MB}}
	done := make(chan error, 1)
	go func() {
		_, err := ch.Fetch(files, 1, NewVerifySink())
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("fetch returned (%v) through a wedge with no watchdog — it should hang", err)
	case <-time.After(1500 * time.Millisecond):
		// Hung, as expected. Closing the channel unwinds it.
	}
	ch.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fetch did not unwind after Close")
	}
}

// TestDeadlineWriterTimesOut exercises the server-side write watchdog:
// a peer that stops reading must turn the write into an error instead
// of blocking the session forever.
func TestDeadlineWriterTimesOut(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	w := &deadlineWriter{conn: c1, timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := w.Write(make([]byte, 64))
	if err == nil {
		t.Fatal("write to a never-reading peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("write stall took %v to surface", elapsed)
	}
}

// TestDeadlineWriterRollsForward: consecutive writes each get a fresh
// deadline — a slow-but-moving peer is never killed.
func TestDeadlineWriterRollsForward(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
			time.Sleep(30 * time.Millisecond) // slower than one write, faster than the timeout
		}
	}()
	w := &deadlineWriter{conn: c1, timeout: 200 * time.Millisecond}
	for i := 0; i < 5; i++ {
		if _, err := w.Write(make([]byte, 16)); err != nil {
			t.Fatalf("write %d through a slow reader failed: %v", i, err)
		}
	}
}

// TestServerStallTimeoutNormalTransfer: an armed server-side write
// watchdog must not disturb a healthy transfer.
func TestServerStallTimeoutNormalTransfer(t *testing.T) {
	ds := dataset.NewGenerator(42).Uniform(5, 200*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.StallTimeout = 2 * time.Second
	})
	client := &Client{Addr: srv.Addr(), StallTimeout: 2 * time.Second, VerifyChecksums: true}
	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	sink := NewVerifySink()
	res, err := ch.Fetch(ds.Files, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != ds.TotalSize() {
		t.Errorf("moved %v of %v", res.Bytes, ds.TotalSize())
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption: %v", bad)
	}
}

// TestErrStalledClassification pins the retry-cause taxonomy the
// executor books against the metrics family.
func TestErrStalledClassification(t *testing.T) {
	wrapped := errTagged(ErrStalled, "no bytes for 2s")
	if causeOf(wrapped) != "stall" {
		t.Errorf("wrapped ErrStalled classified as %q", causeOf(wrapped))
	}
	mismatch := errTagged(ErrChecksumMismatch, "file x")
	if causeOf(mismatch) != "checksum" {
		t.Errorf("wrapped ErrChecksumMismatch classified as %q", causeOf(mismatch))
	}
	if causeOf(errors.New("connection reset")) != "transport" {
		t.Errorf("plain error classified as %q", causeOf(errors.New("x")))
	}
}

func errTagged(sentinel error, msg string) error {
	return &taggedErr{sentinel: sentinel, msg: msg}
}

type taggedErr struct {
	sentinel error
	msg      string
}

func (e *taggedErr) Error() string { return e.sentinel.Error() + ": " + e.msg }
func (e *taggedErr) Unwrap() error { return e.sentinel }
