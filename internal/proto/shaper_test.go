package proto

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDelayQueueDeliversInOrder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	q := newDelayQueue(time.Millisecond, 16, func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("delivered %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order wrong: %v", got)
		}
	}
}

func TestDelayQueuePushAfterCloseDrops(t *testing.T) {
	var delivered atomic.Int64
	q := newDelayQueue(time.Millisecond, 4, func(int) { delivered.Add(1) })
	q.Push(1)
	q.Close()
	// Must not panic, must not deliver.
	q.Push(2)
	q.Push(3)
	if n := delivered.Load(); n != 1 {
		t.Errorf("delivered %d items, want 1", n)
	}

	// Zero-delay (synchronous) variant.
	var sync0 atomic.Int64
	q0 := newDelayQueue(0, 0, func(int) { sync0.Add(1) })
	q0.Push(1)
	q0.Close()
	q0.Push(2)
	if n := sync0.Load(); n != 1 {
		t.Errorf("zero-delay queue delivered %d items, want 1", n)
	}
}

func TestDelayQueueCloseIdempotent(t *testing.T) {
	q := newDelayQueue(time.Millisecond, 4, func(int) {})
	q.Push(1)
	q.Close()
	q.Close() // second Close must not panic or hang
}

func TestDelayQueueConcurrentPushClose(t *testing.T) {
	// Hammer Push from many goroutines while Close races them: no send
	// on a closed channel, no delivery after Close returns. Run with
	// -race to catch the original teardown panic.
	for round := 0; round < 50; round++ {
		var delivered atomic.Int64
		q := newDelayQueue(100*time.Microsecond, 2, func(int) { delivered.Add(1) })
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					q.Push(i)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			q.Close()
		}()
		close(start)
		wg.Wait()
		q.Close()
		final := delivered.Load()
		// After Close has returned, the out callback must never fire
		// again — a late delivery here means drain-on-Close is broken.
		time.Sleep(2 * time.Millisecond)
		if got := delivered.Load(); got != final {
			t.Fatalf("round %d: delivery after Close (%d -> %d)", round, final, got)
		}
	}
}
