package proto

import "sync"

// Block payload buffers on the real-TCP data path are recycled through
// size-bucketed pools so the steady state moves blocks with no
// per-block allocation: the server reads each block into a pooled
// buffer, hands it to the stream writer that owns it until the bytes
// are on the wire, and the writer returns it; each client stream loop
// holds one pooled buffer for the lifetime of its connection.
//
// Buckets are power-of-two capacities from 64 KiB to 8 MiB. Bucketing
// caps steady-state retention: a server run at a block size above
// DefaultBlockSize pools its larger buffers in their own bucket instead
// of growing every pooled buffer to the larger capacity forever, so
// mixed block sizes do not bloat the pool. Requests above the largest
// bucket allocate directly and are never pooled.
//
// Ownership rules (see DESIGN.md §6):
//
//   - whoever calls getBlockBuf must arrange exactly one putBlockBuf,
//     on every path including errors and drain-after-failure;
//   - a buffer handed across a channel belongs to the receiver;
//   - payload slices handed to a Sink.WriteAt are only valid for the
//     duration of the call — sinks must not retain them.
const (
	minBufBucketBits = 16 // 64 KiB
	maxBufBucketBits = 23 // 8 MiB
	numBufBuckets    = maxBufBucketBits - minBufBucketBits + 1
	maxPooledBufSize = 1 << maxBufBucketBits
)

var blockBufPools [numBufBuckets]sync.Pool

// bufBucketSize is the capacity of every buffer in bucket i.
func bufBucketSize(i int) int { return 1 << (minBufBucketBits + i) }

// bufBucketFor returns the smallest bucket whose capacity holds n, or
// -1 when n exceeds the largest pooled size.
func bufBucketFor(n int) int {
	for i := 0; i < numBufBuckets; i++ {
		if n <= bufBucketSize(i) {
			return i
		}
	}
	return -1
}

// getBlockBuf returns a buffer resized to length n, drawn from the
// matching size bucket (or freshly allocated above the pooled range).
func getBlockBuf(n int) *[]byte {
	i := bufBucketFor(n)
	if i < 0 {
		b := make([]byte, n)
		return &b
	}
	p, _ := blockBufPools[i].Get().(*[]byte)
	if p == nil {
		b := make([]byte, bufBucketSize(i))
		p = &b
	}
	*p = (*p)[:n]
	return p
}

// putBlockBuf returns a buffer to its size bucket. Buffers whose
// capacity matches no bucket (oversize direct allocations) are dropped
// for the garbage collector instead of pinning pool memory.
func putBlockBuf(p *[]byte) {
	if p == nil {
		return
	}
	c := cap(*p)
	i := bufBucketFor(c)
	if i < 0 || bufBucketSize(i) != c {
		return
	}
	*p = (*p)[:c]
	blockBufPools[i].Put(p)
}
