package proto

import "sync"

// blockBufPool recycles payload buffers on the real-TCP data path so
// the steady state moves blocks with no per-block allocation: the
// server reads each block into a pooled buffer, hands it to the stream
// writer that owns it until the bytes are on the wire, and the writer
// returns it; each client stream loop holds one pooled buffer for the
// lifetime of its connection.
//
// Ownership rules (see DESIGN.md §6):
//
//   - whoever calls getBlockBuf must arrange exactly one putBlockBuf,
//     on every path including errors and drain-after-failure;
//   - a buffer handed across a channel belongs to the receiver;
//   - payload slices handed to a Sink.WriteAt are only valid for the
//     duration of the call — sinks must not retain them.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, DefaultBlockSize)
		return &b
	},
}

// getBlockBuf returns a pooled buffer resized to length n, growing it
// when a server runs a block size above DefaultBlockSize.
func getBlockBuf(n int) *[]byte {
	p := blockBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putBlockBuf returns a buffer to the pool.
func putBlockBuf(p *[]byte) {
	if p == nil {
		return
	}
	blockBufPool.Put(p)
}
