package proto

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := ListenAndServe("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func synthServer(t *testing.T, ds dataset.Dataset, mutate func(*ServerConfig)) *Server {
	t.Helper()
	cfg := ServerConfig{Store: NewSynthStore(ds), Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	return startServer(t, cfg)
}

func TestBlockHeaderRoundTrip(t *testing.T) {
	f := func(id uint32, off uint64, length uint32) bool {
		var buf bytes.Buffer
		h := blockHeader{ReqID: id, Offset: off, Length: length}
		if err := writeBlockHeader(&buf, h); err != nil {
			return false
		}
		got, err := readBlockHeader(&buf)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockHeaderBadMagic(t *testing.T) {
	buf := make([]byte, blockHeaderSize)
	if _, err := readBlockHeader(bytes.NewReader(buf)); err == nil {
		t.Error("accepted zero magic")
	}
}

func TestGetLineRoundTrip(t *testing.T) {
	f := func(id uint32, offRaw, lenRaw uint32, nameRaw uint8) bool {
		names := []string{"a.dat", "dir/b.dat", "with space.bin", "span0/file00001.dat"}
		req := getRequest{
			ID:     id,
			Name:   names[int(nameRaw)%len(names)],
			Offset: int64(offRaw),
			Length: int64(lenRaw),
		}
		line := formatGet(req)
		br := bufio.NewReader(strings.NewReader(line))
		verb, fields, err := readLine(br)
		if err != nil || verb != cmdGet {
			return false
		}
		got, err := parseGet(fields)
		return err == nil && got == req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseGetErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"1", "f"},
		{"x", "f", "0", "1"},
		{"1", "f", "-1", "1"},
		{"1", "f", "0", "-1"},
	}
	for _, fields := range bad {
		if _, err := parseGet(fields); err == nil {
			t.Errorf("parseGet(%v) accepted", fields)
		}
	}
}

func TestSynthStoreDeterministicAndSeekable(t *testing.T) {
	ds := dataset.Dataset{Files: []dataset.File{{Name: "x.dat", Size: 10000}}}
	s := NewSynthStore(ds)
	whole := make([]byte, 10000)
	if n, err := s.ReadAt("x.dat", whole, 0); err != nil || n != 10000 {
		t.Fatalf("full read: n=%d err=%v", n, err)
	}
	part := make([]byte, 100)
	if _, err := s.ReadAt("x.dat", part, 4321); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, whole[4321:4421]) {
		t.Error("seeked read disagrees with sequential content")
	}
	if _, err := s.ReadAt("nope", part, 0); err == nil {
		t.Error("unknown file accepted")
	}
	if _, err := s.ReadAt("x.dat", part, 10001); err == nil {
		t.Error("offset beyond EOF accepted")
	}
	// Short read at the tail.
	if n, err := s.ReadAt("x.dat", part, 9950); err != nil || n != 50 {
		t.Errorf("tail read: n=%d err=%v", n, err)
	}
}

func TestListMatchesStore(t *testing.T) {
	ds := dataset.NewGenerator(1).ManySmall(20, units.KB, 10*units.KB)
	srv := synthServer(t, ds, nil)
	client := &Client{Addr: srv.Addr()}
	files, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 20 {
		t.Fatalf("listed %d files, want 20", len(files))
	}
	byName := map[string]units.Bytes{}
	for _, f := range ds.Files {
		byName[f.Name] = f.Size
	}
	for _, f := range files {
		if byName[f.Name] != f.Size {
			t.Errorf("file %s size %d, want %d", f.Name, f.Size, byName[f.Name])
		}
	}
}

func TestFetchIntegritySingleStream(t *testing.T) {
	ds := dataset.NewGenerator(2).ManySmall(10, 10*units.KB, 200*units.KB)
	srv := synthServer(t, ds, nil)
	counters := &Counters{}
	client := &Client{Addr: srv.Addr(), Counters: counters}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	sink := NewVerifySink()
	res, err := ch.Fetch(ds.Files, 4, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 10 || res.Bytes != ds.TotalSize() {
		t.Errorf("fetched %d files %v bytes, want 10 / %v", res.Files, res.Bytes, ds.TotalSize())
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corrupted ranges: %v", bad)
	}
	if counters.Bytes() != ds.TotalSize() || counters.Files() != 10 {
		t.Errorf("counters: %v bytes %d files", counters.Bytes(), counters.Files())
	}
}

func TestFetchIntegrityStriped(t *testing.T) {
	// Files larger than the block size force striping across streams.
	ds := dataset.NewGenerator(3).Uniform(4, 3*units.MB)
	srv := synthServer(t, ds, func(c *ServerConfig) { c.BlockSize = 128 * 1024 })
	client := &Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(4)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	sink := NewVerifySink()
	if _, err := ch.Fetch(ds.Files, 2, sink); err != nil {
		t.Fatal(err)
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("striped transfer corrupted: %v", bad)
	}
	for _, f := range ds.Files {
		if got := sink.BytesFor(f.Name); got != int64(f.Size) {
			t.Errorf("%s: %d of %d bytes", f.Name, got, f.Size)
		}
	}
}

func TestConcurrentChannels(t *testing.T) {
	ds := dataset.NewGenerator(4).ManySmall(40, 50*units.KB, 300*units.KB)
	srv := synthServer(t, ds, nil)
	client := &Client{Addr: srv.Addr(), Counters: &Counters{}}
	sink := NewVerifySink()

	const channels = 4
	var wg sync.WaitGroup
	errs := make([]error, channels)
	for i := 0; i < channels; i++ {
		part := ds.Files[i*10 : (i+1)*10]
		wg.Add(1)
		go func(i int, files []dataset.File) {
			defer wg.Done()
			ch, err := client.OpenChannel(2)
			if err != nil {
				errs[i] = err
				return
			}
			defer ch.Close()
			_, errs[i] = ch.Fetch(files, 4, sink)
		}(i, part)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("concurrent transfer corrupted: %v", bad)
	}
	if got := client.Counters.Bytes(); got != ds.TotalSize() {
		t.Errorf("moved %v, want %v", got, ds.TotalSize())
	}
}

func TestParallelismBeatsSingleStreamUnderPerStreamCap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ds := dataset.NewGenerator(5).Uniform(2, 2*units.MB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 20 * units.Mbps
		c.BlockSize = 64 * 1024
	})
	run := func(par int) time.Duration {
		client := &Client{Addr: srv.Addr()}
		ch, err := client.OpenChannel(par)
		if err != nil {
			t.Fatal(err)
		}
		defer ch.Close()
		start := time.Now()
		if _, err := ch.Fetch(ds.Files, 2, NewVerifySink()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4 streams (%v) not faster than 1 (%v) under per-stream cap", four, one)
	}
}

func TestPipeliningHidesControlRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ds := dataset.NewGenerator(6).Uniform(20, 8*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.ControlRTT = 30 * time.Millisecond
	})
	run := func(pipe int) time.Duration {
		client := &Client{Addr: srv.Addr()}
		ch, err := client.OpenChannel(1)
		if err != nil {
			t.Fatal(err)
		}
		defer ch.Close()
		start := time.Now()
		if _, err := ch.Fetch(ds.Files, pipe, NewVerifySink()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	unpipelined := run(1)
	pipelined := run(10)
	// 20 files × 30 ms RTT ≈ 600 ms unpipelined; pipelining hides most
	// of it.
	if pipelined > unpipelined*2/3 {
		t.Errorf("pipelining saved too little: q=1 %v vs q=10 %v", unpipelined, pipelined)
	}
}

func TestDirStoreAndDirSinkRoundTrip(t *testing.T) {
	srcDir := t.TempDir()
	dstDir := t.TempDir()
	want := map[string][]byte{
		"a.bin":       bytes.Repeat([]byte{0xAB}, 1000),
		"sub/b.bin":   []byte("hello transfer world"),
		"sub/c empty": {},
	}
	for name, content := range want {
		path := filepath.Join(srcDir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv := startServer(t, ServerConfig{Store: DirStore{Root: srcDir}, Logf: t.Logf})
	client := &Client{Addr: srv.Addr()}
	files, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(want) {
		t.Fatalf("listed %d files, want %d", len(files), len(want))
	}
	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	sink := NewDirSink(dstDir)
	if _, err := ch.Fetch(files, 3, sink); err != nil {
		t.Fatal(err)
	}
	for name, content := range want {
		got, err := os.ReadFile(filepath.Join(dstDir, filepath.FromSlash(name)))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if !bytes.Equal(got, content) {
			t.Errorf("%s: content mismatch (%d vs %d bytes)", name, len(got), len(content))
		}
	}
}

func TestDirStorePathEscapeRejected(t *testing.T) {
	s := DirStore{Root: t.TempDir()}
	buf := make([]byte, 10)
	if _, err := s.ReadAt("../etc/passwd", buf, 0); err == nil {
		t.Error("path escape accepted")
	}
	if _, err := s.ReadAt("/etc/passwd", buf, 0); err == nil {
		t.Error("absolute path accepted")
	}
}

func TestDirSinkPathEscapeRejected(t *testing.T) {
	s := NewDirSink(t.TempDir())
	if _, err := s.WriteAt("../evil", []byte("x"), 0); err == nil {
		t.Error("sink path escape accepted")
	}
}

func TestOpenChannelValidation(t *testing.T) {
	ds := dataset.NewGenerator(7).Uniform(1, units.KB)
	srv := synthServer(t, ds, nil)
	client := &Client{Addr: srv.Addr()}
	if _, err := client.OpenChannel(0); err == nil {
		t.Error("parallelism 0 accepted")
	}
	bad := &Client{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond}
	if _, err := bad.OpenChannel(1); err == nil {
		t.Error("dial to dead port succeeded")
	}
	if _, err := bad.List(); err == nil {
		t.Error("list from dead port succeeded")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	ds := dataset.NewGenerator(8).Uniform(1, units.KB)
	srv := synthServer(t, ds, nil)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "BOGUS nonsense\n")
	br := bufio.NewReader(conn)
	verb, _, err := readLine(br)
	if err != nil || verb != respErr {
		t.Errorf("expected ERR, got %q err %v", verb, err)
	}
}

func TestServerUnknownDataSession(t *testing.T) {
	ds := dataset.NewGenerator(9).Uniform(1, units.KB)
	srv := synthServer(t, ds, nil)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "DATA 99999 0\n")
	verb, _, err := readLine(bufio.NewReader(conn))
	if err != nil || verb != respErr {
		t.Errorf("expected ERR, got %q err %v", verb, err)
	}
}

func TestFetchMissingFile(t *testing.T) {
	ds := dataset.NewGenerator(10).Uniform(1, units.KB)
	srv := synthServer(t, ds, nil)
	client := &Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	ghost := []dataset.File{{Name: "ghost.dat", Size: 100}}
	if _, err := ch.Fetch(ghost, 1, NewVerifySink()); err == nil {
		t.Error("fetching a missing file succeeded")
	}
	// The channel survives the error for subsequent requests.
	if _, err := ch.Fetch(ds.Files, 1, NewVerifySink()); err != nil {
		t.Errorf("channel dead after recoverable error: %v", err)
	}
}

func TestZeroByteFile(t *testing.T) {
	ds := dataset.Dataset{Files: []dataset.File{{Name: "empty.dat", Size: 0}}}
	srv := synthServer(t, ds, nil)
	client := &Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	res, err := ch.Fetch(ds.Files, 1, NewVerifySink())
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 1 || res.Bytes != 0 {
		t.Errorf("zero-byte fetch result: %+v", res)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	ds := dataset.NewGenerator(11).Uniform(50, 2*units.MB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 1 * units.Mbps // slow enough to still be mid-flight
	})
	client := &Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := ch.Fetch(ds.Files, 2, NewVerifySink())
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("fetch succeeded despite server shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch did not unblock after server close")
	}
}

func TestLimiterThrottles(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	l := NewLimiter(8 * 100 * 1024) // 100 KiB/s
	start := time.Now()
	l.Wait(50 * 1024) // burst covers the first 64 KiB... wait for refill
	l.Wait(50 * 1024)
	elapsed := time.Since(start)
	// 100 KiB through a 100 KiB/s bucket with 64 KiB burst ≥ ~0.35 s.
	if elapsed < 300*time.Millisecond {
		t.Errorf("limiter too permissive: %v", elapsed)
	}
	var unlimited *Limiter
	unlimited.Wait(1 << 20) // must not panic or block
	NewLimiter(0).Wait(1 << 20)
}

func TestFillSynthStable(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	FillSynth("f", 0, a)
	FillSynth("f", 32, b[:32])
	if !bytes.Equal(a[32:], b[:32]) {
		t.Error("offset reads not consistent")
	}
	FillSynth("g", 0, b)
	if bytes.Equal(a, b) {
		t.Error("different files produced identical content")
	}
}

func TestServerStats(t *testing.T) {
	ds := dataset.NewGenerator(40).Uniform(5, 100*units.KB)
	srv := synthServer(t, ds, nil)
	if st := srv.Stats(); st.TotalSessions != 0 || st.BytesServed != 0 {
		t.Errorf("fresh server stats: %+v", st)
	}
	client := &Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Fetch(ds.Files, 2, NewVerifySink()); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.ActiveSessions != 1 || st.TotalSessions != 1 {
		t.Errorf("session counters: %+v", st)
	}
	if st.RequestsServed != 5 || st.BytesServed != ds.TotalSize() {
		t.Errorf("request counters: %+v (want 5 / %v)", st, ds.TotalSize())
	}
	ch.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().ActiveSessions != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Stats().ActiveSessions; got != 0 {
		t.Errorf("session not reaped: %d active", got)
	}
}
