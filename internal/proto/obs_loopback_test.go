package proto

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/units"
)

// TestObsLoopbackCountersMatchReport is the observability acceptance
// check: a fully instrumented loopback transfer must produce an event
// log that parses line-by-line and a metrics snapshot whose headline
// counters agree exactly with the transfer report.
func TestObsLoopbackCountersMatchReport(t *testing.T) {
	ds := dataset.NewGenerator(60).Uniform(12, 300*units.KB)
	srvReg := obs.NewRegistry()
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.Metrics = srvReg
		c.Events = obs.NewLog(nil)
	})

	reg := obs.NewRegistry()
	var journal bytes.Buffer
	events := obs.NewLog(&journal)
	exec := &Executor{
		Client:      &Client{Addr: srv.Addr(), Counters: &Counters{}, VerifyChecksums: true},
		Sink:        NewVerifySink(),
		Environment: testEnv(),
		Metrics:     reg,
		Events:      events,
	}
	plan := planFor(ds, 2, 2, 3)
	r, err := exec.Run(nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := events.Err(); err != nil {
		t.Fatalf("event log write error: %v", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["bytes_received"]; got != int64(r.Bytes) {
		t.Errorf("bytes_received = %d, report says %d", got, int64(r.Bytes))
	}
	if got := snap.Counters["files_completed"]; got != r.Files || got != int64(len(ds.Files)) {
		t.Errorf("files_completed = %d, report says %d, dataset has %d",
			got, r.Files, len(ds.Files))
	}
	if got := snap.Counters["retries_total"]; got != r.Retries || got != 0 {
		t.Errorf("retries_total = %d, report says %d (clean loopback should need none)",
			got, r.Retries)
	}
	if snap.Counters["transfers_started"] != 1 || snap.Counters["transfers_finished"] != 1 {
		t.Errorf("transfer lifecycle counters wrong: %v", snap.Counters)
	}
	if snap.Counters["channels_dialed"] == 0 {
		t.Error("no channel dials recorded")
	}
	if snap.Counters["gets_issued"] == 0 || snap.Counters["gets_settled"] != snap.Counters["gets_issued"] {
		t.Errorf("GET accounting wrong: issued=%d settled=%d failed=%d",
			snap.Counters["gets_issued"], snap.Counters["gets_settled"], snap.Counters["gets_failed"])
	}

	// The server side keeps its own registry: every byte we received it
	// served, on one session.
	srvSnap := srvReg.Snapshot()
	if got := srvSnap.Counters["server_bytes_served"]; got != int64(r.Bytes) {
		t.Errorf("server_bytes_served = %d, client received %d", got, int64(r.Bytes))
	}
	if srvSnap.Counters["server_sessions_total"] == 0 {
		t.Error("no server sessions recorded")
	}
	if srvSnap.Counters["server_requests_failed"] != 0 {
		t.Errorf("server_requests_failed = %d on a clean run", srvSnap.Counters["server_requests_failed"])
	}

	// Every event line must be valid JSON with the envelope keys, and the
	// lifecycle events must appear.
	types := map[string]int{}
	lastSeq := int64(0)
	sc := bufio.NewScanner(&journal)
	for line := 1; sc.Scan(); line++ {
		var ev struct {
			Seq  int64  `json:"seq"`
			T    string `json:"t"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d does not parse: %v\n%s", line, err, sc.Text())
		}
		if ev.Seq <= lastSeq || ev.T == "" || ev.Type == "" {
			t.Fatalf("event line %d envelope wrong: %s", line, sc.Text())
		}
		lastSeq = ev.Seq
		types[ev.Type]++
	}
	for _, want := range []string{
		obs.EvTransferStarted, obs.EvTransferFinished,
		obs.EvChannelDialed, obs.EvGetIssued, obs.EvGetSettled,
	} {
		if types[want] == 0 {
			t.Errorf("no %q event in the journal (saw %v)", want, types)
		}
	}
	if types[obs.EvTransferStarted] != 1 || types[obs.EvTransferFinished] != 1 {
		t.Errorf("lifecycle events wrong: %v", types)
	}
	if got := types[obs.EvGetSettled]; got != int(snap.Counters["gets_settled"]) {
		t.Errorf("%d get_settled events, counter says %d", got, snap.Counters["gets_settled"])
	}
}
