package proto

import (
	"errors"
	"sync"
	"testing"

	"github.com/didclab/eta/internal/obs"
)

func TestEndpointPoolConcurrentAccess(t *testing.T) {
	// Hammer every pool entry point from many goroutines at once. The
	// test asserts no torn state escapes (indices in range, health
	// snapshots sized right); the -race runs in CI do the heavy lifting.
	eps, err := ParseEndpoints("a:1=2,b:2,c:3=5,d:4")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewEndpointPool(eps...)
	if err != nil {
		t.Fatal(err)
	}
	pool.Metrics = obs.NewRegistry()
	pool.Events = obs.NewLog(nil)

	const (
		goroutines = 16
		iters      = 500
	)
	failure := errors.New("synthetic endpoint failure")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx, addr := pool.Pick()
				if idx < 0 || idx >= pool.Len() || addr == "" {
					t.Errorf("Pick returned out-of-range endpoint %d (%q)", idx, addr)
					return
				}
				// Mix outcomes so endpoints cross the failure threshold,
				// enter probation, and recover — all concurrently.
				if (g+i)%3 == 0 {
					pool.ReportFailure(idx, failure)
				} else {
					pool.ReportSuccess(idx)
				}
				if h := pool.Health(); len(h) != pool.Len() {
					t.Errorf("Health returned %d entries for %d endpoints", len(h), pool.Len())
					return
				}
				if n := pool.HealthyCount(); n < 0 || n > pool.Len() {
					t.Errorf("HealthyCount = %d with %d endpoints", n, pool.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles the pool must still hand out endpoints.
	if idx, addr := pool.Pick(); idx < 0 || addr == "" {
		t.Errorf("pool unusable after concurrent churn: Pick = %d, %q", idx, addr)
	}
}
