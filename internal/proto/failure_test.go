package proto

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// chaosProxy forwards TCP to a backend and can kill every live
// connection on demand — the failure-injection harness for transport
// resilience tests.
type chaosProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup
}

func newChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend}
	go p.acceptLoop()
	t.Cleanup(func() { p.close() })
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, server)
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(client, server)
		go p.pipe(server, client)
	}
}

func (p *chaosProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	dst.Close()
	src.Close()
}

// killAll severs every live connection (both directions).
func (p *chaosProxy) killAll() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *chaosProxy) close() {
	p.ln.Close()
	p.killAll()
	p.wg.Wait()
}

func TestExecutorSurvivesConnectionKill(t *testing.T) {
	ds := dataset.NewGenerator(50).Uniform(30, 400*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 60 * units.Mbps // slow enough that the kill lands mid-flight
	})
	proxy := newChaosProxy(t, srv.Addr())

	sink := NewVerifySink()
	exec := &Executor{
		Client:      &Client{Addr: proxy.addr(), Counters: &Counters{}, VerifyChecksums: true},
		Sink:        sink,
		Environment: testEnv(),
		MaxRetries:  4,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 3}
	plan := planForChunk(chunk, 2)

	sess, err := exec.Start(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// Let the transfer get going, then rip out every connection twice.
	for i := 0; i < 2; i++ {
		time.Sleep(150 * time.Millisecond)
		proxy.killAll()
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive connection kill: %v", err)
	}
	// Retried files re-send bytes, so the wire count may exceed the
	// dataset size — what matters is that every file arrived complete
	// and uncorrupted.
	if r.Bytes < ds.TotalSize() {
		t.Errorf("moved only %v of %v after kills", r.Bytes, ds.TotalSize())
	}
	for _, f := range ds.Files {
		if got := sink.BytesFor(f.Name); got < int64(f.Size) {
			t.Errorf("%s incomplete after retries: %d of %d", f.Name, got, f.Size)
		}
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption after retries: %v", bad)
	}
}

func TestExecutorFailsWithoutRetryBudget(t *testing.T) {
	ds := dataset.NewGenerator(51).Uniform(20, 500*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 40 * units.Mbps
	})
	proxy := newChaosProxy(t, srv.Addr())
	exec := &Executor{
		Client:      &Client{Addr: proxy.addr(), Counters: &Counters{}},
		Sink:        NewVerifySink(),
		Environment: testEnv(),
		MaxRetries:  0,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	proxy.killAll()
	if _, err := sess.Finish(); err == nil {
		t.Error("zero-retry transfer survived a connection kill")
	}
}

func planForChunk(chunk dataset.Chunk, channels int) transfer.Plan {
	return transfer.Plan{
		Chunks: []transfer.ChunkPlan{{Chunk: chunk, Channels: channels, Weight: 1, AcceptRealloc: true}},
	}
}
