package proto

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// chaosProxy forwards TCP to a backend and can kill every live
// connection on demand — the failure-injection harness for transport
// resilience tests. stop/restart model a full outage: while stopped,
// even new dials fail.
type chaosProxy struct {
	backend  string
	listenAt string

	mu    sync.Mutex
	ln    net.Listener
	conns []net.Conn
	wg    sync.WaitGroup
}

func newChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{backend: backend, listenAt: ln.Addr().String(), ln: ln}
	go p.acceptLoop(ln)
	t.Cleanup(func() { p.close() })
	return p
}

func (p *chaosProxy) addr() string { return p.listenAt }

// stop closes the listener and severs every live connection; until
// restart, dials to the proxy fail outright.
func (p *chaosProxy) stop() {
	p.mu.Lock()
	ln := p.ln
	p.ln = nil
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.killAll()
}

// restart re-binds the proxy's original address after a stop.
func (p *chaosProxy) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", p.listenAt)
	if err != nil {
		t.Fatalf("chaosProxy restart: %v", err)
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	go p.acceptLoop(ln)
}

func (p *chaosProxy) acceptLoop(ln net.Listener) {
	for {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, server)
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(client, server)
		go p.pipe(server, client)
	}
}

func (p *chaosProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	dst.Close()
	src.Close()
}

// killAll severs every live connection (both directions).
func (p *chaosProxy) killAll() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *chaosProxy) close() {
	p.stop()
	p.wg.Wait()
}

func TestExecutorSurvivesConnectionKill(t *testing.T) {
	ds := dataset.NewGenerator(50).Uniform(30, 400*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 60 * units.Mbps // slow enough that the kill lands mid-flight
	})
	proxy := newChaosProxy(t, srv.Addr())

	sink := NewVerifySink()
	exec := &Executor{
		Client:      &Client{Addr: proxy.addr(), Counters: &Counters{}, VerifyChecksums: true},
		Sink:        sink,
		Environment: testEnv(),
		MaxRetries:  4,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 3}
	plan := planForChunk(chunk, 2)

	sess, err := exec.Start(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// Let the transfer get going, then rip out every connection twice.
	for i := 0; i < 2; i++ {
		time.Sleep(150 * time.Millisecond)
		proxy.killAll()
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive connection kill: %v", err)
	}
	// Retried files re-send bytes, so the wire count may exceed the
	// dataset size — what matters is that every file arrived complete
	// and uncorrupted.
	if r.Bytes < ds.TotalSize() {
		t.Errorf("moved only %v of %v after kills", r.Bytes, ds.TotalSize())
	}
	for _, f := range ds.Files {
		if got := sink.BytesFor(f.Name); got < int64(f.Size) {
			t.Errorf("%s incomplete after retries: %d of %d", f.Name, got, f.Size)
		}
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption after retries: %v", bad)
	}
}

func TestExecutorRedialsThroughOutage(t *testing.T) {
	// Kill the listener itself, not just the connections: every re-dial
	// fails until the proxy comes back. The executor must keep retrying
	// within its budget (the original code gave up on the first failed
	// re-dial) and complete once service is restored.
	ds := dataset.NewGenerator(52).Uniform(24, 400*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 60 * units.Mbps
	})
	proxy := newChaosProxy(t, srv.Addr())

	reg := obs.NewRegistry()
	sink := NewVerifySink()
	exec := &Executor{
		Client:      &Client{Addr: proxy.addr(), Counters: &Counters{}, VerifyChecksums: true},
		Sink:        sink,
		Environment: testEnv(),
		MaxRetries:  16,
		Metrics:     reg,
		Events:      obs.NewLog(nil),
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 3}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 2))
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(150 * time.Millisecond)
	proxy.stop()
	// Long enough that re-dials fail repeatedly (backoff starts at 5 ms),
	// short enough that the 16-attempt budget cannot be exhausted.
	time.Sleep(250 * time.Millisecond)
	proxy.restart(t)

	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive the outage: %v", err)
	}
	if r.Retries == 0 {
		t.Error("no retries recorded across a full outage")
	}
	if got := reg.Snapshot().Counters["retries_total"]; got != r.Retries {
		t.Errorf("retries_total = %d, report says %d", got, r.Retries)
	}
	for _, f := range ds.Files {
		if got := sink.BytesFor(f.Name); got < int64(f.Size) {
			t.Errorf("%s incomplete after outage: %d of %d", f.Name, got, f.Size)
		}
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption after outage: %v", bad)
	}
}

func TestExecutorFailsWithoutRetryBudget(t *testing.T) {
	ds := dataset.NewGenerator(51).Uniform(20, 500*units.KB)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 40 * units.Mbps
	})
	proxy := newChaosProxy(t, srv.Addr())
	exec := &Executor{
		Client:      &Client{Addr: proxy.addr(), Counters: &Counters{}},
		Sink:        NewVerifySink(),
		Environment: testEnv(),
		MaxRetries:  0,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	proxy.killAll()
	if _, err := sess.Finish(); err == nil {
		t.Error("zero-retry transfer survived a connection kill")
	}
}

func planForChunk(chunk dataset.Chunk, channels int) transfer.Plan {
	return transfer.Plan{
		Chunks: []transfer.ChunkPlan{{Chunk: chunk, Channels: channels, Weight: 1, AcceptRealloc: true}},
	}
}
