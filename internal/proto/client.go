package proto

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/units"
)

// Counters aggregates live transfer statistics across channels; the
// adaptive algorithms sample it to compute window throughput.
type Counters struct {
	bytes atomic.Int64
	files atomic.Int64
}

// AddBytes books received payload bytes.
func (c *Counters) AddBytes(n int64) { c.bytes.Add(n) }

// Bytes returns total payload bytes received so far.
func (c *Counters) Bytes() units.Bytes { return units.Bytes(c.bytes.Load()) }

// Files returns the number of completed files.
func (c *Counters) Files() int64 { return c.files.Load() }

// Client opens transfer channels to one server — or, when Endpoints is
// set, to a pool of server replicas with channels placed weighted
// round-robin across the healthy ones.
type Client struct {
	// Addr is the single server address; ignored when Endpoints is set.
	Addr string
	// Endpoints optionally names N server replicas with placement
	// weights and per-endpoint health tracking. Each OpenChannel draws
	// the next healthy endpoint from the pool and dials the whole
	// channel (control plus data streams) against it; dial/handshake
	// failures are booked against that endpoint so a dead replica is
	// blacklisted out of rotation and probed back in later. Set before
	// the first OpenChannel.
	Endpoints *EndpointPool
	// DialTimeout bounds each TCP dial; 10 s when zero.
	DialTimeout time.Duration
	// Counters receives live statistics; optional.
	Counters *Counters
	// VerifyChecksums makes every fetched file's content CRC-32C be
	// recomputed from the received blocks (combined across the striped
	// streams) and compared with the server's DONE checksum. This is
	// the integrity feature Globus Online ships with — the paper
	// disables it there "to do fair comparison" because it costs
	// throughput. A mismatch surfaces as ErrChecksumMismatch, which the
	// executor answers by re-fetching the file against the retry
	// budget.
	VerifyChecksums bool
	// BlockSize is the striping unit the server is expected to use; it
	// sizes each stream's read buffer and pooled payload buffer so a
	// whole block is absorbed without splitting reads. DefaultBlockSize
	// when zero. A mismatch is only a performance miss: a larger server
	// block is handled by growing the payload buffer on arrival.
	BlockSize int
	// StallTimeout arms the per-channel stall watchdog: when requests
	// are outstanding and no bytes arrive on any of the channel's
	// connections for this long, every pending request fails with
	// ErrStalled and the connections are severed (feeding the
	// executor's retry/re-dial path). It also bounds each handshake
	// read. Zero disables the watchdog — a black-holed connection then
	// hangs forever, exactly as before. Set it comfortably above the
	// path's worst-case quiet period (RTT plus scheduling jitter); an
	// idle channel with nothing outstanding never trips.
	StallTimeout time.Duration
	// Journal, when set, receives one block receipt (file, offset,
	// length, CRC-32C) for every payload block written to the sink — the
	// write-ahead record PlanResume replays after a crash. The CRC is
	// computed on the receive path whether or not VerifyChecksums is on
	// (the two share the single per-block Checksum call).
	Journal *Journal
	// Metrics receives live client counters (bytes_received,
	// gets_issued, ...); optional. Set before the first OpenChannel.
	Metrics *obs.Registry
	// Events receives structured transfer events; optional.
	Events *obs.Log
	// Trace, when set, opens a channel span (with dial/stream/GET child
	// spans) per OpenChannel. Channels opened while an executor session
	// is running parent under its transfer root; standalone channels
	// start their own trace.
	Trace *span.Tracer

	// traceParent is the span new channels parent under (the executor's
	// transfer root while a session runs; nil otherwise).
	traceParent atomic.Pointer[span.Span]

	instOnce sync.Once
	inst     clientInstruments

	epOnce sync.Once
	epPool *EndpointPool
}

// setTraceParent installs (or, with nil, clears) the span that channels
// opened from now on parent under.
func (c *Client) setTraceParent(sp *span.Span) {
	c.traceParent.Store(sp)
}

// pool returns the client's endpoint pool, lazily building a
// single-endpoint pool around Addr when none was configured — so the
// single-server and multi-endpoint paths share one code path. The
// pool inherits the client's Metrics/Events on first use unless it
// brought its own.
func (c *Client) pool() *EndpointPool {
	c.epOnce.Do(func() {
		if c.Endpoints != nil {
			c.epPool = c.Endpoints
		} else {
			c.epPool = &EndpointPool{now: time.Now, eps: []*epState{{ep: Endpoint{Addr: c.Addr, Weight: 1}}}}
		}
		if c.epPool.Metrics == nil {
			c.epPool.Metrics = c.Metrics
		}
		if c.epPool.Events == nil {
			c.epPool.Events = c.Events
		}
	})
	return c.epPool
}

// Target describes the client's server set for reports: the single
// address, or every pool address joined with '+'.
func (c *Client) Target() string {
	if c.Endpoints == nil {
		return c.Addr
	}
	addrs := make([]string, c.Endpoints.Len())
	for i := range addrs {
		addrs[i] = c.Endpoints.Addr(i)
	}
	return strings.Join(addrs, "+")
}

// clientInstruments caches the client-side metrics so the per-block
// receive path costs one nil check instead of a registry lookup.
type clientInstruments struct {
	bytesReceived  *obs.Counter
	filesCompleted *obs.Counter
	getsIssued     *obs.Counter
	getsSettled    *obs.Counter
	getsFailed     *obs.Counter
	channelsDialed *obs.Counter
	stallsDetected *obs.Counter
	settleMS       *obs.Histogram

	dialsByEndpoint *obs.Family
	dialFailsByEP   *obs.Family
}

// instruments resolves the client's metric handles once; with no
// Metrics registry every handle is nil and every update a no-op.
func (c *Client) instruments() *clientInstruments {
	c.instOnce.Do(func() {
		r := c.Metrics
		c.inst = clientInstruments{
			bytesReceived:   r.Counter("bytes_received"),
			filesCompleted:  r.Counter("files_completed"),
			getsIssued:      r.Counter("gets_issued"),
			getsSettled:     r.Counter("gets_settled"),
			getsFailed:      r.Counter("gets_failed"),
			channelsDialed:  r.Counter("channels_dialed"),
			stallsDetected:  r.Counter("stalls_detected"),
			settleMS:        r.Histogram("get_settle_ms"),
			dialsByEndpoint: r.Family("channels_dialed_by_endpoint", "endpoint"),
			dialFailsByEP:   r.Family("dial_failures_by_endpoint", "endpoint"),
		}
	})
	return &c.inst
}

func (c *Client) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return DefaultBlockSize
}

func (c *Client) dial(addr string) (net.Conn, error) {
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// List fetches the file manifest over a throwaway control connection.
// With an endpoint pool configured the replicas serve one dataset, so a
// failing endpoint is booked against its health record and the next one
// tried — every endpoint gets one attempt before List gives up.
func (c *Client) List() ([]dataset.File, error) {
	pool := c.pool()
	var lastErr error
	for attempt := 0; attempt < pool.Len(); attempt++ {
		idx, addr := pool.Pick()
		files, err := c.listFrom(addr)
		if err == nil {
			pool.ReportSuccess(idx)
			return files, nil
		}
		pool.ReportFailure(idx, err)
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) listFrom(addr string) ([]dataset.File, error) {
	conn, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	// With a stall timeout configured every response read gets a
	// rolling deadline: a black-holed server fails the listing instead
	// of hanging it.
	arm := func() {
		if c.StallTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(c.StallTimeout))
		}
	}
	br := bufio.NewReader(conn)
	if _, err := io.WriteString(conn, "HELLO\n"); err != nil {
		return nil, err
	}
	arm()
	if verb, _, err := readLine(br); err != nil || verb != respOK {
		if err != nil {
			// %w, not %v: callers classify with errors.Is (net timeouts,
			// io.EOF), and a stripped chain would misbook the retry cause.
			return nil, fmt.Errorf("proto: handshake failed: %w", err)
		}
		return nil, fmt.Errorf("proto: handshake failed (verb %q)", verb)
	}
	if _, err := io.WriteString(conn, cmdList+"\n"); err != nil {
		return nil, err
	}
	var files []dataset.File
	for {
		arm()
		verb, fields, err := readLine(br)
		if err != nil {
			return nil, err
		}
		switch verb {
		case respFile:
			if len(fields) != 2 {
				return nil, fmt.Errorf("proto: malformed FILE line %v", fields)
			}
			size, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil || size < 0 {
				return nil, fmt.Errorf("proto: bad file size %q", fields[0])
			}
			files = append(files, dataset.File{Name: unescapeName(fields[1]), Size: units.Bytes(size)})
		case respEnd:
			_, _ = io.WriteString(conn, cmdQuit+"\n")
			return files, nil
		case respErr:
			return nil, fmt.Errorf("proto: server error: %v", fields)
		default:
			return nil, fmt.Errorf("proto: unexpected %q during LIST", verb)
		}
	}
}

// Channel is one concurrency unit: a control connection plus
// `parallelism` striped data streams. A channel fetches one file at a
// time but keeps up to `pipelining` GETs outstanding on the control
// channel.
type Channel struct {
	client *Client
	ctrl   net.Conn
	br     *bufio.Reader
	sid    uint64
	inst   *clientInstruments
	ep     int    // endpoint pool index this channel is placed on
	epAddr string // the endpoint's address
	// span covers the channel's whole lifetime (dial through Close);
	// nil when untraced.
	span *span.Span

	streams []net.Conn

	mu      sync.Mutex
	pending map[uint32]*pendingGet
	nextID  uint32
	readErr error

	// progress counts bytes read off every connection; the stall
	// watchdog (when armed) compares it between checks.
	progress  atomic.Int64
	watchStop chan struct{} // nil when no watchdog is running

	wg     sync.WaitGroup
	closed atomic.Bool
}

type pendingGet struct {
	name     string
	offset   int64
	length   int64
	issued   time.Time
	sink     Sink
	span     *span.Span // issue → settle; nil when untraced
	received atomic.Int64
	ctrlDone chan struct{} // DONE/ERR line arrived
	dataDone chan struct{} // all payload bytes arrived
	crc      uint32
	err      error
	once     sync.Once
	dataOnce sync.Once

	blockMu sync.Mutex
	blocks  []blockCRC

	failMu  sync.Mutex
	failErr error // transport failure recorded after ctrlDone already fired
}

// abort records a transport failure for an unfinished request. The DONE
// acknowledgement can outrun payload blocks that then never arrive (the
// server wrote everything into socket buffers before the path died), in
// which case finishCtrl is a no-op and the failure must be recorded
// separately — otherwise finish would misread the missing blocks as a
// checksum-tiling corruption. A request whose payload fully arrived is
// left successful.
func (p *pendingGet) abort(err error) {
	p.finishCtrl(0, err)
	<-p.ctrlDone // closed: either just now or by an earlier DONE/ERR
	if p.err == nil && p.received.Load() < p.length {
		p.failMu.Lock()
		if p.failErr == nil {
			p.failErr = err
		}
		p.failMu.Unlock()
	}
	p.dataOnce.Do(func() { close(p.dataDone) })
}

// transportErr returns the failure recorded by abort, if any.
func (p *pendingGet) transportErr() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failErr
}

// recordBlock remembers a received block's precomputed CRC for later
// combination.
func (p *pendingGet) recordBlock(off, n int64, c uint32) {
	p.blockMu.Lock()
	p.blocks = append(p.blocks, blockCRC{off: off, n: n, crc: c})
	p.blockMu.Unlock()
}

// verifyChecksum combines the block CRCs and compares them with the
// server's whole-file checksum.
func (p *pendingGet) verifyChecksum() error {
	p.blockMu.Lock()
	defer p.blockMu.Unlock()
	normalized := make([]blockCRC, len(p.blocks))
	for i, b := range p.blocks {
		normalized[i] = blockCRC{off: b.off - p.offset, n: b.n, crc: b.crc}
	}
	got, ok := combineBlocks(normalized, p.length)
	if !ok {
		return fmt.Errorf("%w: %s: received blocks do not tile the requested range", ErrChecksumMismatch, p.name)
	}
	if got != p.crc {
		return fmt.Errorf("%w: %s: got %08x, server sent %08x", ErrChecksumMismatch, p.name, got, p.crc)
	}
	return nil
}

func (p *pendingGet) finishCtrl(crc uint32, err error) {
	p.once.Do(func() {
		p.crc = crc
		p.err = err
		close(p.ctrlDone)
	})
}

func (p *pendingGet) addBytes(n int64) {
	if p.received.Add(n) >= p.length {
		p.dataOnce.Do(func() { close(p.dataDone) })
	}
}

// OpenChannel dials a control connection and `parallelism` data
// streams against the next healthy endpoint (weighted round-robin when
// a pool is configured; the single Addr otherwise). Dial or handshake
// failures are booked against that endpoint's health record.
func (c *Client) OpenChannel(parallelism int) (*Channel, error) {
	if parallelism < 1 {
		return nil, fmt.Errorf("proto: parallelism %d < 1", parallelism)
	}
	pool := c.pool()
	ep, addr := pool.Pick()
	// The channel span runs dial through Close; the dial child covers
	// just the handshake (ctrl dial, HELLO, DATA streams, OPEN). A
	// channel opened outside an executor session roots its own trace.
	chSpan := c.Trace.StartChild(c.traceParent.Load(), span.NameChannel,
		"endpoint", ep, "addr", addr, "parallelism", parallelism)
	dialSpan := chSpan.Child(span.NameChannelDial)
	// openFail books an endpoint-open failure exactly once per path.
	openFail := func(err error) error {
		pool.ReportFailure(ep, err)
		c.instruments().dialFailsByEP.With(endpointLabel(ep)).Inc()
		dialSpan.End("error", err.Error())
		chSpan.End("error", err.Error())
		return err
	}
	ctrl, err := c.dial(addr)
	if err != nil {
		return nil, openFail(err)
	}
	ch := &Channel{
		client:  c,
		ctrl:    ctrl,
		inst:    c.instruments(),
		ep:      ep,
		epAddr:  addr,
		span:    chSpan,
		pending: make(map[uint32]*pendingGet),
	}
	// Every connection reads through a progress counter so the stall
	// watchdog can tell "slow" from "dead"; handshake reads get a
	// plain deadline (a definite response is expected, so a stall here
	// is immediately fatal rather than watchdog-detected).
	ch.br = bufio.NewReader(progressConn{Conn: ctrl, progress: &ch.progress})
	armCtrl := func() {
		if c.StallTimeout > 0 {
			_ = ctrl.SetReadDeadline(time.Now().Add(c.StallTimeout))
		}
	}
	if _, err := io.WriteString(ctrl, "HELLO\n"); err != nil {
		ctrl.Close()
		return nil, openFail(err)
	}
	armCtrl()
	verb, fields, err := readLine(ch.br)
	if err != nil {
		ctrl.Close()
		// %w keeps the cause visible to errors.Is so the executor books
		// the retry under the right budget (timeout vs transport).
		return nil, openFail(fmt.Errorf("proto: handshake failed: %w", err))
	}
	if verb != respOK || len(fields) != 1 {
		ctrl.Close()
		return nil, openFail(fmt.Errorf("proto: handshake failed (verb %q fields %v)", verb, fields))
	}
	sid, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		ctrl.Close()
		return nil, openFail(fmt.Errorf("proto: bad session id %q", fields[0]))
	}
	ch.sid = sid

	for i := 0; i < parallelism; i++ {
		data, err := c.dial(addr)
		if err != nil {
			ch.Close()
			return nil, openFail(err)
		}
		// The DATA handshake is one short write, but a black-holed
		// server with a full TCP window would park it forever; bound it
		// like the control reads, then clear — steady-state data conns
		// are the watchdog's job.
		if c.StallTimeout > 0 {
			_ = data.SetWriteDeadline(time.Now().Add(c.StallTimeout))
		}
		if _, err := fmt.Fprintf(data, "%s %d %d\n", cmdData, sid, i); err != nil {
			data.Close()
			ch.Close()
			return nil, openFail(err)
		}
		if c.StallTimeout > 0 {
			_ = data.SetWriteDeadline(time.Time{})
		}
		ch.streams = append(ch.streams, progressConn{Conn: data, progress: &ch.progress})
	}
	if _, err := fmt.Fprintf(ctrl, "%s %d\n", cmdOpen, parallelism); err != nil {
		ch.Close()
		return nil, openFail(err)
	}
	armCtrl()
	if verb, fields, err := readLine(ch.br); err != nil || verb != respOK {
		ch.Close()
		if err != nil {
			return nil, openFail(fmt.Errorf("proto: OPEN failed: %w", err))
		}
		return nil, openFail(fmt.Errorf("proto: OPEN failed (verb %q fields %v)", verb, fields))
	}
	if c.StallTimeout > 0 {
		// Steady state is watchdog territory: clear the handshake
		// deadline or it would fire on a legitimately idle channel.
		_ = ctrl.SetReadDeadline(time.Time{})
	}

	// Control reader (DONE/ERR) and per-stream block readers.
	ch.wg.Add(1)
	go ch.controlLoop()
	for _, s := range ch.streams {
		ch.wg.Add(1)
		//lint:allow deadlineio stream conns are progressConn-wrapped; the stall watchdog severs them on progress timeout, unblocking the loop
		go ch.streamLoop(s)
	}
	if c.StallTimeout > 0 {
		ch.watchStop = make(chan struct{})
		ch.wg.Add(1)
		go ch.watchdog(c.StallTimeout)
	}
	pool.ReportSuccess(ep)
	dialSpan.End("sid", sid)
	ch.inst.channelsDialed.Inc()
	ch.inst.dialsByEndpoint.With(endpointLabel(ep)).Inc()
	c.Events.Emit(obs.EvChannelDialed, "sid", sid, "parallelism", parallelism, "endpoint", ep, "addr", addr)
	return ch, nil
}

// Parallelism returns the channel's data stream count.
func (ch *Channel) Parallelism() int { return len(ch.streams) }

// Endpoint returns the pool index of the endpoint this channel was
// placed on (0 for a single-address client).
func (ch *Channel) Endpoint() int { return ch.ep }

// EndpointAddr returns the address of the endpoint this channel dialed.
func (ch *Channel) EndpointAddr() string { return ch.epAddr }

func (ch *Channel) controlLoop() {
	defer ch.wg.Done()
	for {
		verb, fields, err := readLine(ch.br)
		if err != nil {
			ch.failAll(err)
			return
		}
		switch verb {
		case respDone:
			if len(fields) != 2 {
				continue
			}
			id64, err1 := strconv.ParseUint(fields[0], 10, 32)
			crc64, err2 := strconv.ParseUint(fields[1], 10, 32)
			if err1 != nil || err2 != nil {
				continue
			}
			if p := ch.lookup(uint32(id64)); p != nil {
				p.finishCtrl(uint32(crc64), nil)
			}
		case respErr:
			if len(fields) >= 1 {
				if id64, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
					if p := ch.lookup(uint32(id64)); p != nil {
						p.finishCtrl(0, fmt.Errorf("proto: server error: %v", fields[1:]))
						p.dataOnce.Do(func() { close(p.dataDone) })
					}
				}
			}
		}
	}
}

func (ch *Channel) streamLoop(conn net.Conn) {
	defer ch.wg.Done()
	// One stream span per read loop: its bytes are the stream's share of
	// the channel's payload, its duration the stream's useful lifetime.
	ssp := ch.span.Child(span.NameChannelStream)
	defer ssp.End()
	// The read buffer matches the expected block size so a full block
	// (header + payload) is absorbed in a couple of reads instead of
	// fragmenting across many smaller ones.
	//lint:allow deadlineio conn is a progressConn counted by the stall watchdog, which closes it when progress stops
	br := bufio.NewReaderSize(conn, ch.client.blockSize())
	// One pooled payload buffer and one header scratch per stream for
	// the connection's lifetime: the steady-state receive path never
	// allocates per block, and short-lived channels (dial, fetch,
	// close) recycle each other's buffers through the pool.
	bufp := getBlockBuf(ch.client.blockSize())
	// Released via closure, not `defer putBlockBuf(bufp)`: the defer
	// would capture the original pointer, and the grow path below swaps
	// bufp — the original would be put twice (handing one buffer to two
	// streams) while the replacement leaked.
	defer func() { putBlockBuf(bufp) }()
	scratch := make([]byte, blockHeaderSize)
	for {
		h, err := readBlockHeaderBuf(br, scratch)
		if err != nil {
			ch.failAll(err)
			return
		}
		if int(h.Length) > cap(*bufp) {
			// The server runs a larger block size than expected: trade
			// the pooled buffer for one from the matching bucket.
			putBlockBuf(bufp)
			bufp = getBlockBuf(int(h.Length))
		}
		payload := (*bufp)[:h.Length]
		if _, err := io.ReadFull(br, payload); err != nil {
			ch.failAll(err)
			return
		}
		p := ch.lookup(h.ReqID)
		if p == nil {
			continue // request was abandoned
		}
		//lint:allow bufown Sink.WriteAt's contract forbids retaining p beyond the call (store.go)
		if _, err := p.sink.WriteAt(p.name, payload, int64(h.Offset)); err != nil {
			p.abort(err)
			continue
		}
		if ch.client.VerifyChecksums || ch.client.Journal != nil {
			// One Checksum call serves both consumers; only the uint32
			// crosses into the journal, never the pooled payload buffer.
			c := crc32.Checksum(payload, crcTable)
			if ch.client.VerifyChecksums {
				p.recordBlock(int64(h.Offset), int64(h.Length), c)
			}
			ch.client.Journal.Append(p.name, int64(h.Offset), int64(h.Length), c)
		}
		if ch.client.Counters != nil {
			ch.client.Counters.AddBytes(int64(h.Length))
		}
		ch.inst.bytesReceived.Add(int64(h.Length))
		ssp.AddBytes(int64(h.Length))
		p.span.AddBytes(int64(h.Length))
		p.addBytes(int64(h.Length))
	}
}

func (ch *Channel) lookup(id uint32) *pendingGet {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.pending[id]
}

func (ch *Channel) failAll(err error) {
	if ch.closed.Load() {
		return
	}
	ch.mu.Lock()
	if ch.readErr == nil {
		ch.readErr = err
	}
	pend := make([]*pendingGet, 0, len(ch.pending))
	for _, p := range ch.pending {
		pend = append(pend, p)
	}
	ch.mu.Unlock()
	for _, p := range pend {
		p.abort(err)
	}
}

// get issues one pipelined ranged GET and returns its pending handle.
func (ch *Channel) get(r FileRange, sink Sink) (*pendingGet, error) {
	ch.mu.Lock()
	if ch.readErr != nil {
		err := ch.readErr
		ch.mu.Unlock()
		return nil, err
	}
	ch.nextID++
	id := ch.nextID
	p := &pendingGet{
		name:     r.File.Name,
		offset:   int64(r.Offset),
		length:   int64(r.Remaining()),
		issued:   time.Now(),
		sink:     sink,
		ctrlDone: make(chan struct{}),
		dataDone: make(chan struct{}),
	}
	p.span = ch.span.Child(span.NameGet,
		"file", r.File.Name, "offset", p.offset, "length", p.length)
	if p.length == 0 {
		p.dataOnce.Do(func() { close(p.dataDone) })
	}
	ch.pending[id] = p
	ch.mu.Unlock()

	// Reserve the file's FINAL size before any payload arrives, so the
	// striped out-of-order WriteAts land inside an already-sized file.
	// The full size, not the range end: recovery issues mid-file gap
	// ranges, and sizing to a range end would truncate verified bytes
	// past it.
	if pa, ok := sink.(Preallocator); ok && p.length > 0 {
		if err := pa.Preallocate(p.name, int64(r.File.Size)); err != nil {
			ch.release(p)
			p.span.End("error", err.Error())
			return nil, err
		}
	}

	line := formatGet(getRequest{ID: id, Name: r.File.Name, Offset: p.offset, Length: p.length})
	if _, err := io.WriteString(ch.ctrl, line); err != nil {
		ch.mu.Lock()
		delete(ch.pending, id)
		ch.mu.Unlock()
		p.span.End("error", err.Error())
		return nil, err
	}
	ch.inst.getsIssued.Inc()
	ch.client.Events.Emit(obs.EvGetIssued,
		"sid", ch.sid, "id", id, "file", r.File.Name, "offset", p.offset, "length", p.length)
	return p, nil
}

func (ch *Channel) release(p *pendingGet) {
	ch.mu.Lock()
	for id, q := range ch.pending {
		if q == p {
			delete(ch.pending, id)
			break
		}
	}
	ch.mu.Unlock()
}

// finish waits for a request's payload and acknowledgement, releases
// it, and runs the optional integrity check.
func (ch *Channel) finish(p *pendingGet) error {
	<-p.dataDone
	<-p.ctrlDone
	ch.release(p)
	err := p.err
	if err == nil {
		err = p.transportErr()
	}
	if err == nil && ch.client.VerifyChecksums && p.length > 0 {
		err = p.verifyChecksum()
	}
	ms := float64(time.Since(p.issued)) / float64(time.Millisecond)
	if err != nil {
		ch.inst.getsFailed.Inc()
		p.span.End("error", err.Error())
		ch.client.Events.Emit(obs.EvGetSettled,
			"sid", ch.sid, "file", p.name, "bytes", p.length, "ms", ms, "error", err.Error())
		return err
	}
	ch.inst.getsSettled.Inc()
	ch.inst.settleMS.Observe(ms)
	p.span.End()
	ch.client.Events.Emit(obs.EvGetSettled,
		"sid", ch.sid, "file", p.name, "bytes", p.length, "ms", ms)
	return nil
}

// FetchResult summarizes one Fetch call.
type FetchResult struct {
	Files int
	Bytes units.Bytes
}

// Fetch transfers the files in order, keeping up to `pipelining` GETs
// outstanding, writing payloads into sink. It returns after every file
// has fully arrived and been acknowledged.
func (ch *Channel) Fetch(files []dataset.File, pipelining int, sink Sink) (FetchResult, error) {
	return ch.FetchRanges(WholeFiles(files), pipelining, sink)
}

// FetchRanges is Fetch for resumable byte ranges: each entry transfers
// [Offset, File.Size) of its file.
func (ch *Channel) FetchRanges(ranges []FileRange, pipelining int, sink Sink) (FetchResult, error) {
	if pipelining < 1 {
		pipelining = 1
	}
	var result FetchResult
	window := make([]*pendingGet, 0, pipelining)
	next := 0
	for next < len(ranges) || len(window) > 0 {
		for len(window) < pipelining && next < len(ranges) {
			p, err := ch.get(ranges[next], sink)
			if err != nil {
				return result, err
			}
			window = append(window, p)
			next++
		}
		// Wait for the oldest request (FIFO service on the server).
		p := window[0]
		window = window[1:]
		if err := ch.finish(p); err != nil {
			return result, err
		}
		if err := sink.Close(p.name); err != nil {
			return result, err
		}
		result.Files++
		result.Bytes += units.Bytes(p.length)
		ch.inst.filesCompleted.Inc()
		if ch.client.Counters != nil {
			ch.client.Counters.files.Add(1)
		}
	}
	return result, nil
}

// Close tears the channel down.
func (ch *Channel) Close() error {
	if !ch.closed.CompareAndSwap(false, true) {
		return nil
	}
	if ch.watchStop != nil {
		close(ch.watchStop)
	}
	_, _ = io.WriteString(ch.ctrl, cmdQuit+"\n")
	err := ch.ctrl.Close()
	for _, s := range ch.streams {
		s.Close()
	}
	ch.mu.Lock()
	pend := make([]*pendingGet, 0, len(ch.pending))
	for _, p := range ch.pending {
		pend = append(pend, p)
	}
	ch.mu.Unlock()
	for _, p := range pend {
		p.finishCtrl(0, fmt.Errorf("proto: channel closed"))
		p.dataOnce.Do(func() { close(p.dataDone) })
		// End is idempotent, so a racing finish() on the settle path is
		// harmless; without this, a GET abandoned at teardown would leak
		// its span.
		p.span.End("error", "channel closed")
	}
	ch.wg.Wait()
	ch.span.End()
	return err
}
