package proto_test

import (
	"fmt"
	"hash/crc32"

	"github.com/didclab/eta/internal/proto"
)

func ExampleCRC32CCombine() {
	table := crc32.MakeTable(crc32.Castagnoli)
	a := []byte("energy-aware ")
	b := []byte("data transfers")
	whole := crc32.Checksum(append(append([]byte{}, a...), b...), table)
	combined := proto.CRC32CCombine(crc32.Checksum(a, table), crc32.Checksum(b, table), int64(len(b)))
	fmt.Println(whole == combined)
	// Output: true
}

func ExampleFillSynth() {
	// Synthetic content is deterministic and O(1)-seekable: any range
	// can be regenerated for verification.
	head := make([]byte, 8)
	proto.FillSynth("example.dat", 0, head)
	again := make([]byte, 4)
	proto.FillSynth("example.dat", 4, again)
	fmt.Println(head[4] == again[0], head[7] == again[3])
	// Output: true true
}
