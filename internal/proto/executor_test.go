package proto

import (
	"context"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// testEnv describes the loopback path for the executor's environment.
func testEnv() transfer.Environment {
	return transfer.Environment{
		Path: netem.Path{
			Bandwidth:       1 * units.Gbps,
			RTT:             10 * time.Millisecond,
			MaxTCPBuffer:    4 * units.MB,
			EffStreamBuffer: 256 * units.KB,
		},
		MaxChannels:    8,
		ServersPerSite: 1,
	}
}

func newRealExecutor(t *testing.T, ds dataset.Dataset, mutate func(*ServerConfig)) (*Executor, *VerifySink) {
	t.Helper()
	srv := synthServer(t, ds, mutate)
	sink := NewVerifySink()
	exec := &Executor{
		Client:      &Client{Addr: srv.Addr(), Counters: &Counters{}},
		Sink:        sink,
		Environment: testEnv(),
		Label:       "test",
	}
	return exec, sink
}

func planFor(ds dataset.Dataset, channels, par, pipe int) transfer.Plan {
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: par, Pipelining: pipe}
	return transfer.Plan{
		Chunks: []transfer.ChunkPlan{{Chunk: chunk, Channels: channels, Weight: 1, AcceptRealloc: true}},
	}
}

func TestRealExecutorRunMovesEverything(t *testing.T) {
	ds := dataset.NewGenerator(20).ManySmall(30, 20*units.KB, 200*units.KB)
	exec, sink := newRealExecutor(t, ds, nil)
	r, err := exec.Run(context.Background(), planFor(ds, 3, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != ds.TotalSize() {
		t.Errorf("moved %v of %v", r.Bytes, ds.TotalSize())
	}
	if r.Throughput <= 0 || r.Duration <= 0 {
		t.Errorf("degenerate report %+v", r)
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption: %v", bad)
	}
	if r.Algorithm != "test" {
		t.Errorf("label = %q", r.Algorithm)
	}
}

func TestRealExecutorMultiChunkRealloc(t *testing.T) {
	g := dataset.NewGenerator(21)
	small := dataset.Chunk{Class: dataset.Small, Files: g.ManySmall(20, 10*units.KB, 50*units.KB).Files, Parallelism: 1, Pipelining: 4}
	large := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(4, 1*units.MB).Files, Parallelism: 2, Pipelining: 1}
	all := dataset.Dataset{Files: append(append([]dataset.File{}, small.Files...), large.Files...)}
	exec, sink := newRealExecutor(t, all, nil)
	plan := transfer.Plan{
		Chunks: []transfer.ChunkPlan{
			{Chunk: small, Channels: 2, Weight: 2, AcceptRealloc: true},
			{Chunk: large, Channels: 1, Weight: 1, AcceptRealloc: true},
		},
		ReallocOnComplete: true,
	}
	r, err := exec.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != all.TotalSize() {
		t.Errorf("moved %v of %v", r.Bytes, all.TotalSize())
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption: %v", bad)
	}
}

func TestRealExecutorSequential(t *testing.T) {
	g := dataset.NewGenerator(22)
	a := dataset.Chunk{Class: dataset.Small, Files: g.Uniform(10, 30*units.KB).Files, Parallelism: 1, Pipelining: 2}
	b := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(3, 500*units.KB).Files, Parallelism: 2, Pipelining: 1}
	for i := range b.Files {
		b.Files[i].Name = "lg/" + b.Files[i].Name
	}
	all := dataset.Dataset{Files: append(append([]dataset.File{}, a.Files...), b.Files...)}
	exec, sink := newRealExecutor(t, all, nil)
	plan := transfer.Plan{
		Chunks: []transfer.ChunkPlan{
			{Chunk: a, Channels: 2, Weight: 1},
			{Chunk: b, Channels: 0, Weight: 1},
		},
		Sequential: true,
	}
	r, err := exec.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != all.TotalSize() {
		t.Errorf("moved %v of %v", r.Bytes, all.TotalSize())
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption: %v", bad)
	}
}

func TestRealExecutorAdaptiveSession(t *testing.T) {
	ds := dataset.NewGenerator(23).Uniform(40, 300*units.KB)
	exec, _ := newRealExecutor(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 40 * units.Mbps
	})
	sess, err := exec.Start(context.Background(), planFor(ds, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sess.Advance(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Duration <= 0 {
		t.Errorf("empty window: %+v", s1)
	}
	if err := sess.SetTotalChannels(4); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != ds.TotalSize() {
		t.Errorf("moved %v of %v", r.Bytes, ds.TotalSize())
	}
	if sess.Remaining() != 0 || !sess.Done() {
		t.Error("session not done after Finish")
	}
}

func TestRealExecutorValidation(t *testing.T) {
	ds := dataset.NewGenerator(24).Uniform(2, units.KB)
	exec, _ := newRealExecutor(t, ds, nil)
	ctx := context.Background()
	if _, err := exec.Run(ctx, transfer.Plan{}); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := (&Executor{}).Run(ctx, planFor(ds, 1, 1, 1)); err == nil {
		t.Error("executor without client accepted")
	}
	sess, err := exec.Start(ctx, planFor(ds, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(0); err == nil {
		t.Error("zero advance accepted")
	}
	if err := sess.SetTotalChannels(0); err == nil {
		t.Error("zero channels accepted")
	}
	if err := sess.SetTotalChannels(100); err == nil {
		t.Error("over-budget channels accepted")
	}
	if err := sess.SetAllocation([]int{1, 2}); err == nil {
		t.Error("wrong-length allocation accepted")
	}
	if err := sess.SetAllocation([]int{0}); err == nil {
		t.Error("empty allocation accepted")
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestRealExecutorContextCancel(t *testing.T) {
	ds := dataset.NewGenerator(25).Uniform(100, 2*units.MB)
	exec, _ := newRealExecutor(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 10 * units.Mbps // slow: cancellation lands mid-flight
	})
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := exec.Start(ctx, planFor(ds, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := sess.Finish()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled transfer finished successfully")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Finish did not return after cancellation")
	}
}
