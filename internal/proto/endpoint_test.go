package proto

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/didclab/eta/internal/obs"
)

func TestParseEndpoints(t *testing.T) {
	cases := []struct {
		in   string
		want []Endpoint
		bad  bool
	}{
		{in: "host1:7001", want: []Endpoint{{Addr: "host1:7001", Weight: 1}}},
		{in: "host1:7001,host2:7002", want: []Endpoint{
			{Addr: "host1:7001", Weight: 1}, {Addr: "host2:7002", Weight: 1}}},
		{in: "host1:7001=3,host2:7002", want: []Endpoint{
			{Addr: "host1:7001", Weight: 3}, {Addr: "host2:7002", Weight: 1}}},
		{in: "host1:7001:2,host2:7002:5", want: []Endpoint{
			{Addr: "host1:7001", Weight: 2}, {Addr: "host2:7002", Weight: 5}}},
		{in: " a:1 , b:2=4 ", want: []Endpoint{
			{Addr: "a:1", Weight: 1}, {Addr: "b:2", Weight: 4}}},
		// Bracketed IPv6 without a weight must stay an address.
		{in: "[::1]:7001", want: []Endpoint{{Addr: "[::1]:7001", Weight: 1}}},
		{in: "[::1]:7001:3", want: []Endpoint{{Addr: "[::1]:7001", Weight: 3}}},
		{in: "host1:7001=0", bad: true},
		{in: "host1:7001=x", bad: true},
		{in: "host1:7001:0", bad: true},
		{in: "", bad: true},
		{in: " , ", bad: true},
	}
	for _, c := range cases {
		got, err := ParseEndpoints(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseEndpoints(%q) accepted, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEndpoints(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseEndpoints(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseEndpoints(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestEndpointPoolWeightedPick proves the smooth weighted round-robin is
// exact: over any window of weightSum picks each endpoint is returned
// exactly Weight times.
func TestEndpointPoolWeightedPick(t *testing.T) {
	pool, err := NewEndpointPool(
		Endpoint{Addr: "a", Weight: 1},
		Endpoint{Addr: "b", Weight: 2},
		Endpoint{Addr: "c", Weight: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 600; i++ {
		idx, addr := pool.Pick()
		if got := pool.Addr(idx); got != addr {
			t.Fatalf("Pick returned idx %d (%q) with addr %q", idx, got, addr)
		}
		counts[addr]++
	}
	if counts["a"] != 100 || counts["b"] != 200 || counts["c"] != 300 {
		t.Errorf("pick distribution = %v, want a:100 b:200 c:300", counts)
	}
	// No two consecutive picks of a low-weight endpoint: smoothness means
	// "a" never appears twice in a row in a 1/2/3 pool.
	prev := ""
	for i := 0; i < 60; i++ {
		_, addr := pool.Pick()
		if addr == "a" && prev == "a" {
			t.Fatal("weight-1 endpoint picked twice consecutively")
		}
		prev = addr
	}
}

// eventCount counts retained events of the given type.
func eventCount(l *obs.Log, typ string) int {
	needle := []byte(`"type":"` + typ + `"`)
	n := 0
	for _, line := range l.Tail(0) {
		if bytes.Contains(line, needle) {
			n++
		}
	}
	return n
}

func TestEndpointPoolBlacklistProbation(t *testing.T) {
	pool, err := NewEndpointPool(
		Endpoint{Addr: "a", Weight: 1},
		Endpoint{Addr: "b", Weight: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	pool.FailThreshold = 3
	pool.Probation = 100 * time.Millisecond
	pool.ProbationCap = 300 * time.Millisecond
	pool.Events = obs.NewLog(nil)
	cur := time.Unix(1000, 0)
	pool.SetClock(func() time.Time { return cur })

	boom := errors.New("dial refused")
	// Two failures: endpoint b stays in rotation.
	pool.ReportFailure(1, boom)
	pool.ReportFailure(1, boom)
	if pool.HealthyCount() != 2 {
		t.Fatalf("HealthyCount = %d after sub-threshold failures", pool.HealthyCount())
	}
	// Third consecutive failure crosses the threshold.
	pool.ReportFailure(1, boom)
	if got := eventCount(pool.Events, obs.EvEndpointBlacklisted); got != 1 {
		t.Fatalf("endpoint_blacklisted events = %d, want 1", got)
	}
	h := pool.Health()
	if !h[1].Blacklisted || h[1].ConsecutiveFails != 3 {
		t.Fatalf("health after blacklist = %+v", h[1])
	}
	if want := cur.Add(100 * time.Millisecond); !h[1].RetryAt.Equal(want) {
		t.Fatalf("RetryAt = %v, want %v", h[1].RetryAt, want)
	}
	// Blacklisted endpoints disappear from rotation entirely.
	for i := 0; i < 10; i++ {
		if idx, _ := pool.Pick(); idx != 0 {
			t.Fatalf("pick %d returned blacklisted endpoint", i)
		}
	}
	// More failures inside the blacklist period (a failure storm from
	// several dying channels) must not extend it.
	cur = cur.Add(50 * time.Millisecond)
	pool.ReportFailure(1, boom)
	pool.ReportFailure(1, boom)
	if got := pool.Health()[1].RetryAt; !got.Equal(time.Unix(1000, 0).Add(100 * time.Millisecond)) {
		t.Fatalf("failure storm extended the blacklist to %v", got)
	}

	// Past expiry the endpoint is probe-eligible: it must show up within
	// two picks of an equal-weight two-endpoint rotation.
	cur = cur.Add(60 * time.Millisecond) // t = 110ms
	if pool.HealthyCount() != 2 {
		t.Fatalf("HealthyCount = %d after probation lapsed", pool.HealthyCount())
	}
	probed := false
	for i := 0; i < 2; i++ {
		if idx, _ := pool.Pick(); idx == 1 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("probeable endpoint never picked")
	}
	// A failed probe re-blacklists with doubled backoff (200ms).
	pool.ReportFailure(1, boom)
	h = pool.Health()
	if !h[1].Blacklisted {
		t.Fatal("failed probe did not re-blacklist")
	}
	if want := cur.Add(200 * time.Millisecond); !h[1].RetryAt.Equal(want) {
		t.Fatalf("RetryAt after failed probe = %v, want %v", h[1].RetryAt, want)
	}
	// Next period would be 400ms but the cap bounds it at 300ms.
	cur = cur.Add(201 * time.Millisecond)
	pool.ReportFailure(1, boom)
	if want := cur.Add(300 * time.Millisecond); !pool.Health()[1].RetryAt.Equal(want) {
		t.Fatalf("RetryAt ignored ProbationCap: %v, want %v", pool.Health()[1].RetryAt, want)
	}

	// A success — probe or surviving in-flight channel — clears the whole
	// record and emits endpoint_recovered.
	pool.ReportSuccess(1)
	h = pool.Health()
	if h[1].Blacklisted || h[1].ConsecutiveFails != 0 || !h[1].RetryAt.IsZero() {
		t.Fatalf("health after recovery = %+v", h[1])
	}
	if got := eventCount(pool.Events, obs.EvEndpointRecovered); got != 1 {
		t.Fatalf("endpoint_recovered events = %d, want 1", got)
	}
	// And the next blacklist starts from the base probation again.
	pool.ReportFailure(1, boom)
	pool.ReportFailure(1, boom)
	pool.ReportFailure(1, boom)
	if want := cur.Add(100 * time.Millisecond); !pool.Health()[1].RetryAt.Equal(want) {
		t.Fatalf("backoff not reset by recovery: RetryAt = %v, want %v", pool.Health()[1].RetryAt, want)
	}
}

// TestEndpointPoolAllDark: with every endpoint blacklisted Pick degrades
// to the soonest-recovering endpoint instead of failing, so the executor
// keeps probing through its redial path.
func TestEndpointPoolAllDark(t *testing.T) {
	pool, err := NewEndpointPool(
		Endpoint{Addr: "a", Weight: 1},
		Endpoint{Addr: "b", Weight: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	pool.FailThreshold = 1
	pool.Probation = 100 * time.Millisecond
	cur := time.Unix(2000, 0)
	pool.SetClock(func() time.Time { return cur })

	pool.ReportFailure(0, errors.New("down"))
	cur = cur.Add(30 * time.Millisecond)
	pool.ReportFailure(1, errors.New("down"))
	if pool.HealthyCount() != 0 {
		t.Fatalf("HealthyCount = %d, want 0", pool.HealthyCount())
	}
	// Endpoint 0 was blacklisted first, so it recovers first.
	for i := 0; i < 5; i++ {
		if idx, addr := pool.Pick(); idx != 0 || addr != "a" {
			t.Fatalf("all-dark pick = (%d, %q), want the soonest-recovering (0, a)", idx, addr)
		}
	}
}

func TestEndpointPoolPerEndpointMetrics(t *testing.T) {
	pool, err := NewEndpointPool(Endpoint{Addr: "a"}, Endpoint{Addr: "b"})
	if err != nil {
		t.Fatal(err)
	}
	pool.FailThreshold = 1
	reg := obs.NewRegistry()
	pool.Metrics = reg
	pool.Pick()
	pool.Pick()
	pool.ReportFailure(1, errors.New("down"))
	pool.ReportSuccess(1)
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		`endpoint_picks{endpoint="0"}`:      1,
		`endpoint_picks{endpoint="1"}`:      1,
		`endpoint_failures{endpoint="1"}`:   1,
		`endpoint_blacklists{endpoint="1"}`: 1,
		`endpoint_recoveries{endpoint="1"}`: 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestEndpointLabelBounded(t *testing.T) {
	seen := make(map[string]bool)
	for i := -2; i < 40; i++ {
		seen[endpointLabel(i)] = true
	}
	if len(seen) > 10 {
		t.Fatalf("endpointLabel produced %d distinct values, cardinality unbounded", len(seen))
	}
	if !seen["8plus"] || !seen["unknown"] || !seen["0"] || !seen["7"] {
		t.Fatalf("unexpected label set %v", seen)
	}
}

// TestClientSingleAddrPool: a Client without Endpoints must behave
// exactly as before — one implicit endpoint around Addr, Target = Addr.
func TestClientSingleAddrPool(t *testing.T) {
	c := &Client{Addr: "127.0.0.1:9"}
	if got := c.Target(); got != "127.0.0.1:9" {
		t.Fatalf("Target = %q", got)
	}
	p := c.pool()
	if p.Len() != 1 || p.Addr(0) != "127.0.0.1:9" {
		t.Fatalf("implicit pool = %d endpoints, first %q", p.Len(), p.Addr(0))
	}
	// Even fully blacklisted, the sole endpoint keeps being handed out so
	// single-server outage handling stays with the redial/backoff path.
	p.FailThreshold = 1
	p.ReportFailure(0, errors.New("down"))
	if idx, addr := p.Pick(); idx != 0 || addr != "127.0.0.1:9" {
		t.Fatalf("single-endpoint fallback pick = (%d, %q)", idx, addr)
	}
}

func TestClientTargetJoinsPool(t *testing.T) {
	pool, err := NewEndpointPool(Endpoint{Addr: "a:1"}, Endpoint{Addr: "b:2", Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Endpoints: pool}
	if got := c.Target(); got != "a:1+b:2" {
		t.Fatalf("Target = %q", got)
	}
}
