package proto

import (
	"context"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// TestExecutorTwoRunsNoCounterBleed: the client Counters outlive a
// session (they back /metrics), so Report accounting must subtract the
// session baseline — a second Run on the same Executor used to report
// the first run's bytes on top of its own.
func TestExecutorTwoRunsNoCounterBleed(t *testing.T) {
	ds := dataset.NewGenerator(70).Uniform(12, 200*units.KB)
	exec, sink := newRealExecutor(t, ds, nil)
	for run := 0; run < 2; run++ {
		r, err := exec.Run(context.Background(), planFor(ds, 2, 1, 2))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if r.Bytes != ds.TotalSize() {
			t.Errorf("run %d reported %v bytes, want plan size %v", run, r.Bytes, ds.TotalSize())
		}
		if r.Files != int64(len(ds.Files)) {
			t.Errorf("run %d reported %d files, want %d", run, r.Files, len(ds.Files))
		}
		if bad := sink.Corrupt(); len(bad) > 0 {
			t.Errorf("run %d corruption: %v", run, bad)
		}
	}
	// The shared counter keeps the cumulative total across both runs.
	if got := exec.Client.Counters.Bytes(); got != 2*ds.TotalSize() {
		t.Errorf("cumulative client counter = %v, want %v", got, 2*ds.TotalSize())
	}
}

// TestFinishDurationStampedAtCompletion: Report.Duration must cover the
// transfer, not the caller's patience — a controller that sits on a
// completed session before invoking Finish used to deflate Throughput.
func TestFinishDurationStampedAtCompletion(t *testing.T) {
	ds := dataset.NewGenerator(71).Uniform(6, 100*units.KB)
	exec, _ := newRealExecutor(t, ds, nil)
	sess, err := exec.Start(context.Background(), planFor(ds, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sess.Done() {
		if time.Now().After(deadline) {
			t.Fatal("transfer never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The transfer is complete; wait well past it before finishing.
	time.Sleep(500 * time.Millisecond)
	r, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if r.Duration <= 0 || r.Duration >= 450*time.Millisecond {
		t.Errorf("Duration = %v includes the caller's delay, not just the transfer", r.Duration)
	}
	if r.Throughput <= 0 {
		t.Errorf("degenerate throughput %v", r.Throughput)
	}
}

// TestSequentialResumeSkipsCompleteChunk: a Sequential plan whose first
// chunk is already complete at the destination must hand the initial
// allocation to the first chunk with work left — not park every channel
// on an empty queue and immediately reallocate.
func TestSequentialResumeSkipsCompleteChunk(t *testing.T) {
	g := dataset.NewGenerator(72)
	a := dataset.Chunk{Class: dataset.Small, Files: g.Uniform(8, 50*units.KB).Files, Parallelism: 1, Pipelining: 2}
	b := dataset.Chunk{Class: dataset.Large, Files: g.Uniform(4, 300*units.KB).Files, Parallelism: 2, Pipelining: 1}
	for i := range b.Files {
		b.Files[i].Name = "lg/" + b.Files[i].Name
	}
	all := dataset.Dataset{Files: append(append([]dataset.File{}, a.Files...), b.Files...)}
	srv := synthServer(t, all, nil)
	resume := make(map[string]units.Bytes, len(a.Files))
	for _, f := range a.Files {
		resume[f.Name] = f.Size // chunk a fully present at the destination
	}
	reg := obs.NewRegistry()
	sink := NewVerifySink()
	exec := &Executor{
		Client:        &Client{Addr: srv.Addr(), Counters: &Counters{}},
		Sink:          sink,
		Environment:   testEnv(),
		ResumeOffsets: resume,
		Metrics:       reg,
		Label:         "seq-resume",
	}
	plan := transfer.Plan{
		Chunks: []transfer.ChunkPlan{
			{Chunk: a, Channels: 2, Weight: 1},
			{Chunk: b, Channels: 0, Weight: 1},
		},
		Sequential: true,
	}
	r, err := exec.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	var want units.Bytes
	for _, f := range b.Files {
		want += f.Size
	}
	if r.Bytes != want {
		t.Errorf("moved %v, want the live chunk's %v", r.Bytes, want)
	}
	// The old allocation gave chunk 0 every channel; its workers found an
	// empty queue and booked a reallocation each before touching chunk 1.
	if got := reg.Snapshot().Counters["chunks_reallocated"]; got != 0 {
		t.Errorf("chunks_reallocated = %d, want 0 (initial allocation was resume-blind)", got)
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption: %v", bad)
	}
}
