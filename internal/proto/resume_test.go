package proto

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

func TestFileRangeRemaining(t *testing.T) {
	f := dataset.File{Name: "x", Size: 100}
	if (FileRange{File: f}).Remaining() != 100 {
		t.Error("whole file remaining wrong")
	}
	if (FileRange{File: f, Offset: 40}).Remaining() != 60 {
		t.Error("partial remaining wrong")
	}
	if (FileRange{File: f, Offset: 100}).Remaining() != 0 {
		t.Error("complete file should have 0 remaining")
	}
	if (FileRange{File: f, Offset: 150}).Remaining() != 0 {
		t.Error("over-long offset should clamp to 0")
	}
}

func TestResumeRangesPlanning(t *testing.T) {
	root := t.TempDir()
	files := []dataset.File{
		{Name: "done.bin", Size: 100},
		{Name: "partial.bin", Size: 200},
		{Name: "sub/missing.bin", Size: 300},
	}
	if err := os.WriteFile(filepath.Join(root, "done.bin"), make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "partial.bin"), make([]byte, 80), 0o644); err != nil {
		t.Fatal(err)
	}
	ranges, skipped, err := ResumeRanges(root, files)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 180 { // 100 complete + 80 partial
		t.Errorf("skipped = %v, want 180", skipped)
	}
	if len(ranges) != 2 {
		t.Fatalf("planned %d ranges, want 2", len(ranges))
	}
	if ranges[0].File.Name != "partial.bin" || ranges[0].Offset != 80 {
		t.Errorf("partial range wrong: %+v", ranges[0])
	}
	if ranges[1].File.Name != "sub/missing.bin" || ranges[1].Offset != 0 {
		t.Errorf("missing range wrong: %+v", ranges[1])
	}
}

func TestResumeRangesRejectsEscapes(t *testing.T) {
	for _, name := range []string{
		"../evil",
		"..",
		"a/../../evil",
		"/abs/evil",
	} {
		if _, _, err := ResumeRanges(t.TempDir(), []dataset.File{{Name: name, Size: 1}}); err == nil {
			t.Errorf("path escape %q accepted", name)
		}
	}
}

func TestResumeRangesAcceptsDotPrefixedNames(t *testing.T) {
	// A name that merely *starts* with two dots is a legitimate file, not
	// an escape: only a leading ".." path element leaves the root.
	root := t.TempDir()
	files := []dataset.File{
		{Name: "..config", Size: 100},
		{Name: "..d/file.bin", Size: 50},
	}
	if err := os.WriteFile(filepath.Join(root, "..config"), make([]byte, 40), 0o644); err != nil {
		t.Fatal(err)
	}
	ranges, skipped, err := ResumeRanges(root, files)
	if err != nil {
		t.Fatalf("dot-prefixed names rejected: %v", err)
	}
	if skipped != 40 {
		t.Errorf("skipped = %v, want 40", skipped)
	}
	if len(ranges) != 2 || ranges[0].File.Name != "..config" || ranges[0].Offset != 40 ||
		ranges[1].File.Name != "..d/file.bin" || ranges[1].Offset != 0 {
		t.Errorf("resume plan wrong: %+v", ranges)
	}
}

func TestResumedTransferCompletesFile(t *testing.T) {
	// Interrupt simulation: destination already holds a correct prefix;
	// the resumed ranged fetch must complete the file byte-exactly.
	ds := dataset.Dataset{Files: []dataset.File{{Name: "big.dat", Size: units.Bytes(900_000)}}}
	srv := synthServer(t, ds, func(c *ServerConfig) { c.BlockSize = 64 * 1024 })

	dst := t.TempDir()
	prefix := make([]byte, 300_000)
	FillSynth("big.dat", 0, prefix)
	if err := os.WriteFile(filepath.Join(dst, "big.dat"), prefix, 0o644); err != nil {
		t.Fatal(err)
	}

	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	files, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	ranges, skipped, err := ResumeRanges(dst, files)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 300_000 || len(ranges) != 1 || ranges[0].Offset != 300_000 {
		t.Fatalf("resume plan wrong: skipped=%v ranges=%+v", skipped, ranges)
	}

	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	sink := NewDirSink(dst)
	res, err := ch.FetchRanges(ranges, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 600_000 {
		t.Errorf("resumed fetch moved %v, want 600000", res.Bytes)
	}

	got, err := os.ReadFile(filepath.Join(dst, "big.dat"))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 900_000)
	FillSynth("big.dat", 0, want)
	if !bytes.Equal(got, want) {
		t.Error("resumed file content wrong")
	}

	// A second resume plan finds nothing left to do.
	ranges, skipped, err = ResumeRanges(dst, files)
	if err != nil || len(ranges) != 0 || skipped != 900_000 {
		t.Errorf("post-completion plan: ranges=%v skipped=%v err=%v", ranges, skipped, err)
	}
}

func TestRangedFetchChecksumCoversRangeOnly(t *testing.T) {
	// The server's DONE checksum covers the requested range; the
	// client's combined block CRCs (normalized by the range offset)
	// must match it.
	ds := dataset.Dataset{Files: []dataset.File{{Name: "r.dat", Size: 500_000}}}
	srv := synthServer(t, ds, func(c *ServerConfig) { c.BlockSize = 32 * 1024 })
	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	ch, err := client.OpenChannel(3)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	r := FileRange{File: ds.Files[0], Offset: 123_456}
	if _, err := ch.FetchRanges([]FileRange{r}, 1, NewVerifySink()); err != nil {
		t.Fatalf("ranged checksum fetch failed: %v", err)
	}
}

func TestRealExecutorResume(t *testing.T) {
	// Half the dataset is already at the destination; the executor must
	// move only the remainder.
	ds := dataset.NewGenerator(31).Uniform(8, 200*units.KB)
	srv := synthServer(t, ds, nil)

	offsets := map[string]units.Bytes{
		ds.Files[0].Name: 200 * units.KB, // complete
		ds.Files[1].Name: 50 * units.KB,  // partial
	}
	exec := &Executor{
		Client:        &Client{Addr: srv.Addr(), Counters: &Counters{}, VerifyChecksums: true},
		Sink:          NewVerifySink(),
		Environment:   testEnv(),
		ResumeOffsets: offsets,
	}
	plan := planFor(ds, 2, 1, 2)
	r, err := exec.Run(nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := ds.TotalSize() - 250*units.KB
	if r.Bytes != want {
		t.Errorf("resumed executor moved %v, want %v", r.Bytes, want)
	}
}

func TestRealExecutorFullyResumed(t *testing.T) {
	ds := dataset.NewGenerator(32).Uniform(2, 10*units.KB)
	srv := synthServer(t, ds, nil)
	offsets := map[string]units.Bytes{
		ds.Files[0].Name: 10 * units.KB,
		ds.Files[1].Name: 10 * units.KB,
	}
	exec := &Executor{
		Client:        &Client{Addr: srv.Addr(), Counters: &Counters{}},
		Sink:          NewVerifySink(),
		Environment:   testEnv(),
		ResumeOffsets: offsets,
	}
	r, err := exec.Run(nil, planFor(ds, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != 0 {
		t.Errorf("fully-resumed run moved %v bytes", r.Bytes)
	}
}
