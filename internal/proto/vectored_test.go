package proto

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/units"
)

// recordingVectorWriter counts how the bytes arrive: vectored batches
// versus flat Writes.
type recordingVectorWriter struct {
	buf          bytes.Buffer
	vectorCalls  int
	vectorBufs   int
	writeCalls   int
	failVectored bool
}

func (r *recordingVectorWriter) Write(p []byte) (int, error) {
	r.writeCalls++
	return r.buf.Write(p)
}

func (r *recordingVectorWriter) WriteBuffers(bufs *net.Buffers) (int64, error) {
	r.vectorCalls++
	r.vectorBufs += len(*bufs)
	var total int64
	for _, b := range *bufs {
		n, _ := r.buf.Write(b)
		total += int64(n)
	}
	*bufs = (*bufs)[len(*bufs):]
	return total, nil
}

func TestShapedWriterVectoredPassThrough(t *testing.T) {
	// An inner writer that understands vectored writes must receive the
	// buffers as one batch, not flattened into per-buffer Writes.
	inner := &recordingVectorWriter{}
	w := shapedWriter{w: inner, limiters: []*Limiter{NewLimiter(0), nil}}
	bufs := net.Buffers{[]byte("head"), []byte("er+"), []byte("payload")}
	n, err := w.WriteBuffers(&bufs)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len("header+payload")); n != want {
		t.Errorf("wrote %d bytes, want %d", n, want)
	}
	if inner.vectorCalls != 1 || inner.vectorBufs != 3 {
		t.Errorf("inner saw %d vectored calls with %d buffers, want 1 with 3",
			inner.vectorCalls, inner.vectorBufs)
	}
	if inner.writeCalls != 0 {
		t.Errorf("inner saw %d flat writes, want 0", inner.writeCalls)
	}
	if got := inner.buf.String(); got != "header+payload" {
		t.Errorf("content %q, want %q", got, "header+payload")
	}
}

func TestWriteBuffersFallbackPlainWriter(t *testing.T) {
	// A plain io.Writer gets the same bytes through the WriteTo
	// fallback.
	var buf bytes.Buffer
	w := shapedWriter{w: &buf}
	bufs := net.Buffers{[]byte("ab"), []byte("cd")}
	if _, err := w.WriteBuffers(&bufs); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "abcd" {
		t.Errorf("content %q, want %q", got, "abcd")
	}
}

func TestShapedWriterWriteBuffersZeroAlloc(t *testing.T) {
	inner := &recordingVectorWriter{}
	w := shapedWriter{w: inner, limiters: []*Limiter{NewLimiter(0)}}
	payload := make([]byte, 1024)
	header := make([]byte, blockHeaderSize)
	scratch := make(net.Buffers, 0, 2)
	var bufs net.Buffers
	allocs := testing.AllocsPerRun(100, func() {
		inner.buf.Reset()
		scratch = append(scratch[:0], header, payload)
		bufs = scratch
		if _, err := w.WriteBuffers(&bufs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WriteBuffers allocates %.1f times per call, want 0", allocs)
	}
}

func TestCollectBatch(t *testing.T) {
	mkq := func(n int) chan queuedBlock {
		q := make(chan queuedBlock, 16)
		for i := 0; i < n; i++ {
			q <- queuedBlock{header: blockHeader{ReqID: uint32(i)}}
		}
		return q
	}

	// Backlog is drained without blocking, capped at max.
	q := mkq(5)
	batch, open := collectBatch(q, nil, 3)
	if !open || len(batch) != 3 {
		t.Errorf("backlog drain: got %d blocks open=%v, want 3 true", len(batch), open)
	}
	for i, b := range batch {
		if b.header.ReqID != uint32(i) {
			t.Errorf("batch[%d] = req %d, want %d (order lost)", i, b.header.ReqID, i)
		}
	}
	// The rest of the backlog is still there for the next call.
	batch, open = collectBatch(q, batch, 3)
	if !open || len(batch) != 2 {
		t.Errorf("second drain: got %d blocks open=%v, want 2 true", len(batch), open)
	}

	// A close observed mid-drain still hands back the gathered batch.
	q = mkq(2)
	close(q)
	batch, open = collectBatch(q, batch, 8)
	if open || len(batch) != 2 {
		t.Errorf("close mid-drain: got %d blocks open=%v, want 2 false", len(batch), open)
	}

	// Closed and empty terminates.
	batch, open = collectBatch(q, batch, 8)
	if open || len(batch) != 0 {
		t.Errorf("closed empty: got %d blocks open=%v, want 0 false", len(batch), open)
	}
}

func TestVectoredFetchCountsBatches(t *testing.T) {
	// An unshaped loopback transfer must ship every block through the
	// vectored path: blocks written == blocks served, and each batch is
	// at least one block (so batches <= blocks).
	ds := dataset.NewGenerator(11).Uniform(4, 2*units.MB)
	reg := obs.NewRegistry()
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.Metrics = reg
		c.BlockSize = 128 * 1024
	})
	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	ch, err := client.OpenChannel(4)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	sink := NewVerifySink()
	if _, err := ch.Fetch(ds.Files, 2, sink); err != nil {
		t.Fatal(err)
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("vectored transfer corrupted: %v", bad)
	}
	wantBlocks := int64(0)
	for _, f := range ds.Files {
		wantBlocks += (int64(f.Size) + 128*1024 - 1) / (128 * 1024)
	}
	batches := reg.Counter("server_writev_batches").Value()
	blocks := reg.Counter("server_writev_blocks").Value()
	if blocks != wantBlocks {
		t.Errorf("writev_blocks = %d, want %d", blocks, wantBlocks)
	}
	if batches == 0 || batches > blocks {
		t.Errorf("writev_batches = %d, want in [1, %d]", batches, blocks)
	}
}

func TestCRCCacheHitsAndInvalidation(t *testing.T) {
	srcDir := t.TempDir()
	dstDir := t.TempDir()
	// Two full blocks plus a tail, so the sidecar holds 3 tiles.
	const blockSize = 64 * 1024
	content := make([]byte, 2*blockSize+1000)
	for i := range content {
		content[i] = byte(i * 7)
	}
	path := filepath.Join(srcDir, "data.bin")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	srv := startServer(t, ServerConfig{
		Store:     DirStore{Root: srcDir},
		Metrics:   reg,
		BlockSize: blockSize,
		Logf:      t.Logf,
	})
	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	hits := reg.Counter("server_crc_cache_hits")
	misses := reg.Counter("server_crc_cache_misses")
	fetch := func(dir string) {
		t.Helper()
		files, err := srv.cfg.Store.List()
		if err != nil {
			t.Fatal(err)
		}
		sink := NewDirSink(dir)
		if _, err := ch.Fetch(files, 2, sink); err != nil {
			t.Fatal(err)
		}
	}

	fetch(dstDir)
	if h, m := hits.Value(), misses.Value(); h != 0 || m != 3 {
		t.Errorf("first serve: hits=%d misses=%d, want 0/3", h, m)
	}
	got, err := os.ReadFile(filepath.Join(dstDir, "data.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("first fetch content mismatch")
	}

	// Unchanged file: the repeat serve comes entirely from the sidecar.
	fetch(t.TempDir())
	if h, m := hits.Value(), misses.Value(); h != 3 || m != 3 {
		t.Errorf("repeat serve: hits=%d misses=%d, want 3/3", h, m)
	}

	// Same size, different content and mtime: the sidecar must be
	// invalidated, the serve re-hashed, and the data still correct
	// end-to-end (VerifyChecksums would catch a stale CRC).
	for i := range content {
		content[i] ^= 0xFF
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	dstDir2 := t.TempDir()
	fetch(dstDir2)
	if h, m := hits.Value(), misses.Value(); h != 3 || m != 6 {
		t.Errorf("post-rewrite serve: hits=%d misses=%d, want 3/6", h, m)
	}
	got, err = os.ReadFile(filepath.Join(dstDir2, "data.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("post-rewrite fetch content mismatch")
	}

	// Preallocation markers must all be lifted after clean completion.
	for _, dir := range []string{dstDir, dstDir2} {
		matches, err := filepath.Glob(filepath.Join(dir, "*"+partialMarkerSuffix))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 0 {
			t.Errorf("markers left behind in %s: %v", dir, matches)
		}
	}
}

func TestCRCCacheDisabled(t *testing.T) {
	ds := dataset.NewGenerator(5).Uniform(1, 512*units.KB)
	reg := obs.NewRegistry()
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.Metrics = reg
		c.DisableCRCCache = true
	})
	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	for i := 0; i < 2; i++ {
		sink := NewVerifySink()
		if _, err := ch.Fetch(ds.Files, 1, sink); err != nil {
			t.Fatal(err)
		}
		if bad := sink.Corrupt(); len(bad) > 0 {
			t.Errorf("fetch %d corrupted: %v", i, bad)
		}
	}
	if h, m := reg.Counter("server_crc_cache_hits").Value(), reg.Counter("server_crc_cache_misses").Value(); h != 0 || m != 0 {
		t.Errorf("disabled cache counted hits=%d misses=%d, want 0/0", h, m)
	}
}

func TestCRCCacheEviction(t *testing.T) {
	c := newCRCCache(2)
	c.open("a", 100, 1, 64)
	c.open("b", 100, 1, 64)
	c.open("c", 100, 1, 64)
	if n := c.len(); n != 2 {
		t.Errorf("cache holds %d entries past capacity 2", n)
	}
}

func TestBlockBufPoolBuckets(t *testing.T) {
	cases := []struct {
		n       int
		wantCap int
	}{
		{1, 64 * 1024},
		{64 * 1024, 64 * 1024},
		{64*1024 + 1, 128 * 1024},
		{256 * 1024, 256 * 1024},
		{5 * 1024 * 1024, 8 * 1024 * 1024},
		{8 * 1024 * 1024, 8 * 1024 * 1024},
	}
	for _, tc := range cases {
		p := getBlockBuf(tc.n)
		if len(*p) != tc.n {
			t.Errorf("getBlockBuf(%d): len %d", tc.n, len(*p))
		}
		if cap(*p) != tc.wantCap {
			t.Errorf("getBlockBuf(%d): cap %d, want bucket %d", tc.n, cap(*p), tc.wantCap)
		}
		putBlockBuf(p)
	}

	// Oversized requests bypass the pool and keep their exact size.
	big := getBlockBuf(9 * 1024 * 1024)
	if len(*big) != 9*1024*1024 || cap(*big) != 9*1024*1024 {
		t.Errorf("oversized buf: len %d cap %d", len(*big), cap(*big))
	}
	putBlockBuf(big) // dropped, not pooled; must not panic

	// Foreign capacities (not a bucket size) are rejected rather than
	// poisoning a bucket with a short buffer.
	odd := make([]byte, 100*1024)
	putBlockBuf(&odd)
	putBlockBuf(nil)
}

func TestDirSinkPreallocateMarkerLifecycle(t *testing.T) {
	dir := t.TempDir()
	sink := NewDirSink(dir)
	if err := sink.Preallocate("f.bin", 4096); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f.bin")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 4096 {
		t.Errorf("preallocated size %d, want 4096", info.Size())
	}
	if _, err := os.Stat(path + partialMarkerSuffix); err != nil {
		t.Errorf("marker missing after Preallocate: %v", err)
	}
	if _, err := sink.WriteAt("f.bin", make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close("f.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + partialMarkerSuffix); !os.IsNotExist(err) {
		t.Errorf("marker still present after Close: %v", err)
	}
}

func TestResumeRangesRefetchesMarkedPartial(t *testing.T) {
	dir := t.TempDir()
	files := []dataset.File{
		{Name: "done.bin", Size: 1000},
		{Name: "interrupted.bin", Size: 1000},
	}
	// done.bin completed; interrupted.bin was preallocated to full size
	// (its length lies) and still carries the partial marker.
	if err := os.WriteFile(filepath.Join(dir, "done.bin"), make([]byte, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "interrupted.bin"), make([]byte, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "interrupted.bin"+partialMarkerSuffix), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ranges, skipped, err := ResumeRanges(dir, files)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1000 {
		t.Errorf("skipped %v bytes, want 1000 (done.bin only)", skipped)
	}
	if len(ranges) != 1 || ranges[0].File.Name != "interrupted.bin" || ranges[0].Offset != 0 {
		t.Errorf("ranges = %+v, want whole refetch of interrupted.bin", ranges)
	}
}
