package proto

import (
	"io"
	"net"
	"sync"
	"time"

	"github.com/didclab/eta/internal/units"
)

// Limiter is a token-bucket rate limiter used to shape data streams so
// loopback tests exhibit WAN-like physics: a per-stream limiter stands
// in for the TCP window cap (making parallelism matter) and a shared
// link limiter stands in for the bottleneck capacity.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
	sleep  func(time.Duration)
}

// NewLimiter returns a limiter at the given rate with a default burst
// of 64 KiB (or one second of rate, whichever is smaller). A zero or
// negative rate means unlimited.
func NewLimiter(rate units.Rate) *Limiter {
	bps := float64(rate) / 8
	burst := 64 * 1024.0
	if bps > 0 && bps < burst {
		burst = bps
	}
	return &Limiter{rate: bps, burst: burst, sleep: time.Sleep}
}

// Wait blocks until n bytes may pass.
func (l *Limiter) Wait(n int) {
	if l == nil || l.rate <= 0 || n <= 0 {
		return
	}
	for n > 0 {
		take := float64(n)
		if take > l.burst {
			take = l.burst
		}
		l.waitFor(take)
		n -= int(take)
	}
}

func (l *Limiter) waitFor(n float64) {
	l.mu.Lock()
	now := time.Now()
	if l.last.IsZero() {
		l.last = now
		l.tokens = l.burst
	}
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	var wait time.Duration
	if l.tokens >= n {
		l.tokens -= n
	} else {
		deficit := n - l.tokens
		l.tokens = 0
		wait = time.Duration(deficit / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if wait > 0 {
		l.sleep(wait)
	}
}

// shapedWriter throttles writes through every attached limiter.
type shapedWriter struct {
	w        io.Writer
	limiters []*Limiter
}

func (s shapedWriter) Write(p []byte) (int, error) {
	for _, l := range s.limiters {
		l.Wait(len(p))
	}
	return s.w.Write(p)
}

// buffersWriter is the vectored-write seam of the data plane: writers
// that can forward a whole net.Buffers to the socket in one call (a
// single writev on a *net.TCPConn) implement it, so the block
// header+payload frames the server assembles are never flattened into
// separate write syscalls by an intermediate wrapper.
// The pointer parameter mirrors (*net.Buffers).WriteTo: the write
// consumes the slice (advancing it past written buffers), and passing
// the pointer down the chain keeps the hot path free of per-call heap
// escapes. Callers keep a separate backing slice and hand in a
// consumable copy of its header.
type buffersWriter interface {
	WriteBuffers(bufs *net.Buffers) (int64, error)
}

// WriteBuffers passes a vectored write through the limiters without
// flattening it. Pacing stays byte-level: Limiter.Wait admits the total
// in burst-sized installments exactly as it does for a plain Write of
// the same size, and only once the whole batch has been admitted does
// the write go down the chain as one vectored call.
func (s shapedWriter) WriteBuffers(bufs *net.Buffers) (int64, error) {
	var total int
	for _, b := range *bufs {
		total += len(b)
	}
	for _, l := range s.limiters {
		l.Wait(total)
	}
	return writeBuffers(s.w, bufs)
}

// writeBuffers hands bufs down the writer chain: wrappers that support
// vectored writes get the whole batch, and the terminal net.Conn
// receives it via net.Buffers.WriteTo — one writev syscall on TCP.
// Plain writers fall back to one Write per buffer, which is still
// correct, just not coalesced.
func writeBuffers(w io.Writer, bufs *net.Buffers) (int64, error) {
	if bw, ok := w.(buffersWriter); ok {
		return bw.WriteBuffers(bufs)
	}
	return bufs.WriteTo(w)
}

// delayQueue delivers items a fixed delay after they are pushed,
// preserving order — the propagation-delay model for control-channel
// messages. A zero delay passes items through synchronously.
//
// Close and Push may race freely: a Push that observes the queue
// closed drops its item instead of sending on a closed channel, and
// Close waits out any Push already committed to sending before it
// closes the channel — so shaped-channel teardown can never panic the
// server.
type delayQueue[T any] struct {
	delay time.Duration
	ch    chan delayed[T]
	out   func(T)
	done  chan struct{} // closed when the delivery goroutine exits

	mu      sync.Mutex
	closed  bool
	pushers sync.WaitGroup // Pushes past the closed check, not yet sent
}

type delayed[T any] struct {
	due  time.Time
	item T
}

// newDelayQueue starts a queue invoking out for each item after delay.
// Close the returned queue to stop its goroutine.
func newDelayQueue[T any](delay time.Duration, capacity int, out func(T)) *delayQueue[T] {
	q := &delayQueue[T]{delay: delay, out: out}
	if delay > 0 {
		q.ch = make(chan delayed[T], capacity)
		q.done = make(chan struct{})
		go func() {
			defer close(q.done)
			for d := range q.ch {
				if wait := time.Until(d.due); wait > 0 {
					time.Sleep(wait)
				}
				q.out(d.item)
			}
		}()
	}
	return q
}

// Push enqueues an item for delivery after the queue's delay. Pushes
// after Close drop the item.
func (q *delayQueue[T]) Push(item T) {
	if q.delay <= 0 {
		q.mu.Lock()
		closed := q.closed
		q.mu.Unlock()
		if !closed {
			q.out(item)
		}
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.pushers.Add(1)
	q.mu.Unlock()
	q.ch <- delayed[T]{due: time.Now().Add(q.delay), item: item}
	q.pushers.Done()
}

// Close stops the queue. Items already queued are still delivered;
// Close returns once the delivery goroutine has drained them, so after
// Close the out callback will never run again. Idempotent.
func (q *delayQueue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		if q.done != nil {
			<-q.done
		}
		return
	}
	q.closed = true
	q.mu.Unlock()
	if q.ch == nil {
		return
	}
	q.pushers.Wait()
	close(q.ch)
	<-q.done
}
