package proto

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/units"
)

// ServerConfig shapes a transfer server.
type ServerConfig struct {
	Store Store
	// Metrics receives live server counters (server_bytes_served,
	// server_sessions_total, ...); optional.
	Metrics *obs.Registry
	// Events receives structured server events (session_opened,
	// get_served, ...); optional.
	Events *obs.Log
	// Trace, when set, roots one server_session span per control
	// session, with server_get and server_stream children. In a loopback
	// run it may share the client's tracer and event log; span IDs are
	// process-global, so the two sides cannot collide.
	Trace *span.Tracer
	// PerStreamRate caps each data stream (the stand-in for the TCP
	// window limit); zero means unlimited.
	PerStreamRate units.Rate
	// LinkRate caps the aggregate of all data streams; zero means
	// unlimited.
	LinkRate units.Rate
	// ControlRTT is the emulated round-trip time of the control
	// channel: requests and completions are each delayed by half of
	// it. Pipelining exists to hide exactly this delay.
	ControlRTT time.Duration
	// BlockSize is the striping unit; DefaultBlockSize when zero.
	BlockSize int
	// MaxBatchBlocks caps how many queued blocks one writev gathers on
	// an unshaped stream. Higher values amortize syscalls when a stream
	// has backlog; 1 disables multi-block batching (each block is still
	// one vectored header+payload write). Zero means the default (8).
	// Shaped streams always write one block at a time so the limiters
	// keep their pacing granularity.
	MaxBatchBlocks int
	// DisableCRCCache turns off the per-file CRC sidecar cache. The
	// cache only activates for stores implementing Versioner; disabling
	// it forces every serve to re-hash payload bytes.
	DisableCRCCache bool
	// DataDialTimeout bounds how long OPEN waits for the client's data
	// connections to arrive.
	DataDialTimeout time.Duration
	// StallTimeout bounds every control and data write: a client that
	// stops draining its sockets (black-holed, frozen, or gone without
	// a reset) turns into a write timeout instead of a goroutine parked
	// forever in Write, and a failed control write tears the session
	// down. Zero disables the deadlines. Set it above the worst-case
	// client-side pause (the shaping limiters run server-side and do
	// not count against it).
	StallTimeout time.Duration
	// Logf receives diagnostic messages; silent when nil.
	Logf func(format string, args ...any)
}

func (c ServerConfig) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return DefaultBlockSize
}

func (c ServerConfig) maxBatchBlocks() int {
	if c.MaxBatchBlocks > 0 {
		return c.MaxBatchBlocks
	}
	return 8
}

func (c ServerConfig) dialTimeout() time.Duration {
	if c.DataDialTimeout > 0 {
		return c.DataDialTimeout
	}
	return 10 * time.Second
}

func (c ServerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Server accepts control and data connections and serves GETs.
type Server struct {
	cfg  ServerConfig
	ln   net.Listener
	link *Limiter
	inst serverInstruments

	// crcSidecars caches per-file block CRCs across serves; nil when the
	// cache is disabled. blockOp is the precomputed CRC advance operator
	// for one full block, shared by every serve at the configured block
	// size.
	crcSidecars *crcCache
	blockOp     crc32Op

	bytesServed   atomic.Int64
	requestsDone  atomic.Int64
	totalSessions atomic.Int64

	mu       sync.Mutex
	sessions map[uint64]*serverSession
	nextSID  uint64
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// Stats is a snapshot of a server's lifetime counters.
type Stats struct {
	// ActiveSessions is the number of open control sessions.
	ActiveSessions int
	// TotalSessions counts sessions ever opened.
	TotalSessions int64
	// RequestsServed counts completed GETs.
	RequestsServed int64
	// BytesServed counts payload bytes written to data streams.
	BytesServed units.Bytes
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		ActiveSessions: active,
		TotalSessions:  s.totalSessions.Load(),
		RequestsServed: s.requestsDone.Load(),
		BytesServed:    units.Bytes(s.bytesServed.Load()),
	}
}

// serverInstruments caches the server-side metric handles (nil and
// no-op without a registry).
type serverInstruments struct {
	sessionsTotal    *obs.Counter
	sessionsRejected *obs.Counter
	requestsServed   *obs.Counter
	requestsFailed   *obs.Counter
	bytesServed      *obs.Counter
	serveMS          *obs.Histogram
	writevBatches    *obs.Counter
	writevBlocks     *obs.Counter
	crcCacheHits     *obs.Counter
	crcCacheMisses   *obs.Counter
}

// Serve starts a server on ln. Close the server to stop it.
func Serve(ln net.Listener, cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("proto: server needs a store")
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		link:     NewLimiter(cfg.LinkRate),
		sessions: make(map[uint64]*serverSession),
		inst: serverInstruments{
			sessionsTotal:    cfg.Metrics.Counter("server_sessions_total"),
			sessionsRejected: cfg.Metrics.Counter("server_sessions_rejected"),
			requestsServed:   cfg.Metrics.Counter("server_requests_served"),
			requestsFailed:   cfg.Metrics.Counter("server_requests_failed"),
			bytesServed:      cfg.Metrics.Counter("server_bytes_served"),
			serveMS:          cfg.Metrics.Histogram("server_get_serve_ms"),
			writevBatches:    cfg.Metrics.Counter("server_writev_batches"),
			writevBlocks:     cfg.Metrics.Counter("server_writev_blocks"),
			crcCacheHits:     cfg.Metrics.Counter("server_crc_cache_hits"),
			crcCacheMisses:   cfg.Metrics.Counter("server_crc_cache_misses"),
		},
		blockOp: makeCRC32Op(int64(cfg.blockSize())),
	}
	if !cfg.DisableCRCCache {
		s.crcSidecars = newCRCCache(0)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ListenAndServe starts a server on addr.
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, cfg)
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and tears down all sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*serverSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range sessions {
		sess.close()
	}
	s.wg.Wait()
	return err
}

// Draining reports whether the server has stopped accepting new
// sessions (Drain was called and has not finished closing).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain is the graceful half of shutdown: it immediately stops
// accepting new control sessions (each is refused with an ERR line —
// data-stream attaches for live sessions still work), waits up to
// timeout for the in-flight sessions to finish on their own, then
// closes the server, severing whatever is left. It emits
// server_draining on entry and server_drained (with the count of
// force-closed sessions) before the final Close.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return s.Close()
	}
	s.draining = true
	active := len(s.sessions)
	s.mu.Unlock()
	s.cfg.Events.Emit(obs.EvServerDraining,
		"active_sessions", active,
		"timeout_ms", timeout.Milliseconds())
	deadline := time.Now().Add(timeout)
	remaining := 0
	for {
		s.mu.Lock()
		remaining = len(s.sessions)
		s.mu.Unlock()
		if remaining == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.cfg.Events.Emit(obs.EvServerDrained,
		"remaining_sessions", remaining,
		"forced", remaining > 0)
	return s.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn classifies a connection by its first line: "HELLO" starts
// a control session, "DATA <sid> <idx>" attaches a data stream.
func (s *Server) handleConn(conn net.Conn) {
	// A peer that connects and never finishes the one-line handshake
	// (or never drains our one-line reply) would otherwise pin this
	// goroutine forever — before classification there is no session,
	// so no watchdog or deadlineWriter covers the conn yet.
	if t := s.cfg.StallTimeout; t > 0 {
		_ = conn.SetDeadline(time.Now().Add(t))
	}
	// disarm clears the handshake deadline before the conn enters
	// steady state: control sessions idle legitimately between
	// requests, and data writes arm their own per-write deadlines.
	disarm := func() {
		if s.cfg.StallTimeout > 0 {
			_ = conn.SetDeadline(time.Time{})
		}
	}
	br := bufio.NewReaderSize(conn, 64*1024)
	verb, fields, err := readLine(br)
	if err != nil {
		conn.Close()
		return
	}
	switch verb {
	case "HELLO":
		disarm()
		s.runControl(conn, br)
	case cmdData:
		if len(fields) != 2 {
			fmt.Fprintf(conn, "%s bad DATA handshake\n", respErr)
			conn.Close()
			return
		}
		sid, err1 := strconv.ParseUint(fields[0], 10, 64)
		idx, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || idx < 0 {
			fmt.Fprintf(conn, "%s bad DATA handshake\n", respErr)
			conn.Close()
			return
		}
		s.mu.Lock()
		sess := s.sessions[sid]
		s.mu.Unlock()
		if sess == nil {
			fmt.Fprintf(conn, "%s unknown session\n", respErr)
			conn.Close()
			return
		}
		disarm()
		sess.attachData(idx, conn)
	default:
		fmt.Fprintf(conn, "%s expected HELLO or DATA\n", respErr)
		conn.Close()
	}
}

// serverSession is one control connection plus its data streams.
type serverSession struct {
	srv  *Server
	sid  uint64
	ctrl net.Conn

	writeMu sync.Mutex    // guards ctrl writes
	bw      *bufio.Writer // buffers multi-line replies (LIST); guarded by writeMu

	dataMu  sync.Mutex
	data    []net.Conn
	dataGot chan struct{}

	reqs   chan getRequest
	closed atomic.Bool

	// span roots the session's trace (server_session); nil when the
	// server is untraced.
	span *span.Span
}

func (s *Server) runControl(conn net.Conn, br *bufio.Reader) {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		s.inst.sessionsRejected.Inc()
		// A definite refusal (not just a hangup) so the client books the
		// endpoint failure immediately; bounded like every control write.
		if t := s.cfg.StallTimeout; t > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(t))
		}
		fmt.Fprintf(conn, "%s server draining\n", respErr)
		conn.Close()
		return
	}
	s.nextSID++
	s.totalSessions.Add(1)
	sess := &serverSession{
		srv:     s,
		sid:     s.nextSID,
		ctrl:    conn,
		dataGot: make(chan struct{}, 1),
		reqs:    make(chan getRequest, 1024),
		//lint:allow deadlineio every flush of bw arms SetWriteDeadline on sess.ctrl first (send, sendRaw, LIST)
		bw: bufio.NewWriter(conn),
	}
	s.sessions[sess.sid] = sess
	s.mu.Unlock()
	s.inst.sessionsTotal.Inc()
	sess.span = s.cfg.Trace.Root(span.NameServerSession,
		"sid", sess.sid, "remote", conn.RemoteAddr().String())
	s.cfg.Events.Emit(obs.EvSessionOpened, "sid", sess.sid, "remote", conn.RemoteAddr().String())

	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess.sid)
		s.mu.Unlock()
		sess.close()
		sess.span.End()
		s.cfg.Events.Emit(obs.EvSessionClosed, "sid", sess.sid)
	}()

	sess.send("%s %d\n", respOK, sess.sid)

	// Request propagation and completion delivery each carry half the
	// control RTT; the server loop itself never waits on the client,
	// which is what makes pipelined GETs back-to-back.
	reqQueue := newDelayQueue(s.cfg.ControlRTT/2, 1024, func(r getRequest) {
		select {
		case sess.reqs <- r:
		default:
			sess.send("%s %d request queue overflow\n", respErr, r.ID)
		}
	})
	doneQueue := newDelayQueue(s.cfg.ControlRTT/2, 1024, func(line string) {
		sess.sendRaw(line)
	})

	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		sess.serveLoop(doneQueue)
	}()
	// Teardown order matters: the request queue must be fully drained
	// (delayed GETs land in sess.reqs or are dropped) before sess.reqs
	// closes, otherwise a delayed delivery would send on a closed
	// channel; completions flush last so settled GETs still get their
	// DONE lines.
	defer func() {
		reqQueue.Close()
		close(sess.reqs)
		serveWG.Wait()
		doneQueue.Close()
	}()

	for {
		verb, fields, err := readLine(br)
		if err != nil {
			return
		}
		switch verb {
		case cmdList:
			files, err := s.cfg.Store.List()
			if err != nil {
				sess.send("%s %v\n", respErr, err)
				continue
			}
			// The session-lifetime bufio.Writer (under writeMu) replaces a
			// per-request allocation; it holds no bytes between requests
			// because every use ends with a Flush before the unlock.
			sess.writeMu.Lock()
			if t := s.cfg.StallTimeout; t > 0 {
				_ = sess.ctrl.SetWriteDeadline(time.Now().Add(t))
			}
			for _, f := range files {
				fmt.Fprintf(sess.bw, "%s %d %s\n", respFile, int64(f.Size), escapeName(f.Name))
			}
			fmt.Fprintf(sess.bw, "%s\n", respEnd)
			err = sess.bw.Flush()
			sess.writeMu.Unlock()
			if err != nil {
				// Same contract as sendRaw: a control channel that cannot
				// carry replies means the peer lost protocol state.
				s.cfg.logf("proto: control write on session %d: %v", sess.sid, err)
				sess.close()
				return
			}
		case cmdOpen:
			if len(fields) != 1 {
				sess.send("%s OPEN wants a stream count\n", respErr)
				continue
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 1 || n > 256 {
				sess.send("%s bad stream count %q\n", respErr, fields[0])
				continue
			}
			if err := sess.waitForStreams(n, s.cfg.dialTimeout()); err != nil {
				sess.send("%s %v\n", respErr, err)
				continue
			}
			sess.send("%s %d\n", respOK, n)
		case cmdGet:
			req, err := parseGet(fields)
			if err != nil {
				sess.send("%s %v\n", respErr, err)
				continue
			}
			reqQueue.Push(req)
		case cmdQuit:
			return
		default:
			sess.send("%s unknown command %q\n", respErr, verb)
		}
	}
}

func (sess *serverSession) send(format string, args ...any) {
	sess.sendRaw(fmt.Sprintf(format, args...))
}

func (sess *serverSession) sendRaw(line string) {
	sess.writeMu.Lock()
	if sess.closed.Load() {
		sess.writeMu.Unlock()
		return
	}
	if t := sess.srv.cfg.StallTimeout; t > 0 {
		_ = sess.ctrl.SetWriteDeadline(time.Now().Add(t))
	}
	_, err := io.WriteString(sess.ctrl, line)
	sess.writeMu.Unlock()
	if err != nil {
		// A client that cannot take control lines has lost protocol
		// state (a DONE/ERR just vanished); tear the session down so
		// its resources are not held by a dead peer.
		sess.srv.cfg.logf("proto: control write on session %d: %v", sess.sid, err)
		sess.close()
	}
}

func (sess *serverSession) attachData(idx int, conn net.Conn) {
	sess.dataMu.Lock()
	for len(sess.data) <= idx {
		sess.data = append(sess.data, nil)
	}
	if sess.data[idx] != nil {
		sess.data[idx].Close()
	}
	sess.data[idx] = conn
	sess.dataMu.Unlock()
	select {
	case sess.dataGot <- struct{}{}:
	default:
	}
}

func (sess *serverSession) waitForStreams(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		sess.dataMu.Lock()
		have := 0
		for _, c := range sess.data {
			if c != nil {
				have++
			}
		}
		sess.dataMu.Unlock()
		if have >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %d data streams", n)
		}
		select {
		case <-sess.dataGot:
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (sess *serverSession) streams() []net.Conn {
	sess.dataMu.Lock()
	defer sess.dataMu.Unlock()
	var out []net.Conn
	for _, c := range sess.data {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// serveLoop handles GETs in arrival order. Each request is striped in
// block-sized units round-robin across the session's data streams,
// with a per-stream writer goroutine so slow streams do not stall fast
// ones more than the striping requires.
func (sess *serverSession) serveLoop(doneQueue *delayQueue[string]) {
	for req := range sess.reqs {
		start := time.Now()
		gsp := sess.span.Child(span.NameServerGet,
			"id", req.ID, "file", req.Name, "offset", req.Offset, "length", req.Length)
		if err := sess.serveGet(req, gsp, doneQueue); err != nil {
			sess.srv.cfg.logf("proto: session %d GET %d (%s): %v", sess.sid, req.ID, req.Name, err)
			sess.srv.inst.requestsFailed.Inc()
			gsp.End("error", err.Error())
			sess.srv.cfg.Events.Emit(obs.EvGetServed,
				"sid", sess.sid, "id", req.ID, "file", req.Name, "error", err.Error())
			doneQueue.Push(fmt.Sprintf("%s %d %v\n", respErr, req.ID, err))
			continue
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		sess.srv.inst.serveMS.Observe(ms)
		gsp.AddBytes(req.Length)
		gsp.End()
		sess.srv.cfg.Events.Emit(obs.EvGetServed,
			"sid", sess.sid, "id", req.ID, "file", req.Name, "bytes", req.Length, "ms", ms)
	}
}

// queuedBlock is one block in flight from the serve loop to a stream
// writer: the framing header plus the pooled payload buffer, which the
// receiving writer owns (it returns it to the pool once the bytes are
// written or dropped).
type queuedBlock struct {
	header blockHeader
	buf    *[]byte
}

// collectBatch fills batch[:0] from q: it blocks for the first block,
// then opportunistically drains blocks the serve loop already queued —
// without blocking — up to max total. The bool reports whether q is
// still open; a close observed mid-drain still returns the gathered
// batch so the caller flushes it before exiting.
func collectBatch(q <-chan queuedBlock, batch []queuedBlock, max int) ([]queuedBlock, bool) {
	batch = batch[:0]
	b, ok := <-q
	if !ok {
		return batch, false
	}
	batch = append(batch, b)
	for len(batch) < max {
		select {
		case b, ok := <-q:
			if !ok {
				return batch, false
			}
			batch = append(batch, b)
		default:
			return batch, true
		}
	}
	return batch, true
}

func (sess *serverSession) serveGet(req getRequest, gsp *span.Span, doneQueue *delayQueue[string]) error {
	streams := sess.streams()
	if len(streams) == 0 {
		return fmt.Errorf("no data streams attached")
	}
	blockSize := sess.srv.cfg.blockSize()

	// Unshaped streams gather queue backlog into multi-block writev
	// batches; shaped streams stay at one block per write so the
	// limiters keep pacing at block granularity (the header+payload
	// coalescing into a single vectored write applies either way).
	maxBatch := 1
	if sess.srv.cfg.PerStreamRate == 0 && sess.srv.cfg.LinkRate == 0 {
		maxBatch = sess.srv.cfg.maxBatchBlocks()
	}
	queueDepth := 4
	if maxBatch > queueDepth {
		queueDepth = maxBatch
	}

	// Per-stream block queues and writer goroutines. Payloads ride in
	// pooled buffers: the reader below fills one per block, and the
	// writer that receives it owns it, so the steady-state path
	// allocates nothing per block. Each batch becomes one writev:
	// headers live in a per-writer slab and interleave with payloads in
	// a net.Buffers that reaches the socket without flattening.
	queues := make([]chan queuedBlock, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i := range streams {
		queues[i] = make(chan queuedBlock, queueDepth)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ssp := gsp.Child(span.NameServerStream, "stream", i)
			defer ssp.End()
			perStream := NewLimiter(sess.srv.cfg.PerStreamRate)
			var dst io.Writer = streams[i]
			if t := sess.srv.cfg.StallTimeout; t > 0 {
				dst = &deadlineWriter{conn: streams[i], timeout: t}
			}
			w := shapedWriter{w: dst, limiters: []*Limiter{perStream, sess.srv.link}}
			headers := make([]byte, maxBatch*blockHeaderSize)
			batch := make([]queuedBlock, 0, maxBatch)
			// scratch is the stable backing for each batch's vector;
			// bufs is the consumable header copy handed to WriteBuffers
			// (the write advances it, leaving scratch's capacity intact).
			scratch := make(net.Buffers, 0, 2*maxBatch)
			var bufs net.Buffers
			for {
				var open bool
				batch, open = collectBatch(queues[i], batch, maxBatch)
				if len(batch) > 0 && errs[i] == nil {
					scratch = scratch[:0]
					for j, b := range batch {
						h := headers[j*blockHeaderSize : (j+1)*blockHeaderSize]
						encodeBlockHeader(h, b.header)
						scratch = append(scratch, h, *b.buf)
					}
					bufs = scratch
					if n, err := w.WriteBuffers(&bufs); err != nil {
						errs[i] = err
					} else {
						sess.srv.inst.writevBatches.Inc()
						sess.srv.inst.writevBlocks.Add(int64(len(batch)))
						ssp.AddBytes(n)
					}
				}
				for _, b := range batch {
					putBlockBuf(b.buf)
				}
				if !open {
					return
				}
			}
		}(i)
	}

	// The whole-range CRC is built by combining per-block CRCs with the
	// precomputed advance operator. When the store can vouch for the
	// file's identity and the range is block-aligned, block CRCs come
	// from (and feed) the sidecar cache, so repeat serves of an
	// unchanged file skip the hash pass over payload bytes.
	var sidecar *crcSidecar
	if sess.srv.crcSidecars != nil && req.Offset%int64(blockSize) == 0 {
		if v, ok := sess.srv.cfg.Store.(Versioner); ok {
			if size, mtime, ok := v.Version(req.Name); ok {
				sidecar = sess.srv.crcSidecars.open(req.Name, size, mtime, blockSize)
			}
		}
	}
	var crcState uint32
	var tailOp crc32Op
	tailLen := int64(-1)
	var readErr error
	offset := req.Offset
	remaining := req.Length
	for blockIdx := 0; remaining > 0; blockIdx++ {
		n := int64(blockSize)
		if n > remaining {
			n = remaining
		}
		bufp := getBlockBuf(int(n))
		payload := *bufp
		//lint:allow bufown Store.ReadAt follows io.ReaderAt, which forbids retaining p
		read, err := sess.srv.cfg.Store.ReadAt(req.Name, payload, offset)
		if err != nil && !(errors.Is(err, io.EOF) && int64(read) == n) {
			putBlockBuf(bufp)
			readErr = fmt.Errorf("reading %s at %d: %w", req.Name, offset, err)
			break
		}
		if int64(read) != n {
			putBlockBuf(bufp)
			readErr = fmt.Errorf("short read on %s at %d: %d of %d", req.Name, offset, read, n)
			break
		}
		bcrc, cached := sidecar.lookup(offset, n)
		if cached {
			sess.srv.inst.crcCacheHits.Inc()
		} else {
			bcrc = crc32.Checksum(payload, crcTable)
			if sidecar != nil {
				sidecar.store(offset, n, bcrc)
				sess.srv.inst.crcCacheMisses.Inc()
			}
		}
		if n == int64(blockSize) {
			crcState = sess.srv.blockOp.combine(crcState, bcrc)
		} else {
			if n != tailLen {
				tailOp = makeCRC32Op(n)
				tailLen = n
			}
			crcState = tailOp.combine(crcState, bcrc)
		}
		queues[blockIdx%len(queues)] <- queuedBlock{
			header: blockHeader{ReqID: req.ID, Offset: uint64(offset), Length: uint32(n)},
			buf:    bufp,
		}
		offset += n
		remaining -= n
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	sess.srv.requestsDone.Add(1)
	sess.srv.bytesServed.Add(req.Length)
	sess.srv.inst.requestsServed.Inc()
	sess.srv.inst.bytesServed.Add(req.Length)
	doneQueue.Push(fmt.Sprintf("%s %d %d\n", respDone, req.ID, crcState))
	return nil
}

// deadlineWriter arms a rolling write deadline before every Write so a
// peer that stops draining the socket produces a timeout error instead
// of parking the writer goroutine forever.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineWriter) Write(p []byte) (int, error) {
	if err := d.conn.SetWriteDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.conn.Write(p)
}

// WriteBuffers implements buffersWriter: the vectored write reaches the
// connection as net.Buffers (a single writev on TCP) under the same
// rolling deadline as Write.
func (d *deadlineWriter) WriteBuffers(bufs *net.Buffers) (int64, error) {
	if err := d.conn.SetWriteDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return bufs.WriteTo(d.conn)
}

func (sess *serverSession) close() {
	if !sess.closed.CompareAndSwap(false, true) {
		return
	}
	sess.ctrl.Close()
	sess.dataMu.Lock()
	for _, c := range sess.data {
		if c != nil {
			c.Close()
		}
	}
	sess.dataMu.Unlock()
}
