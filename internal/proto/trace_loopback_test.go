package proto

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/units"
)

// fakeModelEnergy mimics monitor.ModelSource for tracing tests: a
// constant-power cumulative source that emits an energy_model_sample
// event (the curve the offline attribution replays) on every Total.
type fakeModelEnergy struct {
	start time.Time
	watts float64
	log   *obs.Log
}

func (f *fakeModelEnergy) Total() (units.Joules, error) {
	j := f.watts * time.Since(f.start).Seconds()
	f.log.Emit(obs.EvEnergyModel, "joules_total", j, "watts", f.watts)
	return units.Joules(j), nil
}

// waitNoLiveSpans waits for every span to close: channel and
// server-session spans end asynchronously during teardown.
func waitNoLiveSpans(t *testing.T, tr *span.Tracer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.LiveCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d spans still open after teardown", tr.LiveCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTracedLoopback is the tracing acceptance check: a traced loopback
// transfer (client and server sharing one tracer and event log) must
// reconstruct into a balanced span forest whose attributed self-joules
// sum to the energy source's final total within 1%.
func TestTracedLoopback(t *testing.T) {
	ds := dataset.NewGenerator(61).Uniform(10, 256*units.KB)
	reg := obs.NewRegistry()
	var journal bytes.Buffer
	events := obs.NewLog(&journal)
	tracer := span.NewTracer(reg, events)

	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.Events = events
		c.Trace = tracer
	})
	energy := &fakeModelEnergy{start: time.Now(), watts: 42, log: events}
	exec := &Executor{
		Client:      &Client{Addr: srv.Addr(), Counters: &Counters{}, VerifyChecksums: true},
		Sink:        NewVerifySink(),
		Energy:      energy,
		Environment: testEnv(),
		Metrics:     reg,
		Events:      events,
		Trace:       tracer,
		Label:       "traced",
	}
	r, err := exec.Run(context.Background(), planFor(ds, 2, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJoules <= 0 {
		t.Errorf("Report.EnergyJoules = %v, want > 0", r.EnergyJoules)
	}
	// The root span covers (essentially) the whole source interval, so
	// its online estimate must be close to the report's source total.
	if rel := math.Abs(r.EnergyJoules-float64(r.EndSystemEnergy)) / float64(r.EndSystemEnergy); rel > 0.05 {
		t.Errorf("EnergyJoules %v vs EndSystemEnergy %v (%.1f%% off)",
			r.EnergyJoules, r.EndSystemEnergy, rel*100)
	}

	// Server sessions (and their spans) close when the server does.
	srv.Close()
	waitNoLiveSpans(t, tracer)

	forest, err := span.ReadForest(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Leaked) > 0 || forest.Dangling > 0 {
		t.Fatalf("unbalanced forest: %d leaked, %d dangling", len(forest.Leaked), forest.Dangling)
	}
	byName := map[string]int{}
	for _, rec := range forest.ByID {
		byName[rec.Name]++
	}
	for _, want := range []string{
		span.NameTransfer, span.NameChunk, span.NameChannel, span.NameChannelDial,
		span.NameChannelStream, span.NameGet, span.NameServerSession,
		span.NameServerGet, span.NameServerStream,
	} {
		if byName[want] == 0 {
			t.Errorf("no %q span in the forest (saw %v)", want, byName)
		}
	}
	if byName[span.NameTransfer] != 1 {
		t.Errorf("%d transfer roots, want 1", byName[span.NameTransfer])
	}
	if byName[span.NameGet] != len(ds.Files) {
		t.Errorf("%d get spans for %d files", byName[span.NameGet], len(ds.Files))
	}

	// The transfer root's subtree must carry every payload byte on its
	// get spans.
	var root *span.Record
	for _, rec := range forest.Roots {
		if rec.Name == span.NameTransfer {
			root = rec
		}
	}
	if root == nil {
		t.Fatal("no transfer root")
	}
	var getBytes int64
	for _, rec := range forest.ByID {
		if rec.Name == span.NameGet {
			getBytes += rec.Bytes
		}
	}
	if getBytes != int64(ds.TotalSize()) {
		t.Errorf("get spans carry %d bytes, dataset has %d", getBytes, int64(ds.TotalSize()))
	}
	if path := span.CriticalPath(root); len(path) < 2 {
		t.Errorf("critical path has %d spans, want the root plus at least one child", len(path))
	}

	// Offline attribution: exclusive self-joules over the whole forest
	// must sum to the source's final cumulative total within 1%.
	span.Attribute(forest)
	total := forest.FinalJoules()
	if total <= 0 {
		t.Fatal("no energy samples in the journal")
	}
	sum := forest.SumSelfJoules()
	if rel := math.Abs(sum-total) / total; rel > 0.01 {
		t.Errorf("self-joules sum %v vs source total %v (%.2f%% off, want ≤1%%; unattributed %v)",
			sum, total, rel*100, forest.Unattributed)
	}
}
