package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
)

// Write-ahead receipt journal. Preallocation (store.go) makes an
// interrupted destination file's length lie — holes can hide anywhere —
// so without extra state the only sound resume of a marked file is a
// whole refetch. The journal is that extra state: an append-only log of
// CRC-verified block receipts, one record per block the client wrote to
// its sink, durable independently of the destination files. On resume,
// PlanResume (resume.go) replays the journal and re-verifies each
// journaled range against the bytes actually on disk, so recovery
// plans fine-grained gap refetches instead of refetching whole files —
// and a lying or corrupted journal degrades to refetch, never to
// corruption, because nothing is trusted that does not re-hash clean.
//
// Durability discipline: records are buffered in user space and made
// durable by a group-commit fsync every FsyncInterval (journal_fsyncs
// counts them). A crash can therefore lose the last interval's worth of
// receipts — bounded re-work, never wrong data — and can sever the
// file mid-record; the decoder treats any truncated or garbled tail as
// the end of the journal (torn-tail tolerance) rather than an error.

// JournalFileName is the conventional receipt-journal file name inside
// a destination root, next to the files it describes.
const JournalFileName = ".eta-journal"

// journalHeader identifies (and versions) a receipt journal file.
var journalHeader = []byte("ETAJRNL1\n")

// recMagic opens every journal record; a decoder that does not find it
// where a record should start has hit a torn or garbled tail.
const recMagic byte = 0xEA

// recFixedSize is the wire size of a record before the name and the
// trailing record CRC: magic(1) + nameLen(2) + offset(8) + length(4) +
// payload crc(4).
const recFixedSize = 1 + 2 + 8 + 4 + 4

// maxJournalName bounds the encoded file-name length; a decoded length
// beyond it means the tail is garbage, not a name.
const maxJournalName = 4096

// defaultFsyncInterval is the group-commit window when none is
// configured: short enough that a crash loses at most a few dozen
// milliseconds of receipts, long enough to amortize fsync across many
// block appends.
const defaultFsyncInterval = 25 * time.Millisecond

// Receipt is one journaled block receipt: file bytes [Off, Off+N) were
// written to the destination with CRC-32C CRC.
type Receipt struct {
	Name string
	Off  int64
	N    int64
	CRC  uint32
}

// JournalOptions configures OpenJournal.
type JournalOptions struct {
	// FsyncInterval is the group-commit window: appended records are
	// flushed and fsynced together every interval. Zero means the
	// default (25ms); negative means fsync on every append (tests and
	// paranoid callers).
	FsyncInterval time.Duration
	// Metrics receives journal_appends/journal_fsyncs; optional.
	Metrics *obs.Registry
	// Events receives journal lifecycle events; optional.
	Events *obs.Log
}

// Journal is an open receipt journal in append mode. Append is safe for
// concurrent use by the client's stream loops; one journal serves one
// destination root.
type Journal struct {
	path string
	sync bool // fsync every append (FsyncInterval < 0)

	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	dirty   bool
	err     error
	scratch []byte

	stop chan struct{}
	done chan struct{}

	appends *obs.Counter
	fsyncs  *obs.Counter

	// trace/parent make each dirty group-commit a journal_flush span
	// under the running transfer's root. Guarded by mu (set by the
	// executor at Start, read by the flusher goroutine).
	trace  *span.Tracer
	parent *span.Span
}

// setTraceParent attaches the journal's flush spans to a transfer's
// root span (executor wiring; same package, so unexported).
func (j *Journal) setTraceParent(t *span.Tracer, parent *span.Span) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.trace = t
	j.parent = parent
	j.mu.Unlock()
}

// OpenJournal opens (creating if needed) the receipt journal at path
// for appending and starts its group-commit flusher. A torn tail left
// by a crash is repaired first — truncated back to the last clean
// record — because records appended after a tear would be unreachable
// (the decoder stops at the first bad byte).
func OpenJournal(path string, opt JournalOptions) (*Journal, error) {
	if _, cleanLen, torn, scanErr := scanJournal(path); scanErr != nil {
		return nil, fmt.Errorf("proto: scanning journal: %w", scanErr)
	} else if torn {
		if err := os.Truncate(path, cleanLen); err != nil {
			return nil, fmt.Errorf("proto: repairing journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("proto: opening journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("proto: opening journal: %w", err)
	}
	j := &Journal{
		path:    path,
		sync:    opt.FsyncInterval < 0,
		f:       f,
		bw:      bufio.NewWriterSize(f, 64*1024),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		appends: opt.Metrics.Counter("journal_appends"),
		fsyncs:  opt.Metrics.Counter("journal_fsyncs"),
	}
	if info.Size() == 0 {
		if _, err := j.bw.Write(journalHeader); err != nil {
			f.Close()
			return nil, fmt.Errorf("proto: writing journal header: %w", err)
		}
		j.dirty = true
	}
	interval := opt.FsyncInterval
	if interval == 0 {
		interval = defaultFsyncInterval
	}
	if interval > 0 {
		go j.flusher(interval)
	} else {
		close(j.done) // no flusher to wait for
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// flusher is the group-commit loop: everything appended since the last
// tick becomes durable together.
func (j *Journal) flusher(interval time.Duration) {
	defer close(j.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.Sync()
		}
	}
}

// Append journals one block receipt. Failures are sticky and surfaced
// by Err/Close rather than returned per append: the journal is a
// recovery accelerator, and recovery re-verifies everything against the
// destination bytes, so a sick journal must not fail the transfer.
func (j *Journal) Append(name string, off, n int64, crc uint32) {
	if j == nil || n < 0 || off < 0 || len(name) > maxJournalName {
		return
	}
	j.mu.Lock()
	if j.err == nil {
		need := recFixedSize + len(name) + 4
		if cap(j.scratch) < need {
			j.scratch = make([]byte, need)
		}
		rec := j.scratch[:need]
		rec[0] = recMagic
		binary.BigEndian.PutUint16(rec[1:3], uint16(len(name)))
		binary.BigEndian.PutUint64(rec[3:11], uint64(off))
		binary.BigEndian.PutUint32(rec[11:15], uint32(n))
		binary.BigEndian.PutUint32(rec[15:19], crc)
		copy(rec[recFixedSize:], name)
		sum := crc32.Checksum(rec[:recFixedSize+len(name)], crcTable)
		binary.BigEndian.PutUint32(rec[recFixedSize+len(name):], sum)
		if _, err := j.bw.Write(rec); err != nil {
			j.err = err
		} else {
			j.dirty = true
		}
	}
	j.mu.Unlock()
	j.appends.Inc()
	if j.sync {
		j.Sync()
	}
}

// Sync flushes buffered records and fsyncs the journal file — one group
// commit. It is a no-op when nothing was appended since the last call.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return j.err
	}
	// Only dirty commits get a span, and only while a transfer owns the
	// journal: the idle ticker path above costs nothing, and a post-
	// session flush (Close) should not mint a lone root trace.
	var fsp *span.Span
	if j.parent != nil {
		fsp = j.trace.StartChild(j.parent, span.NameJournalFlush)
	}
	if err := j.bw.Flush(); err != nil {
		if j.err == nil {
			j.err = err
		}
		fsp.End("error", err.Error())
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		if j.err == nil {
			j.err = err
		}
		fsp.End("error", err.Error())
		return j.err
	}
	j.dirty = false
	j.fsyncs.Inc()
	fsp.End()
	return j.err
}

// Err returns the first write error the journal hit, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close stops the flusher, commits everything buffered, and closes the
// file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	select {
	case <-j.stop:
	default:
		close(j.stop)
	}
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadJournal decodes the receipt journal at path. A missing file is an
// empty journal. torn reports that decoding stopped before the end of
// the file — a truncated or garbled tail, the expected shape after a
// crash — in which case the receipts before the tear are still
// returned. Only unexpected I/O errors are returned as err.
func ReadJournal(path string) (recs []Receipt, torn bool, err error) {
	recs, _, torn, err = scanJournal(path)
	return recs, torn, err
}

// scanJournal is ReadJournal plus the byte length of the clean prefix —
// what OpenJournal truncates a torn journal back to before appending.
func scanJournal(path string) (recs []Receipt, cleanLen int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	head := make([]byte, len(journalHeader))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, 0, true, nil // shorter than a header: all tail
	}
	if string(head) != string(journalHeader) {
		return nil, 0, true, nil
	}
	cleanLen = int64(len(journalHeader))
	fixed := make([]byte, recFixedSize)
	var namebuf []byte
	for {
		if _, err := io.ReadFull(br, fixed); err != nil {
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, cleanLen, false, nil // clean end
			}
			return recs, cleanLen, true, nil // mid-record truncation
		}
		if fixed[0] != recMagic {
			return recs, cleanLen, true, nil
		}
		nameLen := int(binary.BigEndian.Uint16(fixed[1:3]))
		if nameLen == 0 || nameLen > maxJournalName {
			return recs, cleanLen, true, nil
		}
		if cap(namebuf) < nameLen+4 {
			namebuf = make([]byte, nameLen+4)
		}
		tail := namebuf[:nameLen+4]
		if _, err := io.ReadFull(br, tail); err != nil {
			return recs, cleanLen, true, nil
		}
		sum := crc32.Checksum(fixed, crcTable)
		sum = crc32.Update(sum, crcTable, tail[:nameLen])
		if sum != binary.BigEndian.Uint32(tail[nameLen:]) {
			return recs, cleanLen, true, nil
		}
		recs = append(recs, Receipt{
			Name: string(tail[:nameLen]),
			Off:  int64(binary.BigEndian.Uint64(fixed[3:11])),
			N:    int64(binary.BigEndian.Uint32(fixed[11:15])),
			CRC:  binary.BigEndian.Uint32(fixed[15:19]),
		})
		cleanLen += int64(recFixedSize + nameLen + 4)
	}
}
