package proto

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets double as robustness tests on their seed corpora
// under plain `go test`; run `go test -fuzz FuzzParseGet ./internal/proto`
// to explore further.

func FuzzParseGet(f *testing.F) {
	f.Add("1 file.dat 0 100")
	f.Add("4294967295 a%20b 9223372036854775807 0")
	f.Add("x y z w")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		fields := strings.Fields(line)
		req, err := parseGet(fields)
		if err != nil {
			return
		}
		// Anything accepted must round-trip through the formatter.
		out := formatGet(req)
		verb, fields2, err := readLine(bufio.NewReader(strings.NewReader(out)))
		if err != nil || verb != cmdGet {
			t.Fatalf("formatted GET unreadable: %q (%v)", out, err)
		}
		req2, err := parseGet(fields2)
		if err != nil {
			t.Fatalf("formatted GET unparseable: %q (%v)", out, err)
		}
		// Offsets/lengths/id survive exactly; names survive modulo the
		// space escaping (space becomes %20 on the first round trip).
		if req2.ID != req.ID || req2.Offset != req.Offset || req2.Length != req.Length {
			t.Fatalf("round trip changed request: %+v vs %+v", req, req2)
		}
	})
}

func FuzzReadBlockHeader(f *testing.F) {
	var good bytes.Buffer
	_ = writeBlockHeader(&good, blockHeader{ReqID: 7, Offset: 1024, Length: 512})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, blockHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := readBlockHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted headers re-encode to the identical prefix bytes.
		var buf bytes.Buffer
		if err := writeBlockHeader(&buf, h); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data[:blockHeaderSize]) {
			t.Fatalf("header did not round trip: %x vs %x", buf.Bytes(), data[:blockHeaderSize])
		}
	})
}

func FuzzReadLine(f *testing.F) {
	f.Add("GET 1 a 0 1\nrest")
	f.Add("\n")
	f.Add("   \n")
	f.Add("DONE 3 12345\n")
	f.Fuzz(func(t *testing.T, input string) {
		if !strings.Contains(input, "\n") {
			return // readLine blocks without a newline; EOF error path is fine
		}
		verb, fields, err := readLine(bufio.NewReader(strings.NewReader(input)))
		if err != nil {
			return
		}
		if verb == "" {
			t.Fatal("readLine returned empty verb without error")
		}
		for _, field := range fields {
			if strings.ContainsAny(field, " \t\n") {
				t.Fatalf("field %q contains whitespace", field)
			}
		}
	})
}
