package proto

import "errors"

// ErrChecksumMismatch marks a fetched file whose combined block CRCs
// disagree with the server's whole-file checksum (or whose blocks do
// not tile the requested range): the bytes arrived and were
// acknowledged, but the content is wrong. Callers that can re-fetch
// should — corruption is transient where a transport error may not be —
// and the executor does exactly that, re-queueing the file against the
// retry budget without tearing down the (healthy) channel.
var ErrChecksumMismatch = errors.New("proto: checksum mismatch")

// CRC combination for striped transfers. The server computes one
// CRC-32C over each file as it reads it sequentially; the client
// receives the file as out-of-order blocks across parallel streams, so
// it cannot feed a single running hash. Instead it hashes each block
// independently and merges the results with the standard GF(2)
// matrix-based crc32_combine construction (as in zlib): appending m
// bytes to a message multiplies its CRC state by the m-th power of the
// "advance one zero byte" linear operator.

// crc32Poly is the reflected Castagnoli polynomial, matching
// crc32.MakeTable(crc32.Castagnoli).
const crc32Poly = 0x82F63B78

// gf2MatrixTimes multiplies the GF(2) matrix by the vector.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets square = mat².
func gf2MatrixSquare(square, mat *[32]uint32) {
	for i := range mat {
		square[i] = gf2MatrixTimes(mat, mat[i])
	}
}

// CRC32CCombine returns the CRC-32C of the concatenation A‖B given
// crc(A), crc(B) and len(B). It runs in O(log len2) matrix operations.
func CRC32CCombine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [32]uint32

	// odd = operator for one zero bit.
	odd[0] = crc32Poly
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	// even = operator for two zero bits; odd := four, and so on.
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)

	for {
		gf2MatrixSquare(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// blockCRC is one received block's integrity record.
type blockCRC struct {
	off int64
	n   int64
	crc uint32
}

// combineBlocks merges per-block CRCs into the whole-file CRC-32C. The
// blocks must tile [0, total) exactly once; the slice is sorted in
// place. It returns ok=false if the tiling has gaps or overlaps.
func combineBlocks(blocks []blockCRC, total int64) (uint32, bool) {
	sortBlocks(blocks)
	var crc uint32
	var pos int64
	for _, b := range blocks {
		if b.n == 0 {
			continue // contributes nothing and tiles nowhere
		}
		if b.off != pos {
			return 0, false
		}
		crc = CRC32CCombine(crc, b.crc, b.n)
		pos += b.n
	}
	return crc, pos == total
}

// sortBlocks is an insertion sort: block lists arrive nearly sorted
// (round-robin striping), where insertion sort is O(n).
func sortBlocks(blocks []blockCRC) {
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j].off < blocks[j-1].off; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
}
