package proto

import "errors"

// ErrChecksumMismatch marks a fetched file whose combined block CRCs
// disagree with the server's whole-file checksum (or whose blocks do
// not tile the requested range): the bytes arrived and were
// acknowledged, but the content is wrong. Callers that can re-fetch
// should — corruption is transient where a transport error may not be —
// and the executor does exactly that, re-queueing the file against the
// retry budget without tearing down the (healthy) channel.
var ErrChecksumMismatch = errors.New("proto: checksum mismatch")

// CRC combination for striped transfers. The server computes one
// CRC-32C over each file as it reads it sequentially; the client
// receives the file as out-of-order blocks across parallel streams, so
// it cannot feed a single running hash. Instead it hashes each block
// independently and merges the results with the standard GF(2)
// matrix-based crc32_combine construction (as in zlib): appending m
// bytes to a message multiplies its CRC state by the m-th power of the
// "advance one zero byte" linear operator.

// crc32Poly is the reflected Castagnoli polynomial, matching
// crc32.MakeTable(crc32.Castagnoli).
const crc32Poly = 0x82F63B78

// gf2MatrixTimes multiplies the GF(2) matrix by the vector.
func gf2MatrixTimes(mat *crc32Op, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets square = mat².
func gf2MatrixSquare(square, mat *crc32Op) {
	for i := range mat {
		square[i] = gf2MatrixTimes(mat, mat[i])
	}
}

// crc32Op is the precomputed GF(2) operator that advances a CRC-32C
// state across a fixed number of zero bytes. Building one costs
// O(log n) matrix squarings; applying it is a single matrix-vector
// multiply (~32 XORs), so hot paths that combine many equal-length
// blocks — the server's block-tiled serve loop — pay the expensive
// part once per length instead of once per block.
type crc32Op [32]uint32

// makeCRC32Op builds the advance-n-zero-bytes operator. n must be
// positive.
func makeCRC32Op(n int64) crc32Op {
	var even, odd crc32Op

	// odd = operator for one zero bit.
	odd[0] = crc32Poly
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	// even = operator for two zero bits; odd := four, and so on.
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)

	// out accumulates the product of the squarings selected by n's
	// bits, starting from the identity.
	var out crc32Op
	for i := range out {
		out[i] = 1 << i
	}
	cur, next := &odd, &even
	for ; n > 0; n >>= 1 {
		gf2MatrixSquare(next, cur)
		cur, next = next, cur
		if n&1 != 0 {
			var prod crc32Op
			for i := range prod {
				prod[i] = gf2MatrixTimes(cur, out[i])
			}
			out = prod
		}
	}
	return out
}

// combine returns the CRC of A‖B given crc(A), crc(B), where the
// operator was built for len(B).
func (op *crc32Op) combine(crc1, crc2 uint32) uint32 {
	return gf2MatrixTimes(op, crc1) ^ crc2
}

// CRC32CCombine returns the CRC-32C of the concatenation A‖B given
// crc(A), crc(B) and len(B). It runs in O(log len2) matrix operations;
// callers combining many blocks of one length should build the
// operator once with makeCRC32Op and apply it per block instead.
func CRC32CCombine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	op := makeCRC32Op(len2)
	return op.combine(crc1, crc2)
}

// blockCRC is one received block's integrity record.
type blockCRC struct {
	off int64
	n   int64
	crc uint32
}

// combineBlocks merges per-block CRCs into the whole-file CRC-32C. The
// blocks must tile [0, total) exactly once; the slice is sorted in
// place. It returns ok=false if the tiling has gaps or overlaps.
func combineBlocks(blocks []blockCRC, total int64) (uint32, bool) {
	sortBlocks(blocks)
	var crc uint32
	var pos int64
	// Striped transfers produce runs of equal-length blocks, so the
	// advance operator is rebuilt only when the length changes (in
	// practice: once, plus once for the file's tail block).
	var op crc32Op
	opLen := int64(-1)
	for _, b := range blocks {
		if b.n == 0 {
			continue // contributes nothing and tiles nowhere
		}
		if b.off != pos {
			return 0, false
		}
		if b.n != opLen {
			op = makeCRC32Op(b.n)
			opLen = b.n
		}
		crc = op.combine(crc, b.crc)
		pos += b.n
	}
	return crc, pos == total
}

// sortBlocks is an insertion sort: block lists arrive nearly sorted
// (round-robin striping), where insertion sort is O(n).
func sortBlocks(blocks []blockCRC) {
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j].off < blocks[j-1].off; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
}
