package proto

import (
	"bytes"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/units"
)

func waitDraining(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDrainCompletesInflightAndRejectsNew(t *testing.T) {
	ds := dataset.NewGenerator(71).Uniform(6, 300*units.KB)
	reg := obs.NewRegistry()
	log := obs.NewLog(nil)
	srv := synthServer(t, ds, func(c *ServerConfig) {
		c.PerStreamRate = 40 * units.Mbps // slow enough to still be in flight when Drain lands
		c.Metrics = reg
		c.Events = log
	})

	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	ch, err := client.OpenChannel(2)
	if err != nil {
		t.Fatal(err)
	}
	fetched := make(chan error, 1)
	go func() {
		// A finished client hangs up; that is what lets the drain
		// complete gracefully instead of timing out.
		_, err := ch.Fetch(ds.Files, 2, NewVerifySink())
		ch.Close()
		fetched <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the transfer get going

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(10 * time.Second) }()
	waitDraining(t, srv)

	// New sessions must be refused while the in-flight one lives on.
	if _, err := (&Client{Addr: srv.Addr()}).OpenChannel(1); err == nil {
		t.Error("new session accepted during drain")
	}
	if err := <-fetched; err != nil {
		t.Errorf("in-flight transfer did not survive the drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}

	if got := reg.Snapshot().Counters["server_sessions_rejected"]; got < 1 {
		t.Errorf("server_sessions_rejected = %d, want ≥1", got)
	}
	tail := bytes.Join(log.Tail(64), []byte("\n"))
	for _, want := range []string{obs.EvServerDraining, obs.EvServerDrained} {
		if !bytes.Contains(tail, []byte(`"type":"`+want+`"`)) {
			t.Errorf("event log missing %s:\n%s", want, tail)
		}
	}
	if !bytes.Contains(tail, []byte(`"forced":false`)) {
		t.Errorf("graceful drain should not report forced sessions:\n%s", tail)
	}
}

func TestDrainTimeoutForcesRemainingSessions(t *testing.T) {
	ds := dataset.NewGenerator(72).Uniform(2, 50*units.KB)
	log := obs.NewLog(nil)
	srv := synthServer(t, ds, func(c *ServerConfig) { c.Events = log })

	// A session that never finishes: open and hold.
	client := &Client{Addr: srv.Addr()}
	ch, err := client.OpenChannel(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	if err := srv.Drain(30 * time.Millisecond); err != nil {
		t.Errorf("drain: %v", err)
	}
	tail := bytes.Join(log.Tail(64), []byte("\n"))
	if !bytes.Contains(tail, []byte(`"forced":true`)) {
		t.Errorf("timed-out drain should report forced sessions:\n%s", tail)
	}
	// Drain after close is idempotent shutdown, not an error.
	if err := srv.Drain(time.Millisecond); err != nil {
		t.Errorf("drain after close: %v", err)
	}
}
