package proto

import (
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

// Store is the server-side file source.
type Store interface {
	// List enumerates the transferable files.
	List() ([]dataset.File, error)
	// ReadAt fills p with the file's content at offset. Semantics
	// follow io.ReaderAt.
	ReadAt(name string, p []byte, off int64) (int, error)
}

// Versioner is an optional Store extension: stores that can report a
// file's current identity (size plus a modification token) enable the
// server's CRC sidecar cache, which skips re-hashing payload bytes on
// repeat serves of an unchanged file. mtime is any value that changes
// whenever the content may have (a filesystem mtime in UnixNano;
// immutable stores return a constant). Stores without the method are
// simply never cached.
type Versioner interface {
	Version(name string) (size int64, mtime int64, ok bool)
}

// DirStore serves real files from a directory tree.
type DirStore struct {
	Root string
}

// List implements Store by walking the directory.
func (s DirStore) List() ([]dataset.File, error) {
	var files []dataset.File
	err := filepath.WalkDir(s.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(s.Root, path)
		if err != nil {
			return err
		}
		files = append(files, dataset.File{
			Name: filepath.ToSlash(rel),
			Size: units.Bytes(info.Size()),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("proto: listing %s: %w", s.Root, err)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// ReadAt implements Store. Paths are confined to the root.
func (s DirStore) ReadAt(name string, p []byte, off int64) (int, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return 0, fmt.Errorf("proto: path %q escapes store root", name)
	}
	f, err := os.Open(filepath.Join(s.Root, clean))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.ReadAt(p, off)
}

// Version implements Versioner from the file's stat: size plus mtime in
// UnixNano. A rewrite that preserves both within the filesystem's mtime
// granularity is indistinguishable — the same caveat every
// mtime-keyed cache (rsync, make, build systems) carries, and the
// client's end-to-end checksum still catches a stale answer.
func (s DirStore) Version(name string) (int64, int64, bool) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return 0, 0, false
	}
	info, err := os.Stat(filepath.Join(s.Root, clean))
	if err != nil || info.IsDir() {
		return 0, 0, false
	}
	return info.Size(), info.ModTime().UnixNano(), true
}

// SynthStore serves deterministic pseudo-random content for a synthetic
// dataset — the substitute for the paper's testbed filesystems when no
// real data is present. Content depends only on (file name, offset), so
// any byte range can be regenerated and verified independently.
type SynthStore struct {
	mu    sync.RWMutex
	files map[string]units.Bytes
	order []dataset.File
}

// NewSynthStore builds a store serving ds.
func NewSynthStore(ds dataset.Dataset) *SynthStore {
	s := &SynthStore{files: make(map[string]units.Bytes, len(ds.Files))}
	for _, f := range ds.Files {
		if _, dup := s.files[f.Name]; !dup {
			s.order = append(s.order, f)
		}
		s.files[f.Name] = f.Size
	}
	return s
}

// List implements Store.
func (s *SynthStore) List() ([]dataset.File, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]dataset.File(nil), s.order...), nil
}

// Version implements Versioner. Synthetic content is a pure function of
// (name, offset), so the identity is the size with a constant mtime.
func (s *SynthStore) Version(name string) (int64, int64, bool) {
	s.mu.RLock()
	size, ok := s.files[name]
	s.mu.RUnlock()
	if !ok {
		return 0, 0, false
	}
	return int64(size), 0, true
}

// ReadAt implements Store.
func (s *SynthStore) ReadAt(name string, p []byte, off int64) (int, error) {
	s.mu.RLock()
	size, ok := s.files[name]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("proto: no such file %q", name)
	}
	if off < 0 || off > int64(size) {
		return 0, fmt.Errorf("proto: offset %d outside %q (size %d)", off, name, size)
	}
	n := len(p)
	if rem := int64(size) - off; int64(n) > rem {
		n = int(rem)
	}
	FillSynth(name, off, p[:n])
	return n, nil
}

// FillSynth writes the canonical synthetic content of file `name` at
// `off` into p. The generator is a per-8-byte-lane xorshift seeded from
// the name hash and the lane index, so content is O(1)-seekable.
func FillSynth(name string, off int64, p []byte) {
	seed := int64(nameHash(name))
	for i := range p {
		pos := off + int64(i)
		lane := pos >> 3
		x := uint64(seed) ^ uint64(lane)*0x9E3779B97F4A7C15
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		var lanes [8]byte
		binary.LittleEndian.PutUint64(lanes[:], x)
		p[i] = lanes[pos&7]
	}
}

// nameHash is a stable FNV-1a over the file name.
func nameHash(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// Sink is the client-side destination for received blocks.
type Sink interface {
	// WriteAt stores payload p of file name at offset off. p is a
	// pooled buffer the channel reuses for the next block: it is only
	// valid for the duration of the call and must not be retained.
	WriteAt(name string, p []byte, off int64) (int, error)
	// Close finalizes the file once all its bytes have arrived.
	Close(name string) error
}

// Preallocator is an optional Sink extension: sinks that can reserve a
// file's final size up front implement it, and the client calls it once
// per issued GET before the first WriteAt. Preallocating turns the
// out-of-order striped writes into writes inside an already-sized file
// instead of a sequence of file extensions (each a metadata update on
// most filesystems). Implementations must be idempotent — re-fetches
// after a checksum failure preallocate the same file again.
type Preallocator interface {
	Preallocate(name string, size int64) error
}

// DirSink writes received files into a directory tree.
type DirSink struct {
	Root string
	// SyncOnClose fsyncs each file before Close removes its partial
	// marker — the store half of the durability discipline: the marker
	// must not disappear while the data that justifies removing it can
	// still be lost. Journal-enabled transfers set it.
	SyncOnClose bool

	mu   sync.Mutex
	open map[string]*os.File
}

// NewDirSink returns a sink rooted at dir.
func NewDirSink(dir string) *DirSink {
	return &DirSink{Root: dir, open: make(map[string]*os.File)}
}

func (s *DirSink) file(name string) (*os.File, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return nil, fmt.Errorf("proto: path %q escapes sink root", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.open[name]; ok {
		return f, nil
	}
	path := filepath.Join(s.Root, clean)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s.open[name] = f
	return f, nil
}

// WriteAt implements Sink.
func (s *DirSink) WriteAt(name string, p []byte, off int64) (int, error) {
	f, err := s.file(name)
	if err != nil {
		return 0, err
	}
	return f.WriteAt(p, off)
}

// PartialMarkerSuffix marks a destination file whose length no longer
// reflects its progress: preallocation sizes the file before its bytes
// arrive, so an interrupted transfer leaves a full-length file with
// holes. The marker is created before the truncate and removed on
// Close; recovery treats a marked file as incomplete — journal-verified
// resume when receipts exist, whole refetch otherwise — instead of
// trusting its length.
const PartialMarkerSuffix = ".eta-partial"

// partialMarkerSuffix is the internal alias predating the export.
const partialMarkerSuffix = PartialMarkerSuffix

// Preallocate implements Preallocator: it sizes the destination file
// with one Truncate before the first WriteAt, dropping a partial marker
// until Close declares the content complete.
func (s *DirSink) Preallocate(name string, size int64) error {
	f, err := s.file(name)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	marker, err := os.Create(f.Name() + partialMarkerSuffix)
	if err != nil {
		return err
	}
	marker.Close()
	if info.Size() == size {
		return nil
	}
	return f.Truncate(size)
}

// Close implements Sink. Closing a file that never received a block
// (a zero-byte file) creates it empty.
func (s *DirSink) Close(name string) error {
	s.mu.Lock()
	f, ok := s.open[name]
	delete(s.open, name)
	s.mu.Unlock()
	if !ok {
		var err error
		if f, err = s.file(name); err != nil {
			return err
		}
		s.mu.Lock()
		delete(s.open, name)
		s.mu.Unlock()
	}
	// The content is complete: make it durable first when asked, then
	// lift the partial marker (if preallocation ever dropped one) before
	// releasing the handle. Removing the marker before the data is
	// stable would let a crash leave an unmarked file full of holes.
	if s.SyncOnClose {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := os.Remove(f.Name() + partialMarkerSuffix); err != nil && !os.IsNotExist(err) {
		f.Close()
		return err
	}
	return f.Close()
}

// completionSink wraps a Sink fetched through multiple ranges of the
// same file so the inner Close — which finalizes the file and lifts its
// partial marker — happens only once, after the LAST planned range
// closes. Closing per range would lift the marker while sibling ranges
// are still in flight, opening a corruption window on a crash.
type completionSink struct {
	inner Sink
	mu    sync.Mutex
	left  map[string]int
}

// NewCompletionSink wraps inner for a multi-range fetch: Close(name)
// reaches inner only on the call closing name's last planned range.
// Names outside ranges pass through directly.
func NewCompletionSink(inner Sink, ranges []FileRange) Sink {
	left := make(map[string]int)
	for _, r := range ranges {
		left[r.File.Name]++
	}
	return &completionSink{inner: inner, left: left}
}

// WriteAt implements Sink.
func (s *completionSink) WriteAt(name string, p []byte, off int64) (int, error) {
	return s.inner.WriteAt(name, p, off)
}

// Close implements Sink.
func (s *completionSink) Close(name string) error {
	s.mu.Lock()
	n, tracked := s.left[name]
	if tracked {
		n--
		s.left[name] = n
	}
	s.mu.Unlock()
	if tracked && n > 0 {
		return nil
	}
	return s.inner.Close(name)
}

// Preallocate implements Preallocator by forwarding when the inner sink
// supports it.
func (s *completionSink) Preallocate(name string, size int64) error {
	if pa, ok := s.inner.(Preallocator); ok {
		return pa.Preallocate(name, size)
	}
	return nil
}

// VerifySink discards payload but verifies every byte against the
// synthetic generator — the zero-disk way to exercise the full protocol
// path with end-to-end integrity checking.
type VerifySink struct {
	mu   sync.Mutex
	bad  []string
	seen map[string]int64
}

// NewVerifySink returns an empty verifying sink.
func NewVerifySink() *VerifySink {
	return &VerifySink{seen: make(map[string]int64)}
}

// WriteAt implements Sink, comparing against FillSynth.
func (s *VerifySink) WriteAt(name string, p []byte, off int64) (int, error) {
	want := make([]byte, len(p))
	FillSynth(name, off, want)
	ok := true
	for i := range p {
		if p[i] != want[i] {
			ok = false
			break
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.bad = append(s.bad, fmt.Sprintf("%s@%d+%d", name, off, len(p)))
	}
	s.seen[name] += int64(len(p))
	return len(p), nil
}

// Close implements Sink.
func (s *VerifySink) Close(string) error { return nil }

// Corrupt returns descriptions of any corrupted ranges.
func (s *VerifySink) Corrupt() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.bad...)
}

// BytesFor returns how many bytes of a file have been received.
func (s *VerifySink) BytesFor(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[name]
}
