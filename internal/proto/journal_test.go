package proto

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/units"
)

func journalPathIn(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), JournalFileName)
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPathIn(t)
	j, err := OpenJournal(path, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Receipt{
		{Name: "a.dat", Off: 0, N: 256 << 10, CRC: 0xDEADBEEF},
		{Name: "a.dat", Off: 256 << 10, N: 1234, CRC: 7},
		{Name: "sub/b.dat", Off: 99, N: 1, CRC: 0},
	}
	for _, r := range want {
		j.Append(r.Name, r.Off, r.N, r.CRC)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadJournal(path)
	if err != nil || torn {
		t.Fatalf("ReadJournal: torn=%v err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d receipts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("receipt %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, torn, err := ReadJournal(journalPathIn(t))
	if err != nil || torn || len(recs) != 0 {
		t.Errorf("missing journal: recs=%v torn=%v err=%v", recs, torn, err)
	}
}

func TestJournalTornTailDecode(t *testing.T) {
	path := journalPathIn(t)
	j, err := OpenJournal(path, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append("x", 0, 100, 1)
	j.Append("x", 100, 100, 2)
	j.Append("x", 200, 100, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncating mid-record severs the last receipt; the first two must
	// survive and the tear must be reported, never an error.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := ReadJournal(path)
	if err != nil || !torn || len(recs) != 2 {
		t.Fatalf("truncated: recs=%d torn=%v err=%v, want 2/true/nil", len(recs), torn, err)
	}

	// Garbling bytes inside the second record fails its CRC: decoding
	// stops there, one more receipt lost, still no error. Each record for
	// the one-byte name "x" is recFixedSize+1+4 bytes after the header.
	recSize := int64(recFixedSize + 1 + 4)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF}, int64(len(journalHeader))+recSize+5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, torn, err = ReadJournal(path)
	if err != nil || !torn || len(recs) != 1 {
		t.Fatalf("garbled: recs=%d torn=%v err=%v, want 1/true/nil", len(recs), torn, err)
	}
}

func TestJournalReopenRepairsTornTail(t *testing.T) {
	path := journalPathIn(t)
	j, err := OpenJournal(path, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append("x", 0, 100, 1)
	j.Append("x", 100, 100, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Reopening must truncate back to the last clean record — records
	// appended after a tear would be invisible to the decoder.
	j, err = OpenJournal(path, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append("x", 200, 100, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := ReadJournal(path)
	if err != nil || torn {
		t.Fatalf("after repair: torn=%v err=%v", torn, err)
	}
	if len(recs) != 2 || recs[0].Off != 0 || recs[1].Off != 200 {
		t.Errorf("after repair: recs=%+v, want offsets 0 and 200", recs)
	}
}

func TestJournalSyncModeIsImmediatelyDurable(t *testing.T) {
	path := journalPathIn(t)
	reg := obs.NewRegistry()
	j, err := OpenJournal(path, JournalOptions{FsyncInterval: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append("x", 0, 42, 9)
	// No Close, no Sync: every append in sync mode commits on its own.
	recs, torn, err := ReadJournal(path)
	if err != nil || torn || len(recs) != 1 {
		t.Fatalf("sync-mode append not durable: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
	snap := reg.Snapshot()
	if snap.Counters["journal_appends"] != 1 {
		t.Errorf("journal_appends = %d, want 1", snap.Counters["journal_appends"])
	}
	if snap.Counters["journal_fsyncs"] < 1 {
		t.Errorf("journal_fsyncs = %d, want ≥1", snap.Counters["journal_fsyncs"])
	}
}

func TestJournalRejectsUnencodableReceipts(t *testing.T) {
	path := journalPathIn(t)
	j, err := OpenJournal(path, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	long := make([]byte, maxJournalName+1)
	for i := range long {
		long[i] = 'n'
	}
	j.Append(string(long), 0, 10, 1) // name too long
	j.Append("x", -1, 10, 1)         // negative offset
	j.Append("x", 0, -1, 1)          // negative length
	j.Append("x", 0, 10, 1)          // the only valid one
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := ReadJournal(path)
	if err != nil || torn || len(recs) != 1 || recs[0].Name != "x" {
		t.Errorf("unencodable receipts leaked: recs=%+v torn=%v err=%v", recs, torn, err)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	j.Append("x", 0, 1, 2)
	if err := j.Sync(); err != nil {
		t.Error(err)
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
	if err := j.Err(); err != nil {
		t.Error(err)
	}
}

// markPartial materializes what a crashed preallocated transfer leaves
// behind: a full-size destination file holding real content only on the
// given [off,n) spans (holes elsewhere) plus the partial marker. It
// returns per-span CRCs for journaling.
func markPartial(t *testing.T, root string, f dataset.File, spans [][2]int64) []uint32 {
	t.Helper()
	buf := make([]byte, f.Size)
	crcs := make([]uint32, len(spans))
	for i, s := range spans {
		FillSynth(f.Name, s[0], buf[s[0]:s[0]+s[1]])
		crcs[i] = crc32.Checksum(buf[s[0]:s[0]+s[1]], crcTable)
	}
	path := filepath.Join(root, filepath.FromSlash(f.Name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+partialMarkerSuffix, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return crcs
}

func checkPlanPartition(t *testing.T, plan *RecoveryPlan, total units.Bytes) {
	t.Helper()
	if plan.Skipped+plan.Verified+plan.Refetch != total {
		t.Errorf("plan does not partition the dataset: skipped=%v + verified=%v + refetch=%v != %v",
			plan.Skipped, plan.Verified, plan.Refetch, total)
	}
}

func TestPlanResumeJournalPlansGapsOnly(t *testing.T) {
	root := t.TempDir()
	f := dataset.File{Name: "holes.dat", Size: 1000}
	// Real content at [0,300) and [500,800); holes at [300,500) and
	// [800,1000).
	crcs := markPartial(t, root, f, [][2]int64{{0, 300}, {500, 300}})

	jp := filepath.Join(root, JournalFileName)
	j, err := OpenJournal(jp, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(f.Name, 0, 300, crcs[0])
	j.Append(f.Name, 500, 300, crcs[1])
	// A lying receipt: claims the first hole is present. The disk bytes
	// are zeros, the hash cannot match, the span must refetch.
	j.Append(f.Name, 300, 200, 0x12345678)
	// An out-of-bounds receipt must be ignored outright.
	j.Append(f.Name, 900, 200, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	plan, err := PlanResume(root, []dataset.File{f}, ResumeOptions{JournalPath: jp, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	checkPlanPartition(t, plan, f.Size)
	if plan.Verified != 600 || plan.Refetch != 400 || plan.Skipped != 0 {
		t.Errorf("plan books verified=%v refetch=%v skipped=%v, want 600/400/0",
			plan.Verified, plan.Refetch, plan.Skipped)
	}
	gaps := plan.ByFile[f.Name]
	if len(gaps) != 2 {
		t.Fatalf("planned %d gaps, want 2: %+v", len(gaps), gaps)
	}
	if gaps[0].Offset != 300 || gaps[0].Length != 200 {
		t.Errorf("first gap = %+v, want [300,500)", gaps[0])
	}
	if gaps[1].Offset != 800 || gaps[1].Remaining() != 200 {
		t.Errorf("second gap = %+v, want [800,EOF)", gaps[1])
	}
	snap := reg.Snapshot()
	if snap.Counters["journal_recovered_bytes"] != 600 {
		t.Errorf("journal_recovered_bytes = %d, want 600", snap.Counters["journal_recovered_bytes"])
	}
	if snap.Counters["recovery_refetch_bytes"] != 400 {
		t.Errorf("recovery_refetch_bytes = %d, want 400", snap.Counters["recovery_refetch_bytes"])
	}
}

func TestPlanResumeLiftsMarkerWhenFullyVerified(t *testing.T) {
	root := t.TempDir()
	f := dataset.File{Name: "whole.dat", Size: 700}
	crcs := markPartial(t, root, f, [][2]int64{{0, 400}, {400, 300}})
	jp := filepath.Join(root, JournalFileName)
	j, err := OpenJournal(jp, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(f.Name, 0, 400, crcs[0])
	j.Append(f.Name, 400, 300, crcs[1])
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanResume(root, []dataset.File{f}, ResumeOptions{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	checkPlanPartition(t, plan, f.Size)
	if len(plan.Ranges) != 0 || plan.Verified != f.Size {
		t.Errorf("fully-journaled file still plans work: %+v", plan)
	}
	marker := filepath.Join(root, f.Name+partialMarkerSuffix)
	if _, err := os.Stat(marker); !os.IsNotExist(err) {
		t.Errorf("marker not lifted after full verification (stat err: %v)", err)
	}
}

func TestPlanResumeMarkedWithoutJournalRefetchesWhole(t *testing.T) {
	root := t.TempDir()
	f := dataset.File{Name: "marked.dat", Size: 500}
	markPartial(t, root, f, [][2]int64{{0, 500}}) // content complete, but marked
	plan, err := PlanResume(root, []dataset.File{f}, ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkPlanPartition(t, plan, f.Size)
	// No journal: the marker means the length lies, and with nothing to
	// verify against the only sound plan is a whole refetch.
	if plan.Verified != 0 || plan.Refetch != f.Size || len(plan.Ranges) != 1 {
		t.Errorf("marked file without journal: %+v", plan)
	}
}

func TestPlanResumeReportsTornJournal(t *testing.T) {
	root := t.TempDir()
	f := dataset.File{Name: "t.dat", Size: 400}
	crcs := markPartial(t, root, f, [][2]int64{{0, 400}})
	jp := filepath.Join(root, JournalFileName)
	j, err := OpenJournal(jp, JournalOptions{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(f.Name, 0, 400, crcs[0])
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanResume(root, []dataset.File{f}, ResumeOptions{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	checkPlanPartition(t, plan, f.Size)
	if !plan.JournalTorn {
		t.Error("torn journal tail not reported")
	}
	// The severed receipt was the only one: the marked file degrades to
	// a whole refetch, never to trusting unverifiable bytes.
	if plan.Verified != 0 || plan.Refetch != f.Size {
		t.Errorf("torn journal plan: %+v", plan)
	}
}
