package proto

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// EnergySource reports cumulative transfer energy (implemented by
// internal/monitor's RAPL and model estimators).
type EnergySource interface {
	Total() (units.Joules, error)
}

// zeroEnergy is used when no estimator is supplied.
type zeroEnergy struct{}

func (zeroEnergy) Total() (units.Joules, error) { return 0, nil }

// Executor runs transfer plans against a real server over TCP,
// implementing the same contract the simulator does — so MinE, HTEE
// and SLAEE drive real sockets unchanged.
type Executor struct {
	// Client connects to the server; its Counters field is managed by
	// the executor.
	Client *Client
	// Sink receives the payload.
	Sink Sink
	// Energy estimates end-system energy; optional.
	Energy EnergySource
	// Environment describes the path for the algorithms' parameter
	// formulas (BDP, buffer size) and budget checks.
	Environment transfer.Environment
	// ResumeOffsets maps file names to byte offsets already present at
	// the destination (from ResumeRanges); those bytes are skipped.
	ResumeOffsets map[string]units.Bytes
	// Resume, when set, takes precedence over ResumeOffsets: the session
	// fetches exactly the plan's per-file ranges (journal-verified
	// recovery from PlanResume), skipping files the plan holds no entry
	// for. A file split across several gap ranges is finalized —
	// Sink.Close, marker lift, files counter — only when its LAST range
	// settles.
	Resume *RecoveryPlan
	// MaxRetries is how many times a file transfer is re-attempted
	// after a transport failure (the channel is re-dialed each time),
	// and how many times a failed re-dial itself is re-attempted.
	// Zero means failures are fatal.
	MaxRetries int
	// Label names the algorithm in reports.
	Label string
	// Metrics receives live counters (retries_total, channels_redialed,
	// ...); optional. Propagated to the Client when its own Metrics is
	// unset.
	Metrics *obs.Registry
	// Events receives the structured transfer event log; optional.
	// Propagated to the Client when its own Events is unset.
	Events *obs.Log
	// Trace, when set, opens one root span per Start (Run and Resume
	// both land here) with child spans per chunk, channel, GET, retry
	// and journal flush, each carrying bytes and an online joules
	// estimate. Propagated to the Client (and the client's Journal)
	// when their own tracers are unset.
	Trace *span.Tracer
}

// redialBackoffCap bounds the exponential backoff between re-dial
// attempts so a transient outage is probed frequently but a dead server
// is not hammered.
const redialBackoffCap = 200 * time.Millisecond

// causeOf classifies a failed request for retry accounting: watchdog
// kills book as "stall", integrity failures as "checksum", everything
// else as "transport".
func causeOf(err error) string {
	switch {
	case errors.Is(err, ErrStalled):
		return "stall"
	case errors.Is(err, ErrChecksumMismatch):
		return "checksum"
	default:
		return "transport"
	}
}

// Env implements transfer.Executor.
func (e *Executor) Env() transfer.Environment { return e.Environment }

// Run implements transfer.Executor.
func (e *Executor) Run(ctx context.Context, plan transfer.Plan) (transfer.Report, error) {
	sess, err := e.Start(ctx, plan)
	if err != nil {
		return transfer.Report{}, err
	}
	return sess.Finish()
}

// Start implements transfer.Executor.
func (e *Executor) Start(ctx context.Context, plan transfer.Plan) (transfer.Session, error) {
	if e.Client == nil || e.Sink == nil {
		return nil, errors.New("proto: executor needs a client and a sink")
	}
	if err := plan.Validate(e.Environment); err != nil {
		return nil, err
	}
	energy := e.Energy
	if energy == nil {
		energy = zeroEnergy{}
	}
	if e.Client.Counters == nil {
		e.Client.Counters = &Counters{}
	}
	if e.Client.Metrics == nil {
		e.Client.Metrics = e.Metrics
	}
	if e.Client.Events == nil {
		e.Client.Events = e.Events
	}
	if e.Client.Trace == nil {
		e.Client.Trace = e.Trace
	}
	s := &realSession{
		exec:     e,
		ctx:      ctx,
		plan:     plan,
		energy:   energy,
		start:    time.Now(),
		doneCh:   make(chan struct{}),
		inst:     newExecInstruments(e.Metrics),
		events:   e.Events,
		fileRefs: make(map[string]int),
		// The client's Counters outlive any one session (they back the
		// /metrics byte totals), so Report accounting subtracts this
		// baseline instead of reading the shared counter raw — a second
		// Run on the same Executor must not report the first run's bytes.
		baseBytes: e.Client.Counters.Bytes(),
	}
	// Prime the energy source so the first window is measured, and seed
	// the tracer's online energy estimator with the primed total so the
	// root span's baseline is the transfer's start, not zero.
	primed, err := energy.Total()
	if err != nil {
		return nil, fmt.Errorf("proto: energy source unusable: %w", err)
	}
	e.Trace.EnergySample(float64(primed))
	s.root = e.Trace.Root(span.NameTransfer,
		"label", e.Label,
		"chunks", len(plan.Chunks),
		"channels", plan.TotalChannels(),
		"resume", e.Resume != nil)
	e.Client.setTraceParent(s.root)
	if e.Client.Journal != nil {
		e.Client.Journal.setTraceParent(e.Trace, s.root)
	}
	for i := range plan.Chunks {
		cp := plan.Chunks[i]
		rc := &realChunk{plan: cp, idx: i}
		rc.span = s.root.Child(span.NameChunk, "chunk", i, "files", len(cp.Chunk.Files))
		for _, f := range cp.Chunk.Files {
			var frs []FileRange
			if e.Resume != nil {
				rs, ok := e.Resume.ByFile[f.Name]
				if !ok {
					continue // already complete at the destination
				}
				frs = rs
			} else {
				r := FileRange{File: f, Offset: e.ResumeOffsets[f.Name]}
				if r.Remaining() == 0 {
					continue // already complete at the destination
				}
				frs = []FileRange{r}
			}
			n := 0
			for _, r := range frs {
				if r.Remaining() == 0 {
					continue
				}
				rc.queue = append(rc.queue, queuedRange{r: r})
				s.total += r.Remaining()
				n++
			}
			if n > 0 {
				s.fileRefs[f.Name] += n
			}
		}
		s.chunks = append(s.chunks, rc)
	}
	// A fully-resumed plan has nothing left to move.
	s.signalDoneIfComplete()
	var targets []int
	if plan.Sequential {
		// All channels go to the FIRST chunk with work left — chunk 0 may
		// already be complete at the destination (resume), in which case
		// handing it the whole allocation would park every worker on an
		// empty queue until the realloc path noticed.
		targets = make([]int, len(s.chunks))
		for i, rc := range s.chunks {
			if rc.remaining() > 0 {
				targets[i] = plan.TotalChannels()
				break
			}
		}
	} else {
		targets = make([]int, len(s.chunks))
		for i, cp := range plan.Chunks {
			targets[i] = cp.Channels
		}
	}
	if err := s.reconcile(targets); err != nil {
		s.stopAll()
		s.endSpans(err)
		return nil, err
	}
	s.inst.transfersStarted.Inc()
	s.events.Emit(obs.EvTransferStarted,
		"label", e.Label,
		"chunks", len(s.chunks),
		"bytes", int64(s.total),
		"channels", plan.TotalChannels(),
		"sequential", plan.Sequential)
	return s, nil
}

// execInstruments caches the executor-side counters so hot paths skip
// the registry's name lookup. All fields are nil (and their methods
// no-ops) when no registry is configured.
type execInstruments struct {
	transfersStarted  *obs.Counter
	transfersFinished *obs.Counter
	retriesTotal      *obs.Counter
	retriesByCause    *obs.Family
	channelsRedialed  *obs.Counter
	chunksRealloc     *obs.Counter
	energyJoules      *obs.Gauge
}

func newExecInstruments(r *obs.Registry) execInstruments {
	return execInstruments{
		transfersStarted:  r.Counter("transfers_started"),
		transfersFinished: r.Counter("transfers_finished"),
		retriesTotal:      r.Counter("retries_total"),
		retriesByCause:    r.Family("retries_by_cause", "cause"),
		channelsRedialed:  r.Counter("channels_redialed"),
		chunksRealloc:     r.Counter("chunks_reallocated"),
		energyJoules:      r.Gauge("energy_joules_total"),
	}
}

// realChunk is a chunk's shared work queue.
type realChunk struct {
	plan transfer.ChunkPlan
	idx  int // position in the plan, for event labels
	// span covers the chunk from Start to Finish (a chunk has no
	// earlier natural drain moment: ranges can requeue into it until
	// the session settles); nil when untraced.
	span *span.Span

	mu      sync.Mutex
	queue   []queuedRange
	next    int
	retries []queuedRange
}

// queuedRange tracks how often a range has been attempted.
type queuedRange struct {
	r        FileRange
	attempts int
}

func (c *realChunk) pop() (queuedRange, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.retries); n > 0 {
		q := c.retries[n-1]
		c.retries = c.retries[:n-1]
		return q, true
	}
	if c.next >= len(c.queue) {
		return queuedRange{}, false
	}
	f := c.queue[c.next]
	c.next++
	return f, true
}

// requeue returns a failed range for another attempt.
func (c *realChunk) requeue(q queuedRange) {
	c.mu.Lock()
	c.retries = append(c.retries, q)
	c.mu.Unlock()
}

func (c *realChunk) remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue) - c.next + len(c.retries)
}

func (c *realChunk) remainingBytes() units.Bytes {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total units.Bytes
	for _, q := range c.queue[c.next:] {
		total += q.r.Remaining()
	}
	for _, q := range c.retries {
		total += q.r.Remaining()
	}
	return total
}

// realWorker is one live channel bound to a chunk.
type realWorker struct {
	chunk *realChunk
	stop  chan struct{} // closed to ask the worker to drain and exit

	// redials counts failed re-dial attempts, each consuming one unit
	// of the executor's retry budget.
	redials int
}

type realSession struct {
	exec   *Executor
	ctx    context.Context
	plan   transfer.Plan
	energy EnergySource
	start  time.Time

	mu        sync.Mutex
	chunks    []*realChunk
	workers   map[*realWorker]struct{}
	wg        sync.WaitGroup
	total     units.Bytes
	completed units.Bytes
	firstErr  error
	finished  bool
	// fileRefs counts each file's outstanding planned ranges; the range
	// that decrements it to zero finalizes the file (Sink.Close).
	fileRefs map[string]int

	doneCh   chan struct{}
	doneOnce sync.Once
	// doneAt is stamped inside doneOnce just before doneCh closes, so a
	// caller that keeps sampling before invoking Finish still reports the
	// duration of the transfer, not of its own patience. Readers
	// synchronize through <-doneCh.
	doneAt time.Time
	// baseBytes is Client.Counters.Bytes() at Start; see Start.
	baseBytes units.Bytes

	inst    execInstruments
	events  *obs.Log
	retries atomic.Int64
	files   atomic.Int64

	// root is the transfer's root span (nil when untraced); spansOnce
	// makes endSpans idempotent across the Start-failure and Finish
	// paths.
	root      *span.Span
	spansOnce sync.Once

	lastBytes  units.Bytes
	lastEnergy units.Joules
	elapsed    time.Duration
	samples    []transfer.Sample
}

// retryConsumed books one unit of retry budget: a failed GET, a window
// requeue after a transport error, or a failed re-dial attempt. Each
// consumption is also a point span (begin and end at the same instant)
// so the flight recorder can place every retry on the timeline by
// cause.
func (s *realSession) retryConsumed(cause, file string, attempt int, err error) {
	s.retries.Add(1)
	s.inst.retriesTotal.Inc()
	s.inst.retriesByCause.With(cause).Inc()
	s.root.Child(span.NameRetry, "cause", cause, "file", file, "attempt", attempt).
		End("error", fmt.Sprint(err))
	s.events.Emit(obs.EvRetryConsumed,
		"cause", cause,
		"file", file,
		"attempt", attempt,
		"budget", s.exec.MaxRetries,
		"error", fmt.Sprint(err))
}

// endSpans finishes the session's chunk spans and root span exactly
// once, stamping the final joules estimate (Report.EnergyJoules reads
// the root's estimate just before this).
func (s *realSession) endSpans(cause error) {
	s.spansOnce.Do(func() {
		// Detach the client and journal first: channels dialed or flushes
		// committed after this session must not parent under a root that
		// is about to end.
		s.exec.Client.setTraceParent(nil)
		if s.exec.Client.Journal != nil {
			s.exec.Client.Journal.setTraceParent(s.exec.Trace, nil)
		}
		for _, rc := range s.chunks {
			rc.span.End()
		}
		if cause != nil {
			s.root.End("error", cause.Error())
		} else {
			s.root.End()
		}
	})
}

// reconcile adjusts live workers per chunk to the target allocation.
func (s *realSession) reconcile(targets []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workers == nil {
		s.workers = make(map[*realWorker]struct{})
	}
	current := make(map[*realChunk][]*realWorker)
	for w := range s.workers {
		current[w.chunk] = append(current[w.chunk], w)
	}
	for i, rc := range s.chunks {
		want := targets[i]
		have := current[rc]
		for len(have) > want {
			w := have[len(have)-1]
			have = have[:len(have)-1]
			close(w.stop)
			delete(s.workers, w)
		}
		for len(have) < want {
			w := &realWorker{chunk: rc, stop: make(chan struct{})}
			ch, err := s.exec.Client.OpenChannel(maxI(1, rc.plan.Parallelism()))
			if err != nil {
				return fmt.Errorf("proto: opening channel: %w", err)
			}
			s.events.Emit(obs.EvChannelPlaced,
				"chunk", rc.idx,
				"endpoint", ch.Endpoint(),
				"addr", ch.EndpointAddr())
			s.workers[w] = struct{}{}
			have = append(have, w)
			s.wg.Add(1)
			go s.runWorker(w, ch)
		}
	}
	return nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runWorker pumps files from the worker's chunk through its channel,
// keeping the chunk's pipelining depth of GETs outstanding. Transport
// failures requeue the outstanding ranges and re-dial the channel, up
// to the executor's retry budget per range.
func (s *realSession) runWorker(w *realWorker, ch *Channel) {
	type inflight struct {
		p *pendingGet
		q queuedRange
	}
	var window []inflight

	defer func() {
		if ch != nil {
			ch.Close()
		}
	}()
	defer s.wg.Done()

	// requeueWindow sends every outstanding range back for another
	// attempt (or fails the session when one is out of retries).
	requeueWindow := func(cause error) bool {
		ok := true
		for _, f := range window {
			f.q.attempts++
			s.retryConsumed(causeOf(cause), f.q.r.File.Name, f.q.attempts, cause)
			if f.q.attempts > s.exec.MaxRetries {
				ok = false
				continue
			}
			w.chunk.requeue(f.q)
		}
		window = window[:0]
		return ok
	}
	// redial replaces a broken channel. A transient OpenChannel failure
	// does not fail the session while retry budget remains: each failed
	// attempt consumes one unit of the budget and the next attempt waits
	// a capped exponential backoff, so the worker rides out short
	// listener outages.
	redial := func(cause error) bool {
		// A channel-fatal error (stall, transport, broken control stream)
		// counts against the endpoint the channel was placed on, so a
		// dying replica drops out of rotation and the replacement channel
		// lands on a healthy one. Checksum failures never reach here —
		// they re-fetch on the same channel without blaming the endpoint.
		s.exec.Client.pool().ReportFailure(ch.Endpoint(), cause)
		ch.Close()
		ch = nil
		// The redial span covers the whole backoff loop: its duration is
		// the worker's dead time, the interval a tuner would read as
		// "bytes stalled on recovery".
		rsp := s.root.Child(span.NameChannelRedial,
			"chunk", w.chunk.idx, "cause", fmt.Sprint(cause))
		if !requeueWindow(cause) {
			s.fail(fmt.Errorf("proto: transfer failed after %d retries: %w", s.exec.MaxRetries, cause))
			rsp.End("error", "retry budget exhausted")
			return false
		}
		backoff := 5 * time.Millisecond
		for {
			next, err := s.exec.Client.OpenChannel(maxI(1, w.chunk.plan.Parallelism()))
			if err == nil {
				ch = next
				s.inst.channelsRedialed.Inc()
				rsp.End("failed_attempts", w.redials)
				s.events.Emit(obs.EvChannelRedialed,
					"chunk", w.chunk.idx,
					"failed_attempts", w.redials,
					"endpoint", next.Endpoint(),
					"addr", next.EndpointAddr(),
					"cause", fmt.Sprint(cause))
				return true
			}
			w.redials++
			s.retryConsumed("redial", "", w.redials, err)
			if w.redials > s.exec.MaxRetries {
				s.fail(fmt.Errorf("proto: re-dialing after %v: %w", cause, err))
				rsp.End("error", err.Error())
				return false
			}
			select {
			case <-w.stop:
				// Teardown while the server is unreachable: the window
				// is already requeued for other workers; just exit.
				rsp.End("error", "worker stopped")
				return false
			case <-s.ctxDone():
				s.fail(s.ctx.Err())
				rsp.End("error", s.ctx.Err().Error())
				return false
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > redialBackoffCap {
				backoff = redialBackoffCap
			}
		}
	}
	// settle waits for the oldest request; a failure triggers the
	// retry path and reports whether the worker should continue.
	settle := func() bool {
		f := window[0]
		window = window[1:]
		if err := ch.finish(f.p); err != nil {
			if errors.Is(err, ErrChecksumMismatch) {
				// The bytes and the DONE line both arrived — the channel
				// is healthy, the content is not. Re-fetch just this file
				// against the retry budget instead of tearing the channel
				// down (the re-write covers the corrupt range).
				f.q.attempts++
				s.retryConsumed(causeOf(err), f.q.r.File.Name, f.q.attempts, err)
				if f.q.attempts > s.exec.MaxRetries {
					s.fail(fmt.Errorf("proto: %s still corrupt after %d retries: %w",
						f.q.r.File.Name, s.exec.MaxRetries, err))
					return false
				}
				w.chunk.requeue(f.q)
				return true
			}
			window = append([]inflight{f}, window...)
			return redial(err)
		}
		// Finalize the file only when its LAST planned range settled:
		// closing earlier would lift the partial marker (and bump the
		// files counters) while sibling gap ranges are still in flight.
		if s.fileSettled(f.p.name) {
			if err := s.exec.Sink.Close(f.p.name); err != nil {
				s.fail(err)
				return false
			}
			s.files.Add(1)
			s.exec.Client.Counters.files.Add(1)
			s.exec.Client.instruments().filesCompleted.Inc()
		}
		s.addCompleted(units.Bytes(f.p.length))
		return true
	}
	drain := func() {
		for len(window) > 0 {
			if !settle() {
				return
			}
		}
	}

	for {
		select {
		case <-w.stop:
			drain()
			return
		default:
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			drain()
			s.fail(s.ctx.Err())
			return
		}
		pipe := w.chunk.plan.Pipelining()
		issued := false
		for len(window) < pipe {
			q, ok := w.chunk.pop()
			if !ok {
				break
			}
			p, err := ch.get(q.r, s.exec.Sink)
			if err != nil {
				q.attempts++
				s.retryConsumed("get", q.r.File.Name, q.attempts, err)
				if q.attempts > s.exec.MaxRetries {
					s.fail(fmt.Errorf("proto: issuing GET failed after %d retries: %w", s.exec.MaxRetries, err))
					return
				}
				w.chunk.requeue(q)
				if !redial(err) {
					return
				}
				continue
			}
			window = append(window, inflight{p: p, q: q})
			issued = true
		}
		if len(window) == 0 {
			// Chunk drained: move on per the plan's policy.
			next := s.nextChunkFor(w)
			if next == nil {
				return
			}
			s.mu.Lock()
			from := w.chunk.idx
			w.chunk = next
			s.mu.Unlock()
			s.inst.chunksRealloc.Inc()
			s.events.Emit(obs.EvChunkRealloc, "from_chunk", from, "to_chunk", next.idx)
			continue
		}
		if !issued || len(window) >= pipe {
			if !settle() {
				return
			}
		}
	}
}

// nextChunkFor mirrors the simulator's reallocation policy.
func (s *realSession) nextChunkFor(w *realWorker) *realChunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plan.Sequential {
		for _, rc := range s.chunks {
			if rc != w.chunk && rc.remaining() > 0 {
				return rc
			}
		}
		return nil
	}
	if !s.plan.ReallocOnComplete {
		return nil
	}
	var best *realChunk
	for _, rc := range s.chunks {
		if rc == w.chunk || !rc.plan.AcceptRealloc || rc.remaining() == 0 {
			continue
		}
		if best == nil || rc.remainingBytes() > best.remainingBytes() {
			best = rc
		}
	}
	return best
}

// fileSettled books one successfully settled range of name and reports
// whether it was the file's last outstanding one.
func (s *realSession) fileSettled(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.fileRefs[name]
	if !ok {
		return true
	}
	if n--; n <= 0 {
		delete(s.fileRefs, name)
		return true
	}
	s.fileRefs[name] = n
	return false
}

func (s *realSession) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
	s.signalDoneIfComplete()
}

func (s *realSession) addCompleted(n units.Bytes) {
	s.mu.Lock()
	s.completed += n
	s.mu.Unlock()
	s.signalDoneIfComplete()
}

func (s *realSession) signalDoneIfComplete() {
	s.mu.Lock()
	done := s.completed >= s.total || s.firstErr != nil
	s.mu.Unlock()
	if done {
		s.doneOnce.Do(func() {
			s.doneAt = time.Now()
			close(s.doneCh)
		})
	}
}

// Done implements transfer.Session.
func (s *realSession) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed >= s.total
}

// Remaining implements transfer.Session.
func (s *realSession) Remaining() units.Bytes {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.completed >= s.total {
		return 0
	}
	return s.total - s.completed
}

// Advance implements transfer.Session: it lets the live transfer run
// for (up to) d of wall-clock time and reports the window.
func (s *realSession) Advance(d time.Duration) (transfer.Sample, error) {
	if d <= 0 {
		return transfer.Sample{}, fmt.Errorf("proto: non-positive advance %v", d)
	}
	if err := s.err(); err != nil {
		return transfer.Sample{}, err
	}
	winStart := s.elapsed
	if !s.Done() {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-s.doneCh:
			timer.Stop()
		}
	}
	now := time.Since(s.start)
	bytes := s.sessionBytes()
	energy, eErr := s.energy.Total()
	if eErr != nil {
		return transfer.Sample{}, eErr
	}
	s.exec.Trace.EnergySample(float64(energy))
	sample := transfer.Sample{
		Start:           winStart,
		Duration:        now - s.elapsed,
		Bytes:           bytes - s.lastBytes,
		EndSystemEnergy: energy - s.lastEnergy,
		ActiveChannels:  s.liveWorkers(),
	}
	sample.Throughput = units.RateOf(sample.Bytes, sample.Duration)
	s.elapsed = now
	s.lastBytes = bytes
	s.lastEnergy = energy
	s.samples = append(s.samples, sample)
	s.inst.energyJoules.Set(float64(energy))
	s.events.Emit(obs.EvEnergySample,
		"window_ms", sample.Duration.Milliseconds(),
		"bytes", int64(sample.Bytes),
		"joules", float64(sample.EndSystemEnergy),
		"mbps", sample.Throughput.Mbit(),
		"channels", sample.ActiveChannels)
	if err := s.err(); err != nil {
		return transfer.Sample{}, err
	}
	return sample, nil
}

// sessionBytes is how many payload bytes THIS session has received: the
// shared client counter minus the session's starting baseline.
func (s *realSession) sessionBytes() units.Bytes {
	return s.exec.Client.Counters.Bytes() - s.baseBytes
}

func (s *realSession) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// ctxDone returns the session context's done channel (nil — blocking
// forever — when the session was started without a context).
func (s *realSession) ctxDone() <-chan struct{} {
	if s.ctx == nil {
		return nil
	}
	return s.ctx.Done()
}

func (s *realSession) liveWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workers)
}

// SetTotalChannels implements transfer.Session with the same
// weight-proportional split as the simulator.
func (s *realSession) SetTotalChannels(n int) error {
	if n < 1 {
		return fmt.Errorf("proto: total channels %d < 1", n)
	}
	if s.Environment().MaxChannels > 0 && n > s.Environment().MaxChannels {
		return fmt.Errorf("proto: total channels %d exceeds budget %d", n, s.Environment().MaxChannels)
	}
	type cw struct {
		idx  int
		frac float64
	}
	s.mu.Lock()
	var totalWeight float64
	var live []int
	for i, rc := range s.chunks {
		if rc.remaining() > 0 {
			live = append(live, i)
			totalWeight += rc.plan.Weight
		}
	}
	s.mu.Unlock()
	if len(live) == 0 {
		return nil
	}
	targets := make([]int, len(s.chunks))
	used := 0
	fracs := make([]cw, 0, len(live))
	for _, i := range live {
		w := s.chunks[i].plan.Weight
		if totalWeight <= 0 {
			w = 1.0 / float64(len(live))
		} else {
			w /= totalWeight
		}
		exact := float64(n) * w
		targets[i] = int(exact)
		used += targets[i]
		fracs = append(fracs, cw{idx: i, frac: exact - float64(targets[i])})
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].frac > fracs[b].frac })
	for k := 0; used < n; k++ {
		targets[fracs[k%len(fracs)].idx]++
		used++
	}
	return s.reconcile(targets)
}

// SetAllocation implements transfer.Session.
func (s *realSession) SetAllocation(channels []int) error {
	if len(channels) != len(s.chunks) {
		return fmt.Errorf("proto: allocation for %d chunks, plan has %d", len(channels), len(s.chunks))
	}
	total := 0
	for i, n := range channels {
		if n < 0 {
			return fmt.Errorf("proto: chunk %d allocated %d channels", i, n)
		}
		total += n
	}
	if total == 0 {
		return errors.New("proto: allocation has no channels")
	}
	return s.reconcile(channels)
}

func (s *realSession) Environment() transfer.Environment { return s.exec.Environment }

// Finish implements transfer.Session.
func (s *realSession) Finish() (transfer.Report, error) {
	<-s.doneCh
	s.stopAll()
	s.wg.Wait()
	if err := s.err(); err != nil {
		s.endSpans(err)
		return transfer.Report{}, err
	}
	// doneAt is safe to read here: it was written before doneCh closed
	// and we received from doneCh above.
	duration := s.doneAt.Sub(s.start)
	if duration <= 0 {
		duration = time.Since(s.start)
	}
	bytes := s.sessionBytes()
	energy, err := s.energy.Total()
	if err != nil {
		s.endSpans(err)
		return transfer.Report{}, err
	}
	// Push the final cumulative sample before ending the spans so the
	// root span's joules estimate closes against the source's actual
	// final total rather than an extrapolation.
	s.exec.Trace.EnergySample(float64(energy))
	joules := s.root.Joules()
	if s.root == nil {
		joules = float64(energy)
	}
	s.endSpans(nil)
	s.mu.Lock()
	s.finished = true
	s.mu.Unlock()
	r := transfer.Report{
		Algorithm:       s.exec.Label,
		Testbed:         s.exec.Client.Target(),
		Duration:        duration,
		Bytes:           bytes,
		Throughput:      units.RateOf(bytes, duration),
		Files:           s.files.Load(),
		Retries:         s.retries.Load(),
		EndSystemEnergy: energy,
		EnergyJoules:    joules,
		AvgPower:        units.Power(energy, duration),
		Samples:         s.samples,
	}
	s.inst.transfersFinished.Inc()
	s.inst.energyJoules.Set(float64(energy))
	s.events.Emit(obs.EvTransferFinished,
		"label", s.exec.Label,
		"bytes", int64(r.Bytes),
		"files", r.Files,
		"retries", r.Retries,
		"duration_ms", duration.Milliseconds(),
		"mbps", r.Throughput.Mbit(),
		"joules", float64(energy))
	return r, nil
}

func (s *realSession) stopAll() {
	s.mu.Lock()
	for w := range s.workers {
		select {
		case <-w.stop:
		default:
			close(w.stop)
		}
	}
	s.mu.Unlock()
}

var _ transfer.Executor = (*Executor)(nil)
var _ transfer.Session = (*realSession)(nil)
