package proto

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

func TestCRC32CCombineMatchesSequential(t *testing.T) {
	f := func(seed int64, lenA, lenB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]byte, int(lenA))
		b := make([]byte, int(lenB))
		rng.Read(a)
		rng.Read(b)
		whole := crc32.Checksum(append(append([]byte{}, a...), b...), crcTable)
		combined := CRC32CCombine(crc32.Checksum(a, crcTable), crc32.Checksum(b, crcTable), int64(len(b)))
		return whole == combined
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC32CCombineZeroLength(t *testing.T) {
	if got := CRC32CCombine(0xDEADBEEF, 0x12345678, 0); got != 0xDEADBEEF {
		t.Errorf("zero-length combine = %08x", got)
	}
}

func TestCombineBlocksTiling(t *testing.T) {
	data := make([]byte, 10000)
	rand.New(rand.NewSource(7)).Read(data)
	whole := crc32.Checksum(data, crcTable)

	// Split into irregular blocks and shuffle.
	var blocks []blockCRC
	bounds := []int64{0, 137, 1000, 1001, 4096, 9000, 10000}
	for i := 1; i < len(bounds); i++ {
		lo, hi := bounds[i-1], bounds[i]
		blocks = append(blocks, blockCRC{
			off: lo, n: hi - lo,
			crc: crc32.Checksum(data[lo:hi], crcTable),
		})
	}
	rand.New(rand.NewSource(9)).Shuffle(len(blocks), func(i, j int) {
		blocks[i], blocks[j] = blocks[j], blocks[i]
	})
	got, ok := combineBlocks(blocks, int64(len(data)))
	if !ok || got != whole {
		t.Errorf("combineBlocks = %08x ok=%v, want %08x", got, ok, whole)
	}
}

func TestCombineBlocksDetectsGapsAndOverlaps(t *testing.T) {
	gap := []blockCRC{{off: 0, n: 10}, {off: 20, n: 10}}
	if _, ok := combineBlocks(gap, 30); ok {
		t.Error("gap accepted")
	}
	overlap := []blockCRC{{off: 0, n: 20}, {off: 10, n: 20}}
	if _, ok := combineBlocks(overlap, 30); ok {
		t.Error("overlap accepted")
	}
	short := []blockCRC{{off: 0, n: 10}}
	if _, ok := combineBlocks(short, 30); ok {
		t.Error("short tiling accepted")
	}
}

func TestFetchWithChecksumVerification(t *testing.T) {
	// Striped transfer with checksum verification on: block CRCs from
	// four streams must combine to the server's whole-file CRC.
	ds := dataset.NewGenerator(30).Uniform(4, 2*units.MB)
	srv := synthServer(t, ds, func(c *ServerConfig) { c.BlockSize = 96 * 1024 })
	client := &Client{Addr: srv.Addr(), VerifyChecksums: true}
	ch, err := client.OpenChannel(4)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	res, err := ch.Fetch(ds.Files, 2, NewVerifySink())
	if err != nil {
		t.Fatalf("checksum-verified fetch failed: %v", err)
	}
	if res.Bytes != ds.TotalSize() {
		t.Errorf("moved %v of %v", res.Bytes, ds.TotalSize())
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	// Corruption is simulated on the record side: tamper with the
	// recorded block CRC via a hand-built pendingGet.
	p := &pendingGet{length: 100}
	data := make([]byte, 100)
	FillSynth("x", 0, data)
	p.recordBlock(0, int64(len(data)), crc32.Checksum(data, crcTable))
	p.crc = crc32.Checksum(data, crcTable)
	if err := p.verifyChecksum(); err != nil {
		t.Fatalf("clean verification failed: %v", err)
	}
	p.blocks[0].crc ^= 1
	if err := p.verifyChecksum(); err == nil {
		t.Error("corrupted block CRC passed verification")
	}
}

func TestCombineBlocksZeroLengthBlocks(t *testing.T) {
	// Zero-length blocks are legal tiles anywhere in the range: they
	// contribute nothing to the CRC and must not break the tiling scan.
	data := make([]byte, 1000)
	rand.New(rand.NewSource(11)).Read(data)
	whole := crc32.Checksum(data, crcTable)
	blocks := []blockCRC{
		{off: 0, n: 0, crc: 0},
		{off: 0, n: 600, crc: crc32.Checksum(data[:600], crcTable)},
		{off: 600, n: 0, crc: 0},
		{off: 600, n: 400, crc: crc32.Checksum(data[600:], crcTable)},
		{off: 1000, n: 0, crc: 0},
	}
	got, ok := combineBlocks(blocks, int64(len(data)))
	if !ok || got != whole {
		t.Errorf("combineBlocks with zero-length tiles = %08x ok=%v, want %08x", got, ok, whole)
	}
	// An entirely empty range combines to the zero CRC.
	if got, ok := combineBlocks(nil, 0); !ok || got != 0 {
		t.Errorf("empty range = %08x ok=%v, want 0", got, ok)
	}
	if got, ok := combineBlocks([]blockCRC{{off: 0, n: 0, crc: 0}}, 0); !ok || got != 0 {
		t.Errorf("single zero block over empty range = %08x ok=%v", got, ok)
	}
}

func TestCombineBlocksSingleBlockFile(t *testing.T) {
	// A file that fits in one block must combine to exactly that block's
	// CRC — the degenerate case where no GF(2) matrix work happens.
	data := make([]byte, 4096)
	rand.New(rand.NewSource(12)).Read(data)
	whole := crc32.Checksum(data, crcTable)
	got, ok := combineBlocks([]blockCRC{{off: 0, n: 4096, crc: whole}}, 4096)
	if !ok || got != whole {
		t.Errorf("single-block combine = %08x ok=%v, want %08x", got, ok, whole)
	}
}

func TestVerifyChecksumResumeOffsetNormalization(t *testing.T) {
	// A resumed GET records blocks at absolute file offsets, but the
	// server's checksum covers only the requested [offset, offset+length)
	// window. verifyChecksum must normalize by p.offset before tiling.
	total := make([]byte, 1500)
	FillSynth("resumed.dat", 0, total)
	p := &pendingGet{name: "resumed.dat", offset: 1000, length: 500}
	p.recordBlock(1000, 200, crc32.Checksum(total[1000:1200], crcTable))
	p.recordBlock(1200, 300, crc32.Checksum(total[1200:1500], crcTable))
	p.crc = crc32.Checksum(total[1000:1500], crcTable)
	if err := p.verifyChecksum(); err != nil {
		t.Fatalf("resumed-range verification failed: %v", err)
	}

	// Without normalization the same blocks would read as a gap at the
	// start of the range; prove a genuinely-absolute recording fails and
	// carries the typed sentinel.
	q := &pendingGet{name: "resumed.dat", offset: 0, length: 500}
	q.recordBlock(1000, 200, crc32.Checksum(total[1000:1200], crcTable))
	q.recordBlock(1200, 300, crc32.Checksum(total[1200:1500], crcTable))
	q.crc = p.crc
	err := q.verifyChecksum()
	if err == nil {
		t.Fatal("mis-offset blocks passed verification")
	}
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("tiling failure is %v, want ErrChecksumMismatch", err)
	}
}

func TestVerifyChecksumTypedError(t *testing.T) {
	// Both failure modes — bad tiling and a CRC mismatch — must wrap
	// ErrChecksumMismatch so the executor can tell corruption apart from
	// transport failures.
	data := make([]byte, 256)
	FillSynth("t.dat", 0, data)
	p := &pendingGet{name: "t.dat", length: 256}
	p.recordBlock(0, int64(len(data)), crc32.Checksum(data, crcTable))
	p.crc = crc32.Checksum(data, crcTable)
	if err := p.verifyChecksum(); err != nil {
		t.Fatalf("clean verification failed: %v", err)
	}
	p.blocks[0].crc ^= 1
	if err := p.verifyChecksum(); !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("CRC mismatch is %v, want ErrChecksumMismatch", err)
	}
}

func TestVerifyChecksumZeroLengthRange(t *testing.T) {
	// A zero-length request has nothing to verify: no blocks, zero CRC.
	p := &pendingGet{name: "empty.dat", length: 0}
	if err := p.verifyChecksum(); err != nil {
		t.Errorf("zero-length verification failed: %v", err)
	}
}

func TestSortBlocks(t *testing.T) {
	blocks := []blockCRC{{off: 30}, {off: 0}, {off: 20}, {off: 10}}
	sortBlocks(blocks)
	for i := 1; i < len(blocks); i++ {
		if blocks[i].off < blocks[i-1].off {
			t.Fatalf("not sorted: %+v", blocks)
		}
	}
}
