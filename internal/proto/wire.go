// Package proto implements a from-scratch GridFTP-like transfer
// protocol over real TCP, providing the three tunables the energy-aware
// algorithms actuate (§2.1):
//
//   - a text control channel whose GET requests can be pipelined
//     (multiple outstanding requests, no per-file round trip),
//   - striped data connections: each channel carries `parallelism`
//     TCP streams over which file blocks are interleaved,
//   - multiple concurrent channels per transfer.
//
// The server can shape traffic (per-stream rate, link rate, control
// RTT) so protocol behaviour is testable on loopback, and can serve
// either real directories or deterministic synthetic content.
package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// Control-channel verbs.
const (
	cmdList = "LIST"
	cmdOpen = "OPEN"
	cmdGet  = "GET"
	cmdQuit = "QUIT"
	cmdData = "DATA"

	respOK   = "OK"
	respFile = "FILE"
	respEnd  = "END"
	respDone = "DONE"
	respErr  = "ERR"
)

// blockMagic guards data-stream framing.
const blockMagic uint16 = 0xE7A1

// blockHeaderSize is the wire size of a block header.
const blockHeaderSize = 2 + 4 + 8 + 4

// DefaultBlockSize is the striping unit on data streams.
const DefaultBlockSize = 256 * 1024

// blockHeader frames one payload block on a data stream. A Length of
// zero marks the final block of a request on this stream.
type blockHeader struct {
	ReqID  uint32
	Offset uint64
	Length uint32
}

// encodeBlockHeader serializes h into buf[:blockHeaderSize].
func encodeBlockHeader(buf []byte, h blockHeader) {
	binary.BigEndian.PutUint16(buf[0:2], blockMagic)
	binary.BigEndian.PutUint32(buf[2:6], h.ReqID)
	binary.BigEndian.PutUint64(buf[6:14], h.Offset)
	binary.BigEndian.PutUint32(buf[14:18], h.Length)
}

// decodeBlockHeader parses buf[:blockHeaderSize].
func decodeBlockHeader(buf []byte) (blockHeader, error) {
	if magic := binary.BigEndian.Uint16(buf[0:2]); magic != blockMagic {
		return blockHeader{}, fmt.Errorf("proto: bad block magic %#04x", magic)
	}
	return blockHeader{
		ReqID:  binary.BigEndian.Uint32(buf[2:6]),
		Offset: binary.BigEndian.Uint64(buf[6:14]),
		Length: binary.BigEndian.Uint32(buf[14:18]),
	}, nil
}

func writeBlockHeader(w io.Writer, h blockHeader) error {
	var buf [blockHeaderSize]byte
	encodeBlockHeader(buf[:], h)
	_, err := w.Write(buf[:])
	return err
}

// writeBlockHeaderBuf is writeBlockHeader with caller-owned scratch.
// Hot loops reuse one scratch slice per goroutine so the header does
// not escape to the heap on every block.
func writeBlockHeaderBuf(w io.Writer, scratch []byte, h blockHeader) error {
	encodeBlockHeader(scratch[:blockHeaderSize], h)
	_, err := w.Write(scratch[:blockHeaderSize])
	return err
}

func readBlockHeader(r io.Reader) (blockHeader, error) {
	var buf [blockHeaderSize]byte
	return readBlockHeaderBuf(r, buf[:])
}

// readBlockHeaderBuf is readBlockHeader with caller-owned scratch,
// for the same reason as writeBlockHeaderBuf.
func readBlockHeaderBuf(r io.Reader, scratch []byte) (blockHeader, error) {
	scratch = scratch[:blockHeaderSize]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return blockHeader{}, err
	}
	return decodeBlockHeader(scratch)
}

// getRequest is a parsed GET command.
type getRequest struct {
	ID     uint32
	Name   string
	Offset int64
	Length int64
}

// formatGet renders a GET line. File names are URL-style escaped only
// for spaces, which are the one character the line format cannot carry.
func formatGet(r getRequest) string {
	return fmt.Sprintf("%s %d %s %d %d\n", cmdGet, r.ID, escapeName(r.Name), r.Offset, r.Length)
}

func parseGet(fields []string) (getRequest, error) {
	if len(fields) != 4 {
		return getRequest{}, fmt.Errorf("proto: GET wants 4 arguments, got %d", len(fields))
	}
	id, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return getRequest{}, fmt.Errorf("proto: bad request id %q", fields[0])
	}
	offset, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || offset < 0 {
		return getRequest{}, fmt.Errorf("proto: bad offset %q", fields[2])
	}
	length, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil || length < 0 {
		return getRequest{}, fmt.Errorf("proto: bad length %q", fields[3])
	}
	return getRequest{
		ID:     uint32(id),
		Name:   unescapeName(fields[1]),
		Offset: offset,
		Length: length,
	}, nil
}

func escapeName(name string) string {
	return strings.ReplaceAll(name, " ", "%20")
}

func unescapeName(name string) string {
	return strings.ReplaceAll(name, "%20", " ")
}

// readLine reads one \n-terminated control line and splits it into the
// verb and its fields.
func readLine(r *bufio.Reader) (verb string, fields []string, err error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", nil, err
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) == 0 {
		return "", nil, fmt.Errorf("proto: empty control line")
	}
	return parts[0], parts[1:], nil
}

// crcTable is the polynomial used for end-to-end integrity checks.
var crcTable = crc32.MakeTable(crc32.Castagnoli)
