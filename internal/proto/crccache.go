package proto

import "sync"

// crcCache is the server's CRC-32C sidecar cache: for each file it
// remembers the checksum of every block-size tile, keyed by the file's
// identity (size + mtime from the store's Versioner extension). The
// serve loop must read payload bytes regardless, but on a repeat serve
// of an unchanged file it skips re-hashing them — the cached tile CRCs
// are combined into the whole-range checksum with the precomputed
// advance operator instead. Tiles are the same shape the client's
// combineBlocks works in, so the cached sidecar and the client-side
// verification agree by construction.
//
// A file whose size, mtime or tile width changes is recomputed from
// scratch; entries are evicted FIFO past the capacity bound, so a
// server cycling through a huge corpus holds at most maxEntries
// sidecars.
type crcCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*crcEntry
	fifo    []string
}

// defaultCRCCacheEntries bounds the sidecar cache. A sidecar costs
// ~5 bytes per tile (4 for the CRC, 1 for the have bit), so even 64 Ki
// files of 1000 blocks each stay around 300 MB worst-case; typical
// corpora are far smaller.
const defaultCRCCacheEntries = 64 * 1024

// crcEntry is one file's sidecar.
type crcEntry struct {
	size  int64
	mtime int64 // UnixNano of the store's mtime; stable token, not wall time
	tile  int64
	crcs  []uint32
	have  []bool
}

func newCRCCache(maxEntries int) *crcCache {
	if maxEntries <= 0 {
		maxEntries = defaultCRCCacheEntries
	}
	return &crcCache{max: maxEntries, entries: make(map[string]*crcEntry)}
}

// open returns the sidecar for one file at the given identity and tile
// width, invalidating and rebuilding it when any of those changed.
func (c *crcCache) open(name string, size, mtime int64, tile int) *crcSidecar {
	if c == nil || size < 0 || tile <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[name]
	if e == nil {
		if len(c.fifo) >= c.max {
			evict := c.fifo[0]
			c.fifo = c.fifo[1:]
			delete(c.entries, evict)
		}
		c.fifo = append(c.fifo, name)
	}
	if e == nil || e.size != size || e.mtime != mtime || e.tile != int64(tile) {
		n := int((size + int64(tile) - 1) / int64(tile))
		e = &crcEntry{
			size:  size,
			mtime: mtime,
			tile:  int64(tile),
			crcs:  make([]uint32, n),
			have:  make([]bool, n),
		}
		c.entries[name] = e
	}
	return &crcSidecar{cache: c, entry: e}
}

// crcSidecar is one serve's view of a cached sidecar. Lookups and
// stores address tiles by absolute file offset; only offsets on a tile
// boundary whose extent runs to the next boundary (or to end-of-file)
// are cacheable, so partial reads of a tile never poison it.
type crcSidecar struct {
	cache *crcCache
	entry *crcEntry
}

// tileIndex validates that [off, off+n) is exactly one tile of the
// entry and returns its index.
func (s *crcSidecar) tileIndex(off int64, n int64) (int, bool) {
	e := s.entry
	if off < 0 || n <= 0 || off%e.tile != 0 {
		return 0, false
	}
	if n != e.tile && off+n != e.size {
		return 0, false
	}
	idx := int(off / e.tile)
	if idx >= len(e.crcs) || off+n > e.size {
		return 0, false
	}
	return idx, true
}

// lookup returns the cached CRC of the tile at [off, off+n), if known.
func (s *crcSidecar) lookup(off, n int64) (uint32, bool) {
	if s == nil {
		return 0, false
	}
	idx, ok := s.tileIndex(off, n)
	if !ok {
		return 0, false
	}
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	if !s.entry.have[idx] {
		return 0, false
	}
	return s.entry.crcs[idx], true
}

// store records the freshly computed CRC of the tile at [off, off+n).
// Ranges that are not exactly one tile are ignored.
func (s *crcSidecar) store(off, n int64, crc uint32) {
	if s == nil {
		return
	}
	idx, ok := s.tileIndex(off, n)
	if !ok {
		return
	}
	s.cache.mu.Lock()
	s.entry.crcs[idx] = crc
	s.entry.have[idx] = true
	s.cache.mu.Unlock()
}

// len reports how many entries the cache holds (for tests).
func (c *crcCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
