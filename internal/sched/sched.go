// Package sched provides the bounded worker pool the experiment harness
// fans independent cells out on. Every (algorithm × concurrency ×
// testbed) cell of the paper's evaluation is an isolated simulation
// with a fixed seed, so the only thing parallel execution must preserve
// is *assembly order*: results are written into caller-owned slots
// keyed by cell index, never appended in completion order, which keeps
// a parallel run bit-identical to a serial one.
//
// The pool is deliberately small: Go schedules a task (blocking while
// all workers are busy), Wait blocks until every scheduled task
// finished and returns the first error. The first failure cancels the
// pool's context so in-flight and queued tasks can abort early; tasks
// scheduled after cancellation are never started.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/didclab/eta/internal/obs"
)

// metrics is the process-wide registry pool counters are written to.
// Telemetry is strictly write-only — no pool decision ever reads it —
// so instrumented runs stay bit-identical to uninstrumented ones.
var metrics atomic.Pointer[obs.Registry]

// SetMetrics installs (or, with nil, removes) the registry that pool
// activity counters are recorded in.
func SetMetrics(r *obs.Registry) { metrics.Store(r) }

func counter(name string) *obs.Counter { return metrics.Load().Counter(name) }

// Pool runs tasks on a bounded set of workers.
//
// The zero value is not usable; construct with New. A Pool must not be
// reused after Wait returns.
type Pool struct {
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

// New returns a pool whose tasks receive a context derived from ctx.
// workers bounds how many tasks run at once; values < 1 mean
// GOMAXPROCS. workers == 1 degenerates to strictly serial execution in
// submission order, which the determinism tests exploit.
func New(ctx context.Context, workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(ctx)
	return &Pool{ctx: ctx, cancel: cancel, sem: make(chan struct{}, workers)}
}

// Go schedules fn on the pool, blocking until a worker slot is free.
// fn receives the pool's context; it should abort promptly once that
// context is cancelled. If the pool has already failed (or the parent
// context was cancelled), fn is dropped without running and Wait will
// report the cause.
func (p *Pool) Go(fn func(ctx context.Context) error) {
	select {
	case p.sem <- struct{}{}:
	case <-p.ctx.Done():
		p.fail(p.ctx.Err())
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() { <-p.sem }()
		counter("sched_tasks_started").Inc()
		if err := fn(p.ctx); err != nil {
			counter("sched_tasks_failed").Inc()
			p.fail(err)
			return
		}
		counter("sched_tasks_completed").Inc()
	}()
}

// Wait blocks until every scheduled task has finished and returns the
// first error any task produced (or the parent context's error if it
// was cancelled before all tasks could be scheduled).
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.cancel()
	return p.err
}

// fail records the first error and cancels the pool's context so the
// remaining tasks can abort.
func (p *Pool) fail(err error) {
	p.once.Do(func() {
		p.err = err
		p.cancel()
	})
}

// ForEach fans fn out over the indices [0, n) on a pool of the given
// width and waits for all of them. The index is the cell key: fn must
// write its result into the caller's i-th slot so assembly order is
// independent of completion order.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	p := New(ctx, workers)
	for i := 0; i < n; i++ {
		i := i
		p.Go(func(ctx context.Context) error { return fn(ctx, i) })
	}
	return p.Wait()
}

// Map fans fn out over the indices [0, n) and assembles the results in
// index order. On error the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
