package sched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapAssemblesByIndex(t *testing.T) {
	got, err := Map(context.Background(), 4, 100, func(_ context.Context, i int) (int, error) {
		// Finish in scrambled order to prove assembly is index-keyed.
		time.Sleep(time.Duration((i*37)%5) * time.Millisecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestSingleWorkerRunsInSubmissionOrder(t *testing.T) {
	var order []int
	err := ForEach(context.Background(), 1, 50, func(_ context.Context, i int) error {
		order = append(order, i) // safe: one worker means no concurrency
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v is not submission order", order)
		}
	}
}

func TestFirstErrorWinsAndCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var started, cancelled atomic.Int32
	p := New(context.Background(), 2)
	p.Go(func(ctx context.Context) error {
		started.Add(1)
		return boom
	})
	for i := 0; i < 20; i++ {
		p.Go(func(ctx context.Context) error {
			started.Add(1)
			select {
			case <-ctx.Done():
				cancelled.Add(1)
				return ctx.Err()
			case <-time.After(50 * time.Millisecond):
				return nil
			}
		})
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want %v", err, boom)
	}
	if started.Load() == 21 && cancelled.Load() == 0 {
		t.Fatal("no task observed cancellation after the failure")
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx, 1)
	release := make(chan struct{})
	p.Go(func(ctx context.Context) error {
		<-release
		return ctx.Err()
	})
	cancel()
	// The worker slot is occupied and the context is dead: this task
	// must be dropped, not left blocking forever.
	p.Go(func(ctx context.Context) error { return nil })
	close(release)
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatalf("want nil results on error, got %v", out)
	}
}

// TestStress hammers the pool with many rounds of mixed success,
// failure and cancellation so `go test -race` can see into every
// synchronization path.
func TestStress(t *testing.T) {
	for round := 0; round < 30; round++ {
		failAt := -1
		if round%3 == 0 {
			failAt = round * 7 % 100
		}
		var ran atomic.Int64
		var sum atomic.Int64
		err := ForEach(context.Background(), 8, 100, func(ctx context.Context, i int) error {
			ran.Add(1)
			if i == failAt {
				return fmt.Errorf("injected failure at %d", i)
			}
			sum.Add(int64(i))
			return nil
		})
		if failAt >= 0 {
			if err == nil {
				t.Fatalf("round %d: injected failure not reported", round)
			}
			continue
		}
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if ran.Load() != 100 || sum.Load() != 4950 {
			t.Fatalf("round %d: ran %d tasks summing %d", round, ran.Load(), sum.Load())
		}
	}
}

// TestNoGoroutineLeakOnFailure: after Wait returns, every slot must
// have been released (another full batch must be schedulable).
func TestPoolReusableSlotsAfterFailure(t *testing.T) {
	err := ForEach(context.Background(), 2, 10, func(_ context.Context, i int) error {
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	// A fresh pool over the same context machinery must still work.
	if err := ForEach(context.Background(), 2, 10, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
