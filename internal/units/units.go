// Package units defines the physical quantities used throughout the
// energy-aware transfer library: byte counts, data rates, power and
// energy. Keeping them as distinct types prevents the classic
// bits-vs-bytes and joules-vs-watts mixups that plague transfer tools.
package units

import (
	"fmt"
	"time"
)

// Bytes is a byte count. It is signed so that arithmetic on deficits
// (bytes remaining, bytes overdrawn) stays natural.
type Bytes int64

// Byte size constants. Decimal units (KB, MB, GB, TB) follow network and
// storage vendor convention; binary units (KiB, MiB, GiB) follow memory
// convention. The paper's dataset sizes (3 MB – 20 GB files) are decimal.
const (
	KB Bytes = 1000
	MB Bytes = 1000 * KB
	GB Bytes = 1000 * MB
	TB Bytes = 1000 * GB

	KiB Bytes = 1024
	MiB Bytes = 1024 * KiB
	GiB Bytes = 1024 * MiB
)

// String formats a byte count with a human-friendly decimal suffix.
func (b Bytes) String() string {
	switch {
	case b >= TB || b <= -TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB || b <= -GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB || b <= -MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB || b <= -KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Bits returns the number of bits in b.
func (b Bytes) Bits() float64 { return float64(b) * 8 }

// Rate is a data rate in bits per second, the unit the paper's figures
// use (Mbps on every throughput axis).
type Rate float64

// Data rate constants.
const (
	Bps  Rate = 1
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// String formats a rate with an adaptive suffix.
func (r Rate) String() string {
	switch {
	case r >= Gbps || r <= -Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r/Gbps))
	case r >= Mbps || r <= -Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r/Mbps))
	case r >= Kbps || r <= -Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%.2fbps", float64(r))
	}
}

// Mbit returns the rate expressed in megabits per second.
func (r Rate) Mbit() float64 { return float64(r / Mbps) }

// BytesIn returns how many bytes flow at rate r during d. Fractional
// bytes are truncated; callers integrating over many ticks should use
// BytesInF and accumulate in float64.
func (r Rate) BytesIn(d time.Duration) Bytes {
	return Bytes(r.BytesInF(d))
}

// BytesInF is BytesIn without truncation.
func (r Rate) BytesInF(d time.Duration) float64 {
	return float64(r) / 8 * d.Seconds()
}

// RateOf returns the average rate at which b bytes move in d.
// It returns 0 for non-positive durations.
func RateOf(b Bytes, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(b.Bits() / d.Seconds())
}

// Watts is instantaneous power.
type Watts float64

// String formats power in watts.
func (w Watts) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// Joules is energy. The paper's energy axes are joules.
type Joules float64

// String formats energy with an adaptive suffix.
func (j Joules) String() string {
	switch {
	case j >= 1e6 || j <= -1e6:
		return fmt.Sprintf("%.2fMJ", float64(j)/1e6)
	case j >= 1e3 || j <= -1e3:
		return fmt.Sprintf("%.2fkJ", float64(j)/1e3)
	default:
		return fmt.Sprintf("%.2fJ", float64(j))
	}
}

// Energy returns the energy spent drawing power w for duration d.
func Energy(w Watts, d time.Duration) Joules {
	return Joules(float64(w) * d.Seconds())
}

// Power returns the average power that spends j joules over d.
// It returns 0 for non-positive durations.
func Power(j Joules, d time.Duration) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(j) / d.Seconds())
}

// BDP returns the bandwidth-delay product of a path: the amount of data
// in flight when a single stream fully occupies the link. The paper's
// partitioning, pipelining and parallelism formulas are all stated in
// terms of BDP (Algorithms 1–3, line "BDP = BW * RTT").
func BDP(bw Rate, rtt time.Duration) Bytes {
	return bw.BytesIn(rtt)
}

// CeilDiv returns ceil(a/b) for positive byte counts, the ⌈x⌉ operation
// used throughout the paper's parameter formulas. b must be positive.
func CeilDiv(a, b Bytes) int {
	if b <= 0 {
		panic("units: CeilDiv by non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return int((a + b - 1) / b)
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampF bounds v to [lo, hi].
func ClampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// KWh converts energy to kilowatt-hours.
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// CostUSD prices energy at the given $/kWh tariff — the unit the
// paper's motivation speaks in ("around 90 billion U.S. Dollars per
// year" for the world's transfer energy).
func (j Joules) CostUSD(perKWh float64) float64 { return j.KWh() * perKWh }
