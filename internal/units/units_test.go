package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{999, "999B"},
		{KB, "1.00KB"},
		{3 * MB, "3.00MB"},
		{20 * GB, "20.00GB"},
		{2 * TB, "2.00TB"},
		{-5 * MB, "-5.00MB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{10 * Gbps, "10.00Gbps"},
		{750 * Mbps, "750.00Mbps"},
		{12 * Kbps, "12.00Kbps"},
		{512, "512.00bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestJoulesString(t *testing.T) {
	if got := Joules(21000).String(); got != "21.00kJ" {
		t.Errorf("got %q", got)
	}
	if got := Joules(4.2e6).String(); got != "4.20MJ" {
		t.Errorf("got %q", got)
	}
	if got := Joules(17).String(); got != "17.00J" {
		t.Errorf("got %q", got)
	}
}

func TestBDPMatchesPaperTestbeds(t *testing.T) {
	// XSEDE: 10 Gbps × 40 ms = 50 MB.
	if got := BDP(10*Gbps, 40*time.Millisecond); got != 50*MB {
		t.Errorf("XSEDE BDP = %v, want 50MB", got)
	}
	// FutureGrid: 1 Gbps × 28 ms = 3.5 MB.
	if got := BDP(1*Gbps, 28*time.Millisecond); got != 3500*KB {
		t.Errorf("FutureGrid BDP = %v, want 3.5MB", got)
	}
}

func TestRateBytesRoundTrip(t *testing.T) {
	f := func(mbps uint16, ms uint16) bool {
		r := Rate(mbps) * Mbps
		d := time.Duration(ms) * time.Millisecond
		b := r.BytesIn(d)
		if d == 0 {
			return b == 0
		}
		back := RateOf(b, d)
		// Truncation to whole bytes loses at most 8 bits per duration.
		return math.Abs(float64(back-r)) <= 8/d.Seconds()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(wRaw uint16, ms uint16) bool {
		w := Watts(wRaw)
		d := time.Duration(ms) * time.Millisecond
		j := Energy(w, d)
		if d == 0 {
			return j == 0 && Power(j, d) == 0
		}
		back := Power(j, d)
		return math.Abs(float64(back-w)) < 1e-9*math.Max(1, float64(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		a, b Bytes
		want int
	}{
		{0, 10, 0},
		{-5, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{50 * MB, 32 * MB, 2}, // paper's XSEDE parallelism: ceil(BDP/buf) = 2
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1, 0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a uint32, b uint16) bool {
		if b == 0 {
			return true
		}
		q := CeilDiv(Bytes(a), Bytes(b))
		lo := Bytes(q-1) * Bytes(b)
		hi := Bytes(q) * Bytes(b)
		return hi >= Bytes(a) && (a == 0 || lo < Bytes(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 1, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 1, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if ClampF(1.5, 0, 1) != 1 || ClampF(-0.5, 0, 1) != 0 || ClampF(0.25, 0, 1) != 0.25 {
		t.Error("ClampF misbehaves")
	}
}

func TestBytesInFAccumulates(t *testing.T) {
	// Integrating 1 Gbps over 10×100ms ticks must equal 1 second exactly.
	var total float64
	for i := 0; i < 10; i++ {
		total += (1 * Gbps).BytesInF(100 * time.Millisecond)
	}
	if want := 125e6; math.Abs(total-want) > 1 {
		t.Errorf("accumulated %v bytes, want %v", total, want)
	}
}

func TestKWhAndCost(t *testing.T) {
	j := Joules(3.6e6) // exactly 1 kWh
	if j.KWh() != 1 {
		t.Errorf("KWh = %v, want 1", j.KWh())
	}
	if got := j.CostUSD(0.12); math.Abs(got-0.12) > 1e-12 {
		t.Errorf("CostUSD = %v, want 0.12", got)
	}
}
