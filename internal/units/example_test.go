package units_test

import (
	"fmt"
	"time"

	"github.com/didclab/eta/internal/units"
)

func ExampleBDP() {
	// The paper's XSEDE path: 10 Gbps at 40 ms RTT.
	bdp := units.BDP(10*units.Gbps, 40*time.Millisecond)
	fmt.Println(bdp)
	// Output: 50.00MB
}

func ExampleRateOf() {
	// 160 GB moved in 200 seconds.
	rate := units.RateOf(160*units.GB, 200*time.Second)
	fmt.Println(rate)
	// Output: 6.40Gbps
}

func ExampleEnergy() {
	// 120 W held for 90 seconds.
	fmt.Println(units.Energy(120, 90*time.Second))
	// Output: 10.80kJ
}

func ExampleCeilDiv() {
	// The paper's parallelism formula on XSEDE: ⌈BDP/bufSize⌉.
	fmt.Println(units.CeilDiv(50*units.MB, 32*units.MB))
	// Output: 2
}
