package dataset

import (
	"testing"
	"testing/quick"

	"github.com/didclab/eta/internal/units"
)

func TestMixedHitsTotalAndEnvelope(t *testing.T) {
	g := NewGenerator(42)
	d := g.Mixed(40*units.GB, 3*units.MB, 5*units.GB)
	total := d.TotalSize()
	if total < 40*units.GB-3*units.MB || total > 40*units.GB {
		t.Errorf("total = %v, want within 3MB under 40GB", total)
	}
	for _, f := range d.Files {
		if f.Size < 3*units.MB || f.Size > 5*units.GB+5*units.GB {
			t.Errorf("file %s size %v outside envelope", f.Name, f.Size)
		}
	}
	if d.Count() < 10 {
		t.Errorf("suspiciously few files: %d", d.Count())
	}
}

func TestMixedDeterministic(t *testing.T) {
	a := NewGenerator(7).Mixed(1*units.GB, 3*units.MB, 100*units.MB)
	b := NewGenerator(7).Mixed(1*units.GB, 3*units.MB, 100*units.MB)
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
}

func TestMixedPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for max < min")
		}
	}()
	NewGenerator(1).Mixed(units.GB, 10*units.MB, units.MB)
}

func TestUniform(t *testing.T) {
	d := NewGenerator(1).Uniform(10, 5*units.MB)
	if d.Count() != 10 || d.TotalSize() != 50*units.MB {
		t.Errorf("got count=%d total=%v", d.Count(), d.TotalSize())
	}
	if d.AvgFileSize() != 5*units.MB || d.MinSize() != 5*units.MB || d.MaxSize() != 5*units.MB {
		t.Error("uniform stats wrong")
	}
}

func TestEmptyDatasetStats(t *testing.T) {
	var d Dataset
	if d.TotalSize() != 0 || d.AvgFileSize() != 0 || d.MinSize() != 0 || d.MaxSize() != 0 {
		t.Error("empty dataset stats should be zero")
	}
}

func TestPaperDatasets(t *testing.T) {
	x := Paper10Gbps(1)
	if got := x.TotalSize(); got < 159*units.GB || got > 160*units.GB {
		t.Errorf("10Gbps dataset total = %v", got)
	}
	f := Paper1Gbps(1)
	if got := f.TotalSize(); got < 39*units.GB || got > 40*units.GB {
		t.Errorf("1Gbps dataset total = %v", got)
	}
	if f.MinSize() < 3*units.MB {
		t.Errorf("1Gbps min file %v below 3MB", f.MinSize())
	}
}

func TestSortBySize(t *testing.T) {
	d := Dataset{Files: []File{{"c", 30}, {"a", 10}, {"b", 10}, {"d", 5}}}
	d = d.SortBySize()
	want := []string{"d", "a", "b", "c"}
	for i, name := range want {
		if d.Files[i].Name != name {
			t.Fatalf("order %v, want %v", d.Files, want)
		}
	}
}

func TestPartitionClasses(t *testing.T) {
	bdp := units.Bytes(50 * units.MB) // XSEDE
	d := Dataset{Files: []File{
		{"s1", 3 * units.MB},
		{"s2", 49 * units.MB},
		{"m1", 50 * units.MB},
		{"m2", 499 * units.MB},
		{"l1", 500 * units.MB},
		{"l2", 20 * units.GB},
	}}
	chunks := Partition(d, bdp)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if chunks[0].Class != Small || chunks[0].Count() != 2 {
		t.Errorf("small chunk wrong: %+v", chunks[0])
	}
	if chunks[1].Class != Medium || chunks[1].Count() != 2 {
		t.Errorf("medium chunk wrong: %+v", chunks[1])
	}
	if chunks[2].Class != Large || chunks[2].Count() != 2 {
		t.Errorf("large chunk wrong: %+v", chunks[2])
	}
}

func TestPartitionZeroBDPIsSingleLargeChunk(t *testing.T) {
	d := NewGenerator(3).Uniform(5, units.MB)
	chunks := Partition(d, 0)
	if len(chunks) != 1 || chunks[0].Class != Large || chunks[0].Count() != 5 {
		t.Errorf("got %+v", chunks)
	}
}

// filesMultiset maps name→count so permutation checks catch loss and
// duplication.
func filesMultiset(chunks []Chunk) map[string]int {
	m := make(map[string]int)
	for _, c := range chunks {
		for _, f := range c.Files {
			m[f.Name]++
		}
	}
	return m
}

func TestPartitionIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		d := NewGenerator(seed).ManySmall(n, units.KB, units.GB)
		got := filesMultiset(Partition(d, 50*units.MB))
		if len(got) != n {
			return false
		}
		for _, f := range d.Files {
			if got[f.Name] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeChunksIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		d := NewGenerator(seed).ManySmall(n, units.KB, units.GB)
		chunks := MergeChunks(Partition(d, 50*units.MB))
		got := filesMultiset(chunks)
		if len(got) != n {
			return false
		}
		for _, f := range d.Files {
			if got[f.Name] != 1 {
				return false
			}
		}
		return len(chunks) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeChunksFoldsRunts(t *testing.T) {
	// One lone small file plus a real large chunk: the small chunk has
	// fewer than MinChunkFiles files and must be merged away.
	d := Dataset{Files: []File{
		{"runt", 1 * units.MB},
		{"l1", 10 * units.GB}, {"l2", 10 * units.GB}, {"l3", 10 * units.GB},
	}}
	chunks := MergeChunks(Partition(d, 50*units.MB))
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1 after merging", len(chunks))
	}
	if chunks[0].Count() != 4 {
		t.Errorf("merged chunk has %d files, want 4", chunks[0].Count())
	}
}

func TestMergeChunksKeepsHealthyChunks(t *testing.T) {
	bdp := units.Bytes(50 * units.MB)
	g := NewGenerator(11)
	var files []File
	for i, c := range []struct {
		n    int
		size units.Bytes
	}{{40, 10 * units.MB}, {40, 100 * units.MB}, {40, 1 * units.GB}} {
		sub := g.Uniform(c.n, c.size)
		for j := range sub.Files {
			sub.Files[j].Name = sub.Files[j].Name + string(rune('a'+i))
			_ = j
		}
		files = append(files, sub.Files...)
	}
	chunks := MergeChunks(Partition(Dataset{Files: files}, bdp))
	if len(chunks) != 3 {
		t.Fatalf("healthy 3-class dataset merged to %d chunks", len(chunks))
	}
}

func TestChunkWeightMonotonicity(t *testing.T) {
	// More files of the same size must not lower the weight, and more
	// bytes with the same count must not lower it either (HTEE weights
	// drive channel allocation: bigger chunks deserve no fewer channels).
	small := Chunk{Files: NewGenerator(1).Uniform(10, 10*units.MB).Files}
	big := Chunk{Files: NewGenerator(1).Uniform(100, 10*units.MB).Files}
	if big.Weight() < small.Weight() {
		t.Errorf("weight fell with file count: %v < %v", big.Weight(), small.Weight())
	}
	fat := Chunk{Files: NewGenerator(1).Uniform(10, 1*units.GB).Files}
	if fat.Weight() < small.Weight() {
		t.Errorf("weight fell with size: %v < %v", fat.Weight(), small.Weight())
	}
}

func TestChunkWeightPositive(t *testing.T) {
	c := Chunk{Files: []File{{"one", 3 * units.MB}}}
	if w := c.Weight(); w <= 0 {
		t.Errorf("single-file chunk weight = %v, want > 0", w)
	}
	var empty Chunk
	if empty.Weight() != 0 {
		t.Error("empty chunk weight should be 0")
	}
}

func TestClassString(t *testing.T) {
	if Small.String() != "Small" || Medium.String() != "Medium" || Large.String() != "Large" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class formatting wrong")
	}
}
