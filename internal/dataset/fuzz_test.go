package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzReadManifest(f *testing.F) {
	var good bytes.Buffer
	_ = WriteManifest(&good, ToManifest("w", 1, Dataset{Files: []File{{Name: "a", Size: 10}}}))
	f.Add(good.String())
	f.Add(`{"name":"x","files":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadManifest(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted manifests must round-trip loss-free.
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err != nil {
			t.Fatal(err)
		}
		m2, err := ReadManifest(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(m2.Files) != len(m.Files) || m2.Name != m.Name {
			t.Fatalf("round trip changed manifest")
		}
		// And their datasets must be internally consistent.
		d := m.Dataset()
		if d.Count() != len(m.Files) {
			t.Fatal("dataset count mismatch")
		}
		if d.TotalSize() < 0 {
			t.Fatal("negative total")
		}
	})
}
