package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/didclab/eta/internal/units"
)

func TestManifestRoundTrip(t *testing.T) {
	ds := NewGenerator(5).Mixed(100*units.MB, units.MB, 20*units.MB)
	m := ToManifest("test-workload", 5, ds)
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "test-workload" || back.Seed != 5 {
		t.Errorf("metadata lost: %+v", back)
	}
	got := back.Dataset()
	if got.Count() != ds.Count() || got.TotalSize() != ds.TotalSize() {
		t.Errorf("dataset changed through manifest: %d/%v vs %d/%v",
			got.Count(), got.TotalSize(), ds.Count(), ds.TotalSize())
	}
	for i := range ds.Files {
		if got.Files[i] != ds.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
}

func TestReadManifestRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not JSON":       "{",
		"unknown field":  `{"name":"x","bogus":1,"files":[]}`,
		"nameless file":  `{"name":"x","files":[{"name":"","size":3}]}`,
		"negative size":  `{"name":"x","files":[{"name":"a","size":-1}]}`,
		"duplicate name": `{"name":"x","files":[{"name":"a","size":1},{"name":"a","size":2}]}`,
	}
	for label, input := range cases {
		if _, err := ReadManifest(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", label)
		}
	}
}

func TestParetoEnvelopeAndHeavyTail(t *testing.T) {
	g := NewGenerator(11)
	ds := g.Pareto(5000, units.MB, 10*units.GB, 1.2)
	if ds.Count() != 5000 {
		t.Fatalf("count = %d", ds.Count())
	}
	for _, f := range ds.Files {
		if f.Size < units.MB || f.Size > 10*units.GB {
			t.Fatalf("file %v outside envelope", f.Size)
		}
	}
	st := ComputeStats(ds)
	// Heavy tail: the mean sits far above the median.
	if st.Mean < 2*st.Median {
		t.Errorf("tail too light: mean %v median %v", st.Mean, st.Median)
	}
	if st.GiniBytes < 0.5 {
		t.Errorf("byte concentration too low for Pareto: gini %.2f", st.GiniBytes)
	}
}

func TestParetoPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGenerator(1).Pareto(10, units.MB, units.KB, 1.2)
}

func TestComputeStatsUniform(t *testing.T) {
	ds := NewGenerator(2).Uniform(100, 10*units.MB)
	st := ComputeStats(ds)
	if st.Median != 10*units.MB || st.P90 != 10*units.MB {
		t.Errorf("uniform stats wrong: %+v", st)
	}
	if st.GiniBytes > 1e-9 {
		t.Errorf("uniform gini should be 0, got %v", st.GiniBytes)
	}
	if st.LargestByte < 0.009 || st.LargestByte > 0.011 {
		t.Errorf("largest-byte share = %v, want ~1/100", st.LargestByte)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(Dataset{})
	if st.Count != 0 || st.Total != 0 || st.GiniBytes != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		ds := NewGenerator(seed).ManySmall(n, units.KB, units.GB)
		g := ComputeStats(ds).GiniBytes
		return g >= 0 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
