package dataset_test

import (
	"fmt"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/units"
)

func ExamplePartition() {
	ds := dataset.Dataset{Files: []dataset.File{
		{Name: "tiny.dat", Size: 3 * units.MB},
		{Name: "mid.dat", Size: 120 * units.MB},
		{Name: "huge.dat", Size: 4 * units.GB},
	}}
	bdp := units.Bytes(50 * units.MB) // XSEDE: 10 Gbps × 40 ms
	for _, chunk := range dataset.Partition(ds, bdp) {
		fmt.Printf("%s: %d file(s)\n", chunk.Class, chunk.Count())
	}
	// Output:
	// Small: 1 file(s)
	// Medium: 1 file(s)
	// Large: 1 file(s)
}

func ExampleGenerator_Uniform() {
	ds := dataset.NewGenerator(1).Uniform(4, 25*units.MB)
	fmt.Println(ds.Count(), ds.TotalSize())
	// Output: 4 100.00MB
}

func ExampleComputeStats() {
	ds := dataset.NewGenerator(1).Uniform(10, 10*units.MB)
	st := dataset.ComputeStats(ds)
	fmt.Printf("count=%d total=%v median=%v gini=%.1f\n", st.Count, st.Total, st.Median, st.GiniBytes)
	// Output: count=10 total=100.00MB median=10.00MB gini=0.0
}
