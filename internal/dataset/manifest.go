package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/didclab/eta/internal/units"
)

// Manifest is the serialized form of a dataset: enough for a client and
// server to agree on a synthetic workload, or for experiments to be
// replayed on real directories.
type Manifest struct {
	// Name labels the workload.
	Name string `json:"name"`
	// Seed records the generator seed for provenance (0 if hand-made).
	Seed int64 `json:"seed,omitempty"`
	// Files is the manifest body.
	Files []ManifestFile `json:"files"`
}

// ManifestFile is one file entry.
type ManifestFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// ToManifest captures a dataset.
func ToManifest(name string, seed int64, d Dataset) Manifest {
	m := Manifest{Name: name, Seed: seed, Files: make([]ManifestFile, len(d.Files))}
	for i, f := range d.Files {
		m.Files[i] = ManifestFile{Name: f.Name, Size: int64(f.Size)}
	}
	return m
}

// Dataset reconstructs the dataset.
func (m Manifest) Dataset() Dataset {
	d := Dataset{Files: make([]File, len(m.Files))}
	for i, f := range m.Files {
		d.Files[i] = File{Name: f.Name, Size: units.Bytes(f.Size)}
	}
	return d
}

// WriteManifest serializes m as indented JSON.
func WriteManifest(w io.Writer, m Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses and validates a manifest.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("dataset: parsing manifest: %w", err)
	}
	seen := make(map[string]bool, len(m.Files))
	for i, f := range m.Files {
		if f.Name == "" {
			return Manifest{}, fmt.Errorf("dataset: manifest entry %d has no name", i)
		}
		if f.Size < 0 {
			return Manifest{}, fmt.Errorf("dataset: %q has negative size %d", f.Name, f.Size)
		}
		if seen[f.Name] {
			return Manifest{}, fmt.Errorf("dataset: duplicate file %q", f.Name)
		}
		seen[f.Name] = true
	}
	return m, nil
}

// Pareto generates n files with a bounded Pareto (heavy-tail) size
// distribution — the shape real scientific archives exhibit: most files
// small, most bytes in a few giants. alpha controls the tail (1.1–1.5
// are typical; smaller = heavier).
func (g *Generator) Pareto(n int, minSize, maxSize units.Bytes, alpha float64) Dataset {
	if n < 0 || minSize <= 0 || maxSize < minSize || alpha <= 0 {
		panic(fmt.Sprintf("dataset: invalid Pareto n=%d min=%v max=%v alpha=%v", n, minSize, maxSize, alpha))
	}
	lo := float64(minSize)
	hi := float64(maxSize)
	// Inverse-CDF sampling of the bounded Pareto.
	loA := math.Pow(lo, alpha)
	hiA := math.Pow(hi, alpha)
	files := make([]File, n)
	for i := range files {
		u := g.rng.Float64()
		x := math.Pow(-(u*hiA-u*loA-hiA)/(hiA*loA), -1/alpha)
		files[i] = File{Name: fmt.Sprintf("file%05d.dat", i), Size: units.Bytes(x)}
	}
	return Dataset{Files: files}
}

// Stats summarizes a dataset's size distribution.
type Stats struct {
	Count       int
	Total       units.Bytes
	Min, Max    units.Bytes
	Mean        units.Bytes
	Median      units.Bytes
	P90         units.Bytes
	GiniBytes   float64 // byte-concentration: 0 = uniform, →1 = one giant
	LargestByte float64 // fraction of bytes in the single largest file
}

// ComputeStats returns distribution statistics.
func ComputeStats(d Dataset) Stats {
	s := Stats{Count: d.Count(), Total: d.TotalSize(), Min: d.MinSize(), Max: d.MaxSize(), Mean: d.AvgFileSize()}
	if s.Count == 0 {
		return s
	}
	sizes := make([]units.Bytes, s.Count)
	for i, f := range d.Files {
		sizes[i] = f.Size
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	s.Median = sizes[s.Count/2]
	s.P90 = sizes[(s.Count*9)/10]
	if s.Total > 0 {
		s.LargestByte = float64(sizes[s.Count-1]) / float64(s.Total)
		// Gini over file sizes via the sorted-rank formula.
		var cum float64
		for i, sz := range sizes {
			cum += float64(2*(i+1)-s.Count-1) * float64(sz)
		}
		s.GiniBytes = cum / (float64(s.Count) * float64(s.Total))
	}
	return s
}
