// Package dataset models the file collections moved by the transfer
// algorithms and implements the BDP-based partitioning that MinE, HTEE
// and SLAEE all start from (paper §2.3: "we initially divide the data
// sets into three chunks; Small, Medium and Large based on the file
// sizes and the Bandwidth-Delay-Product").
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/didclab/eta/internal/units"
)

// File is one transferable file.
type File struct {
	Name string
	Size units.Bytes
}

// Dataset is an ordered collection of files.
type Dataset struct {
	Files []File
}

// TotalSize returns the sum of all file sizes.
func (d Dataset) TotalSize() units.Bytes {
	var total units.Bytes
	for _, f := range d.Files {
		total += f.Size
	}
	return total
}

// Count returns the number of files.
func (d Dataset) Count() int { return len(d.Files) }

// AvgFileSize returns the mean file size, or 0 for an empty dataset.
func (d Dataset) AvgFileSize() units.Bytes {
	if len(d.Files) == 0 {
		return 0
	}
	return d.TotalSize() / units.Bytes(len(d.Files))
}

// MinSize returns the smallest file size, or 0 for an empty dataset.
func (d Dataset) MinSize() units.Bytes {
	if len(d.Files) == 0 {
		return 0
	}
	min := d.Files[0].Size
	for _, f := range d.Files[1:] {
		if f.Size < min {
			min = f.Size
		}
	}
	return min
}

// MaxSize returns the largest file size, or 0 for an empty dataset.
func (d Dataset) MaxSize() units.Bytes {
	var max units.Bytes
	for _, f := range d.Files {
		if f.Size > max {
			max = f.Size
		}
	}
	return max
}

// SortBySize orders files ascending by size (ties broken by name) and
// returns the dataset for chaining. Partitioning does not require sorted
// input; sorting just makes generated manifests reproducible to read.
func (d Dataset) SortBySize() Dataset {
	sort.Slice(d.Files, func(i, j int) bool {
		if d.Files[i].Size != d.Files[j].Size {
			return d.Files[i].Size < d.Files[j].Size
		}
		return d.Files[i].Name < d.Files[j].Name
	})
	return d
}

// Generator produces synthetic datasets with a deterministic seed so
// every experiment is reproducible.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Mixed generates files whose sizes are log-uniform in [minSize, maxSize]
// until the dataset reaches approximately total bytes. Log-uniform spread
// matches the paper's evaluation datasets, which mix 3 MB files with
// multi-GB files in one collection. The final file is clipped so the
// total lands within one minSize of the target.
func (g *Generator) Mixed(total, minSize, maxSize units.Bytes) Dataset {
	if minSize <= 0 || maxSize < minSize || total <= 0 {
		panic(fmt.Sprintf("dataset: invalid Mixed bounds total=%v min=%v max=%v", total, minSize, maxSize))
	}
	logMin, logMax := math.Log(float64(minSize)), math.Log(float64(maxSize))
	var files []File
	var sum units.Bytes
	for sum < total {
		size := units.Bytes(math.Exp(logMin + g.rng.Float64()*(logMax-logMin)))
		if remaining := total - sum; size > remaining {
			size = remaining
			if size < minSize {
				// Fold the tail into the previous file rather than
				// emitting an out-of-envelope runt.
				if len(files) > 0 {
					files[len(files)-1].Size += size
					sum += size
					break
				}
				size = minSize
			}
		}
		files = append(files, File{Name: fmt.Sprintf("file%05d.dat", len(files)), Size: size})
		sum += size
	}
	return Dataset{Files: files}
}

// Uniform generates n files of identical size.
func (g *Generator) Uniform(n int, size units.Bytes) Dataset {
	if n < 0 || size <= 0 {
		panic(fmt.Sprintf("dataset: invalid Uniform n=%d size=%v", n, size))
	}
	files := make([]File, n)
	for i := range files {
		files[i] = File{Name: fmt.Sprintf("file%05d.dat", i), Size: size}
	}
	return Dataset{Files: files}
}

// ManySmall generates n files log-uniform in [minSize, maxSize]; useful
// for pipelining-dominated workloads regardless of total size.
func (g *Generator) ManySmall(n int, minSize, maxSize units.Bytes) Dataset {
	if n < 0 || minSize <= 0 || maxSize < minSize {
		panic(fmt.Sprintf("dataset: invalid ManySmall n=%d min=%v max=%v", n, minSize, maxSize))
	}
	logMin, logMax := math.Log(float64(minSize)), math.Log(float64(maxSize))
	files := make([]File, n)
	for i := range files {
		size := units.Bytes(math.Exp(logMin + g.rng.Float64()*(logMax-logMin)))
		files[i] = File{Name: fmt.Sprintf("file%05d.dat", i), Size: size}
	}
	return Dataset{Files: files}
}

// Paper10Gbps generates the evaluation dataset the paper uses on
// 10 Gbps networks: 160 GB total, file sizes 3 MB – 20 GB (§3).
func Paper10Gbps(seed int64) Dataset {
	return NewGenerator(seed).Mixed(160*units.GB, 3*units.MB, 20*units.GB)
}

// Paper1Gbps generates the evaluation dataset the paper uses on 1 Gbps
// networks: 40 GB total, file sizes 3 MB – 5 GB (§3).
func Paper1Gbps(seed int64) Dataset {
	return NewGenerator(seed).Mixed(40*units.GB, 3*units.MB, 5*units.GB)
}
