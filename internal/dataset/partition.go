package dataset

import (
	"fmt"
	"math"

	"github.com/didclab/eta/internal/units"
)

// Class labels a chunk by where its file sizes sit relative to the
// path's bandwidth-delay product.
type Class int

// Chunk classes, ordered small to large as the paper's loops iterate
// ("for each chunk small :: large", Algorithm 1).
const (
	Small Class = iota
	Medium
	Large
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Default class thresholds relative to BDP. Files below the BDP benefit
// from pipelining (paper §2.1: "the size of the transferred files should
// be smaller than the bandwidth-delay product to take advantage of
// pipelining"); files many BDPs long are window-limited streams where
// only parallelism/concurrency matter.
const (
	// MediumFactor: files >= BDP and < LargeFactor×BDP are Medium.
	MediumFactor = 1
	// LargeFactor: files >= LargeFactor×BDP are Large.
	LargeFactor = 10
)

// Chunk is a set of files of one class plus the transfer parameters the
// algorithms assign to it.
type Chunk struct {
	Class Class
	Files []File

	// Transfer parameters chosen per chunk (paper §2.1). Zero values
	// mean "not yet decided".
	Pipelining  int
	Parallelism int
	Concurrency int
}

// TotalSize returns the chunk's byte count.
func (c Chunk) TotalSize() units.Bytes {
	var total units.Bytes
	for _, f := range c.Files {
		total += f.Size
	}
	return total
}

// Count returns the number of files in the chunk.
func (c Chunk) Count() int { return len(c.Files) }

// AvgFileSize returns the chunk's mean file size, or 0 when empty.
func (c Chunk) AvgFileSize() units.Bytes {
	if len(c.Files) == 0 {
		return 0
	}
	return c.TotalSize() / units.Bytes(len(c.Files))
}

// Weight implements the HTEE chunk weight (Algorithm 2 line 7):
// log(chunk.size) × log(chunk.fileCount). Sizes are taken in MB so a
// one-file chunk still gets non-zero size weight; a chunk with a single
// file gets the minimal count factor of log(2) rather than zero so that
// it is never starved of channels entirely.
func (c Chunk) Weight() float64 {
	if len(c.Files) == 0 {
		return 0
	}
	sizeMB := math.Max(float64(c.TotalSize())/float64(units.MB), 2)
	count := math.Max(float64(len(c.Files)), 2)
	return math.Log(sizeMB) * math.Log(count)
}

// Partition splits d into Small/Medium/Large chunks around the given
// BDP. Empty classes are dropped; the result is ordered Small→Large.
// The partition is a permutation of d's files: nothing is lost or
// duplicated (property-tested).
func Partition(d Dataset, bdp units.Bytes) []Chunk {
	if bdp <= 0 {
		// Degenerate path (e.g. zero RTT in a LAN): everything is
		// effectively many BDPs long.
		return []Chunk{{Class: Large, Files: append([]File(nil), d.Files...)}}
	}
	buckets := make([][]File, numClasses)
	for _, f := range d.Files {
		switch {
		case f.Size < MediumFactor*bdp:
			buckets[Small] = append(buckets[Small], f)
		case f.Size < LargeFactor*bdp:
			buckets[Medium] = append(buckets[Medium], f)
		default:
			buckets[Large] = append(buckets[Large], f)
		}
	}
	var chunks []Chunk
	for class := Small; class < numClasses; class++ {
		if len(buckets[class]) > 0 {
			chunks = append(chunks, Chunk{Class: class, Files: buckets[class]})
		}
	}
	return chunks
}

// Merge thresholds used by MergeChunks. A chunk smaller than this many
// files, or carrying less than MinChunkFraction of the dataset, is "too
// small to be treated separately" (paper §2.3, mergeChunks subroutine).
// The byte threshold is deliberately tiny: in the paper's own datasets
// the Small chunk dominates the file count while holding well under 1%
// of the bytes, yet it is kept separate and given most of the channels.
const (
	MinChunkFiles    = 3
	MinChunkFraction = 0.001
)

// MergeChunks folds undersized chunks into their nearest neighbour by
// class (Small merges into Medium, Large into Medium, Medium into the
// larger of its neighbours). It never drops files and always returns at
// least one chunk when given one.
func MergeChunks(chunks []Chunk) []Chunk {
	if len(chunks) <= 1 {
		return chunks
	}
	var total units.Bytes
	for _, c := range chunks {
		total += c.TotalSize()
	}
	minBytes := units.Bytes(float64(total) * MinChunkFraction)

	tooSmall := func(c Chunk) bool {
		return c.Count() < MinChunkFiles || c.TotalSize() < minBytes
	}

	out := append([]Chunk(nil), chunks...)
	for {
		idx := -1
		for i, c := range out {
			if len(out) > 1 && tooSmall(c) {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		// Merge into the neighbour with the larger total size so the
		// combined chunk's average file size shifts as little as
		// possible toward the runt.
		var into int
		switch {
		case idx == 0:
			into = 1
		case idx == len(out)-1:
			into = idx - 1
		case out[idx-1].TotalSize() >= out[idx+1].TotalSize():
			into = idx - 1
		default:
			into = idx + 1
		}
		out[into].Files = append(out[into].Files, out[idx].Files...)
		out = append(out[:idx], out[idx+1:]...)
	}
	return out
}

// PartitionAndMerge is the exact sequence the algorithms run:
// partitionFiles followed by mergeChunks.
func PartitionAndMerge(d Dataset, bdp units.Bytes) []Chunk {
	return MergeChunks(Partition(d, bdp))
}
