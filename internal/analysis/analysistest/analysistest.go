// Package analysistest runs a framework.Analyzer over fixture packages
// laid out x/tools-style under testdata/src/<pkgpath>/ and checks its
// diagnostics against `// want` comments in the fixtures:
//
//	sum += v // want `map iteration order`
//
// Each `// want` comment carries one or more Go-quoted regular
// expressions (back-quoted or double-quoted); every expression must be
// matched by a distinct diagnostic on that line, and every diagnostic
// must be expected by some expression.
//
// A want comment may also assert exported facts with the form
//
//	func release(p *[]byte) { put(p) } // want fact:`releases`
//
// The pattern is matched against "<object name>:<fact value>" (the
// fact rendered with %v) for each fact the analyzer exported for an
// object declared on that line. Every fact expectation must match some
// exported fact — so a neutered analyzer fails the fixture — but facts
// without expectations are not errors: analyzers export facts
// wholesale and fixtures annotate only the ones under test.
//
// Fixture packages may import only the standard library — they are
// typechecked with the stdlib source importer so no pre-built export
// data is needed.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/didclab/eta/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run analyzes each fixture package (a path under testdata/src) and
// reports mismatches between diagnostics and `// want` expectations as
// test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		runOne(t, testdata, a, pkgpath)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func runOne(t *testing.T, testdata string, a *framework.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkgpath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgpath, dir)
	}

	var typeErrs []error
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := framework.NewInfo()
	pkg, _ := tc.Check(pkgpath, fset, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("%s: fixture does not typecheck: %v", pkgpath, typeErrs[0])
	}

	store := framework.NewFactStore()
	diags, err := framework.Run(fset, files, pkg, info, []*framework.Analyzer{a}, store)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	wants, factWants := collectWants(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := posKey{filepath.Base(posn.Filename), posn.Line}
		exps := wants[key]
		found := false
		for _, exp := range exps {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}

	// Facts: every expectation must be satisfied by a fact exported for
	// an object declared on its line; unexpected facts are fine.
	for _, of := range store.ExportedFacts() {
		if of.Obj == nil {
			continue
		}
		posn := fset.Position(of.Obj.Pos())
		key := posKey{filepath.Base(posn.Filename), posn.Line}
		text := fmt.Sprintf("%s:%v", of.Obj.Name(), of.Fact)
		for _, exp := range factWants[key] {
			if !exp.matched && exp.re.MatchString(text) {
				exp.matched = true
				break
			}
		}
	}

	report := func(wants map[posKey][]*expectation, kind string) {
		var keys []posKey
		for k := range wants {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].file != keys[j].file {
				return keys[i].file < keys[j].file
			}
			return keys[i].line < keys[j].line
		})
		for _, k := range keys {
			for _, exp := range wants[k] {
				if !exp.matched {
					t.Errorf("%s:%d: expected %s matching %s, got none", k.file, k.line, kind, exp.raw)
				}
			}
		}
	}
	report(wants, "diagnostic")
	report(factWants, "fact")
}

type posKey struct {
	file string
	line int
}

// wantRe captures the payload of a want comment; factRe pulls out each
// fact:"..." expectation within it; quotedRe pulls out each remaining
// Go-quoted regular expression.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	factRe   = regexp.MustCompile("fact:(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")
	quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) (wants, factWants map[posKey][]*expectation) {
	t.Helper()
	wants = make(map[posKey][]*expectation)
	factWants = make(map[posKey][]*expectation)
	compile := func(key posKey, q string) *expectation {
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: bad quoted pattern %s: %v", key.file, key.line, q, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad regexp %s: %v", key.file, key.line, q, err)
		}
		return &expectation{re: re, raw: q}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Slash)
				key := posKey{filepath.Base(posn.Filename), posn.Line}
				payload := m[1]
				nWant := 0
				for _, fm := range factRe.FindAllStringSubmatch(payload, -1) {
					factWants[key] = append(factWants[key], compile(key, fm[1]))
					nWant++
				}
				payload = factRe.ReplaceAllString(payload, "")
				for _, q := range quotedRe.FindAllString(payload, -1) {
					wants[key] = append(wants[key], compile(key, q))
					nWant++
				}
				if nWant == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", key.file, key.line, c.Text)
				}
			}
		}
	}
	return wants, factWants
}
