// Package analysistest runs a framework.Analyzer over fixture packages
// laid out x/tools-style under testdata/src/<pkgpath>/ and checks its
// diagnostics against `// want` comments in the fixtures:
//
//	sum += v // want `map iteration order`
//
// Each `// want` comment carries one or more Go-quoted regular
// expressions (back-quoted or double-quoted); every expression must be
// matched by a distinct diagnostic on that line, and every diagnostic
// must be expected by some expression. Fixture packages may import
// only the standard library — they are typechecked with the stdlib
// source importer so no pre-built export data is needed.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/didclab/eta/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run analyzes each fixture package (a path under testdata/src) and
// reports mismatches between diagnostics and `// want` expectations as
// test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		runOne(t, testdata, a, pkgpath)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func runOne(t *testing.T, testdata string, a *framework.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkgpath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgpath, dir)
	}

	var typeErrs []error
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := framework.NewInfo()
	pkg, _ := tc.Check(pkgpath, fset, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("%s: fixture does not typecheck: %v", pkgpath, typeErrs[0])
	}

	diags, err := framework.Run(fset, files, pkg, info, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := posKey{filepath.Base(posn.Filename), posn.Line}
		exps := wants[key]
		found := false
		for _, exp := range exps {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	var keys []posKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %s, got none", k.file, k.line, exp.raw)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

// wantRe captures the payload of a want comment; quotedRe pulls out
// each Go-quoted regular expression within it.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*expectation {
	t.Helper()
	wants := make(map[posKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Slash)
				key := posKey{filepath.Base(posn.Filename), posn.Line}
				quoted := quotedRe.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", key.file, key.line, c.Text)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad quoted pattern %s: %v", key.file, key.line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad regexp %s: %v", key.file, key.line, q, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: q})
				}
			}
		}
	}
	return wants
}
