// Package core stands in for a deterministic package: the path
// "internal/core" matches nodeterm.DeterministicPaths.
package core

import (
	"math/rand"
	"time"
)

func wallClock() (time.Time, time.Duration, time.Duration) {
	start := time.Now()            // want `time.Now reads the wall clock`
	elapsed := time.Since(start)   // want `time.Since reads the wall clock`
	remaining := time.Until(start) // want `time.Until reads the wall clock`
	return start, elapsed, remaining
}

func globalRNG() (int, float64) {
	n := rand.Intn(10)   // want `global rand.Intn draws from the process-wide RNG`
	f := rand.Float64()  // want `global rand.Float64 draws from the process-wide RNG`
	rand.Shuffle(n, nil) // want `global rand.Shuffle draws from the process-wide RNG`
	return n, f
}

// seededRNG is the sanctioned pattern: explicit seed, private stream.
func seededRNG(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() + rng.NormFloat64()
}

// clockSeam models monitor.ModelSource's injected-clock default, the
// allowlisted exception the directive exists for.
type clockSeam struct {
	now func() time.Time
}

func newClockSeam() *clockSeam {
	//lint:allow nodeterm injected-clock seam: tests override via SetClock
	return &clockSeam{now: time.Now}
}

// parseDuration uses time for non-clock work: no diagnostic.
func parseDuration(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}
