// Package freepkg is outside the deterministic set: wall-clock reads
// and the global RNG are its own business, so nothing fires here.
package freepkg

import (
	"math/rand"
	"time"
)

func measure() (time.Duration, int) {
	start := time.Now()
	return time.Since(start), rand.Intn(10)
}
