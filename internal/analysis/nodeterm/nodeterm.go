// Package nodeterm keeps wall-clock time and the process-global RNG
// out of the deterministic packages. The simulator, the algorithms and
// the experiment harness promise bit-identical output for a given
// seed (DESIGN.md §6.1); a single `time.Now()` or global `rand.Intn`
// smuggled into those packages silently breaks that promise. Flagged
// inside DeterministicPaths:
//
//   - time.Now, time.Since, time.Until — wall-clock reads (simulated
//     time must come from the session's own clock);
//   - every package-level math/rand and math/rand/v2 function
//     (rand.Intn, rand.Float64, rand.Perm, rand.Shuffle, rand.Seed,
//     ...) — they draw from the shared, process-seeded source. The
//     constructors rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG
//     and rand.NewChaCha8 stay legal: an explicitly seeded *rand.Rand
//     is the sanctioned way to be random and reproducible.
//
// Injected-clock seams (a field defaulting to time.Now that tests
// override) are annotated `//lint:allow nodeterm <reason>`.
package nodeterm

import (
	"go/ast"
	"go/types"

	"github.com/didclab/eta/internal/analysis/framework"
)

// DeterministicPaths lists the package-path roots the invariant covers
// (matched segment-wise at any depth, test variants included).
var DeterministicPaths = []string{
	"internal/core",
	"internal/experiments",
	"internal/transfer",
	"internal/power",
	"internal/endsys",
	"internal/dataset",
	// obs is telemetry, not simulation, but it feeds timestamps into
	// event logs that deterministic tests replay — so it must route all
	// time reads through its injected Clock seam.
	"internal/obs",
	// chaos exists so fault schedules replay identically: no wall-clock
	// reads, no global RNG — faults trigger on byte offsets and any
	// seeded randomness flows through rand.New(rand.NewSource(seed)).
	"internal/chaos",
}

// timeFuncs are the wall-clock readers banned in deterministic code.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors take an explicit seed or source and are allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the nodeterm instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "nodeterm",
	Doc:  "flag wall-clock and global-RNG use inside the deterministic simulation/experiment packages",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !framework.PathMatch(pass.Pkg.Path(), DeterministicPaths) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if timeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; take time from the session clock or inject a Clock seam", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(), "global %s.%s draws from the process-wide RNG in a deterministic package; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
