package nodeterm_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/framework"
	"github.com/didclab/eta/internal/analysis/nodeterm"
)

func TestNoDeterm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeterm.Analyzer,
		"internal/core", // deterministic path: diagnostics fire
		"freepkg",       // unrestricted path: silence
	)
}

// TestRepoPathsCovered pins the policy to the real module layout,
// including the test-variant decorations go vet reports.
func TestRepoPathsCovered(t *testing.T) {
	for _, path := range []string{
		"github.com/didclab/eta/internal/core",
		"github.com/didclab/eta/internal/experiments",
		"github.com/didclab/eta/internal/transfer",
		"github.com/didclab/eta/internal/power",
		"github.com/didclab/eta/internal/endsys",
		"github.com/didclab/eta/internal/dataset",
		"github.com/didclab/eta/internal/chaos",
		"github.com/didclab/eta/internal/core_test",
		"github.com/didclab/eta/internal/core [github.com/didclab/eta/internal/core.test]",
	} {
		if !framework.PathMatch(path, nodeterm.DeterministicPaths) {
			t.Errorf("deterministic package not covered: %q", path)
		}
	}
	for _, path := range []string{
		"github.com/didclab/eta/internal/monitor",
		"github.com/didclab/eta/internal/proto",
		"github.com/didclab/eta/internal/netpower", // not internal/power
		"github.com/didclab/eta/cmd/expdriver",
	} {
		if framework.PathMatch(path, nodeterm.DeterministicPaths) {
			t.Errorf("non-deterministic package wrongly covered: %q", path)
		}
	}
}
