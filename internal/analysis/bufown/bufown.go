// Package bufown enforces the proto block-buffer ownership rule
// (DESIGN.md §6.2): whoever calls getBlockBuf must arrange exactly one
// putBlockBuf. The check is intraprocedural containment — a function
// (including its nested function literals) that calls getBlockBuf must
// also mention putBlockBuf, preferably via defer — not a full CFG
// all-paths proof; it catches the realistic failure mode of a new call
// site that never releases at all, while the race detector and the
// pool's steady-state benchmark catch double-put/leak imbalances.
//
// Deliberate ownership transfers (a buffer sent over a channel belongs
// to the receiver; see the server's per-stream writer) happen inside
// functions that still contain the matching putBlockBuf, so they pass
// as-is. A true handoff out of the function must be annotated
// `//lint:allow bufown handoff: <who releases>` on the getBlockBuf
// line.
package bufown

import (
	"go/ast"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Analyzer is the bufown instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "bufown",
	Doc:  "require a putBlockBuf (or an explicit handoff annotation) in every function that calls getBlockBuf",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gets []*ast.CallExpr
			hasPut := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "getBlockBuf" {
						gets = append(gets, v)
					}
				case *ast.Ident:
					// Any mention counts: a direct call, a deferred
					// call, or passing putBlockBuf as a cleanup func.
					if v.Name == "putBlockBuf" {
						hasPut = true
					}
				}
				return true
			})
			if hasPut {
				continue
			}
			for _, g := range gets {
				pass.Reportf(g.Pos(), "getBlockBuf result is never released: %s has no putBlockBuf on any path; release the buffer or annotate the handoff with //lint:allow bufown", fd.Name.Name)
			}
		}
	}
	return nil
}
