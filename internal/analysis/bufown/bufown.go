// Package bufown enforces the proto block-buffer ownership rules
// (DESIGN.md §6.2) for getBlockBuf/putBlockBuf buffers.
//
// v2 is interprocedural: a package-wide fixpoint discovers helper
// functions that release pointer-to-slice parameters (directly or via
// other helpers) and functions whose return value is a pool buffer,
// and exports both as framework facts — ReleasesFact and SourceFact —
// so the knowledge crosses package boundaries under the `go vet
// -vettool` protocol. On top of that dataflow the analyzer reports:
//
//   - never-released: a buffer acquired and neither released (by
//     putBlockBuf or a releasing helper) nor handed off.
//   - blind handoff: a buffer sent/stored/returned out of a function
//     that contains no putBlockBuf at all — ownership left with nobody
//     visibly responsible; annotate `//lint:allow bufown handoff: <who
//     releases>` when the receiver is the owner.
//   - use-after-put and double-put within a statement list: once a
//     buffer is released it may be handed to another stream
//     immediately, so any later read is a data race in waiting.
//   - defer-capture: `defer putBlockBuf(bufp)` evaluates bufp at defer
//     time; if bufp is later swapped for a bigger buffer the original
//     is released twice (and the replacement leaks). The put must be
//     wrapped in a closure.
//   - escapes (internal/proto only): pool-backed buffers returned by
//     exported functions, stored in package-level variables, or passed
//     to interface methods that are not contract-bound to drop the
//     slice (io.Reader/io.Writer shapes are exempt — their contract
//     forbids retention).
//
// Matching is by name (getBlockBuf/putBlockBuf), as in v1, so fixture
// packages need no imports; helper reasoning is type-based.
package bufown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Analyzer is the bufown instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "bufown",
	Doc:  "track getBlockBuf/putBlockBuf ownership across helpers: leaks, use-after-put, double-put, and pool escapes",
	Run:  run,
}

// ReleasesFact marks a function that releases (putBlockBuf, possibly
// through other helpers) the pointer-to-byte-slice parameters at the
// recorded indices.
type ReleasesFact struct {
	Params []int `json:"params"`
}

func (*ReleasesFact) AFact() {}

func (f *ReleasesFact) String() string { return fmt.Sprintf("releases(%v)", f.Params) }

// SourceFact marks a function whose first result is a pool-owned
// buffer: calling it transfers ownership to the caller exactly like
// calling getBlockBuf.
type SourceFact struct{}

func (*SourceFact) AFact() {}

func (*SourceFact) String() string { return "source" }

// protoRoots gates the escape checks: only inside the data plane does
// a pool buffer exist to escape.
var protoRoots = []string{"internal/proto"}

type funcInfo struct {
	decl       *ast.FuncDecl
	obj        types.Object
	bufParams  map[types.Object]int // *[]byte params → index
	releases   map[int]bool
	source     bool
	getVars    map[types.Object]bool // objects holding a pool buffer
	mentionPut bool                  // any putBlockBuf identifier in the body
}

func run(pass *framework.Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	fns := collect(pass)
	fixpoint(pass, fns)
	exportFacts(pass, fns)
	for _, fi := range fns {
		check(pass, fns, fi)
	}
	return nil
}

func collect(pass *framework.Pass) []*funcInfo {
	var fns []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &funcInfo{
				decl:      fd,
				obj:       pass.TypesInfo.Defs[fd.Name],
				bufParams: make(map[types.Object]int),
				releases:  make(map[int]bool),
				getVars:   make(map[types.Object]bool),
			}
			if fd.Type.Params != nil {
				idx := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil && isBufPtr(obj.Type()) {
							fi.bufParams[obj] = idx
						}
						idx++
					}
					if len(field.Names) == 0 {
						idx++
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "putBlockBuf" {
					fi.mentionPut = true
				}
				return true
			})
			fns = append(fns, fi)
		}
	}
	return fns
}

// fixpoint propagates releases/source/getVars through in-package helper
// calls until stable; imported facts seed knowledge about other
// packages' helpers.
func fixpoint(pass *framework.Pass, fns []*funcInfo) {
	byObj := make(map[types.Object]*funcInfo, len(fns))
	for _, fi := range fns {
		if fi.obj != nil {
			byObj[fi.obj] = fi
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					if len(v.Lhs) == 1 && len(v.Rhs) == 1 {
						if id, ok := v.Lhs[0].(*ast.Ident); ok && isGetCall(pass, byObj, v.Rhs[0]) {
							obj := pass.TypesInfo.Defs[id]
							if obj == nil {
								obj = pass.TypesInfo.Uses[id]
							}
							if obj != nil && !fi.getVars[obj] {
								fi.getVars[obj] = true
								changed = true
							}
						}
					}
				case *ast.CallExpr:
					for _, idx := range releasedPositions(pass, byObj, v) {
						if idx >= len(v.Args) {
							continue
						}
						if id, ok := ast.Unparen(v.Args[idx]).(*ast.Ident); ok {
							obj := pass.TypesInfo.Uses[id]
							if pIdx, ok := fi.bufParams[obj]; ok && !fi.releases[pIdx] {
								fi.releases[pIdx] = true
								changed = true
							}
						}
					}
				case *ast.ReturnStmt:
					if fi.source || len(v.Results) != 1 {
						return true
					}
					res := ast.Unparen(v.Results[0])
					if isGetCall(pass, byObj, res) {
						fi.source = true
						changed = true
					} else if id, ok := res.(*ast.Ident); ok && fi.getVars[pass.TypesInfo.Uses[id]] {
						fi.source = true
						changed = true
					}
				}
				return true
			})
		}
	}
}

func exportFacts(pass *framework.Pass, fns []*funcInfo) {
	for _, fi := range fns {
		if fi.obj == nil {
			continue
		}
		if len(fi.releases) > 0 {
			idxs := make([]int, 0, len(fi.releases))
			for i := range fi.releases {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			pass.ExportObjectFact(fi.obj, &ReleasesFact{Params: idxs})
		}
		if fi.source {
			pass.ExportObjectFact(fi.obj, &SourceFact{})
		}
	}
}

// isGetCall reports whether e acquires a pool buffer: a call to
// getBlockBuf or to a function carrying SourceFact.
func isGetCall(pass *framework.Pass, byObj map[types.Object]*funcInfo, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "getBlockBuf" {
		return true
	}
	obj := calleeObj(pass, call)
	if obj == nil {
		return false
	}
	if fi, ok := byObj[obj]; ok {
		return fi.source
	}
	return pass.ImportObjectFact(obj, &SourceFact{})
}

// releasedPositions returns the argument indices call releases: [0]
// for putBlockBuf itself, the fact-recorded indices for helpers.
func releasedPositions(pass *framework.Pass, byObj map[types.Object]*funcInfo, call *ast.CallExpr) []int {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "putBlockBuf" {
		return []int{0}
	}
	obj := calleeObj(pass, call)
	if obj == nil {
		return nil
	}
	if fi, ok := byObj[obj]; ok {
		var idxs []int
		for i := range fi.releases {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return idxs
	}
	var fact ReleasesFact
	if pass.ImportObjectFact(obj, &fact) {
		return fact.Params
	}
	return nil
}

func calleeObj(pass *framework.Pass, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}

func isBufPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	s, ok := p.Elem().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// ownership events observed for one origin buffer within a function.
type varState struct {
	getPos    token.Pos
	released  bool
	handedOff bool
}

// rootIdent is framework.RootIdent plus slice expressions: bufown must
// trace `payload := (*bufp)[:n]` back to bufp, a shape the generic
// lvalue helper deliberately rejects.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// check runs the per-function diagnostics for fi.
func check(pass *framework.Pass, fns []*funcInfo, fi *funcInfo) {
	byObj := make(map[types.Object]*funcInfo, len(fns))
	for _, f := range fns {
		if f.obj != nil {
			byObj[f.obj] = f
		}
	}
	info := pass.TypesInfo
	inProto := pass.Pkg != nil && framework.PathMatch(pass.Pkg.Path(), protoRoots)

	// originOf maps aliases and derived slices back to the buffer they
	// view; vars holds acquisition state per origin object.
	originOf := make(map[types.Object]types.Object)
	vars := make(map[types.Object]*varState)
	lookup := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if o, ok := originOf[obj]; ok {
			return o
		}
		return nil
	}

	// Pass 1 (source order): discover get-vars, aliases and derived
	// slices. Source order suffices: a derivation textually precedes
	// its uses in this codebase's straight-line acquisition patterns.
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if isGetCall(pass, byObj, as.Rhs[0]) {
			originOf[obj] = obj
			if _, ok := vars[obj]; !ok {
				vars[obj] = &varState{getPos: as.Rhs[0].Pos()}
			}
			return true
		}
		// Aliases (q := bufp) and derived views (payload :=
		// (*bufp)[:n]) trace back to the origin buffer; releasing or
		// handing off through them credits the origin.
		if root := rootIdent(as.Rhs[0]); root != nil {
			if origin := lookup(root); origin != nil {
				if _, seen := originOf[obj]; !seen {
					originOf[obj] = origin
				}
			}
		}
		return true
	})

	// Pass 2: release and handoff events, plus direct-use gets.
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			for _, idx := range releasedPositions(pass, byObj, v) {
				if idx >= len(v.Args) {
					continue
				}
				if id, ok := ast.Unparen(v.Args[idx]).(*ast.Ident); ok {
					if origin := lookup(id); origin != nil {
						vars[origin].released = true
					}
				}
			}
			// A pool buffer acquired straight into a releasing call is
			// fine; into any other call it is a handoff that needs a
			// visible putBlockBuf somewhere in the function.
			for argIdx, arg := range v.Args {
				if !isGetCall(pass, byObj, arg) {
					continue
				}
				if hasInt(releasedPositions(pass, byObj, v), argIdx) {
					continue
				}
				if !fi.mentionPut {
					reportHandoff(pass, fi, arg.Pos())
				}
			}
		case *ast.SendStmt:
			if isGetCall(pass, byObj, v.Value) {
				if !fi.mentionPut {
					reportHandoff(pass, fi, v.Value.Pos())
				}
			} else {
				markHandoff(v.Value, lookup, vars)
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				markHandoff(e, lookup, vars)
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				markHandoff(res, lookup, vars)
			}
		case *ast.AssignStmt:
			// Storing a pool var through a field/index/global LHS hands
			// it to the structure's owner.
			for i, lhs := range v.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue
				}
				if i < len(v.Rhs) {
					markHandoff(v.Rhs[i], lookup, vars)
				}
			}
		case *ast.ExprStmt:
			if isGetCall(pass, byObj, v.X) {
				reportLost(pass, fi, v.X.Pos())
			}
		}
		return true
	})

	// Never-released / blind-handoff verdicts.
	type verdict struct {
		pos  token.Pos
		lost bool
	}
	var verdicts []verdict
	for _, st := range vars {
		if st.released {
			continue
		}
		if st.handedOff {
			if !fi.mentionPut {
				verdicts = append(verdicts, verdict{st.getPos, false})
			}
			continue
		}
		verdicts = append(verdicts, verdict{st.getPos, true})
	}
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].pos < verdicts[j].pos })
	for _, v := range verdicts {
		if v.lost {
			reportLost(pass, fi, v.pos)
		} else {
			reportHandoff(pass, fi, v.pos)
		}
	}

	checkOrdering(pass, byObj, fi, lookup)
	checkDeferCapture(pass, byObj, fi, lookup)
	if inProto {
		checkEscapes(pass, byObj, fi, lookup, vars)
	}
}

func hasInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func reportLost(pass *framework.Pass, fi *funcInfo, pos token.Pos) {
	pass.Reportf(pos, "getBlockBuf result is never released: %s has no putBlockBuf on any path; release the buffer or annotate the handoff with //lint:allow bufown", fi.decl.Name.Name)
}

func reportHandoff(pass *framework.Pass, fi *funcInfo, pos token.Pos) {
	pass.Reportf(pos, "pool buffer handed off out of %s with no putBlockBuf in sight; annotate //lint:allow bufown handoff: <who releases> (DESIGN §6.2)", fi.decl.Name.Name)
}

// markHandoff flags e's origin as deliberately transferred when e is a
// bare pool-derived identifier.
func markHandoff(e ast.Expr, lookup func(*ast.Ident) types.Object, vars map[types.Object]*varState) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if origin := lookup(id); origin != nil {
			vars[origin].handedOff = true
		}
	}
}

// checkOrdering walks every statement list and reports reads of a
// buffer after an unconditional putBlockBuf earlier in the same list
// (use-after-put) and repeated releases (double-put). Reassignment
// revives the variable — the put-then-grow swap is legal.
func checkOrdering(pass *framework.Pass, byObj map[types.Object]*funcInfo, fi *funcInfo, lookup func(*ast.Ident) types.Object) {
	var walkList func(stmts []ast.Stmt)
	walkList = func(stmts []ast.Stmt) {
		released := make(map[types.Object]bool)
		for _, stmt := range stmts {
			// Reads of already-released buffers anywhere inside stmt.
			if len(released) > 0 {
				reassigned, releasing := stmtEffects(pass, byObj, stmt, lookup)
				ast.Inspect(stmt, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					origin := lookup(id)
					if origin == nil || !released[origin] {
						return true
					}
					if reassigned[origin] && isLHS(stmt, id) {
						return true
					}
					if releasing[origin] {
						pass.Reportf(id.Pos(), "%s released twice: double-put would hand the same buffer to two owners (DESIGN §6.2)", id.Name)
					} else {
						pass.Reportf(id.Pos(), "use of %s after putBlockBuf: the buffer may already belong to another stream (DESIGN §6.2)", id.Name)
					}
					released[origin] = false // one report per incident
					return true
				})
			}
			reassigned, releasing := stmtEffects(pass, byObj, stmt, lookup)
			for o := range reassigned {
				delete(released, o)
			}
			for o := range releasing {
				released[o] = true
			}
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			walkList(v.List)
		case *ast.CaseClause:
			walkList(v.Body)
		case *ast.CommClause:
			walkList(v.Body)
		}
		return true
	})
}

// stmtEffects classifies what stmt does, at its own nesting level, to
// pool-derived variables: releasing (an unconditional top-level put)
// and reassigned (a fresh value bound to the name).
func stmtEffects(pass *framework.Pass, byObj map[types.Object]*funcInfo, stmt ast.Stmt, lookup func(*ast.Ident) types.Object) (reassigned, releasing map[types.Object]bool) {
	reassigned = make(map[types.Object]bool)
	releasing = make(map[types.Object]bool)
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
			for _, idx := range releasedPositions(pass, byObj, call) {
				if idx >= len(call.Args) {
					continue
				}
				if id, ok := ast.Unparen(call.Args[idx]).(*ast.Ident); ok {
					if origin := lookup(id); origin != nil {
						releasing[origin] = true
					}
				}
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if origin := lookup(id); origin != nil {
					reassigned[origin] = true
				}
			}
		}
	}
	return reassigned, releasing
}

// isLHS reports whether id is an assignment target within stmt.
func isLHS(stmt ast.Stmt, id *ast.Ident) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == id {
			return true
		}
	}
	return false
}

// checkDeferCapture reports the `defer putBlockBuf(bufp)` +
// later-reassignment pattern: the deferred call releases the pointer
// captured when the defer statement ran, so the swapped-out original
// is put twice and the replacement leaks.
func checkDeferCapture(pass *framework.Pass, byObj map[types.Object]*funcInfo, fi *funcInfo, lookup func(*ast.Ident) types.Object) {
	type capture struct {
		pos  token.Pos
		obj  types.Object
		name string
	}
	info := pass.TypesInfo
	var captures []capture
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for _, idx := range releasedPositions(pass, byObj, ds.Call) {
			if idx >= len(ds.Call.Args) {
				continue
			}
			if id, ok := ast.Unparen(ds.Call.Args[idx]).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && lookup(id) != nil {
					captures = append(captures, capture{ds.Pos(), obj, id.Name})
				}
			}
		}
		return true
	})
	if len(captures) == 0 {
		return
	}
	// Only a reassignment of the captured variable itself invalidates
	// the deferred pointer; writes to aliases do not.
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			for _, c := range captures {
				if c.obj == obj && as.Pos() > c.pos {
					pass.Reportf(c.pos, "defer putBlockBuf(%s) captures the pointer at defer time and %s is reassigned later: the original buffer is released twice and the replacement leaks; use defer func() { putBlockBuf(%s) }() (DESIGN §6.2)", c.name, c.name, c.name)
					return false
				}
			}
		}
		return true
	})
}

// checkEscapes applies the internal/proto-only escape rules.
func checkEscapes(pass *framework.Pass, byObj map[types.Object]*funcInfo, fi *funcInfo, lookup func(*ast.Ident) types.Object, vars map[types.Object]*varState) {
	info := pass.TypesInfo
	// E1: exported function returning a pool buffer.
	if fi.source && fi.decl.Name.IsExported() {
		pass.Reportf(fi.decl.Name.Pos(), "pool-backed buffer returned by exported %s escapes internal/proto; external callers cannot release it (DESIGN §6.2)", fi.decl.Name.Name)
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			// E2: stored into a package-level variable.
			for i, lhs := range v.Lhs {
				root := framework.RootIdent(lhs)
				if root == nil || i >= len(v.Rhs) {
					continue
				}
				obj := info.Uses[root]
				if obj == nil || obj.Parent() == nil || pass.Pkg == nil || obj.Parent() != pass.Pkg.Scope() {
					continue
				}
				rhsRoot := rootIdent(v.Rhs[i])
				if rhsRoot != nil && lookup(rhsRoot) != nil {
					pass.Reportf(v.Rhs[i].Pos(), "pool-backed buffer stored in package-level %s outlives its release window (DESIGN §6.2)", root.Name)
				}
			}
		case *ast.CallExpr:
			// E3: passed to an interface method that is free to retain
			// it. io.Reader/io.Writer-shaped methods are exempt: their
			// contract forbids retaining the slice.
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal || !types.IsInterface(selection.Recv()) {
				return true
			}
			if isReadWriteShape(sel.Sel.Name, selection.Obj()) {
				return true
			}
			for _, arg := range v.Args {
				root := rootIdent(arg)
				if root == nil {
					continue
				}
				if lookup(root) != nil {
					pass.Reportf(arg.Pos(), "pool-backed buffer passed to interface method %s, which may retain it after release; copy first or annotate //lint:allow bufown (DESIGN §6.2)", types.ExprString(sel))
					break
				}
			}
		}
		return true
	})
}

// isReadWriteShape reports whether the interface method matches the
// io.Reader/io.Writer retention contract: named Read or Write with
// signature ([]byte) (int, error).
func isReadWriteShape(name string, obj types.Object) bool {
	if name != "Read" && name != "Write" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	_, isSlice := sig.Params().At(0).Type().Underlying().(*types.Slice)
	return isSlice
}
