package bufown_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/bufown"
)

func TestBufOwn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), bufown.Analyzer, "bufownfix")
}
