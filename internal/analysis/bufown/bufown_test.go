package bufown_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/bufown"
)

func TestBufOwn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), bufown.Analyzer, "bufownfix")
}

// TestBufOwnHelpers is the v1 blind-spot regression: buffers released
// by helpers (tracked via ReleasesFact/SourceFact) must not be flagged,
// and the facts themselves are asserted so a neutered fixpoint fails.
func TestBufOwnHelpers(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), bufown.Analyzer, "bufownhelper")
}

// TestBufOwnEscapes covers the internal/proto-only escape rules; the
// fixture path places the package under the data plane.
func TestBufOwnEscapes(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), bufown.Analyzer, "internal/proto/escfix")
}
