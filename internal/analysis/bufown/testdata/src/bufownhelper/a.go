// Package bufownhelper is the regression fixture for bufown v1's blind
// spot: a buffer passed to a helper that releases it. v1 demanded a
// putBlockBuf identifier in the acquiring function itself and flagged
// viaHelper below; v2 computes ReleasesFact/SourceFact for helpers and
// follows the ownership through the call.
package bufownhelper

var spare [][]byte

func getBlockBuf(n int) *[]byte {
	b := make([]byte, n)
	return &b
}

func putBlockBuf(p *[]byte) {
	if p != nil {
		spare = append(spare, *p)
	}
}

// releaseLater takes ownership of its parameter.
func releaseLater(p *[]byte) { // want fact:`releaseLater:releases\(\[0\]\)`
	putBlockBuf(p)
}

// releaseSecond releases a non-leading parameter: the fact records the
// index, not just "releases something".
func releaseSecond(tag string, p *[]byte) { // want fact:`releaseSecond:releases\(\[1\]\)`
	_ = tag
	putBlockBuf(p)
}

// chained releases through another helper: the fixpoint runs until the
// transitive closure is stable.
func chained(p *[]byte) { // want fact:`chained:releases\(\[0\]\)`
	releaseLater(p)
}

// viaHelper is the v1 blind spot itself: no putBlockBuf identifier in
// sight, yet the buffer is correctly released. Must stay clean.
func viaHelper(n int) int {
	bufp := getBlockBuf(n)
	m := len(*bufp)
	releaseLater(bufp)
	return m
}

// viaChained releases two hops away. Must stay clean.
func viaChained(n int, tag string) {
	bufp := getBlockBuf(n)
	releaseSecond(tag, bufp)
}

// viaDeferredHelper defers the releasing helper. Must stay clean.
func viaDeferredHelper(n int) int {
	bufp := getBlockBuf(n)
	defer chained(bufp)
	return len(*bufp)
}

// inspect only reads; it carries no fact, so its callers still own the
// buffer.
func inspect(p *[]byte) int { return len(*p) }

func viaInspect(n int) int {
	bufp := getBlockBuf(n) // want `getBlockBuf result is never released`
	return inspect(bufp)
}

// newBuf wraps the acquisition: calling it is a get, and the caller
// owns the result.
func newBuf(n int) *[]byte { // want fact:`newBuf:source`
	return getBlockBuf(n)
}

func viaSourceLeaked(n int) {
	bufp := newBuf(n) // want `getBlockBuf result is never released`
	_ = bufp
}

func viaSourceReleased(n int) int {
	bufp := newBuf(n)
	defer putBlockBuf(bufp)
	return len(*bufp)
}

// useAfterHelperPut: helper releases count for the ordering check too.
func useAfterHelperPut(n int) int {
	bufp := getBlockBuf(n)
	releaseLater(bufp)
	return len(*bufp) // want `use of bufp after putBlockBuf`
}
