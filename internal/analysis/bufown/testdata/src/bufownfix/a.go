// Package bufownfix exercises bufown against a local replica of the
// proto buffer-pool API (matching is by name, so no import needed).
package bufownfix

var pool [][]byte

func getBlockBuf(n int) *[]byte {
	b := make([]byte, n)
	return &b
}

func putBlockBuf(p *[]byte) {
	if p != nil {
		pool = append(pool, *p)
	}
}

// leak never releases: the realistic new-call-site failure mode.
func leak(n int) int {
	bufp := getBlockBuf(n) // want `getBlockBuf result is never released`
	return len(*bufp)
}

// deferred is the preferred shape: release pinned at acquisition.
func deferred(n int) int {
	bufp := getBlockBuf(n)
	defer putBlockBuf(bufp)
	return len(*bufp)
}

// branches releases explicitly on both paths, like the server's
// read-error handling.
func branches(n int, fail bool) int {
	bufp := getBlockBuf(n)
	if fail {
		putBlockBuf(bufp)
		return 0
	}
	m := len(*bufp)
	putBlockBuf(bufp)
	return m
}

// handoffChannel transfers ownership into a goroutine-owned channel;
// the receiver-side put is still inside this function body (nested
// literal), so containment holds without an annotation.
func handoffChannel(n int) {
	ch := make(chan *[]byte, 1)
	go func() {
		for p := range ch {
			putBlockBuf(p)
		}
	}()
	ch <- getBlockBuf(n)
	close(ch)
}

// handoffAnnotated hands the buffer to the caller: the directive names
// the new owner, silencing the diagnostic.
func handoffAnnotated(n int) *[]byte {
	//lint:allow bufown handoff: caller releases via putBlockBuf
	return getBlockBuf(n)
}

// unrelated never touches the pool: no diagnostic.
func unrelated(n int) []byte {
	return make([]byte, n)
}
