// Package bufownfix exercises bufown against a local replica of the
// proto buffer-pool API (matching is by name, so no import needed).
package bufownfix

var pool [][]byte

func getBlockBuf(n int) *[]byte {
	b := make([]byte, n)
	return &b
}

func putBlockBuf(p *[]byte) {
	if p != nil {
		pool = append(pool, *p)
	}
}

// leak never releases: the realistic new-call-site failure mode.
func leak(n int) int {
	bufp := getBlockBuf(n) // want `getBlockBuf result is never released`
	return len(*bufp)
}

// deferred is the preferred shape: release pinned at acquisition.
func deferred(n int) int {
	bufp := getBlockBuf(n)
	defer putBlockBuf(bufp)
	return len(*bufp)
}

// branches releases explicitly on both paths, like the server's
// read-error handling.
func branches(n int, fail bool) int {
	bufp := getBlockBuf(n)
	if fail {
		putBlockBuf(bufp)
		return 0
	}
	m := len(*bufp)
	putBlockBuf(bufp)
	return m
}

// handoffChannel transfers ownership into a goroutine-owned channel;
// the receiver-side put is still inside this function body (nested
// literal), so containment holds without an annotation.
func handoffChannel(n int) {
	ch := make(chan *[]byte, 1)
	go func() {
		for p := range ch {
			putBlockBuf(p)
		}
	}()
	ch <- getBlockBuf(n)
	close(ch)
}

// handoffBlind sends the buffer away with no putBlockBuf anywhere in
// the function: nobody visible owns the release.
func handoffBlind(n int, ch chan *[]byte) {
	ch <- getBlockBuf(n) // want `handed off out of handoffBlind with no putBlockBuf`
}

// handoffAnnotated hands the buffer to a channel whose receiver is
// elsewhere: the directive names the new owner.
func handoffAnnotated(n int, ch chan *[]byte) {
	//lint:allow bufown handoff: channel receiver releases via putBlockBuf
	ch <- getBlockBuf(n)
}

// useAfterPut reads the buffer after releasing it: by then the pool
// may have handed it to another stream.
func useAfterPut(n int) int {
	bufp := getBlockBuf(n)
	putBlockBuf(bufp)
	return len(*bufp) // want `use of bufp after putBlockBuf`
}

// doublePut releases the same buffer twice: two future getBlockBuf
// callers would receive the same backing array.
func doublePut(n int) {
	bufp := getBlockBuf(n)
	putBlockBuf(bufp)
	putBlockBuf(bufp) // want `bufp released twice`
}

// growSwap is the legal put-then-reacquire shape used by the client
// stream loop when a block exceeds the buffer: reassignment revives
// the variable.
func growSwap(n, m int) int {
	bufp := getBlockBuf(n)
	if m > n {
		putBlockBuf(bufp)
		bufp = getBlockBuf(m)
	}
	v := len(*bufp)
	putBlockBuf(bufp)
	return v
}

// deferCapture is growSwap with the release deferred the wrong way:
// defer evaluates bufp immediately, so after the swap the original
// buffer is released twice and the replacement leaks.
func deferCapture(n, m int) int {
	bufp := getBlockBuf(n)
	defer putBlockBuf(bufp) // want `captures the pointer at defer time`
	if m > n {
		putBlockBuf(bufp)
		bufp = getBlockBuf(m)
	}
	return len(*bufp)
}

// deferClosure is the correct deferred form: the closure reads bufp
// when the function returns, after any swap.
func deferClosure(n, m int) int {
	bufp := getBlockBuf(n)
	defer func() { putBlockBuf(bufp) }()
	if m > n {
		putBlockBuf(bufp)
		bufp = getBlockBuf(m)
	}
	return len(*bufp)
}

// unrelated never touches the pool: no diagnostic.
func unrelated(n int) []byte {
	return make([]byte, n)
}
