// Package escfix exercises the escape rules bufown applies only under
// internal/proto (the fixture path puts it there): pool-backed buffers
// must not leave the data plane through exported functions, package
// globals, or retention-free interface contracts.
package escfix

var stash *[]byte

func getBlockBuf(n int) *[]byte {
	b := make([]byte, n)
	return &b
}

func putBlockBuf(p *[]byte) { _ = p }

type sink interface {
	WriteAt(name string, p []byte, off int64) error
}

type writer interface {
	Write(p []byte) (int, error)
}

// NewBlock hands a pool buffer to arbitrary external callers.
func NewBlock(n int) *[]byte { // want `pool-backed buffer returned by exported NewBlock`
	return getBlockBuf(n)
}

// newBlock is the same shape unexported: in-package callers are
// covered by SourceFact, no escape.
func newBlock(n int) *[]byte { // want fact:`newBlock:source`
	return getBlockBuf(n)
}

// toGlobal parks a pool buffer in a package variable, outliving any
// release discipline.
func toGlobal(n int) {
	bufp := getBlockBuf(n)
	defer putBlockBuf(bufp)
	stash = bufp // want `stored in package-level stash`
}

// toSink passes a pool-derived slice to an interface method with no
// non-retention contract: the implementation may keep it past the put.
func toSink(s sink, n int) error {
	bufp := getBlockBuf(n)
	defer putBlockBuf(bufp)
	payload := (*bufp)[:n]
	return s.WriteAt("x", payload, 0) // want `passed to interface method s.WriteAt`
}

// toWriter is exempt: Write([]byte) (int, error) carries the io.Writer
// contract, which forbids retaining the slice.
func toWriter(w writer, n int) (int, error) {
	bufp := getBlockBuf(n)
	defer putBlockBuf(bufp)
	return w.Write((*bufp)[:n])
}
