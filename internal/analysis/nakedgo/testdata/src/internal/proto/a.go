// Package proto sits on an allowed path ("internal/proto"): the
// real-TCP data path owns its goroutines, so nothing fires.
package proto

func streamWriters(queues []chan []byte) {
	for i := range queues {
		go func(q chan []byte) {
			for range q {
			}
		}(queues[i])
	}
}
