// Package expharness stands in for experiment-layer code, where raw
// goroutines are banned in favour of the bounded sched pool.
package expharness

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func()) { // want `naked go statement outside the concurrency-owning packages`
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
}

func fire(done chan struct{}) {
	go close(done) // want `naked go statement outside the concurrency-owning packages`
}

// sanctioned models a justified exception, e.g. a long-lived
// signal-handler loop that never touches experiment results.
func sanctioned(done chan struct{}) {
	//lint:allow nakedgo lifecycle goroutine, no result assembly
	go close(done)
}

// serial code obviously passes.
func runAll(work []func()) {
	for _, w := range work {
		w()
	}
}
