package expharness

// Test files are exempt: helper goroutines in tests never feed the
// deterministic assembly path.
func spawnHelper(done chan struct{}) {
	go close(done)
}
