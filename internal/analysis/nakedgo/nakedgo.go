// Package nakedgo flags `go` statements outside the packages that own
// concurrency. The experiment layer's determinism contract (DESIGN.md
// §6.1) holds because all fan-out runs on internal/sched's bounded
// pool with index-keyed assembly; an ad-hoc goroutine with a shared
// accumulator or completion-ordered append is how that contract rots.
// Only internal/sched (the pool itself), internal/proto (per-stream
// writers and the shaper on the real-TCP data path), internal/netem
// (link emulation timers) and internal/obs (the HTTP telemetry
// endpoint's serve loop) may spawn goroutines directly. Everyone else
// uses sched.Pool/sched.Map, or justifies the exception with
// `//lint:allow nakedgo <reason>`. Test files are exempt: tests
// routinely spawn helpers (servers, cancellation probes) and do not
// feed results into the deterministic assembly path.
package nakedgo

import (
	"go/ast"
	"strings"

	"github.com/didclab/eta/internal/analysis/framework"
)

// AllowedPaths are the package-path roots that own raw goroutines.
var AllowedPaths = []string{
	"internal/sched",
	"internal/proto",
	"internal/netem",
	"internal/obs",
	// chaos pipes per-connection forwarding loops and outage-restore
	// timers; all of them join through the proxy's WaitGroup on Close.
	"internal/chaos",
}

// Analyzer is the nakedgo instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "nakedgo",
	Doc:  "flag go statements outside internal/sched, internal/proto and internal/netem; fan out via the bounded sched pool",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg != nil && framework.PathMatch(pass.Pkg.Path(), AllowedPaths) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "naked go statement outside the concurrency-owning packages; fan out through internal/sched's bounded pool (or annotate with //lint:allow nakedgo)")
			}
			return true
		})
	}
	return nil
}
