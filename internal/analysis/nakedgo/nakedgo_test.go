package nakedgo_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/nakedgo"
)

func TestNakedGo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nakedgo.Analyzer,
		"expharness",     // restricted path: diagnostics fire
		"internal/proto", // concurrency-owning path: silence
	)
}
