package mapfloatsum_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/mapfloatsum"
)

func TestMapFloatSum(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), mapfloatsum.Analyzer, "a")
}
