// Package mapfloatsum flags floating-point accumulation performed in
// map iteration order. Float addition is not associative, so reducing
// over Go's randomized map order makes the result differ in the last
// ulp between runs — the exact bug class that made simSession
// .integratePower's energy totals drift until it was rewritten to sum
// over sorted server indices (DESIGN.md §6.1). The analyzer reports an
// accumulator that (a) has a floating-point (or complex) type, (b) is
// declared outside the `range` statement, and (c) is updated with
// `+=`, `-=`, `*=`, `/=` or `x = x + ...` anywhere inside the body of
// a `range` over a map.
package mapfloatsum

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Analyzer is the mapfloatsum instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "mapfloatsum",
	Doc:  "flag floating-point accumulation in map iteration order (non-associative, order-randomized)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, ok := tv.Type.Underlying().(*types.Map); !ok {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if ok {
					checkAssign(pass, rs, as, reported)
				}
				return true
			})
			return true
		})
	}
	return nil
}

func checkAssign(pass *framework.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, reported map[token.Pos]bool) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 {
			report(pass, rs, as.Lhs[0], as, reported)
		}
	case token.ASSIGN:
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			be, ok := as.Rhs[i].(*ast.BinaryExpr)
			if !ok {
				continue
			}
			switch be.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				continue
			}
			if sameExpr(pass, lhs, be.X) || sameExpr(pass, lhs, be.Y) {
				report(pass, rs, lhs, as, reported)
			}
		}
	}
}

// report fires when lhs is a float-typed accumulator that outlives the
// range statement.
func report(pass *framework.Pass, rs *ast.RangeStmt, lhs ast.Expr, as *ast.AssignStmt, reported map[token.Pos]bool) {
	if reported[as.Pos()] {
		return
	}
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || tv.Type == nil {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsFloat|types.IsComplex) == 0 {
		return
	}
	root := framework.RootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	if obj := pass.TypesInfo.ObjectOf(root); obj != nil {
		if rs.Pos() <= obj.Pos() && obj.Pos() < rs.End() {
			return // accumulator scoped to one iteration: order-safe
		}
	}
	reported[as.Pos()] = true
	pass.Reportf(as.Pos(), "%s accumulates floating-point values in map iteration order; float addition is not associative, so the total differs between runs — iterate sorted keys instead",
		types.ExprString(lhs))
}

// sameExpr reports whether a and b denote the same lvalue: identical
// objects for plain identifiers, identical spellings otherwise.
func sameExpr(pass *framework.Pass, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if aok != bok {
		return false
	}
	if aok {
		oa, ob := pass.TypesInfo.ObjectOf(ai), pass.TypesInfo.ObjectOf(bi)
		return oa != nil && oa == ob
	}
	return types.ExprString(a) == types.ExprString(b)
}
