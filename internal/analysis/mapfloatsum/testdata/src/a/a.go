// Package a exercises mapfloatsum: float accumulators updated in map
// iteration order fire; order-independent and slice-ordered reductions
// do not.
package a

import "sort"

type watts float64

type srvLoad struct {
	rate  float64
	procs int
}

// integratePower replicates the original map-order bug fixed in
// internal/transfer: summing per-server watts by ranging the map
// directly made energy totals drift in the last ulp between runs.
func integratePower(loads map[int]*srvLoad) watts {
	var total watts
	for _, l := range loads { // the PR 1 incident, reduced
		total += watts(l.rate) // want `accumulates floating-point values in map iteration order`
	}
	return total
}

// integratePowerFixed is the post-incident shape: reduce over sorted
// keys so the addition order is pinned.
func integratePowerFixed(loads map[int]*srvLoad) watts {
	idxs := make([]int, 0, len(loads))
	for idx := range loads {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var total watts
	for _, idx := range idxs {
		total += watts(loads[idx].rate) // slice order: deterministic
	}
	return total
}

func variants(m map[string]float64, byKey map[string]*srvLoad) (float64, float64, int, float64) {
	var spelledOut float64
	for _, v := range m {
		spelledOut = spelledOut + v // want `accumulates floating-point values`
	}

	var nested float64
	for _, l := range byKey {
		for i := 0; i < l.procs; i++ {
			nested -= l.rate // want `accumulates floating-point values`
		}
	}

	// Integer accumulation is associative: no diagnostic.
	var count int
	for _, l := range byKey {
		count += l.procs
	}

	// Field accumulators outlive the loop too.
	var agg srvLoad
	for _, v := range m {
		agg.rate += v // want `accumulates floating-point values`
	}

	// An accumulator scoped to one iteration never sees map order.
	var last float64
	for _, l := range byKey {
		perIter := 0.0
		perIter += l.rate
		last = perIter
	}

	// Suppressed: a deliberate, tolerance-checked reduction.
	var allowed float64
	for _, v := range m {
		//lint:allow mapfloatsum tolerance-compared aggregate, order-insensitive by construction
		allowed += v
	}

	return spelledOut, nested, count, last + agg.rate + allowed
}

// sliceSum ranges a slice: order is fixed, no diagnostic.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
