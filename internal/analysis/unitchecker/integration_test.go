package unitchecker_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestFactsRoundTripAcrossUnits drives the real `go vet -vettool`
// protocol end to end and proves that facts cross package boundaries:
// vetting cmd/xferd forces a VetxOnly pass over internal/proto, whose
// errclass run exports a SentinelFact for proto.ErrStalled into the
// unit's .vetx file; the cmd/xferd unit must then import that same
// fact through cfg.PackageVetx. ETA_FACTS_LOG records both sides.
//
// The test runs under a fresh GOCACHE: cmd/go caches vet results by
// tool digest, and a cache hit would skip the tool entirely, leaving
// the log empty.
func TestFactsRoundTripAcrossUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries, shells out to the go tool, and repopulates a scratch GOCACHE")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "vettool")

	build := exec.Command(goTool, "build", "-o", bin, "./cmd/vettool")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	factsLog := filepath.Join(tmp, "facts.log")
	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./cmd/xferd")
	vet.Dir = repoRoot
	vet.Env = append(os.Environ(),
		"GOFLAGS=-mod=mod",
		"GOCACHE="+filepath.Join(tmp, "gocache"),
		"ETA_FACTS_LOG="+factsLog,
	)
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool ./cmd/xferd: %v\n%s", err, stderr.String())
	}

	data, err := os.ReadFile(factsLog)
	if err != nil {
		t.Fatalf("facts log was not written: %v", err)
	}
	log := string(data)

	const (
		exported = "export unit=github.com/didclab/eta/internal/proto " +
			"pkg=github.com/didclab/eta/internal/proto obj=ErrStalled analyzer=errclass fact=SentinelFact"
		imported = "import unit=github.com/didclab/eta/cmd/xferd " +
			"pkg=github.com/didclab/eta/internal/proto obj=ErrStalled analyzer=errclass fact=SentinelFact"
	)
	if !strings.Contains(log, exported) {
		t.Errorf("facts log is missing the producer side:\nwant line %q", exported)
	}
	if !strings.Contains(log, imported) {
		t.Errorf("facts log is missing the consumer side:\nwant line %q", imported)
	}
	if t.Failed() {
		// Show the proto/xferd slice of the log, not the whole build.
		var related []string
		for _, line := range strings.Split(log, "\n") {
			if strings.Contains(line, "eta/internal/proto") || strings.Contains(line, "eta/cmd/xferd") {
				related = append(related, line)
			}
		}
		t.Logf("related facts-log lines:\n%s", strings.Join(related, "\n"))
	}
}
