// Package unitchecker lets a multichecker binary built from
// internal/analysis/framework analyzers run under the `go vet
// -vettool=` protocol, standard library only (the x/tools unitchecker
// is unavailable offline). cmd/go drives the tool in three ways:
//
//   - `tool -V=full` must print a version line whose first two fields
//     are "<progname> version"; cmd/go hashes it into the build cache
//     key, so the line embeds a digest of the executable itself.
//   - `tool -flags` must print a JSON description of the tool's flags
//     (this tool exposes none beyond the protocol ones).
//   - `tool <unit>.cfg` analyzes one compilation unit described by the
//     JSON config: parse the unit's files, typecheck them against the
//     export data cmd/go already built for the imports, run every
//     analyzer, print findings to stderr.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Config mirrors the JSON cmd/go writes for each vet unit (see
// cmd/go/internal/work's vetConfig). Fields this driver does not
// consume are kept so the full file round-trips during debugging.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it interprets the
// protocol flags and never returns.
func Main(analyzers ...*framework.Analyzer) {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	args := os.Args[1:]
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch arg := args[0]; {
		case arg == "-V=full":
			fmt.Printf("%s version devel buildID=%02x\n", progname, selfDigest())
			os.Exit(0)
		case arg == "-V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case arg == "-flags":
			// No tool-specific flags; cmd/go only needs valid JSON.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-help" || arg == "--help" || arg == "-h":
			fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which %s) ./...\n\nanalyzers:\n", progname)
			for _, a := range analyzers {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
			}
			os.Exit(0)
		default:
			log.Fatalf("unrecognized flag %s (protocol flags: -V=full, -flags)", arg)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("this tool speaks the `go vet -vettool` protocol; run it via:\n\tgo vet -vettool=$(which %s) ./...", progname)
	}

	diags, err := Run(args[0], analyzers)
	if err != nil {
		log.Fatal(err) // exit 1
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// Run analyzes the unit described by cfgFile, printing diagnostics to
// stderr and returning them.
func Run(cfgFile string, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	// cmd/go expects the "facts" output file to exist even though this
	// suite exports none (no analyzer does cross-package analysis).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Analyzed only so dependents could read facts; nothing to do.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// The typechecker asks with the source-level import path; the
		// config maps it to the unit ID whose export data cmd/go built.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var typeErrs []error
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := framework.NewInfo()
	pkg, _ := tc.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, typeErrs[0])
	}

	diags, err := framework.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		name := posn.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", name, posn.Line, posn.Column, d.Message, d.Analyzer)
	}
	return diags, nil
}

// selfDigest hashes the tool binary so rebuilding the tool invalidates
// cmd/go's cached vet results.
func selfDigest() [sha256.Size]byte {
	exe, err := os.Executable()
	if err != nil {
		return [sha256.Size]byte{}
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return [sha256.Size]byte{}
	}
	return sha256.Sum256(data)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
