// Package unitchecker lets a multichecker binary built from
// internal/analysis/framework analyzers run under the `go vet
// -vettool=` protocol, standard library only (the x/tools unitchecker
// is unavailable offline). cmd/go drives the tool in three ways:
//
//   - `tool -V=full` must print a version line whose first two fields
//     are "<progname> version"; cmd/go hashes it into the build cache
//     key, so the line embeds a digest of the executable itself.
//   - `tool -flags` must print a JSON description of the tool's flags
//     (this tool exposes none beyond the protocol ones).
//   - `tool <unit>.cfg` analyzes one compilation unit described by the
//     JSON config: parse the unit's files, typecheck them against the
//     export data cmd/go already built for the imports, load the facts
//     every dependency unit serialized (PackageVetx), run every
//     analyzer, write the unit's own fact closure (VetxOutput), and —
//     unless the unit is a VetxOnly dependency — print findings to
//     stderr.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
//
// Two environment variables add machine-readable side channels without
// disturbing the protocol: ETA_LINT_JSON collects diagnostics as JSONL
// (consumed by scripts/lint.sh and the CI artifact), ETA_FACTS_LOG
// records every fact imported/exported per unit (consumed by the facts
// round-trip integration test). Both are append-only so parallel vet
// workers can share one file.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Config mirrors the JSON cmd/go writes for each vet unit (see
// cmd/go/internal/work's vetConfig). Fields this driver does not
// consume are kept so the full file round-trips during debugging.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it interprets the
// protocol flags and never returns.
func Main(analyzers ...*framework.Analyzer) {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	args := os.Args[1:]
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch arg := args[0]; {
		case arg == "-V=full":
			fmt.Printf("%s version devel buildID=%02x\n", progname, selfDigest())
			os.Exit(0)
		case arg == "-V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case arg == "-flags":
			// No tool-specific flags; cmd/go only needs valid JSON.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-help" || arg == "--help" || arg == "-h":
			fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which %s) ./...\n\nanalyzers:\n", progname)
			for _, a := range analyzers {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
			}
			os.Exit(0)
		default:
			log.Fatalf("unrecognized flag %s (protocol flags: -V=full, -flags)", arg)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("this tool speaks the `go vet -vettool` protocol; run it via:\n\tgo vet -vettool=$(which %s) ./...", progname)
	}

	diags, err := Run(args[0], analyzers)
	if err != nil {
		log.Fatal(err) // exit 1
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// Run analyzes the unit described by cfgFile, printing diagnostics to
// stderr and returning them.
func Run(cfgFile string, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	// Load the facts every direct dependency exported. Each vetx is a
	// transitive closure, so direct deps suffice. Files written by a
	// pre-facts tool ("no facts\n") decode to nothing, harmlessly.
	store := framework.NewFactStore()
	for _, depPath := range sortedKeys(cfg.PackageVetx) {
		if data, err := os.ReadFile(cfg.PackageVetx[depPath]); err == nil {
			store.AddImported(data)
		}
	}

	// cmd/go expects VetxOutput to exist on every exit path, including
	// typecheck-failure ones; until analyzers have run it holds just
	// the imported closure.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, store.Encode(), 0o666)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx()
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// The typechecker asks with the source-level import path; the
		// config maps it to the unit ID whose export data cmd/go built.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var typeErrs []error
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := framework.NewInfo()
	pkg, _ := tc.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx()
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, typeErrs[0])
	}

	// Analyzers run even for VetxOnly units: dependents need the facts
	// they export. Only the diagnostics are suppressed for those units
	// (cmd/go reports findings solely for the packages named on the
	// command line).
	diags, err := framework.Run(fset, files, pkg, info, analyzers, store)
	if err != nil {
		return nil, err
	}
	if err := writeVetx(); err != nil {
		return nil, err
	}
	logFacts(cfg, store)
	if cfg.VetxOnly {
		return nil, nil
	}
	logDiagnostics(cfg, fset, diags)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		name := posn.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", name, posn.Line, posn.Column, d.Message, d.Analyzer)
	}
	return diags, nil
}

// sortedKeys keeps dependency iteration deterministic so the audit log
// and any tie-breaking merge order are stable run to run.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// logFacts appends this unit's fact traffic to $ETA_FACTS_LOG: one
// "import" line per fact available from dependencies and one "export"
// line per fact the unit's analyzers produced. The integration test
// greps this to prove facts cross package boundaries under `go vet`.
// Lines are written with a single O_APPEND write so units vetted in
// parallel do not interleave mid-line.
func logFacts(cfg *Config, store *framework.FactStore) {
	path := os.Getenv("ETA_FACTS_LOG")
	if path == "" {
		return
	}
	var b strings.Builder
	for _, r := range store.ImportedRecords() {
		fmt.Fprintf(&b, "import unit=%s pkg=%s obj=%s analyzer=%s fact=%s\n",
			cfg.ImportPath, r.Pkg, r.Obj, r.Analyzer, r.Type)
	}
	for _, r := range store.ExportedRecords() {
		fmt.Fprintf(&b, "export unit=%s pkg=%s obj=%s analyzer=%s fact=%s\n",
			cfg.ImportPath, r.Pkg, r.Obj, r.Analyzer, r.Type)
	}
	appendFile(path, b.String())
}

// lintDiag is the machine-readable diagnostic record lint.sh collects
// into lint.json for CI annotation.
type lintDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Unit     string `json:"unit"`
}

// logDiagnostics appends one JSON object per diagnostic (JSONL) to
// $ETA_LINT_JSON.
func logDiagnostics(cfg *Config, fset *token.FileSet, diags []framework.Diagnostic) {
	path := os.Getenv("ETA_LINT_JSON")
	if path == "" || len(diags) == 0 {
		return
	}
	var b strings.Builder
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		rec, err := json.Marshal(lintDiag{
			File:     posn.Filename,
			Line:     posn.Line,
			Col:      posn.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Unit:     cfg.ImportPath,
		})
		if err != nil {
			continue
		}
		b.Write(rec)
		b.WriteByte('\n')
	}
	appendFile(path, b.String())
}

func appendFile(path, s string) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return
	}
	defer f.Close()
	io.WriteString(f, s)
}

// selfDigest hashes the tool binary so rebuilding the tool invalidates
// cmd/go's cached vet results.
func selfDigest() [sha256.Size]byte {
	exe, err := os.Executable()
	if err != nil {
		return [sha256.Size]byte{}
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return [sha256.Size]byte{}
	}
	return sha256.Sum256(data)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
