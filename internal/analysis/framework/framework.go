// Package framework is a minimal, dependency-free re-implementation of
// the parts of golang.org/x/tools/go/analysis this repository needs:
// an Analyzer value, a per-package Pass carrying syntax and type
// information, and position-anchored Diagnostics. The container this
// repo builds in has no module proxy access, so vendoring x/tools is
// not an option; the API mirrors go/analysis closely enough that the
// analyzers under internal/analysis/... would port to the real
// framework with mechanical changes only.
//
// # Suppression directives
//
// A diagnostic is suppressed by a directive comment of the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// e.g. `//lint:allow nodeterm wall-clock seam, injected in tests`.
// A directive trailing a statement covers that line; a directive on a
// line of its own covers the line directly below it. Every deliberate
// exception must name the analyzer it silences; the reason text is
// free-form but strongly encouraged (DESIGN.md §7).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by -flags help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one package's syntax and types through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	store *FactStore
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// NewInfo returns a types.Info with every map the analyzers consume
// populated, ready to pass to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics sorted by position, with //lint:allow-suppressed findings
// removed. Files must have been parsed with parser.ParseComments or
// the directives are invisible. store supplies facts imported from
// dependency units and collects facts the analyzers export; nil means
// "no cross-package state" and a throwaway store is used.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	if store == nil {
		store = NewFactStore()
	}
	allows := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, store: store}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !allows.allowed(a.Name, fset.Position(d.Pos)) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowRe matches the suppression directive; group 1 is the
// comma-separated analyzer list.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,]+)(\s|$)`)

// allowSet records, per file and line, which analyzers are silenced.
type allowSet map[string]map[int]map[string]bool

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		codeCols := firstCodeColumns(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Slash)
				// A directive trailing code covers its own line; a
				// directive alone on its line covers the next one.
				covered := posn.Line
				if col, ok := codeCols[posn.Filename][posn.Line]; !ok || col > posn.Column {
					covered = posn.Line + 1
				}
				lines := set[posn.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[posn.Filename] = lines
				}
				names := lines[covered]
				if names == nil {
					names = make(map[string]bool)
					lines[covered] = names
				}
				for _, name := range strings.Split(m[1], ",") {
					names[name] = true
				}
			}
		}
	}
	return set
}

// firstCodeColumns maps, per file and line, the column where the first
// non-comment token starts, so directives can tell "trailing a
// statement" apart from "on a line of their own".
func firstCodeColumns(fset *token.FileSet, f *ast.File) map[string]map[int]int {
	cols := make(map[string]map[int]int)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		posn := fset.Position(n.Pos())
		lines := cols[posn.Filename]
		if lines == nil {
			lines = make(map[int]int)
			cols[posn.Filename] = lines
		}
		if old, ok := lines[posn.Line]; !ok || posn.Column < old {
			lines[posn.Line] = posn.Column
		}
		return true
	})
	return cols
}

// allowed reports whether analyzer name is suppressed at posn.
func (s allowSet) allowed(name string, posn token.Position) bool {
	lines := s[posn.Filename]
	if lines == nil {
		return false
	}
	return lines[posn.Line][name]
}

// NormalizePkgPath strips the decorations `go vet` puts on test
// variants so path policies match the underlying package:
// "p [p.test]" → "p", "p.test" → "p", "p_test" → "p".
func NormalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// PathMatch reports whether the (normalized) package path falls under
// any of the given roots, where a root like "internal/core" matches
// the path segment-wise at any depth: "internal/core",
// "example.com/m/internal/core" and "internal/core/sub" all match,
// "internal/corex" does not.
func PathMatch(pkgPath string, roots []string) bool {
	path := NormalizePkgPath(pkgPath)
	for _, root := range roots {
		if path == root ||
			strings.HasSuffix(path, "/"+root) ||
			strings.HasPrefix(path, root+"/") ||
			strings.Contains(path, "/"+root+"/") {
			return true
		}
	}
	return false
}

// RootIdent returns the identifier at the base of an lvalue chain
// (x, x.f, x[i], (*x).f all root at x), or nil when the expression
// does not root at a plain identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
