// Facts: cross-package analysis state, modeled on go/analysis object
// facts. An analyzer computes a fact about a types.Object while
// analyzing the package that declares it (ExportObjectFact); when a
// dependent package is analyzed later — typically in another process
// under the `go vet -vettool` protocol — the fact is recovered from
// the producer's serialized output (ImportObjectFact). Facts are
// scoped per analyzer: bufown cannot see errclass facts.
//
// Serialization is JSON, not gob: the vetx files cmd/go shuttles
// between units are opaque to it, and JSON keeps them inspectable when
// debugging a cache-key mismatch. Objects are addressed by a
// simplified object path — `Name` for package-scope objects,
// `Recv.Name` for methods — which covers every fact this suite
// exports; objects that cannot be addressed (locals, fields) simply
// do not round-trip and must not carry exported facts.
package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is implemented by any analyzer-defined fact type. The marker
// method keeps arbitrary values from being exported by accident; the
// concrete type must also marshal to JSON (exported fields).
type Fact interface{ AFact() }

// FactRecord is the address-and-shape of one serialized fact, used for
// the vetx wire format and for the ETA_FACTS_LOG audit trail.
type FactRecord struct {
	Pkg      string          `json:"pkg"`      // normalized package path
	Obj      string          `json:"obj"`      // object path: "Name" or "Recv.Name"
	Analyzer string          `json:"analyzer"` // producing analyzer
	Type     string          `json:"type"`     // concrete fact type name
	Data     json.RawMessage `json:"data"`     // JSON of the fact value
}

func (r FactRecord) key() string {
	return r.Pkg + "\x00" + r.Obj + "\x00" + r.Analyzer + "\x00" + r.Type
}

// ObjectFact pairs a live types.Object with a fact exported for it
// during the current run.
type ObjectFact struct {
	Obj      types.Object
	Analyzer string
	Fact     Fact
}

// FactStore holds the facts visible to one compilation unit: those
// imported from dependency vetx files and those exported while
// analyzing the unit itself.
type FactStore struct {
	imported map[string]FactRecord // key() → record, from dependencies
	local    []ObjectFact          // exported during this run, in order
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{imported: make(map[string]FactRecord)}
}

// vetx wire format. Version guards future shape changes; decoders
// ignore files they do not understand (including the pre-facts
// "no facts\n" placeholder) rather than failing the build.
type vetxFile struct {
	Version int          `json:"version"`
	Facts   []FactRecord `json:"facts"`
}

// AddImported merges one dependency's serialized facts into the store.
// Undecodable input is ignored: a dependency built by an older tool
// must not break the unit, it just contributes no facts.
func (s *FactStore) AddImported(data []byte) {
	var f vetxFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != 1 {
		return
	}
	for _, r := range f.Facts {
		s.imported[r.key()] = r
	}
}

// Encode serializes the transitive fact closure — imported facts are
// re-exported alongside local ones so a unit's vetx is self-contained
// and dependents need only their direct deps' files. Output is
// deterministic (sorted) so identical inputs hash identically in the
// build cache.
func (s *FactStore) Encode() []byte {
	byKey := make(map[string]FactRecord, len(s.imported)+len(s.local))
	for k, r := range s.imported {
		byKey[k] = r
	}
	for _, of := range s.local {
		r, ok := recordOf(of)
		if !ok {
			continue // unaddressable object: local-only fact
		}
		byKey[r.key()] = r
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := vetxFile{Version: 1, Facts: make([]FactRecord, 0, len(keys))}
	for _, k := range keys {
		out.Facts = append(out.Facts, byKey[k])
	}
	data, err := json.Marshal(out)
	if err != nil {
		// Fact types are analyzer-defined structs; marshal failure is a
		// programming error, but corrupting the vetx would poison the
		// build cache, so degrade to an empty (valid) file.
		data, _ = json.Marshal(vetxFile{Version: 1})
	}
	return append(data, '\n')
}

// ImportedRecords returns the imported facts sorted by key, for the
// audit log and tests.
func (s *FactStore) ImportedRecords() []FactRecord {
	out := make([]FactRecord, 0, len(s.imported))
	for _, r := range s.imported {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// ExportedRecords returns the addressable facts exported during this
// run, sorted, for the audit log and tests.
func (s *FactStore) ExportedRecords() []FactRecord {
	var out []FactRecord
	for _, of := range s.local {
		if r, ok := recordOf(of); ok {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// ExportedFacts returns every fact exported during this run —
// including locals that do not serialize — for analysistest's
// `// want fact:"..."` assertions.
func (s *FactStore) ExportedFacts() []ObjectFact {
	return s.local
}

func recordOf(of ObjectFact) (FactRecord, bool) {
	obj := of.Obj
	if obj == nil || obj.Pkg() == nil {
		return FactRecord{}, false
	}
	path, ok := objPath(obj)
	if !ok {
		return FactRecord{}, false
	}
	data, err := json.Marshal(of.Fact)
	if err != nil {
		return FactRecord{}, false
	}
	return FactRecord{
		Pkg:      NormalizePkgPath(obj.Pkg().Path()),
		Obj:      path,
		Analyzer: of.Analyzer,
		Type:     factTypeName(of.Fact),
		Data:     data,
	}, true
}

// objPath addresses the objects this suite exports facts for:
// package-scope names and methods on package-scope named types.
func objPath(obj types.Object) (string, bool) {
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	return "", false
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// ExportObjectFact associates fact with obj for the current analyzer.
// obj must belong to the package under analysis; facts about imported
// objects belong to the unit that declares them.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || fact == nil || p.store == nil {
		return
	}
	if p.Pkg != nil && obj.Pkg() != nil && obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: %s is not declared in the package under analysis", p.Analyzer.Name, obj.Name()))
	}
	name := factTypeName(fact)
	for i, of := range p.store.local {
		if of.Obj == obj && of.Analyzer == p.Analyzer.Name && factTypeName(of.Fact) == name {
			p.store.local[i].Fact = fact
			return
		}
	}
	p.store.local = append(p.store.local, ObjectFact{Obj: obj, Analyzer: p.Analyzer.Name, Fact: fact})
}

// ImportObjectFact copies into fact (which must be a non-nil pointer)
// the fact of fact's concrete type previously exported for obj by this
// analyzer — in this run for local objects, or from a dependency's
// serialized facts for imported ones. It reports whether a fact was
// found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || fact == nil || p.store == nil {
		return false
	}
	name := factTypeName(fact)
	// Local first: covers the package under analysis, where objects
	// never appear in the imported table.
	for _, of := range p.store.local {
		if of.Obj == obj && of.Analyzer == p.Analyzer.Name && factTypeName(of.Fact) == name {
			dst := reflect.ValueOf(fact)
			src := reflect.ValueOf(of.Fact)
			if dst.Kind() == reflect.Pointer && src.Kind() == reflect.Pointer && dst.Type() == src.Type() {
				dst.Elem().Set(src.Elem())
				return true
			}
			return false
		}
	}
	if obj.Pkg() == nil || (p.Pkg != nil && obj.Pkg() == p.Pkg) {
		return false
	}
	path, ok := objPath(obj)
	if !ok {
		return false
	}
	r := FactRecord{
		Pkg:      NormalizePkgPath(obj.Pkg().Path()),
		Obj:      path,
		Analyzer: p.Analyzer.Name,
		Type:     name,
	}
	stored, ok := p.store.imported[r.key()]
	if !ok {
		return false
	}
	return json.Unmarshal(stored.Data, fact) == nil
}
