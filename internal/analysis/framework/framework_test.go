package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestNormalizePkgPath(t *testing.T) {
	cases := map[string]string{
		"example.com/m/internal/core":                                    "example.com/m/internal/core",
		"example.com/m/internal/core [example.com/m/internal/core.test]": "example.com/m/internal/core",
		"example.com/m/internal/core.test":                               "example.com/m/internal/core",
		"example.com/m/internal/core_test":                               "example.com/m/internal/core",
	}
	for in, want := range cases {
		if got := NormalizePkgPath(in); got != want {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPathMatch(t *testing.T) {
	roots := []string{"internal/power"}
	for path, want := range map[string]bool{
		"internal/power":                  true,
		"example.com/m/internal/power":    true,
		"internal/power/sub":              true,
		"example.com/m/internal/netpower": false,
		"internal/powerx":                 false,
	} {
		if got := PathMatch(path, roots); got != want {
			t.Errorf("PathMatch(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestAllowDirective verifies same-line and preceding-line suppression
// and that unrelated analyzers stay unsuppressed.
func TestAllowDirective(t *testing.T) {
	const src = `package p

func f() {
	g() // flagged: no directive
	//lint:allow demo preceding-line form
	g()
	g() //lint:allow demo same-line form
	g() //lint:allow other wrong analyzer
}

func g() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	demo := &Analyzer{
		Name: "demo",
		Doc:  "flags every call to g",
		Run: func(pass *Pass) error {
			ast.Inspect(pass.Files[0], func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "g" {
						pass.Reportf(c.Pos(), "call to g")
					}
				}
				return true
			})
			return nil
		},
	}
	diags, err := Run(fset, []*ast.File{file}, nil, nil, []*Analyzer{demo}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, fset.Position(d.Pos).Line)
	}
	want := []int{4, 8}
	if len(lines) != len(want) {
		t.Fatalf("diagnostics on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("diagnostics on lines %v, want %v", lines, want)
		}
	}
}
