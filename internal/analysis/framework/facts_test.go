package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

type demoFact struct {
	Params []int
}

func (demoFact) AFact() {}

func typecheck(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{file}, pkg, info
}

// TestFactRoundTrip exports a fact for a package-scope function and a
// method, serializes the store, and re-imports both from the wire form
// as a dependent unit would.
func TestFactRoundTrip(t *testing.T) {
	const src = `package a

type T struct{}

func (T) M() {}

func F() {}
`
	fset, files, pkg, info := typecheck(t, "example.com/a", src)

	producer := NewFactStore()
	exporter := &Analyzer{
		Name: "demo",
		Doc:  "exports demo facts",
		Run: func(pass *Pass) error {
			fObj := pass.Pkg.Scope().Lookup("F")
			pass.ExportObjectFact(fObj, &demoFact{Params: []int{0, 2}})
			tObj := pass.Pkg.Scope().Lookup("T").(*types.TypeName)
			m, _, _ := types.LookupFieldOrMethod(tObj.Type(), true, pass.Pkg, "M")
			pass.ExportObjectFact(m, &demoFact{Params: []int{1}})
			// Round-trip within the same run must hit the local table.
			var got demoFact
			if !pass.ImportObjectFact(fObj, &got) || len(got.Params) != 2 {
				t.Errorf("local ImportObjectFact = %v, want Params [0 2]", got)
			}
			return nil
		},
	}
	if _, err := Run(fset, files, pkg, info, []*Analyzer{exporter}, producer); err != nil {
		t.Fatal(err)
	}

	recs := producer.ExportedRecords()
	if len(recs) != 2 {
		t.Fatalf("ExportedRecords = %v, want 2 entries", recs)
	}
	if recs[0].Obj != "F" || recs[1].Obj != "T.M" {
		t.Fatalf("object paths = %q, %q; want F, T.M", recs[0].Obj, recs[1].Obj)
	}

	wire := producer.Encode()
	if !strings.Contains(string(wire), `"analyzer":"demo"`) {
		t.Fatalf("encoded vetx missing analyzer field: %s", wire)
	}

	// A dependent unit loads the producer's vetx and resolves facts for
	// the (now imported) objects.
	consumer := NewFactStore()
	consumer.AddImported(wire)
	pass := &Pass{
		Analyzer: exporter,
		Pkg:      types.NewPackage("example.com/b", "b"),
		store:    consumer,
	}
	var got demoFact
	if !pass.ImportObjectFact(pkg.Scope().Lookup("F"), &got) {
		t.Fatal("ImportObjectFact(F) found nothing after round-trip")
	}
	if len(got.Params) != 2 || got.Params[0] != 0 || got.Params[1] != 2 {
		t.Fatalf("imported fact = %+v, want Params [0 2]", got)
	}

	// Wrong analyzer name must not see the fact.
	other := &Pass{Analyzer: &Analyzer{Name: "other"}, Pkg: pass.Pkg, store: consumer}
	if other.ImportObjectFact(pkg.Scope().Lookup("F"), &demoFact{}) {
		t.Fatal("fact leaked across analyzer namespaces")
	}
}

// TestAddImportedTolerant: pre-facts vetx placeholders and garbage must
// be ignored, not fatal — older tool output sits in the build cache.
func TestAddImportedTolerant(t *testing.T) {
	s := NewFactStore()
	s.AddImported([]byte("no facts\n"))
	s.AddImported([]byte(`{"version":99,"facts":[{"pkg":"p","obj":"O","analyzer":"a","type":"T","data":{}}]}`))
	s.AddImported(nil)
	if n := len(s.ImportedRecords()); n != 0 {
		t.Fatalf("tolerant decode admitted %d records, want 0", n)
	}
}
