// Package deadlinefix exercises deadlineio under its enforcement path
// (internal/proto): naked Read/Write on unarmed conns, flow-insensitive
// arming, discipline through helpers, wraps, and stores.
package deadlinefix

import (
	"net"
	"time"
)

func readNaked(c net.Conn, p []byte) (int, error) {
	return c.Read(p) // want `Read on net.Conn c with no deadline armed`
}

func writeNaked(c net.Conn, p []byte) (int, error) {
	return c.Write(p) // want `Write on net.Conn c with no deadline armed`
}

func readArmed(c net.Conn, p []byte) (int, error) { // want fact:`readArmed:deadline\(\[0\]\)`
	c.SetReadDeadline(time.Now().Add(time.Second))
	return c.Read(p)
}

// writeGuarded arms under a config guard: arming is flow-insensitive,
// so the conditional still counts.
func writeGuarded(c net.Conn, p []byte, stall time.Duration) (int, error) { // want fact:`writeGuarded:deadline\(\[0\]\)`
	if stall > 0 {
		c.SetWriteDeadline(time.Now().Add(stall))
	}
	return c.Write(p)
}

// pump arms before its read loop: deadline-disciplined for param 0.
func pump(c net.Conn, p []byte) { // want fact:`pump:deadline\(\[0\]\)`
	c.SetDeadline(time.Now().Add(time.Minute))
	for {
		if _, err := c.Read(p); err != nil {
			return
		}
	}
}

// viaPump forwards to a disciplined helper, which makes it
// disciplined in turn (fixpoint).
func viaPump(c net.Conn, p []byte) { // want fact:`viaPump:deadline\(\[0\]\)`
	pump(c, p)
}

// sink never arms, absorbs, or blocks: housekeeping only.
func sink(c net.Conn) {
	_ = c.LocalAddr()
}

func viaSink(c net.Conn) {
	sink(c) // want `net.Conn c passed to sink with no deadline armed`
}

func viaSinkArmed(c net.Conn) { // want fact:`viaSinkArmed:deadline\(\[0\]\)`
	c.SetDeadline(time.Now().Add(time.Second))
	sink(c)
}

type counted struct {
	net.Conn
	n int
}

// wrap hands the conn to a wrapper type: an ownership transfer, not a
// blocking use.
func wrap(c net.Conn) net.Conn { // want fact:`wrap:deadline\(\[0\]\)`
	return &counted{Conn: c}
}

type holder struct{ c net.Conn }

// adopt stores the conn into a longer-lived holder: also a transfer.
func (h *holder) adopt(c net.Conn) { // want fact:`adopt:deadline\(\[0\]\)`
	h.c = c
}

// gather appends conns into a slice: append is a store, not a
// blocking use.
func gather(cs []net.Conn, c net.Conn) []net.Conn { // want fact:`gather:deadline\(\[1\]\)`
	return append(cs, c)
}

// dialAndRead: locally created conns are roots too.
func dialAndRead(p []byte) error {
	c, err := net.Dial("tcp", "localhost:0")
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Read(p) // want `Read on net.Conn c with no deadline armed`
	return err
}
