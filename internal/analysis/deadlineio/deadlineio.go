// Package deadlineio enforces the stall-detection discipline on the
// data plane (internal/proto, DESIGN §6): a raw net.Conn must never
// block in Read or Write without a deadline armed. A dead peer on an
// undeadlined conn parks the goroutine forever — the stall watchdog
// only sees progress counters, so a read that never returns never
// trips it.
//
// A conn-typed variable is "armed" once any SetDeadline /
// SetReadDeadline / SetWriteDeadline call on it appears in the same
// function (flow-insensitive: arming under a config guard such as
// `if cfg.StallTimeout > 0` counts). Unarmed conns may not:
//
//   - call Read or Write directly, or
//   - be passed (as a bare argument) to a function that is not itself
//     deadline-disciplined for that parameter.
//
// Wrapping a conn in a composite literal (progressConn{Conn: c}),
// storing it into a field, or returning it is an ownership hand-off,
// not a blocking use, and is never flagged.
//
// A function is deadline-disciplined for a net.Conn parameter when its
// body arms a deadline on it, absorbs it (composite-literal wrap or
// non-local store), or forwards it to another disciplined function —
// computed as an in-package fixpoint and exported as DisciplinedFact
// so the property crosses package boundaries through the vet facts
// channel.
package deadlineio

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Analyzer is the deadlineio instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "deadlineio",
	Doc:  "net.Conn Read/Write in internal/proto must have a deadline armed or flow through deadline-disciplined helpers (stall watchdog, DESIGN §6)",
	Run:  run,
}

// DisciplinedFact records which net.Conn parameters of a function are
// deadline-disciplined: armed, absorbed, or forwarded to another
// disciplined function.
type DisciplinedFact struct {
	Params []int
}

func (*DisciplinedFact) AFact() {}

func (f *DisciplinedFact) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = fmt.Sprint(p)
	}
	return "deadline([" + strings.Join(parts, " ") + "])"
}

// protoRoots scopes enforcement to the data plane.
var protoRoots = []string{"internal/proto"}

func run(pass *framework.Pass) error {
	if pass.TypesInfo == nil || pass.Pkg == nil {
		return nil
	}
	if !framework.PathMatch(pass.Pkg.Path(), protoRoots) {
		return nil
	}
	a := &analysis{pass: pass, funcs: make(map[types.Object]*funcInfo)}
	a.collect()
	a.fixpoint()
	a.exportFacts()
	for _, fi := range a.funcs {
		if fi.decl.Body != nil && !a.isTestFile(fi.decl) {
			a.check(fi)
		}
	}
	return nil
}

type funcInfo struct {
	decl *ast.FuncDecl
	obj  types.Object
	// connParams maps a net.Conn-typed parameter object to its index.
	connParams map[types.Object]int
	// disciplined marks parameter indices proven safe to hand a conn.
	disciplined map[int]bool
}

type analysis struct {
	pass  *framework.Pass
	funcs map[types.Object]*funcInfo
}

// isNetConn reports whether t is exactly the net.Conn interface type.
func isNetConn(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Conn" && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

func (a *analysis) isTestFile(fd *ast.FuncDecl) bool {
	// Tests dial loopback peers whose liveness the harness controls;
	// the discipline protects production paths.
	return strings.HasSuffix(a.pass.Fset.Position(fd.Pos()).Filename, "_test.go")
}

func (a *analysis) collect() {
	info := a.pass.TypesInfo
	for _, f := range a.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &funcInfo{
				decl:        fd,
				obj:         obj,
				connParams:  make(map[types.Object]int),
				disciplined: make(map[int]bool),
			}
			idx := 0
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if p := info.Defs[name]; p != nil && isNetConn(p.Type()) {
							fi.connParams[p] = idx
						}
						idx++
					}
				}
			}
			a.funcs[obj] = fi
		}
	}
}

// fixpoint propagates discipline: a conn parameter is disciplined if
// the body arms, absorbs, or forwards it to a disciplined callee.
// Forwarding makes the relation recursive, hence the iteration.
func (a *analysis) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			if fi.decl.Body == nil {
				continue
			}
			for p, idx := range fi.connParams {
				if fi.disciplined[idx] {
					continue
				}
				if a.absorbs(fi, p) {
					fi.disciplined[idx] = true
					changed = true
				}
			}
		}
	}
}

// absorbs reports whether fi's body arms a deadline on p, wraps or
// stores it, or forwards it to a disciplined callee parameter.
func (a *analysis) absorbs(fi *funcInfo, p types.Object) bool {
	info := a.pass.TypesInfo
	found := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if isDeadlineMethod(sel.Sel.Name) && identObj(info, sel.X) == p {
					found = true
					return false
				}
			}
			// append(xs, p) stores the conn into a slice: a hand-off.
			if b, ok := calleeObj(info, v).(*types.Builtin); ok && b.Name() == "append" {
				for _, arg := range v.Args[1:] {
					if identObj(info, arg) == p {
						found = true
						return false
					}
				}
			}
			for i, arg := range v.Args {
				if identObj(info, arg) == p && a.calleeDisciplined(v, i) {
					found = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if identObj(info, val) == p {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if identObj(info, rhs) != p {
					continue
				}
				var lhs ast.Expr
				if len(v.Lhs) == len(v.Rhs) {
					lhs = v.Lhs[i]
				} else if len(v.Lhs) > 0 {
					lhs = v.Lhs[0]
				}
				if lhs != nil && isNonLocalStore(info, lhs) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isNonLocalStore reports whether lhs writes outside the function's
// locals: a field, an element, a dereference, or a package-level
// variable. Such a store transfers ownership to a longer-lived holder
// that is responsible for the conn's deadlines.
func isNonLocalStore(info *types.Info, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Defs[v]
		if obj == nil {
			obj = info.Uses[v]
		}
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

func isDeadlineMethod(name string) bool {
	switch name {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		return true
	}
	return false
}

// identObj resolves a bare identifier expression to its object.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// calleeDisciplined reports whether the function called by call is
// deadline-disciplined for the parameter receiving argument argIdx.
func (a *analysis) calleeDisciplined(call *ast.CallExpr, argIdx int) bool {
	obj := calleeObj(a.pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	if fi, ok := a.funcs[obj]; ok {
		return fi.disciplined[argIdx]
	}
	var f DisciplinedFact
	if a.pass.ImportObjectFact(obj, &f) {
		for _, p := range f.Params {
			if p == argIdx {
				return true
			}
		}
	}
	return false
}

func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

func (a *analysis) exportFacts() {
	for _, fi := range a.funcs {
		var params []int
		for _, idx := range fi.connParams {
			if fi.disciplined[idx] {
				params = append(params, idx)
			}
		}
		if len(params) > 0 {
			sort.Ints(params)
			a.pass.ExportObjectFact(fi.obj, &DisciplinedFact{Params: params})
		}
	}
}

// check flags blocking uses of unarmed conns in one function. Roots
// are every function-scope variable of static type net.Conn (params
// and locals alike); arming is flow-insensitive within the function.
func (a *analysis) check(fi *funcInfo) {
	info := a.pass.TypesInfo
	armed := make(map[types.Object]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isDeadlineMethod(sel.Sel.Name) {
			if obj := identObj(info, sel.X); obj != nil && isNetConn(obj.Type()) {
				armed[obj] = true
			}
		}
		return true
	})
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := identObj(info, sel.X); obj != nil && isConnRoot(obj) && !armed[obj] {
				if sel.Sel.Name == "Read" || sel.Sel.Name == "Write" {
					a.pass.Reportf(call.Pos(), "%s on net.Conn %s with no deadline armed: a dead peer blocks this goroutine forever and the stall watchdog never fires; call SetDeadline first or route through a deadline-disciplined helper (DESIGN §6)", sel.Sel.Name, obj.Name())
				}
			}
		}
		// Builtins never block on a conn; append in particular is a
		// store into a slice, an ownership hand-off.
		if _, ok := calleeObj(info, call).(*types.Builtin); ok {
			return true
		}
		for i, arg := range call.Args {
			obj := identObj(info, arg)
			if obj == nil || !isConnRoot(obj) || armed[obj] {
				continue
			}
			if a.calleeDisciplined(call, i) {
				continue
			}
			// Arming methods and net.Conn housekeeping on the conn
			// itself were handled above; this is a bare hand-off.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && identObj(info, sel.X) == obj {
				continue
			}
			a.pass.Reportf(arg.Pos(), "net.Conn %s passed to %s with no deadline armed and the callee is not deadline-disciplined: arm a deadline first or absorb the conn in the callee (DESIGN §6)", obj.Name(), calleeName(call))
		}
		return true
	})
}

// isConnRoot reports whether obj is a function-scope net.Conn variable
// (parameter or local).
func isConnRoot(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false // package-level conns are another analyzer's problem
	}
	return isNetConn(v.Type())
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return types.ExprString(f)
	}
	return "callee"
}
