package deadlineio_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/deadlineio"
)

// TestDeadlineIO runs under an internal/proto fixture path, where the
// analyzer is active.
func TestDeadlineIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), deadlineio.Analyzer, "internal/proto/deadlinefix")
}
