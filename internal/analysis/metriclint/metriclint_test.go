package metriclint_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/metriclint"
)

func TestMetricLint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metriclint.Analyzer, "metriclintfix")
}
