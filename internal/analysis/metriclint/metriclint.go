// Package metriclint enforces the obs telemetry hygiene rules
// (DESIGN.md §8) at the call sites of the obs API — matched by
// receiver type name (Registry, Family, Log), so fixtures need no
// imports and the rules survive the package being mocked:
//
//   - metric/event names (Registry.Counter/Gauge/Histogram/Family,
//     Log.Emit's type, and event keys) must be compile-time constant
//     snake_case strings: the registry is register-once, and a name
//     built at runtime either explodes the registry or aliases two
//     meanings onto one series.
//   - Family.With label values must be bounded: a constant, a named
//     string type (an enum by convention), a value returned by a
//     helper whose every return is bounded (exported as BoundedFact),
//     or a parameter of an unexported function all of whose in-package
//     call sites pass bounded values. Anything else — err.Error(),
//     file names, formatted strings — is unbounded cardinality.
//
// The boundedness of helper returns crosses package boundaries via
// BoundedFact; parameter boundedness stays in-package because external
// callers of an exported function are invisible at analysis time.
//
// internal/obs itself is exempt: the implementation and its tests
// construct names dynamically on purpose.
package metriclint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Analyzer is the metriclint instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "metriclint",
	Doc:  "obs hygiene: constant snake_case metric/event names, bounded label values (register-once, bounded cardinality)",
	Run:  run,
}

// BoundedFact marks a function whose first result is always drawn from
// a bounded set of strings (every return is constant, a named string
// type, or itself bounded).
type BoundedFact struct{}

func (*BoundedFact) AFact() {}

func (*BoundedFact) String() string { return "bounded" }

var snakeRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registryMethods maps obs receiver type name → method names whose
// leading string arguments are metric/event names.
var nameArgCounts = map[string]map[string]int{
	"Registry": {"Counter": 1, "Gauge": 1, "Histogram": 1, "Family": 2},
	"Log":      {"Emit": 1},
}

func run(pass *framework.Pass) error {
	if pass.TypesInfo == nil || pass.Pkg == nil {
		return nil
	}
	if framework.PathMatch(pass.Pkg.Path(), []string{"internal/obs"}) {
		return nil
	}
	a := &analysis{
		pass:      pass,
		assigns:   make(map[types.Object][]ast.Expr),
		opaque:    make(map[types.Object]bool),
		funcDecls: make(map[types.Object]*ast.FuncDecl),
		funcMemo:  make(map[types.Object]int),
	}
	a.collect()
	a.exportBoundedFacts()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method := a.obsMethod(call)
			if recv == "" {
				return true
			}
			switch {
			case nameArgCounts[recv][method] > 0:
				a.checkNames(call, recv, method)
			case recv == "Family" && method == "With":
				a.checkWith(call)
			}
			return true
		})
	}
	return nil
}

type analysis struct {
	pass *framework.Pass
	// assigns records every value source of a variable or parameter:
	// assignment RHS for locals, call-site arguments for parameters of
	// unexported functions. opaque marks objects with sources the
	// analysis cannot enumerate (exported-function parameters,
	// multi-value assignments, range variables).
	assigns   map[types.Object][]ast.Expr
	opaque    map[types.Object]bool
	funcDecls map[types.Object]*ast.FuncDecl
	funcMemo  map[types.Object]int // 0 unknown, 1 computing/false, 2 bounded
}

func (a *analysis) collect() {
	info := a.pass.TypesInfo
	for _, f := range a.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj := info.Defs[fd.Name]; obj != nil {
				a.funcDecls[obj] = fd
				// Parameters of exported functions have callers this
				// unit cannot see.
				if fd.Name.IsExported() && fd.Type.Params != nil {
					for _, field := range fd.Type.Params.List {
						for _, name := range field.Names {
							if p := info.Defs[name]; p != nil {
								a.opaque[p] = true
							}
						}
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if len(v.Lhs) == len(v.Rhs) {
					for i, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := defOrUse(info, id); obj != nil {
								a.assigns[obj] = append(a.assigns[obj], v.Rhs[i])
							}
						}
					}
				} else {
					for _, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := defOrUse(info, id); obj != nil {
								a.opaque[obj] = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range v.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if i < len(v.Values) {
						a.assigns[obj] = append(a.assigns[obj], v.Values[i])
					} else if len(v.Values) > 0 {
						a.opaque[obj] = true // multi-value init
					}
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{v.Key, v.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						if obj := defOrUse(info, id); obj != nil {
							a.opaque[obj] = true
						}
					}
				}
			case *ast.CallExpr:
				a.recordCallArgs(v)
			case *ast.Ident:
				// A function referenced outside call position may be
				// invoked with arguments we cannot see.
				if obj := info.Uses[v]; obj != nil {
					if fd, ok := a.funcDecls[obj]; ok && !inCallPosition(f, v) {
						a.markParamsOpaque(fd)
					}
				}
			}
			return true
		})
	}
}

func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// recordCallArgs maps call-site arguments onto the parameters of
// in-package unexported functions, making each argument a value source
// of the parameter.
func (a *analysis) recordCallArgs(call *ast.CallExpr) {
	obj := a.calleeObj(call)
	if obj == nil {
		return
	}
	fd, ok := a.funcDecls[obj]
	if !ok || fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	var params []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, a.pass.TypesInfo.Defs[name])
		}
	}
	if call.Ellipsis.IsValid() {
		a.markParamsOpaque(fd)
		return
	}
	for i, arg := range call.Args {
		if i >= len(params) {
			break // variadic tail: unchecked values beyond named params
		}
		if params[i] != nil {
			a.assigns[params[i]] = append(a.assigns[params[i]], arg)
		}
	}
	if len(call.Args) < len(params) {
		for _, p := range params[len(call.Args):] {
			if p != nil {
				a.opaque[p] = true
			}
		}
	}
}

func (a *analysis) markParamsOpaque(fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if p := a.pass.TypesInfo.Defs[name]; p != nil {
				a.opaque[p] = true
			}
		}
	}
}

// inCallPosition reports whether id is the (possibly selected) callee
// of a call expression within file f.
func inCallPosition(f *ast.File, id *ast.Ident) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun == id {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel == id {
				found = true
			}
		}
		return !found
	})
	return found
}

func (a *analysis) calleeObj(call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return a.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return a.pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}

// obsMethod resolves call to (receiver type name, method name) when
// the receiver is a named type called Registry, Family, or Log.
func (a *analysis) obsMethod(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection := a.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", ""
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", ""
	}
	switch name := named.Obj().Name(); name {
	case "Registry", "Family", "Log":
		return name, sel.Sel.Name
	}
	return "", ""
}

// checkNames validates the leading name arguments of a registry/event
// call, and for Emit also the keys of the kv pairs.
func (a *analysis) checkNames(call *ast.CallExpr, recv, method string) {
	if recv == "Log" { // Emit
		if len(call.Args) > 0 {
			a.checkNameExpr(call.Args[0], "event type")
		}
		if !call.Ellipsis.IsValid() {
			// kv pairs follow the type: keys sit at even offsets.
			for i := 1; i < len(call.Args); i += 2 {
				a.checkNameExpr(call.Args[i], "event key")
			}
		}
		return
	}
	if len(call.Args) > 0 {
		a.checkNameExpr(call.Args[0], "metric name")
	}
	if method == "Family" && len(call.Args) > 1 {
		a.checkNameExpr(call.Args[1], "label key")
	}
}

// checkNameExpr requires e to be a constant snake_case string, or a
// variable/parameter all of whose value sources are.
func (a *analysis) checkNameExpr(e ast.Expr, what string) {
	state, bad := a.nameState(e, make(map[types.Object]bool))
	switch state {
	case nameDynamic:
		a.pass.Reportf(e.Pos(), "%s must be a compile-time constant: dynamic names break register-once and explode the registry (DESIGN §8)", what)
	case nameNotSnake:
		a.pass.Reportf(e.Pos(), "%s %q is not snake_case (want ^[a-z][a-z0-9]*(_[a-z0-9]+)*$, DESIGN §8)", what, bad)
	}
}

const (
	nameOK = iota
	nameNotSnake
	nameDynamic
)

// nameState classifies e as a metric/event name; for nameNotSnake the
// second result is the offending constant value.
func (a *analysis) nameState(e ast.Expr, seen map[types.Object]bool) (int, string) {
	e = ast.Unparen(e)
	if tv, ok := a.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() != constant.String {
			return nameDynamic, ""
		}
		if s := constant.StringVal(tv.Value); !snakeRe.MatchString(s) {
			return nameNotSnake, s
		}
		return nameOK, ""
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nameDynamic, ""
	}
	obj := a.pass.TypesInfo.Uses[id]
	if obj == nil || a.opaque[obj] || seen[obj] {
		return nameDynamic, ""
	}
	seen[obj] = true
	srcs := a.assigns[obj]
	if len(srcs) == 0 {
		return nameDynamic, ""
	}
	worst, worstVal := nameOK, ""
	for _, src := range srcs {
		if s, v := a.nameState(src, seen); s > worst {
			worst, worstVal = s, v
		}
	}
	return worst, worstVal
}

// checkWith validates a Family.With label value for boundedness.
func (a *analysis) checkWith(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	if !a.bounded(call.Args[0], make(map[types.Object]bool)) {
		a.pass.Reportf(call.Args[0].Pos(), "label value is unbounded: pass a constant, a named string type, or a value from a bounded helper — per-value series make cardinality explode (DESIGN §8)")
	}
}

// bounded reports whether e always evaluates to a value from a
// compile-time-enumerable set.
func (a *analysis) bounded(e ast.Expr, seen map[types.Object]bool) bool {
	e = ast.Unparen(e)
	info := a.pass.TypesInfo
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return true
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		// Conversion whose operand is a named string type: the named
		// type is an enum by convention, so its value set is bounded.
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
			if len(v.Args) == 1 {
				if named, ok := info.TypeOf(v.Args[0]).(*types.Named); ok {
					if b, ok := named.Underlying().(*types.Basic); ok && b.Kind() == types.String {
						return true
					}
				}
			}
			return false
		}
		obj := a.calleeObj(v)
		if obj == nil {
			return false
		}
		if fd, ok := a.funcDecls[obj]; ok {
			return a.boundedFunc(obj, fd, seen)
		}
		return a.pass.ImportObjectFact(obj, &BoundedFact{})
	case *ast.Ident:
		obj := info.Uses[v]
		if obj == nil || a.opaque[obj] || seen[obj] {
			return false
		}
		seen[obj] = true
		srcs := a.assigns[obj]
		if len(srcs) == 0 {
			return false
		}
		for _, src := range srcs {
			if !a.bounded(src, seen) {
				return false
			}
		}
		return true
	}
	return false
}

// boundedFunc reports whether every return of fd's first result is
// bounded. Cycles resolve pessimistically.
func (a *analysis) boundedFunc(obj types.Object, fd *ast.FuncDecl, seen map[types.Object]bool) bool {
	switch a.funcMemo[obj] {
	case 1:
		return false
	case 2:
		return true
	}
	a.funcMemo[obj] = 1
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() < 1 {
		return false
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	if fd.Body == nil {
		return false
	}
	allBounded := true
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if !allBounded {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // its returns are not fd's
		case *ast.ReturnStmt:
			if len(v.Results) == 0 {
				allBounded = false // naked return: sources untracked
				return false
			}
			if !a.bounded(v.Results[0], seen) {
				allBounded = false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	if allBounded {
		a.funcMemo[obj] = 2
	}
	return allBounded
}

// exportBoundedFacts publishes BoundedFact for every function whose
// string result is provably bounded, for cross-package consumers.
func (a *analysis) exportBoundedFacts() {
	for obj, fd := range a.funcDecls {
		if a.boundedFunc(obj, fd, make(map[types.Object]bool)) {
			a.pass.ExportObjectFact(obj, &BoundedFact{})
		}
	}
}
