// Package metriclintfix exercises metriclint's name-hygiene and
// label-cardinality rules. The obs API surface is mirrored locally:
// the analyzer matches by receiver type name (Registry, Family, Log),
// so the fixture needs no imports.
package metriclintfix

type Counter struct{}

func (c *Counter) Inc() {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter                      { return nil }
func (r *Registry) Gauge(name string) *Counter                        { return nil }
func (r *Registry) Histogram(name string, bounds ...float64) *Counter { return nil }
func (r *Registry) Family(name, label string) *Family                 { return nil }

type Family struct{}

func (f *Family) With(value string) *Counter { return nil }

type Log struct{}

func (l *Log) Emit(typ string, kv ...any) {}

// Kind is a named string type: values are an enum by convention, so a
// conversion from it is a bounded label value.
type Kind string

const evRetry = "retry_scheduled"

func names(r *Registry, dyn string) {
	r.Counter("bytes_total")                    // constant snake_case: ok
	r.Gauge("inflight")                         // single word: ok
	r.Histogram("rtt_seconds", 0.01, 0.1, 1)    // bounds unchecked: ok
	r.Family("retries_by_cause", "cause")       // name and label both checked: ok
	r.Counter("BytesTotal")                     // want `metric name "BytesTotal" is not snake_case`
	r.Counter("bytes-total")                    // want `metric name "bytes-total" is not snake_case`
	r.Family("faults", "Kind")                  // want `label key "Kind" is not snake_case`
	r.Counter(dyn)                              // want `metric name must be a compile-time constant`
	r.Counter("prefix_" + dyn)                  // want `metric name must be a compile-time constant`
	r.Counter("prefix_" + "suffix")             // constant folding: ok
	name := "queued_total"
	r.Counter(name) // local var with only constant snake sources: ok
}

// counter is an unexported helper: every in-package call site passes a
// constant snake_case name, so the forwarded parameter is clean.
func counter(r *Registry, name string) *Counter {
	return r.Counter(name)
}

// badCounter is fed a non-snake constant at a call site below, so the
// registry call inside the helper is flagged.
func badCounter(r *Registry, name string) *Counter {
	return r.Counter(name) // want `metric name "CamelCase" is not snake_case`
}

func useHelpers(r *Registry) {
	counter(r, "blocks_total")
	counter(r, "acks_total")
	badCounter(r, "CamelCase")
}

// Exported returns are invisible to in-package callers, so a name
// forwarded through an exported function cannot be proven constant.
func RegisterAny(r *Registry, name string) *Counter {
	return r.Counter(name) // want `metric name must be a compile-time constant`
}

// causeOf returns only compile-time constants, so it is a bounded
// source for label values.
func causeOf(err error) string { // want fact:`causeOf:bounded`
	if err == nil {
		return "none"
	}
	return "transport"
}

// rawMessage forwards arbitrary text: unbounded.
func rawMessage(err error) string {
	return err.Error()
}

func labels(f *Family, err error, k Kind, user string) {
	f.With("stall")          // constant: ok
	f.With(string(k))        // named string type conversion: ok
	f.With(causeOf(err))     // bounded helper: ok
	f.With(rawMessage(err))  // want `label value is unbounded`
	f.With(user)             // want `label value is unbounded`
	f.With(string([]byte{})) // want `label value is unbounded`
	cause := causeOf(err)
	f.With(cause) // local var with bounded sources: ok
}

func events(l *Log, sid int, remote string, kv []any) {
	l.Emit("channel_dialed", "sid", sid, "remote", remote) // ok
	l.Emit(evRetry, "attempt", 1)                          // named constant: ok
	l.Emit("BadType")                                      // want `event type "BadType" is not snake_case`
	l.Emit("ok_event", "BadKey", 1)                        // want `event key "BadKey" is not snake_case`
	l.Emit("ok_event", remote, 1)                          // want `event key must be a compile-time constant`
	l.Emit("spread_event", kv...)                          // spread kv: keys unverifiable, skipped
}
