// Package errclass enforces the retry-path error taxonomy (DESIGN.md
// §9.3): errors are classified with errors.Is/As against typed
// sentinels (ErrStalled, ErrChecksumMismatch, net timeouts), never by
// identity or by their rendered text. Three rules:
//
//   - ==/!= against a sentinel: `err == io.EOF` misses every wrapped
//     error (`fmt.Errorf("...: %w", io.EOF)` compares unequal), so the
//     retry bookkeeping silently misclassifies the cause. The same
//     applies to `switch err { case ErrStalled: }`.
//   - string matching on err.Error(): comparing or substring-searching
//     the rendered message couples control flow to human-readable text
//     that wrapping, localization or a refactor will change.
//   - non-%w wrapping on retry paths (internal/proto): an error-typed
//     argument formatted with %v/%s strips the chain, so downstream
//     errors.Is — and therefore causeOf's stall/checksum/transport
//     split — stops seeing the sentinel.
//
// The analyzer exports a SentinelFact for every package-scope variable
// of error type, so dependent packages recognize sentinels declared
// upstream through the vet facts channel.
package errclass

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/didclab/eta/internal/analysis/framework"
)

// Analyzer is the errclass instance wired into cmd/vettool.
var Analyzer = &framework.Analyzer{
	Name: "errclass",
	Doc:  "classify errors with errors.Is/As against typed sentinels, not ==, err.Error() matching, or chain-stripping %v wraps",
	Run:  run,
}

// SentinelFact marks a package-scope variable of error type: a value
// other packages will compare against and must do so via errors.Is.
type SentinelFact struct{}

func (*SentinelFact) AFact() {}

func (*SentinelFact) String() string { return "sentinel" }

// retryRoots scopes the %w rule to the data plane, where causeOf's
// errors.Is classification decides retry budgets.
var retryRoots = []string{"internal/proto"}

func run(pass *framework.Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	exportSentinels(pass)
	inRetry := pass.Pkg != nil && framework.PathMatch(pass.Pkg.Path(), retryRoots)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, v)
			case *ast.SwitchStmt:
				checkSwitch(pass, v)
			case *ast.CallExpr:
				checkStringsMatch(pass, v)
				if inRetry {
					checkWrap(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

// exportSentinels publishes a fact for every package-scope error
// variable so dependents can identify them without re-deriving type
// information.
func exportSentinels(pass *framework.Pass) {
	if pass.Pkg == nil {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		if implementsError(obj.Type()) {
			pass.ExportObjectFact(obj, &SentinelFact{})
		}
	}
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// sentinelObj resolves e to a package-scope error variable, consulting
// imported SentinelFacts first and falling back to type information
// for packages vetted without facts (e.g. a warm cache from an older
// tool).
func sentinelObj(pass *framework.Pass, e ast.Expr) types.Object {
	var obj types.Object
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[v]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[v.Sel]
	}
	vr, ok := obj.(*types.Var)
	if !ok || vr.Pkg() == nil || vr.Parent() != vr.Pkg().Scope() {
		return nil
	}
	if pass.ImportObjectFact(vr, &SentinelFact{}) {
		return vr
	}
	if implementsError(vr.Type()) {
		return vr
	}
	return nil
}

func checkBinary(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	// err.Error() text comparison?
	if isErrorCall(pass, be.X) || isErrorCall(pass, be.Y) {
		pass.Reportf(be.Pos(), "don't string-match err.Error(); classify with errors.Is/As against typed sentinels (DESIGN §9.3)")
		return
	}
	// identity comparison against a sentinel?
	if isNil(pass, be.X) || isNil(pass, be.Y) {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if s := sentinelObj(pass, side); s != nil {
			pass.Reportf(be.Pos(), "compare errors with errors.Is(err, %s), not %s: wrapped causes on the retry path would miss (DESIGN §9.3)", s.Name(), be.Op)
			return
		}
	}
}

func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if isErrorCall(pass, sw.Tag) {
		pass.Reportf(sw.Tag.Pos(), "don't string-match err.Error(); classify with errors.Is/As against typed sentinels (DESIGN §9.3)")
		return
	}
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil || !implementsError(tagType) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelObj(pass, e); s != nil {
				pass.Reportf(e.Pos(), "compare errors with errors.Is(err, %s), not a switch case: wrapped causes on the retry path would miss (DESIGN §9.3)", s.Name())
			}
		}
	}
}

// isErrorCall reports whether e is a call of the error interface's
// Error method.
func isErrorCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	return recvType != nil && implementsError(recvType)
}

func isNil(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// stringsMatchers are the strings functions whose use on err.Error()
// output means text-based classification.
var stringsMatchers = map[string]bool{
	"Contains": true, "ContainsAny": true, "EqualFold": true,
	"HasPrefix": true, "HasSuffix": true, "Index": true,
}

func checkStringsMatch(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !stringsMatchers[sel.Sel.Name] {
		return
	}
	pkgIdent, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if isErrorCall(pass, arg) {
			pass.Reportf(call.Pos(), "don't string-match err.Error(); classify with errors.Is/As against typed sentinels (DESIGN §9.3)")
			return
		}
	}
}

// checkWrap flags fmt.Errorf calls that format an error argument
// without %w inside the retry-path packages.
func checkWrap(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t != nil && implementsError(t) && !isNil(pass, arg) {
			pass.Reportf(arg.Pos(), "error formatted without %%w strips the chain: downstream errors.Is misses the sentinel and the retry cause is misclassified; wrap the cause with %%w (DESIGN §9.3)")
			return
		}
	}
}
