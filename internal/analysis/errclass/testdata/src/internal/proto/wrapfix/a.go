// Package wrapfix exercises the %w rule, which applies only under
// internal/proto (this fixture's path): wrapping a cause without %w
// breaks the errors.Is classification the retry budget depends on.
package wrapfix

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base") // want fact:`errBase:sentinel`

func wrapOK(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

func wrapStripped(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `error formatted without %w strips the chain`
}

func wrapString(err error) error {
	return fmt.Errorf("op failed: %s", err) // want `error formatted without %w strips the chain`
}

func wrapNoError(n int) error {
	return fmt.Errorf("op failed after %d tries", n)
}

func wrapBoth(err error) error {
	// %w present: additional %v operands ride along legally.
	return fmt.Errorf("op %v failed: %w", 42, err)
}
