// Package errclassfix exercises errclass's identity-comparison and
// string-matching rules against locally declared sentinels.
package errclassfix

import (
	"errors"
	"fmt"
	"strings"
)

var ErrStalled = errors.New("stalled")       // want fact:`ErrStalled:sentinel`
var ErrChecksum = fmt.Errorf("checksum bad") // want fact:`ErrChecksum:sentinel`

var label = "not an error"

func compare(err error) bool {
	if err == ErrStalled { // want `compare errors with errors.Is\(err, ErrStalled\)`
		return true
	}
	if ErrChecksum != err { // want `compare errors with errors.Is\(err, ErrChecksum\)`
		return true
	}
	if errors.Is(err, ErrStalled) { // correct form: no diagnostic
		return true
	}
	return err == nil // nil checks are identity by definition
}

func stringMatch(err error, s string) bool {
	if err.Error() == "stalled" { // want `don't string-match err.Error\(\)`
		return true
	}
	if "stalled" != err.Error() { // want `don't string-match err.Error\(\)`
		return true
	}
	if strings.Contains(err.Error(), "stall") { // want `don't string-match err.Error\(\)`
		return true
	}
	if strings.HasPrefix(err.Error(), "proto:") { // want `don't string-match err.Error\(\)`
		return true
	}
	if s == label { // plain string comparison: no diagnostic
		return true
	}
	return strings.Contains(s, "x") // no err.Error() involved
}

func switchForms(err error) int {
	switch err {
	case nil:
		return 0
	case ErrStalled: // want `compare errors with errors.Is\(err, ErrStalled\)`
		return 1
	}
	switch err.Error() { // want `don't string-match err.Error\(\)`
	case "stalled":
		return 2
	}
	return 3
}

// wrapOutsideRetryPath: the %w rule is scoped to internal/proto, so a
// chain-stripping wrap here is not this package's concern.
func wrapOutsideRetryPath(err error) error {
	return fmt.Errorf("context: %v", err)
}
