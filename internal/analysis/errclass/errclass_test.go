package errclass_test

import (
	"testing"

	"github.com/didclab/eta/internal/analysis/analysistest"
	"github.com/didclab/eta/internal/analysis/errclass"
)

func TestErrClass(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errclass.Analyzer, "errclassfix")
}

// TestErrClassWrap covers the %w rule, active only under the
// internal/proto fixture path.
func TestErrClassWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errclass.Analyzer, "internal/proto/wrapfix")
}
