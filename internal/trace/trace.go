// Package trace persists transfer timelines — the five-second samples
// every adaptive algorithm produces — as CSV or JSON Lines for offline
// analysis and plotting.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// csvHeader is the column layout of the CSV writer.
var csvHeader = []string{
	"start_s", "duration_s", "bytes", "throughput_mbps",
	"endsystem_energy_j", "network_energy_j", "active_channels",
}

// WriteCSV writes a sample timeline as CSV with a header row.
func WriteCSV(w io.Writer, samples []transfer.Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, s := range samples {
		row := []string{
			formatSeconds(s.Start),
			formatSeconds(s.Duration),
			strconv.FormatInt(int64(s.Bytes), 10),
			strconv.FormatFloat(s.Throughput.Mbit(), 'f', 3, 64),
			strconv.FormatFloat(float64(s.EndSystemEnergy), 'f', 3, 64),
			strconv.FormatFloat(float64(s.NetworkEnergy), 'f', 3, 64),
			strconv.Itoa(s.ActiveChannels),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

// jsonSample is the JSONL schema.
type jsonSample struct {
	StartSec        float64 `json:"start_s"`
	DurationSec     float64 `json:"duration_s"`
	Bytes           int64   `json:"bytes"`
	ThroughputMbps  float64 `json:"throughput_mbps"`
	EndSystemEnergy float64 `json:"endsystem_energy_j"`
	NetworkEnergy   float64 `json:"network_energy_j"`
	ActiveChannels  int     `json:"active_channels"`
}

// WriteJSONL writes one JSON object per sample.
func WriteJSONL(w io.Writer, samples []transfer.Sample) error {
	enc := json.NewEncoder(w)
	for _, s := range samples {
		rec := jsonSample{
			StartSec:        s.Start.Seconds(),
			DurationSec:     s.Duration.Seconds(),
			Bytes:           int64(s.Bytes),
			ThroughputMbps:  s.Throughput.Mbit(),
			EndSystemEnergy: float64(s.EndSystemEnergy),
			NetworkEnergy:   float64(s.NetworkEnergy),
			ActiveChannels:  s.ActiveChannels,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a timeline written by WriteCSV.
func ReadCSV(r io.Reader) ([]transfer.Sample, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	var samples []transfer.Sample
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("trace: row %d has %d columns", i+1, len(row))
		}
		start, err1 := strconv.ParseFloat(row[0], 64)
		dur, err2 := strconv.ParseFloat(row[1], 64)
		bytes, err3 := strconv.ParseInt(row[2], 10, 64)
		thr, err4 := strconv.ParseFloat(row[3], 64)
		es, err5 := strconv.ParseFloat(row[4], 64)
		ne, err6 := strconv.ParseFloat(row[5], 64)
		ac, err7 := strconv.Atoi(row[6])
		for _, e := range []error{err1, err2, err3, err4, err5, err6, err7} {
			if e != nil {
				return nil, fmt.Errorf("trace: row %d: %w", i+1, e)
			}
		}
		samples = append(samples, transfer.Sample{
			Start:           time.Duration(start * float64(time.Second)),
			Duration:        time.Duration(dur * float64(time.Second)),
			Bytes:           units.Bytes(bytes),
			Throughput:      units.Rate(thr * float64(units.Mbps)),
			EndSystemEnergy: units.Joules(es),
			NetworkEnergy:   units.Joules(ne),
			ActiveChannels:  ac,
		})
	}
	return samples, nil
}
