package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

func sampleTimeline() []transfer.Sample {
	return []transfer.Sample{
		{
			Start: 0, Duration: 5 * time.Second, Bytes: 100 * units.MB,
			Throughput: 160 * units.Mbps, EndSystemEnergy: 42.5,
			NetworkEnergy: 3.25, ActiveChannels: 2,
		},
		{
			Start: 5 * time.Second, Duration: 5 * time.Second, Bytes: 250 * units.MB,
			Throughput: 400 * units.Mbps, EndSystemEnergy: 55,
			NetworkEnergy: 8, ActiveChannels: 6,
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleTimeline()
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Start != in[i].Start || out[i].Duration != in[i].Duration {
			t.Errorf("sample %d times differ: %+v vs %+v", i, out[i], in[i])
		}
		if out[i].Bytes != in[i].Bytes || out[i].ActiveChannels != in[i].ActiveChannels {
			t.Errorf("sample %d payload differs", i)
		}
		if math.Abs(out[i].Throughput.Mbit()-in[i].Throughput.Mbit()) > 0.01 {
			t.Errorf("sample %d throughput %v vs %v", i, out[i].Throughput, in[i].Throughput)
		}
		if math.Abs(float64(out[i].EndSystemEnergy-in[i].EndSystemEnergy)) > 0.01 {
			t.Errorf("sample %d energy differs", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong header accepted")
	}
	bad := strings.Join(csvHeader, ",") + "\nx,1,1,1,1,1,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("unparseable row accepted")
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleTimeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		if !strings.Contains(line, `"throughput_mbps"`) || !strings.HasPrefix(line, "{") {
			t.Errorf("malformed JSONL line: %s", line)
		}
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil || len(out) != 0 {
		t.Errorf("empty timeline round trip: %v, %v", out, err)
	}
}
