package monitor

import (
	"sync"
	"time"

	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/units"
)

// EnergySource reports cumulative transfer energy. The real-TCP
// executor samples it around measurement windows exactly like the
// simulator integrates its power model.
type EnergySource interface {
	// Total returns energy accumulated since the source was created.
	Total() (units.Joules, error)
}

// RAPLSource adapts hardware RAPL counters to EnergySource.
type RAPLSource struct {
	mu   sync.Mutex
	rapl *RAPL
}

// NewRAPLSource wraps an opened RAPL reader.
func NewRAPLSource(r *RAPL) *RAPLSource { return &RAPLSource{rapl: r} }

// Total implements EnergySource.
func (s *RAPLSource) Total() (units.Joules, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rapl.Total()
}

// ModelSource estimates transfer energy from procfs utilization through
// the paper's fine-grained power model — the path used on hosts without
// RAPL (or without permission to read it), mirroring how the paper
// estimates power on remote servers it cannot meter.
type ModelSource struct {
	mon    Monitor
	server endsys.Server
	model  power.FineGrained
	// Processes reports the live transfer process (channel) count for
	// Eq. 2; nil means 1.
	Processes func() int
	// Events, when set, receives an energy_model_sample event per
	// booked interval. Write-only: the estimate never depends on it.
	Events *obs.Log
	// Trace, when set, receives the cumulative total as an EnergySample
	// per booked interval, keeping span joules estimates current at the
	// model's own sampling cadence. Write-only, like Events.
	Trace *span.Tracer

	mu       sync.Mutex
	now      Clock
	lastTime time.Time
	lastCPU  CPUSample
	lastNet  NetSample
	lastDisk DiskSample
	primed   bool
	meter    power.Meter
}

// NewModelSource builds a model-based estimator for the local host
// described by server.
func NewModelSource(mon Monitor, server endsys.Server, model power.FineGrained) *ModelSource {
	return &ModelSource{mon: mon, server: server, model: model, now: time.Now}
}

// SetClock overrides the time source (tests).
func (s *ModelSource) SetClock(c Clock) { s.now = c }

// Total implements EnergySource: each call samples the counters,
// converts the deltas into component utilizations, books the interval's
// power into the meter and returns the running total.
func (s *ModelSource) Total() (units.Joules, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	cpu, err := s.mon.ReadCPU()
	if err != nil {
		return 0, err
	}
	net, err := s.mon.ReadNet("")
	if err != nil {
		return 0, err
	}
	disk, err := s.mon.ReadDisk()
	if err != nil {
		return 0, err
	}
	now := s.now()
	if s.primed {
		dt := now.Sub(s.lastTime)
		if dt > 0 {
			u := s.utilization(cpu, net, disk, dt)
			procs := 1
			if s.Processes != nil {
				procs = s.Processes()
			}
			w := s.model.Power(u, procs)
			s.meter.Add(w, dt)
			s.Trace.EnergySample(float64(s.meter.Total()))
			s.Events.Emit(obs.EvEnergyModel,
				"joules_total", float64(s.meter.Total()),
				"watts", float64(w),
				"cpu_pct", u.CPU,
				"nic_pct", u.NIC,
				"disk_pct", u.Disk,
				"interval_ms", float64(dt)/float64(time.Millisecond))
		}
	}
	s.lastTime = now
	s.lastCPU, s.lastNet, s.lastDisk = cpu, net, disk
	s.primed = true
	return s.meter.Total(), nil
}

func (s *ModelSource) utilization(cpu CPUSample, net NetSample, disk DiskSample, dt time.Duration) endsys.Utilization {
	u := endsys.Utilization{CPU: CPUUtil(s.lastCPU, cpu)}
	// NIC: moved bytes over line rate. Send and receive both load the
	// interface; use their max to avoid double-charging loopback runs.
	rx := float64(net.RxBytes) - float64(s.lastNet.RxBytes)
	tx := float64(net.TxBytes) - float64(s.lastNet.TxBytes)
	moved := rx
	if tx > moved {
		moved = tx
	}
	if s.server.NICRate > 0 {
		u.NIC = units.ClampF(moved*8/dt.Seconds()/float64(s.server.NICRate)*100, 0, 100)
	}
	sectors := (float64(disk.SectorsRead) - float64(s.lastDisk.SectorsRead)) +
		(float64(disk.SectorsWritten) - float64(s.lastDisk.SectorsWritten))
	if max := s.server.Disk.MaxRate(); max > 0 {
		u.Disk = units.ClampF(sectors*diskSectorBytes*8/dt.Seconds()/float64(max)*100, 0, 100)
	}
	u.Mem = units.ClampF(u.NIC*s.server.MemPerGbps/10, 0, 100)
	return u
}

// AutoSource picks RAPL when the host exposes it and falls back to the
// model estimator otherwise. The bool reports whether RAPL was used.
func AutoSource(mon Monitor, server endsys.Server, model power.FineGrained) (EnergySource, bool, error) {
	rapl, ok, err := OpenRAPL(mon)
	if err != nil {
		return nil, false, err
	}
	if ok {
		return NewRAPLSource(rapl), true, nil
	}
	return NewModelSource(mon, server, model), false, nil
}

// LocalServerModel describes this host well enough for the model
// estimator: core count from the runtime, NIC and disk rates from the
// supplied hints.
func LocalServerModel(cores int, nic units.Rate, disk units.Rate) endsys.Server {
	if cores < 1 {
		cores = 1
	}
	if nic <= 0 {
		nic = 10 * units.Gbps
	}
	if disk <= 0 {
		disk = 2 * units.Gbps
	}
	return endsys.Server{
		Name:          "localhost",
		Cores:         cores,
		TDP:           95,
		NICRate:       nic,
		Disk:          endsys.Disk{Kind: endsys.SingleDisk, Rate: disk, ContentionAlpha: 0.1},
		CPUPerGbps:    5,
		CPUPerStream:  0.5,
		CPUBaseActive: 2,
		MemPerGbps:    4,
	}
}
