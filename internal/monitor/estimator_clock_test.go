package monitor

import (
	"testing"
	"time"

	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/units"
)

// driveModelSource walks one ModelSource through a fixed counter
// script — prime, one busy second, one idle second — with the injected
// clock starting at epoch. Everything except the clock origin is held
// constant so two drives at different origins must agree exactly.
func driveModelSource(t *testing.T, epoch time.Time) units.Joules {
	t.Helper()
	f := newFakeRoot(t)
	f.write("proc/stat", procStat(0, 1000))
	f.write("proc/net/dev", procNetDev(0, 0))
	f.write("proc/diskstats", procDiskstats(0, 0))

	server := LocalServerModel(4, 1*units.Gbps, 1*units.Gbps)
	model := power.FineGrained{Coeff: power.Coefficients{CPU: power.PaperCPUQuad, Mem: 0.1, Disk: 0.08, NIC: 0.2}}
	src := NewModelSource(f.monitor(), server, model)
	now := epoch
	src.SetClock(func() time.Time { return now })

	if _, err := src.Total(); err != nil {
		t.Fatal(err)
	}

	f.write("proc/stat", procStat(700, 1300))
	f.write("proc/net/dev", procNetDev(40_000_000, 25_000_000))
	f.write("proc/diskstats", procDiskstats(90_000, 30_000))
	now = now.Add(time.Second)
	if _, err := src.Total(); err != nil {
		t.Fatal(err)
	}

	f.write("proc/stat", procStat(710, 2300))
	now = now.Add(time.Second)
	total, err := src.Total()
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestModelSourceClockInjection asserts ModelSource has no wall-clock
// dependence once the Clock seam is injected (the //lint:allow
// nodeterm-style seam the analyzer suite expects): the same counter
// script replayed against clocks forty years apart books bit-identical
// energy, no matter how much real time elapses between samples.
func TestModelSourceClockInjection(t *testing.T) {
	got1970 := driveModelSource(t, time.Unix(0, 0))
	got2010 := driveModelSource(t, time.Unix(1_262_304_000, 0))
	if got1970 != got2010 {
		t.Fatalf("energy depends on the clock origin: epoch 1970 → %v J, epoch 2010 → %v J", got1970, got2010)
	}
	if got1970 <= 0 {
		t.Fatalf("scripted busy interval booked no energy: %v", got1970)
	}
}

// TestModelSourceFrozenClock pins the complementary direction: with
// the injected clock frozen, any amount of real sampling books zero
// additional energy — Total must consult only the seam.
func TestModelSourceFrozenClock(t *testing.T) {
	f := newFakeRoot(t)
	f.write("proc/stat", procStat(0, 1000))
	f.write("proc/net/dev", procNetDev(0, 0))
	f.write("proc/diskstats", procDiskstats(0, 0))

	server := LocalServerModel(2, 1*units.Gbps, 1*units.Gbps)
	model := power.FineGrained{Coeff: power.Coefficients{CPU: power.PaperCPUQuad}}
	src := NewModelSource(f.monitor(), server, model)
	frozen := time.Unix(5000, 0)
	src.SetClock(func() time.Time { return frozen })

	if _, err := src.Total(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f.write("proc/stat", procStat(uint64(100*(i+1)), uint64(1000+100*(i+1))))
		total, err := src.Total()
		if err != nil {
			t.Fatal(err)
		}
		if total != 0 {
			t.Fatalf("sample %d booked %v J with a frozen injected clock; Total is reading time from somewhere else", i, total)
		}
	}
}
