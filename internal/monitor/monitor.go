// Package monitor reads the operating-system counters the paper's
// power models consume — CPU, NIC and disk utilization from procfs —
// plus, where available, hardware energy counters from the RAPL sysfs
// interface. This is the "non-intrusive, models the full-system power
// consumption, provides real-time power prediction" measurement layer
// (§2.2) used when the real-TCP stack runs a transfer.
//
// All readers take their filesystem root from the Monitor so tests can
// point them at a synthetic tree.
package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/didclab/eta/internal/units"
)

// Monitor reads system counters under a configurable root.
type Monitor struct {
	// Root is prepended to every path; "/" when empty.
	Root string
}

func (m Monitor) path(p string) string {
	root := m.Root
	if root == "" {
		root = "/"
	}
	return filepath.Join(root, p)
}

// CPUSample is a snapshot of aggregate CPU time.
type CPUSample struct {
	Busy  uint64 // jiffies doing work
	Total uint64 // all jiffies
}

// ReadCPU parses the aggregate "cpu" line of /proc/stat.
func (m Monitor) ReadCPU() (CPUSample, error) {
	data, err := os.ReadFile(m.path("proc/stat"))
	if err != nil {
		return CPUSample{}, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 || fields[0] != "cpu" {
			continue
		}
		var vals []uint64
		for _, f := range fields[1:] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return CPUSample{}, fmt.Errorf("monitor: parsing /proc/stat field %q: %w", f, err)
			}
			vals = append(vals, v)
		}
		var total uint64
		for _, v := range vals {
			total += v
		}
		// Fields: user nice system idle iowait irq softirq steal ...
		idle := vals[3]
		if len(vals) > 4 {
			idle += vals[4] // iowait counts as not-busy
		}
		return CPUSample{Busy: total - idle, Total: total}, nil
	}
	return CPUSample{}, fmt.Errorf("monitor: no aggregate cpu line in /proc/stat")
}

// CPUUtil returns the utilization percentage between two samples.
func CPUUtil(prev, cur CPUSample) float64 {
	dt := float64(cur.Total) - float64(prev.Total)
	if dt <= 0 {
		return 0
	}
	db := float64(cur.Busy) - float64(prev.Busy)
	return units.ClampF(db/dt*100, 0, 100)
}

// NetSample is a snapshot of one interface's byte counters.
type NetSample struct {
	RxBytes uint64
	TxBytes uint64
}

// ReadNet parses /proc/net/dev for the named interface; an empty name
// sums all non-loopback interfaces.
func (m Monitor) ReadNet(iface string) (NetSample, error) {
	data, err := os.ReadFile(m.path("proc/net/dev"))
	if err != nil {
		return NetSample{}, err
	}
	var out NetSample
	found := false
	for _, line := range strings.Split(string(data), "\n") {
		idx := strings.IndexByte(line, ':')
		if idx < 0 {
			continue
		}
		name := strings.TrimSpace(line[:idx])
		if iface == "" {
			if name == "lo" {
				continue
			}
		} else if name != iface {
			continue
		}
		fields := strings.Fields(line[idx+1:])
		if len(fields) < 10 {
			continue
		}
		rx, err1 := strconv.ParseUint(fields[0], 10, 64)
		tx, err2 := strconv.ParseUint(fields[8], 10, 64)
		if err1 != nil || err2 != nil {
			return NetSample{}, fmt.Errorf("monitor: parsing /proc/net/dev line %q", line)
		}
		out.RxBytes += rx
		out.TxBytes += tx
		found = true
	}
	if !found {
		return NetSample{}, fmt.Errorf("monitor: interface %q not found", iface)
	}
	return out, nil
}

// DiskSample is a snapshot of aggregate disk sector counters.
type DiskSample struct {
	SectorsRead    uint64
	SectorsWritten uint64
}

// diskSectorBytes is the /proc/diskstats sector unit.
const diskSectorBytes = 512

// ReadDisk parses /proc/diskstats, summing whole devices (partitions,
// loop and ram devices are skipped).
func (m Monitor) ReadDisk() (DiskSample, error) {
	data, err := os.ReadFile(m.path("proc/diskstats"))
	if err != nil {
		return DiskSample{}, err
	}
	var out DiskSample
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 10 {
			continue
		}
		name := fields[2]
		if strings.HasPrefix(name, "loop") || strings.HasPrefix(name, "ram") {
			continue
		}
		// Skip partitions (names ending in a digit with a parent disk
		// pattern like sda1, nvme0n1p1).
		if isPartition(name) {
			continue
		}
		read, err1 := strconv.ParseUint(fields[5], 10, 64)
		written, err2 := strconv.ParseUint(fields[9], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out.SectorsRead += read
		out.SectorsWritten += written
	}
	return out, nil
}

func isPartition(name string) bool {
	if strings.Contains(name, "p") && strings.HasPrefix(name, "nvme") {
		// nvme0n1 is a disk; nvme0n1p1 is a partition.
		return strings.Contains(name[strings.Index(name, "n"):], "p")
	}
	if len(name) >= 4 && (strings.HasPrefix(name, "sd") || strings.HasPrefix(name, "hd") || strings.HasPrefix(name, "vd")) {
		last := name[len(name)-1]
		return last >= '0' && last <= '9'
	}
	return false
}

// raplDomain is one RAPL energy counter.
type raplDomain struct {
	energyPath string
	maxRange   uint64
}

// RAPL reads the Intel RAPL energy counters under
// /sys/class/powercap. Counters wrap at max_energy_range_uj; Total
// handles one wrap per read interval.
type RAPL struct {
	domains []raplDomain
	last    []uint64
	total   units.Joules
	primed  bool
}

// OpenRAPL discovers package-level RAPL domains. It returns ok=false
// (and no error) when the host exposes none — the caller should fall
// back to the model-based estimator.
func OpenRAPL(m Monitor) (*RAPL, bool, error) {
	base := m.path("sys/class/powercap")
	entries, err := os.ReadDir(base)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	r := &RAPL{}
	var names []string
	for _, e := range entries {
		name := e.Name()
		// Package domains look like intel-rapl:0; subdomains like
		// intel-rapl:0:0 are contained in their package and skipped.
		if !strings.HasPrefix(name, "intel-rapl:") || strings.Count(name, ":") != 1 {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dom := raplDomain{energyPath: filepath.Join(base, name, "energy_uj")}
		if data, err := os.ReadFile(filepath.Join(base, name, "max_energy_range_uj")); err == nil {
			if v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64); err == nil {
				dom.maxRange = v
			}
		}
		if _, err := os.ReadFile(dom.energyPath); err != nil {
			continue // unreadable domain (permissions)
		}
		r.domains = append(r.domains, dom)
	}
	if len(r.domains) == 0 {
		return nil, false, nil
	}
	r.last = make([]uint64, len(r.domains))
	return r, true, nil
}

// Total returns cumulative energy since the first call.
func (r *RAPL) Total() (units.Joules, error) {
	for i, dom := range r.domains {
		data, err := os.ReadFile(dom.energyPath)
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("monitor: parsing %s: %w", dom.energyPath, err)
		}
		if r.primed {
			delta := int64(v) - int64(r.last[i])
			if delta < 0 && dom.maxRange > 0 {
				delta += int64(dom.maxRange)
			}
			if delta > 0 {
				r.total += units.Joules(float64(delta) / 1e6)
			}
		}
		r.last[i] = v
	}
	r.primed = true
	return r.total, nil
}

// Clock abstracts time for tests.
type Clock func() time.Time
