package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/units"
)

// fakeRoot builds a synthetic /proc (+/sys) tree.
type fakeRoot struct {
	t    *testing.T
	root string
}

func newFakeRoot(t *testing.T) *fakeRoot {
	return &fakeRoot{t: t, root: t.TempDir()}
}

func (f *fakeRoot) write(rel, content string) {
	f.t.Helper()
	path := filepath.Join(f.root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		f.t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fakeRoot) monitor() Monitor { return Monitor{Root: f.root} }

func procStat(busy, idle uint64) string {
	// user nice system idle iowait irq softirq
	return fmt.Sprintf("cpu  %d 0 0 %d 0 0 0\ncpu0 %d 0 0 %d 0 0 0\n", busy, idle, busy, idle)
}

func procNetDev(rx, tx uint64) string {
	return "Inter-|   Receive                                                |  Transmit\n" +
		" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n" +
		fmt.Sprintf("    lo: 999 9 0 0 0 0 0 0 999 9 0 0 0 0 0 0\n") +
		fmt.Sprintf("  eth0: %d 100 0 0 0 0 0 0 %d 100 0 0 0 0 0 0\n", rx, tx)
}

func procDiskstats(read, written uint64) string {
	return fmt.Sprintf(" 8 0 sda 100 0 %d 0 100 0 %d 0 0 0 0\n", read, written) +
		fmt.Sprintf(" 8 1 sda1 50 0 999999 0 50 0 999999 0 0 0 0\n") + // partition skipped
		" 7 0 loop0 1 0 555 0 1 0 555 0 0 0 0\n" // loop skipped
}

func TestReadCPUAndUtil(t *testing.T) {
	f := newFakeRoot(t)
	f.write("proc/stat", procStat(100, 900))
	m := f.monitor()
	a, err := m.ReadCPU()
	if err != nil {
		t.Fatal(err)
	}
	if a.Busy != 100 || a.Total != 1000 {
		t.Fatalf("sample = %+v", a)
	}
	f.write("proc/stat", procStat(200, 1000))
	b, err := m.ReadCPU()
	if err != nil {
		t.Fatal(err)
	}
	// 100 busy of 200 total elapsed → 50%.
	if got := CPUUtil(a, b); got != 50 {
		t.Errorf("CPUUtil = %v, want 50", got)
	}
	if CPUUtil(b, b) != 0 {
		t.Error("no elapsed time should read 0")
	}
}

func TestReadCPUMissing(t *testing.T) {
	f := newFakeRoot(t)
	if _, err := f.monitor().ReadCPU(); err == nil {
		t.Error("missing /proc/stat accepted")
	}
	f.write("proc/stat", "intr 1 2 3\n")
	if _, err := f.monitor().ReadCPU(); err == nil {
		t.Error("stat without cpu line accepted")
	}
}

func TestReadNet(t *testing.T) {
	f := newFakeRoot(t)
	f.write("proc/net/dev", procNetDev(12345, 67890))
	m := f.monitor()
	s, err := m.ReadNet("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if s.RxBytes != 12345 || s.TxBytes != 67890 {
		t.Errorf("sample = %+v", s)
	}
	// Empty name sums non-loopback.
	all, err := m.ReadNet("")
	if err != nil {
		t.Fatal(err)
	}
	if all != s {
		t.Errorf("aggregate %+v should exclude loopback and equal eth0", all)
	}
	if _, err := m.ReadNet("wlan9"); err == nil {
		t.Error("unknown interface accepted")
	}
}

func TestReadDiskSkipsPartitionsAndLoops(t *testing.T) {
	f := newFakeRoot(t)
	f.write("proc/diskstats", procDiskstats(1000, 2000))
	s, err := f.monitor().ReadDisk()
	if err != nil {
		t.Fatal(err)
	}
	if s.SectorsRead != 1000 || s.SectorsWritten != 2000 {
		t.Errorf("sample = %+v (partitions/loops must be skipped)", s)
	}
}

func TestIsPartition(t *testing.T) {
	cases := map[string]bool{
		"sda": false, "sda1": true, "vdb2": true, "hdc": false,
		"nvme0n1": false, "nvme0n1p1": true, "md0": false,
	}
	for name, want := range cases {
		if got := isPartition(name); got != want {
			t.Errorf("isPartition(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRAPLTotalWithWrap(t *testing.T) {
	f := newFakeRoot(t)
	f.write("sys/class/powercap/intel-rapl:0/energy_uj", "1000000\n")
	f.write("sys/class/powercap/intel-rapl:0/max_energy_range_uj", "2000000\n")
	f.write("sys/class/powercap/intel-rapl:0:0/energy_uj", "55\n") // subdomain skipped
	r, ok, err := OpenRAPL(f.monitor())
	if err != nil || !ok {
		t.Fatalf("OpenRAPL: ok=%v err=%v", ok, err)
	}
	if got, _ := r.Total(); got != 0 {
		t.Errorf("first read should prime to 0, got %v", got)
	}
	f.write("sys/class/powercap/intel-rapl:0/energy_uj", "1500000\n")
	if got, _ := r.Total(); got != 0.5 {
		t.Errorf("after +0.5 J: %v", got)
	}
	// Wrap: counter falls; max range restores the true delta.
	f.write("sys/class/powercap/intel-rapl:0/energy_uj", "500000\n")
	got, err := r.Total()
	if err != nil {
		t.Fatal(err)
	}
	// Delta = 0.5M−1.5M+2M = 1M µJ = 1 J → total 1.5 J.
	if got != 1.5 {
		t.Errorf("after wrap: %v, want 1.5 J", got)
	}
}

func TestOpenRAPLAbsent(t *testing.T) {
	f := newFakeRoot(t)
	_, ok, err := OpenRAPL(f.monitor())
	if err != nil || ok {
		t.Errorf("absent RAPL: ok=%v err=%v", ok, err)
	}
}

func TestModelSourceIntegratesEnergy(t *testing.T) {
	f := newFakeRoot(t)
	f.write("proc/stat", procStat(0, 1000))
	f.write("proc/net/dev", procNetDev(0, 0))
	f.write("proc/diskstats", procDiskstats(0, 0))

	server := LocalServerModel(4, 1*units.Gbps, 1*units.Gbps)
	model := power.FineGrained{Coeff: power.Coefficients{CPU: power.PaperCPUQuad, Mem: 0.1, Disk: 0.08, NIC: 0.2}}
	src := NewModelSource(f.monitor(), server, model)
	now := time.Unix(1000, 0)
	src.SetClock(func() time.Time { return now })

	if got, err := src.Total(); err != nil || got != 0 {
		t.Fatalf("priming read: %v, %v", got, err)
	}

	// One second passes: 50% CPU, 62.5 MB moved (=50% of 1 Gbps), some
	// disk traffic.
	f.write("proc/stat", procStat(500, 1500))
	f.write("proc/net/dev", procNetDev(62_500_000, 0))
	f.write("proc/diskstats", procDiskstats(100000, 22000))
	now = now.Add(time.Second)
	got, err := src.Total()
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("no energy accrued: %v", got)
	}
	// CPU alone: 50% × C(1)=0.273 → 13.65 W; NIC 50% × 0.2 → 10 W. The
	// total must be at least those two components for 1 s.
	if got < 23 {
		t.Errorf("energy %v J below CPU+NIC floor 23.65 J", got)
	}

	// No time elapsed → no further accrual.
	again, err := src.Total()
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Errorf("energy accrued with zero elapsed time: %v → %v", got, again)
	}
}

func TestModelSourceMissingProc(t *testing.T) {
	f := newFakeRoot(t)
	src := NewModelSource(f.monitor(), LocalServerModel(2, 0, 0), power.FineGrained{Coeff: power.Coefficients{CPU: power.PaperCPUQuad}})
	if _, err := src.Total(); err == nil {
		t.Error("missing proc tree accepted")
	}
}

func TestAutoSourceFallsBackToModel(t *testing.T) {
	f := newFakeRoot(t)
	f.write("proc/stat", procStat(0, 100))
	f.write("proc/net/dev", procNetDev(0, 0))
	f.write("proc/diskstats", procDiskstats(0, 0))
	src, usedRAPL, err := AutoSource(f.monitor(), LocalServerModel(2, 0, 0),
		power.FineGrained{Coeff: power.Coefficients{CPU: power.PaperCPUQuad}})
	if err != nil {
		t.Fatal(err)
	}
	if usedRAPL {
		t.Error("claimed RAPL without sysfs entries")
	}
	if _, err := src.Total(); err != nil {
		t.Errorf("model fallback unusable: %v", err)
	}
}

func TestLocalServerModelDefaults(t *testing.T) {
	s := LocalServerModel(0, 0, 0)
	if s.Cores != 1 || s.NICRate <= 0 || s.Disk.Rate <= 0 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("local model invalid: %v", err)
	}
}
