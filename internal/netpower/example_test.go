package netpower_test

import (
	"fmt"

	"github.com/didclab/eta/internal/netpower"
	"github.com/didclab/eta/internal/units"
)

func ExampleChain_TransferEnergy() {
	// The DIDCLAB LAN path: one edge switch. A 40 GB transfer costs
	// roughly the 0.4 kJ of Fig. 10.
	chain := netpower.Chain{{Class: netpower.EdgeSwitch}}
	fmt.Println(chain.TransferEnergy(40*units.GB, 1500))
	// Output: 424.57J
}

func ExampleNonLinearModel_DynamicFraction() {
	// Under the sub-linear relation, quadrupling the rate only doubles
	// the power — so faster transfers save network energy (§4).
	m := netpower.NonLinearModel{}
	fmt.Printf("%.2f %.2f\n", m.DynamicFraction(0.25), m.DynamicFraction(1.0))
	// Output: 0.50 1.00
}
