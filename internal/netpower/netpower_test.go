package netpower

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/didclab/eta/internal/units"
)

func TestTable1Complete(t *testing.T) {
	for _, c := range []DeviceClass{EnterpriseSwitch, EdgeSwitch, MetroRouter, EdgeRouter} {
		row, ok := Table1[c]
		if !ok {
			t.Fatalf("missing Table 1 row for %v", c)
		}
		if row.PpNanoWatt <= 0 || row.PsfPicoWatt <= 0 {
			t.Errorf("%v has non-positive coefficients %+v", c, row)
		}
	}
	// Spot-check the printed values.
	if Table1[EdgeSwitch].PpNanoWatt != 1571 || Table1[MetroRouter].PsfPicoWatt != 21.6 {
		t.Error("Table 1 values do not match the paper")
	}
}

func TestPerPacketEnergyOrdering(t *testing.T) {
	// Routers and edge switches cost orders of magnitude more per
	// packet than enterprise switches (Table 1).
	ent := Device{Class: EnterpriseSwitch}.PerPacketEnergy(1500)
	edge := Device{Class: EdgeSwitch}.PerPacketEnergy(1500)
	metro := Device{Class: MetroRouter}.PerPacketEnergy(1500)
	edgeR := Device{Class: EdgeRouter}.PerPacketEnergy(1500)
	if !(ent < edge && edge < edgeR && metro < edgeR) {
		t.Errorf("per-packet energy ordering wrong: ent=%v edge=%v metro=%v edgeR=%v",
			ent, edge, metro, edgeR)
	}
}

func TestDIDCLABEnergyMatchesFig10(t *testing.T) {
	// Fig. 10: the 40 GB DIDCLAB transfer crosses a single edge switch
	// and costs ≈0.4 kJ of network energy.
	chain := Chain{{Class: EdgeSwitch, Name: "lan-sw"}}
	got := chain.TransferEnergy(40*units.GB, 1500)
	if got < 300 || got > 500 {
		t.Errorf("DIDCLAB network energy = %v, want ≈420 J (Fig. 10: 0.4 kJ)", got)
	}
}

func TestXSEDEEnergyMatchesFig10(t *testing.T) {
	// Fig. 9a: edge switch + enterprise switch + edge router per side,
	// plus the Internet2 core (modelled as two metro routers). 160 GB
	// should land near Fig. 10's 10 kJ.
	side := []Device{{Class: EdgeSwitch}, {Class: EnterpriseSwitch}, {Class: EdgeRouter}}
	chain := Chain{}
	chain = append(chain, side...)
	chain = append(chain, Device{Class: MetroRouter}, Device{Class: MetroRouter})
	chain = append(chain, side...)
	got := chain.TransferEnergy(160*units.GB, 1500)
	if got < 8000 || got > 12000 {
		t.Errorf("XSEDE network energy = %v, want ≈10 kJ (Fig. 10)", got)
	}
}

func TestTransferEnergyZeroInputs(t *testing.T) {
	chain := Chain{{Class: EdgeSwitch}}
	if chain.TransferEnergy(0, 1500) != 0 || chain.TransferEnergy(units.MB, 0) != 0 {
		t.Error("degenerate inputs should cost nothing")
	}
	if (Chain{}).TransferEnergy(units.GB, 1500) != 0 {
		t.Error("empty chain should cost nothing")
	}
}

func TestTransferEnergyAdditiveInDevices(t *testing.T) {
	a := Chain{{Class: EdgeSwitch}}
	b := Chain{{Class: MetroRouter}}
	both := Chain{{Class: EdgeSwitch}, {Class: MetroRouter}}
	payload := units.Bytes(10 * units.GB)
	sum := a.TransferEnergy(payload, 1500) + b.TransferEnergy(payload, 1500)
	if got := both.TransferEnergy(payload, 1500); math.Abs(float64(got-sum)) > 1e-9 {
		t.Errorf("chain energy not additive: %v vs %v", got, sum)
	}
}

func TestTransferEnergyMonotoneInPayload(t *testing.T) {
	chain := Chain{{Class: EdgeRouter}}
	f := func(a, b uint32) bool {
		lo, hi := units.Bytes(a), units.Bytes(a)+units.Bytes(b)
		return chain.TransferEnergy(hi, 1500) >= chain.TransferEnergy(lo, 1500)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdleEnergy(t *testing.T) {
	chain := Chain{
		{Class: EdgeSwitch, IdlePower: 100},
		{Class: MetroRouter, IdlePower: 400},
	}
	if got := chain.IdleEnergy(10 * time.Second); got != 5000 {
		t.Errorf("idle energy = %v, want 5000 J", got)
	}
}

func TestLinearModelRateIndependence(t *testing.T) {
	// §4: under the linear relation, total dynamic energy is the same
	// at rate d and rate 4d.
	dev := Device{Class: EdgeSwitch, MaxDynamicPower: 50}
	payload := units.Bytes(10 * units.GB)
	e1 := DynamicEnergy(LinearModel{}, dev, payload, 1*units.Gbps, 10*units.Gbps)
	e4 := DynamicEnergy(LinearModel{}, dev, payload, 4*units.Gbps, 10*units.Gbps)
	if math.Abs(float64(e1-e4))/float64(e1) > 1e-9 {
		t.Errorf("linear model not rate-independent: %v vs %v", e1, e4)
	}
}

func TestNonLinearModelHalvesEnergyAtQuadRate(t *testing.T) {
	// §4's worked example: quadrupling the rate under the square-root
	// relation halves the dynamic energy.
	dev := Device{Class: EdgeSwitch, MaxDynamicPower: 50}
	payload := units.Bytes(10 * units.GB)
	e1 := DynamicEnergy(NonLinearModel{}, dev, payload, 1*units.Gbps, 10*units.Gbps)
	e4 := DynamicEnergy(NonLinearModel{}, dev, payload, 4*units.Gbps, 10*units.Gbps)
	if ratio := float64(e4) / float64(e1); math.Abs(ratio-0.5) > 1e-9 {
		t.Errorf("non-linear 4× rate energy ratio = %v, want 0.5", ratio)
	}
}

func TestStateBasedMatchesLinearOnAverage(t *testing.T) {
	// The fitted regression line of the state ladder is linear; average
	// dynamic fraction across the utilization sweep should be close to
	// the linear model's.
	m := DefaultStateBased()
	var sumState, sumLinear float64
	for u := 0.05; u <= 1.0; u += 0.05 {
		sumState += m.DynamicFraction(u)
		sumLinear += LinearModel{}.DynamicFraction(u)
	}
	if math.Abs(sumState-sumLinear)/sumLinear > 0.25 {
		t.Errorf("state-based average %v too far from linear %v", sumState, sumLinear)
	}
}

func TestRateModelBounds(t *testing.T) {
	models := []RateModel{LinearModel{}, NonLinearModel{}, DefaultStateBased()}
	f := func(raw uint16) bool {
		u := float64(raw) / 65535 * 1.5 // deliberately exceeds 1
		for _, m := range models {
			frac := m.DynamicFraction(u)
			if frac < 0 || frac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, m := range models {
		if m.DynamicFraction(0) != 0 {
			t.Errorf("%s: zero utilization should draw zero dynamic power", m.Name())
		}
		if m.DynamicFraction(1) != 1 {
			t.Errorf("%s: full utilization should draw full dynamic power", m.Name())
		}
	}
}

func TestNonLinearAboveLinearBelowCapacity(t *testing.T) {
	// Fig. 8: the non-linear curve sits above the linear one in the
	// interior (sub-linear growth of power with rate means early watts).
	nl, lin := NonLinearModel{}, LinearModel{}
	for _, u := range []float64{0.1, 0.3, 0.5, 0.9} {
		if nl.DynamicFraction(u) <= lin.DynamicFraction(u) {
			t.Errorf("at util %v non-linear %v not above linear %v",
				u, nl.DynamicFraction(u), lin.DynamicFraction(u))
		}
	}
}

func TestDeviceClassString(t *testing.T) {
	if EdgeSwitch.String() != "Edge Ethernet Switch" || DeviceClass(9).String() != "DeviceClass(9)" {
		t.Error("device class names wrong")
	}
}

func TestDynamicEnergyDegenerate(t *testing.T) {
	dev := Device{Class: EdgeSwitch, MaxDynamicPower: 50}
	if DynamicEnergy(LinearModel{}, dev, 0, units.Gbps, 10*units.Gbps) != 0 {
		t.Error("zero payload should cost nothing")
	}
	if DynamicEnergy(LinearModel{}, dev, units.GB, 0, 10*units.Gbps) != 0 {
		t.Error("zero rate should cost nothing")
	}
	if DynamicEnergy(LinearModel{}, dev, units.GB, units.Gbps, 0) != 0 {
		t.Error("zero capacity should cost nothing")
	}
}
