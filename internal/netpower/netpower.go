// Package netpower implements the paper's §4 analysis of what the
// transfer algorithms do to the *networking infrastructure's* energy:
//
//   - the Vishwanath et al. per-packet device model (Eq. 5):
//     P = P_idle + packetCount · (P_p + P_s−f)
//     with the Table 1 per-device coefficients,
//   - the three rate-vs-power relations of Fig. 8 (non-linear, linear,
//     state-based) used to reason about dynamic energy under protocol
//     tuning,
//   - device chains (Fig. 9) so testbeds can integrate network energy
//     along the actual path.
package netpower

import (
	"fmt"
	"math"
	"time"

	"github.com/didclab/eta/internal/units"
)

// DeviceClass is a type of network device from Table 1.
type DeviceClass int

// Device classes in Table 1 order.
const (
	EnterpriseSwitch DeviceClass = iota
	EdgeSwitch
	MetroRouter
	EdgeRouter
)

// String names the class as the paper does.
func (c DeviceClass) String() string {
	switch c {
	case EnterpriseSwitch:
		return "Enterprise Ethernet Switch"
	case EdgeSwitch:
		return "Edge Ethernet Switch"
	case MetroRouter:
		return "Metro IP Router"
	case EdgeRouter:
		return "Edge IP Router"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// Table1 holds the per-packet power consumption coefficients for
// load-dependent operations, exactly as printed in the paper:
// P_p (processing) in nanowatts, P_s−f (store-and-forward) in picowatts.
var Table1 = map[DeviceClass]Coefficients{
	EnterpriseSwitch: {PpNanoWatt: 40, PsfPicoWatt: 0.42},
	EdgeSwitch:       {PpNanoWatt: 1571, PsfPicoWatt: 14.1},
	MetroRouter:      {PpNanoWatt: 1375, PsfPicoWatt: 21.6},
	EdgeRouter:       {PpNanoWatt: 1707, PsfPicoWatt: 15.3},
}

// Coefficients are one device class's Table 1 row.
type Coefficients struct {
	PpNanoWatt  float64 // per-packet processing
	PsfPicoWatt float64 // per-packet store-and-forward, per byte
}

// PacketEnergyScale converts a Table 1 row into joules per packet.
// The paper prints the coefficients as "per-packet power" without the
// time base needed to integrate them into energy; we interpret them as
// energy per packet with a 10 ns effective time base, the single
// constant that makes the one-switch DIDCLAB path reproduce Fig. 10's
// 0.4 kJ network share — and then, with no further tuning, lands XSEDE
// and FutureGrid within a few percent of their Fig. 10 values too
// (see DESIGN.md §2).
const PacketEnergyScale = 10e-9 // seconds

// Device is a network element on a transfer path.
type Device struct {
	Class DeviceClass
	Name  string
	// IdlePower is the load-independent draw; the paper notes idle
	// power is 70–80% of total for typical devices but excludes it
	// from the algorithm comparison because it does not depend on the
	// transfer ("we just considered load-dependent part").
	IdlePower units.Watts
	// MaxDynamicPower is the extra draw at 100% utilization, used by
	// the Fig. 8 rate-model analysis.
	MaxDynamicPower units.Watts
}

// Coeff returns the device's Table 1 coefficients.
func (d Device) Coeff() Coefficients { return Table1[d.Class] }

// PerPacketEnergy returns the load-dependent energy one packet of the
// given size costs on this device (Eq. 5's P_p + P_s−f term).
func (d Device) PerPacketEnergy(packetSize units.Bytes) units.Joules {
	c := d.Coeff()
	processing := c.PpNanoWatt * 1e-9
	storeForward := c.PsfPicoWatt * 1e-12 * float64(packetSize)
	return units.Joules((processing + storeForward) / 1e-9 * PacketEnergyScale)
}

// Chain is the ordered device path between the transfer end-systems
// (Fig. 9).
type Chain []Device

// TransferEnergy returns the load-dependent network energy of moving
// payload bytes in packetSize packets across every device in the chain.
func (ch Chain) TransferEnergy(payload, packetSize units.Bytes) units.Joules {
	if payload <= 0 || packetSize <= 0 {
		return 0
	}
	packets := float64((payload + packetSize - 1) / packetSize)
	var total units.Joules
	for _, d := range ch {
		total += units.Joules(packets) * d.PerPacketEnergy(packetSize)
	}
	return total
}

// IdleEnergy returns the chain's load-independent energy over d —
// reported separately because it is unaffected by protocol tuning.
func (ch Chain) IdleEnergy(d time.Duration) units.Joules {
	var total units.Joules
	for _, dev := range ch {
		total += units.Energy(dev.IdlePower, d)
	}
	return total
}

// RateModel is one of the Fig. 8 relations between data traffic rate
// and dynamic power. DynamicFraction maps utilization in [0,1] to the
// fraction of MaxDynamicPower drawn.
type RateModel interface {
	DynamicFraction(util float64) float64
	Name() string
}

// LinearModel draws power proportionally to the traffic rate. Under it,
// total dynamic network energy is rate-independent: pushing data k×
// faster draws k× power for 1/k the time (§4).
type LinearModel struct{}

// DynamicFraction returns util itself.
func (LinearModel) DynamicFraction(util float64) float64 {
	return units.ClampF(util, 0, 1)
}

// Name returns "linear".
func (LinearModel) Name() string { return "linear" }

// NonLinearModel draws power sub-linearly (square root) in the traffic
// rate, after Mahadevan et al.'s edge-switch measurements. Under it,
// faster transfers *save* network energy: quadrupling the rate doubles
// power but quarters time (§4's worked example).
type NonLinearModel struct{}

// DynamicFraction returns √util.
func (NonLinearModel) DynamicFraction(util float64) float64 {
	return math.Sqrt(units.ClampF(util, 0, 1))
}

// Name returns "non-linear".
func (NonLinearModel) Name() string { return "non-linear" }

// StateBasedModel steps power up only at discrete throughput states
// (link-rate adaptation à la Shang et al.); its fitted regression line
// is linear, so its energy behaviour matches LinearModel (§4).
type StateBasedModel struct {
	// Steps are utilization thresholds (ascending); crossing step i
	// raises the dynamic fraction to Fractions[i].
	Steps     []float64
	Fractions []float64
}

// DefaultStateBased returns a five-state ladder resembling Fig. 8. The
// steps straddle the linear line so the ladder's fitted regression is
// the linear model (the property §4 relies on when arguing state-based
// devices behave like linear ones on average).
func DefaultStateBased() StateBasedModel {
	return StateBasedModel{
		Steps:     []float64{0.0, 0.25, 0.5, 0.75, 1.0},
		Fractions: []float64{0.125, 0.375, 0.625, 0.875, 1.0},
	}
}

// DynamicFraction returns the fraction of the highest crossed step.
func (m StateBasedModel) DynamicFraction(util float64) float64 {
	util = units.ClampF(util, 0, 1)
	frac := 0.0
	for i, step := range m.Steps {
		if util >= step && i < len(m.Fractions) {
			frac = m.Fractions[i]
		}
	}
	if util == 0 {
		return 0
	}
	return frac
}

// Name returns "state-based".
func (StateBasedModel) Name() string { return "state-based" }

// DynamicEnergy integrates a rate model over a transfer: moving payload
// at the given rate on a device with the given capacity and maximum
// dynamic power. This is the §4 thought experiment quantifying whether
// the algorithms' rate changes help or hurt the network side.
func DynamicEnergy(m RateModel, dev Device, payload units.Bytes, rate, capacity units.Rate) units.Joules {
	if payload <= 0 || rate <= 0 || capacity <= 0 {
		return 0
	}
	util := units.ClampF(float64(rate)/float64(capacity), 0, 1)
	duration := time.Duration(float64(payload.Bits()) / float64(rate) * float64(time.Second))
	power := units.Watts(m.DynamicFraction(util)) * dev.MaxDynamicPower
	return units.Energy(power, duration)
}
