package cliutil

import (
	"testing"

	"github.com/didclab/eta/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want units.Bytes
	}{
		{"160GB", 160 * units.GB},
		{"3MB", 3 * units.MB},
		{"512kb", 512 * units.KB},
		{"1.5GB", units.Bytes(1.5 * float64(units.GB))},
		{"42B", 42},
		{"1000", 1000},
		{"2tb", 2 * units.TB},
		{" 10 MB ", 10 * units.MB},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MB", "MB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want units.Rate
	}{
		{"", 0},
		{"10gbps", 10 * units.Gbps},
		{"800Mbps", 800 * units.Mbps},
		{"56kbps", 56 * units.Kbps},
		{"9600bps", 9600},
		{"0.5gbps", units.Rate(0.5 * float64(units.Gbps))},
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseRate(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"fast", "-1mbps", "mbps"} {
		if _, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) accepted", bad)
		}
	}
}
