// Package cliutil holds the small parsing helpers shared by the
// command-line tools: human-friendly byte sizes ("160GB") and data
// rates ("800mbps").
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/didclab/eta/internal/units"
)

// ParseSize reads "64MB"-style byte sizes (decimal units).
func ParseSize(s string) (units.Bytes, error) {
	if strings.TrimSpace(s) == "" {
		return 0, fmt.Errorf("cliutil: empty size")
	}
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := units.Bytes(1)
	for _, suffix := range []struct {
		tag string
		m   units.Bytes
	}{{"TB", units.TB}, {"GB", units.GB}, {"MB", units.MB}, {"KB", units.KB}, {"B", 1}} {
		if strings.HasSuffix(u, suffix.tag) {
			mult = suffix.m
			u = strings.TrimSuffix(u, suffix.tag)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(u), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cliutil: bad size %q", s)
	}
	return units.Bytes(v * float64(mult)), nil
}

// ParseRate reads "800mbps"-style data rates; the empty string parses
// to zero (callers treat that as unlimited).
func ParseRate(s string) (units.Rate, error) {
	if strings.TrimSpace(s) == "" {
		return 0, nil
	}
	u := strings.ToLower(strings.TrimSpace(s))
	mult := units.Bps
	matched := false
	for _, suffix := range []struct {
		tag string
		m   units.Rate
	}{{"gbps", units.Gbps}, {"mbps", units.Mbps}, {"kbps", units.Kbps}, {"bps", units.Bps}} {
		if strings.HasSuffix(u, suffix.tag) {
			mult = suffix.m
			u = strings.TrimSuffix(u, suffix.tag)
			matched = true
			break
		}
	}
	_ = matched
	v, err := strconv.ParseFloat(strings.TrimSpace(u), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cliutil: bad rate %q", s)
	}
	return units.Rate(v) * mult, nil
}
