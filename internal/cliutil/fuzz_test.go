package cliutil

import (
	"testing"
)

func FuzzParseSize(f *testing.F) {
	f.Add("160GB")
	f.Add("3mb")
	f.Add("-1KB")
	f.Add("")
	f.Add("1.5TB")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ParseSize(input)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseSize(%q) accepted a negative size %d", input, v)
		}
	})
}

func FuzzParseRate(f *testing.F) {
	f.Add("10gbps")
	f.Add("800Mbps")
	f.Add("bogus")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ParseRate(input)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseRate(%q) accepted a negative rate %v", input, v)
		}
	})
}
