// Package obs is the transfer observability layer: a dependency-free
// metrics registry (atomic counters, float gauges, windowed histograms
// and labeled counter families) plus a structured JSONL event log and a
// small HTTP surface (/metrics snapshot, /events tail) for live
// inspection of real-TCP transfers.
//
// Design rules (DESIGN.md §8):
//
//   - Stdlib only. The package imports nothing from this repository, so
//     every layer — proto, sched, monitor, the cmd tools — can depend on
//     it without cycles, and scripts/lint.sh enforces the boundary.
//
//   - Write-only telemetry. Instrumented code pushes values in; nothing
//     on the deterministic computation path ever reads a metric or an
//     event back. That is what keeps a fully instrumented simulation
//     run bit-identical to an uninstrumented one.
//
//   - Nil-safe. Every method on *Registry, *Counter, *Gauge,
//     *Histogram, *Family and *Log is a no-op on a nil receiver, so
//     instrumentation points never need `if reg != nil` guards and an
//     uninstrumented hot path costs one predictable branch.
//
//   - Clock-disciplined. The registry itself is time-free (counters,
//     gauges and count-windowed histograms need no clock). The event
//     log stamps events from an injected Clock exactly like
//     monitor.ModelSource; the wall-clock default is an annotated seam,
//     and the nodeterm analyzer polices the rest of the package.
package obs

import "time"

// Clock is the injectable time source, mirroring monitor.Clock.
type Clock func() time.Time
