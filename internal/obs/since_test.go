package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func emitN(l *Log, n int) {
	for i := 0; i < n; i++ {
		l.Emit("tick", "i", i)
	}
}

func TestTailSinceResumesExactly(t *testing.T) {
	l := NewLog(nil)
	l.SetClock(fixedClock())
	emitN(l, 10)

	lines, missed := l.TailSince(4, 0)
	if missed != 0 {
		t.Errorf("missed = %d on an unwrapped ring", missed)
	}
	if len(lines) != 6 {
		t.Fatalf("TailSince(4) returned %d lines, want 6", len(lines))
	}
	var first struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Seq != 5 {
		t.Errorf("first resumed seq = %d (err %v), want 5", first.Seq, err)
	}

	// since at the head: everything already seen.
	if lines, missed := l.TailSince(10, 0); len(lines) != 0 || missed != 0 {
		t.Errorf("TailSince(10) = %d lines, %d missed", len(lines), missed)
	}
	// n caps from the tail end.
	if lines, _ := l.TailSince(0, 3); len(lines) != 3 {
		t.Errorf("TailSince(0, 3) returned %d lines", len(lines))
	}
}

func TestTailSinceReportsDrops(t *testing.T) {
	l := NewLog(nil)
	l.SetClock(fixedClock())
	c := &Counter{}
	l.SetDropCounter(c)
	total := DefaultRingSize + 50
	emitN(l, total)

	if got := l.Dropped(); got != 50 {
		t.Errorf("Dropped = %d, want 50", got)
	}
	if got := c.Value(); got != 50 {
		t.Errorf("drop counter = %d, want 50", got)
	}
	// A consumer that last saw seq 10 lost everything up to the ring's
	// current head.
	lines, missed := l.TailSince(10, 0)
	if len(lines) != DefaultRingSize {
		t.Errorf("resume returned %d lines, ring holds %d", len(lines), DefaultRingSize)
	}
	wantMissed := uint64(total - DefaultRingSize - 10)
	if missed != wantMissed {
		t.Errorf("missed = %d, want %d", missed, wantMissed)
	}
	var nilLog *Log
	if lines, missed := nilLog.TailSince(0, 0); lines != nil || missed != 0 {
		t.Error("nil log TailSince not a no-op")
	}
	if nilLog.Dropped() != 0 {
		t.Error("nil log Dropped not zero")
	}
	nilLog.SetDropCounter(c) // must not panic
}

type fakeSpans struct{}

func (fakeSpans) WriteLiveSpans(w io.Writer) error {
	_, err := io.WriteString(w, `[{"name":"transfer"}]`+"\n")
	return err
}

func TestHTTPEventsSinceAndSpans(t *testing.T) {
	reg := NewRegistry()
	log := NewLog(nil)
	log.SetClock(fixedClock())
	emitN(log, DefaultRingSize+20)

	srv, err := ServeOpts("127.0.0.1:0", HandlerOpts{
		Registry: reg,
		Log:      log,
		Spans:    fakeSpans{},
		Pprof:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Resume from an overwritten position: the gap rides the header and
	// the full retained tail comes back (no implicit 100-line cap).
	resp, body := get("/events?since=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events?since=5 -> %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Events-Dropped"); got != "15" {
		t.Errorf("X-Events-Dropped = %q, want 15", got)
	}
	if n := len(strings.Split(strings.TrimSpace(body), "\n")); n != DefaultRingSize {
		t.Errorf("since=5 returned %d lines, want %d", n, DefaultRingSize)
	}

	// since + n bounds the resumed stream.
	_, body = get("/events?since=5&n=7")
	if n := len(strings.Split(strings.TrimSpace(body), "\n")); n != 7 {
		t.Errorf("since=5&n=7 returned %d lines", n)
	}

	if resp, _ := get("/events?since=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since accepted: %d", resp.StatusCode)
	}

	// events_dropped mirrors into the registry once the handler wires
	// the counter; emit past the ring again to see it move.
	emitN(log, 1)
	if got := reg.Counter("events_dropped").Value(); got == 0 {
		t.Error("events_dropped counter not wired to the log")
	}

	resp, body = get("/spans")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "transfer") {
		t.Errorf("/spans -> %d %q", resp.StatusCode, body)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof not registered with Pprof: true (%d)", resp.StatusCode)
	}
}

func TestHTTPSpansEmptyAndNoPprof(t *testing.T) {
	srv, err := ServeOpts("127.0.0.1:0", HandlerOpts{Log: NewLog(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("/spans without a source = %q, want []", body)
	}
	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without opt-in (%d)", resp.StatusCode)
	}
}
