package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// SpanSource exposes a tracer's live spans without obs depending on the
// span package (which depends on obs). internal/obs/span's *Tracer
// implements it.
type SpanSource interface {
	WriteLiveSpans(w io.Writer) error
}

// HandlerOpts configures the observability HTTP surface.
type HandlerOpts struct {
	// Registry backs /metrics; optional.
	Registry *Registry
	// Log backs /events; optional. When both Registry and Log are set,
	// ring drops are mirrored into the registry's events_dropped
	// counter.
	Log *Log
	// Spans backs /spans (live span dump); optional — without it the
	// endpoint serves an empty array.
	Spans SpanSource
	// Pprof registers the net/http/pprof handlers under /debug/pprof/.
	// Opt-in: profiles expose stacks and heap contents, so they only
	// ride the listener when the operator asked (the -pprof flag).
	Pprof bool
}

// Handler serves the observability surface:
//
//	GET /metrics               expvar-style JSON snapshot of the registry
//	GET /events?n=100          JSONL tail of the most recent events
//	GET /events?since=42       JSONL of events with seq > 42 (resume);
//	                           X-Events-Dropped reports the gap
//	GET /spans                 JSON array of currently live spans
//
// Either argument may be nil; the corresponding endpoint then serves an
// empty snapshot or tail.
func Handler(reg *Registry, log *Log) http.Handler {
	return NewHandler(HandlerOpts{Registry: reg, Log: log})
}

// NewHandler is Handler with the full option set (span source, pprof).
func NewHandler(opts HandlerOpts) http.Handler {
	reg, log := opts.Registry, opts.Log
	if reg != nil && log != nil {
		log.SetDropCounter(reg.Counter("events_dropped"))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		var lines [][]byte
		if q := r.URL.Query().Get("since"); q != "" {
			since, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			// since mode resumes a stream: no implicit 100-line cap
			// unless the caller also bounded with n.
			limit := 0
			if r.URL.Query().Get("n") != "" {
				limit = n
			}
			var missed uint64
			lines, missed = log.TailSince(since, limit)
			w.Header().Set("X-Events-Dropped", strconv.FormatUint(missed, 10))
		} else {
			lines = log.Tail(n)
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if opts.Spans == nil {
			_, _ = io.WriteString(w, "[]\n")
			return
		}
		_ = opts.Spans.WriteLiveSpans(w)
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
	log *Log
}

// Serve starts the observability endpoint on addr (e.g. ":9632") and
// returns once it is listening. Close the returned server to stop it.
func Serve(addr string, reg *Registry, log *Log) (*HTTPServer, error) {
	return ServeOpts(addr, HandlerOpts{Registry: reg, Log: log})
}

// ServeOpts is Serve with the full option set.
func ServeOpts(addr string, opts HandlerOpts) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: NewHandler(opts)}, log: opts.Log}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listening address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint and flushes the event log it was serving, so
// a process shutting its observability surface down does not strand the
// tail of a buffered event file.
func (s *HTTPServer) Close() error {
	err := s.srv.Close()
	if ferr := s.log.Flush(); err == nil {
		err = ferr
	}
	return err
}
