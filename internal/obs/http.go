package obs

import (
	"net"
	"net/http"
	"strconv"
)

// Handler serves the observability surface:
//
//	GET /metrics           expvar-style JSON snapshot of the registry
//	GET /events?n=100      JSONL tail of the most recent events
//
// Either argument may be nil; the corresponding endpoint then serves an
// empty snapshot or tail.
func Handler(reg *Registry, log *Log) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		for _, line := range log.Tail(n) {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
	})
	return mux
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
	log *Log
}

// Serve starts the observability endpoint on addr (e.g. ":9632") and
// returns once it is listening. Close the returned server to stop it.
func Serve(addr string, reg *Registry, log *Log) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: Handler(reg, log)}, log: log}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listening address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint and flushes the event log it was serving, so
// a process shutting its observability surface down does not strand the
// tail of a buffered event file.
func (s *HTTPServer) Close() error {
	err := s.srv.Close()
	if ferr := s.log.Flush(); err == nil {
		err = ferr
	}
	return err
}
