package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add books n occurrences (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc books one occurrence.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value (last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histWindow is how many recent observations a histogram retains for
// its sliding-window statistics.
const histWindow = 256

// Histogram accumulates observations into cumulative buckets and keeps
// a count-based window of the most recent observations so snapshots can
// report both lifetime shape and recent behaviour.
type Histogram struct {
	bounds []float64 // sorted finite upper bounds; overflow is implicit

	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is overflow
	count  int64
	sum    float64
	window []float64 // ring of the last histWindow observations
	next   int
	full   bool
}

// DefaultBuckets is the bucket layout used when a histogram is created
// without explicit bounds: decade-ish steps covering microseconds to
// minutes when observing milliseconds, or bytes to gigabytes when
// observing sizes.
var DefaultBuckets = []float64{0.1, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 60000}

// Observe books one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.window[h.next] = v
	h.next++
	if h.next == len(h.window) {
		h.next = 0
		h.full = true
	}
}

// Bucket is one cumulative histogram bucket: Count observations were
// at most Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// WindowStats summarizes a histogram's recent observations.
type WindowStats struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64       `json:"count"`
	Sum     float64     `json:"sum"`
	Buckets []Bucket    `json:"buckets,omitempty"`
	Window  WindowStats `json:"window"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets = append(s.Buckets, Bucket{Le: b, Count: cum})
	}
	win := h.window[:h.next]
	if h.full {
		win = h.window
	}
	for i, v := range win {
		if i == 0 || v < s.Window.Min {
			s.Window.Min = v
		}
		if i == 0 || v > s.Window.Max {
			s.Window.Max = v
		}
		s.Window.Mean += v
	}
	s.Window.Count = len(win)
	if len(win) > 0 {
		s.Window.Mean /= float64(len(win))
	}
	return s
}

// Family is a set of counters sharing one name and distinguished by a
// single label — e.g. retries by cause, or bytes by chunk class. In
// snapshots each member appears as `name{label="value"}`.
type Family struct {
	name, label string

	mu   sync.Mutex
	kids map[string]*Counter
}

// With returns the counter for one label value, creating it on first
// use.
func (f *Family) With(value string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.kids[value]
	if c == nil {
		c = &Counter{}
		f.kids[value] = c
	}
	return c
}

// Registry is a named collection of metrics. Metrics are get-or-create:
// the first caller of Counter("x") allocates it, later callers share
// it. All methods are safe for concurrent use and safe on a nil
// registry (they return nil metrics, whose methods are no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// finite upper bounds (DefaultBuckets when none) on first use. Later
// calls ignore the bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{
			bounds: bs,
			counts: make([]int64, len(bs)+1),
			window: make([]float64, histWindow),
		}
		r.hists[name] = h
	}
	return h
}

// Family returns the labeled counter family, creating it on first use.
func (r *Registry) Family(name, label string) *Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*Family)
	}
	f := r.families[name]
	if f == nil {
		f = &Family{name: name, label: label, kids: make(map[string]*Counter)}
		r.families[name] = f
	}
	return f
}

// Snapshot is a point-in-time copy of every metric in a registry.
// Family members are flattened into Counters as `name{label="value"}`.
// Map keys sort deterministically under encoding/json, so two
// snapshots of identical registries marshal identically.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	families := make(map[string]*Family, len(r.families))
	for k, v := range r.families {
		families[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 || len(families) > 0 {
		s.Counters = make(map[string]int64, len(counters))
	}
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, f := range families {
		f.mu.Lock()
		for value, c := range f.kids {
			s.Counters[fmt.Sprintf("%s{%s=%q}", name, f.label, value)] = c.Value()
		}
		f.mu.Unlock()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for name, g := range gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for name, h := range hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON — the payload
// of the /metrics endpoint and of the cmd tools' --metrics dumps.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
