package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic Clock advancing one second per
// call, so event timestamps in tests are reproducible.
func fixedClock() Clock {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	var l *Log
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(2)
	r.Histogram("h").Observe(3)
	r.Family("f", "k").With("v").Inc()
	l.Emit(EvGetIssued, "k", 1)
	l.SetClock(fixedClock())
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if lines := l.Tail(10); lines != nil {
		t.Errorf("nil log tail = %v", lines)
	}
	if l.Err() != nil || l.Seq() != 0 {
		t.Error("nil log err/seq wrong")
	}
}

func TestCountersGaugesFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("bytes_received").Add(100)
	r.Counter("bytes_received").Add(23)
	r.Counter("bytes_received").Add(-5) // ignored
	if got := r.Counter("bytes_received").Value(); got != 123 {
		t.Errorf("counter = %d, want 123", got)
	}
	r.Gauge("energy_joules").Set(2.5)
	r.Gauge("energy_joules").Add(0.5)
	if got := r.Gauge("energy_joules").Value(); got != 3.0 {
		t.Errorf("gauge = %v, want 3.0", got)
	}
	f := r.Family("retries_by_cause", "cause")
	f.With("redial").Inc()
	f.With("redial").Inc()
	f.With("get").Inc()

	s := r.Snapshot()
	if s.Counters[`retries_by_cause{cause="redial"}`] != 2 {
		t.Errorf("family member missing from snapshot: %v", s.Counters)
	}
	if s.Counters[`retries_by_cause{cause="get"}`] != 1 {
		t.Errorf("family member missing from snapshot: %v", s.Counters)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ms", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 555.5 {
		t.Errorf("count/sum = %d/%v", s.Count, s.Sum)
	}
	wantCum := []int64{1, 2, 3} // cumulative ≤1, ≤10, ≤100
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %v count = %d, want %d", b.Le, b.Count, wantCum[i])
		}
	}
	if s.Window.Count != 4 || s.Window.Min != 0.5 || s.Window.Max != 500 {
		t.Errorf("window stats wrong: %+v", s.Window)
	}
	// The window slides: after >histWindow observations only the most
	// recent survive.
	for i := 0; i < histWindow+10; i++ {
		h.Observe(1000)
	}
	if w := h.snapshot().Window; w.Min != 1000 || w.Count != histWindow {
		t.Errorf("slid window wrong: %+v", w)
	}
	// Same name returns the same histogram regardless of bounds.
	if r.Histogram("ms", 7) != h {
		t.Error("histogram not shared by name")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("z").Set(9)
		r.Family("f", "k").With("x").Inc()
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshot JSON not deterministic:\n%s\n%s", b1.String(), b2.String())
	}
}

func TestEventLogEmitAndTail(t *testing.T) {
	var out bytes.Buffer
	l := NewLog(&out)
	l.SetClock(fixedClock())
	l.Emit(EvTransferStarted, "label", "MinE", "bytes", 1024)
	l.Emit(EvGetIssued, "file", `na"me`, "offset", int64(0))
	l.Emit(EvGetSettled, "file", `na"me`, "ms", 1.5)

	if l.Seq() != 3 {
		t.Errorf("seq = %d, want 3", l.Seq())
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"seq", "t", "type"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("line %d missing %q: %s", i, key, line)
			}
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["type"] != EvTransferStarted || first["label"] != "MinE" || first["bytes"] != float64(1024) {
		t.Errorf("first event wrong: %v", first)
	}

	tail := l.Tail(2)
	if len(tail) != 2 {
		t.Fatalf("tail = %d lines, want 2", len(tail))
	}
	if !bytes.Contains(tail[1], []byte(EvGetSettled)) {
		t.Errorf("tail out of order: %s", tail[1])
	}
	if got := l.Tail(0); len(got) != 3 {
		t.Errorf("tail(0) = %d lines, want all 3", len(got))
	}
}

func TestEventLogRingWrap(t *testing.T) {
	l := NewLog(nil)
	l.SetClock(fixedClock())
	for i := 0; i < DefaultRingSize+7; i++ {
		l.Emit("tick", "i", i)
	}
	tail := l.Tail(0)
	if len(tail) != DefaultRingSize {
		t.Fatalf("ring holds %d, want %d", len(tail), DefaultRingSize)
	}
	var last map[string]any
	if err := json.Unmarshal(tail[len(tail)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last["i"] != float64(DefaultRingSize+6) {
		t.Errorf("last event i = %v", last["i"])
	}
	var oldest map[string]any
	if err := json.Unmarshal(tail[0], &oldest); err != nil {
		t.Fatal(err)
	}
	if oldest["i"] != float64(7) {
		t.Errorf("oldest retained i = %v, want 7", oldest["i"])
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestEventLogWriterError(t *testing.T) {
	l := NewLog(failWriter{})
	l.SetClock(fixedClock())
	l.Emit("tick")
	if l.Err() == nil {
		t.Error("writer error not surfaced")
	}
	// The ring still works.
	if len(l.Tail(0)) != 1 {
		t.Error("ring lost the event")
	}
}

// closeRecorder captures writes and records whether Close was called —
// the stand-in for an events file owned by a buffered log.
type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestBufferedLogFlushesOnClose(t *testing.T) {
	rec := &closeRecorder{}
	l := NewBufferedLog(rec, 4096)
	l.SetClock(fixedClock())
	l.Emit("tick", "n", 1)
	// One small event sits in the buffer, not in the writer: that is the
	// point of buffering — and the bug when nothing ever flushes it.
	if rec.Len() != 0 {
		t.Fatalf("event bypassed the buffer: %q", rec.String())
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.String(), `"type":"tick"`) {
		t.Errorf("flushed output missing event: %q", rec.String())
	}
	l.Emit("tock", "n", 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.String(), `"type":"tock"`) {
		t.Errorf("Close did not flush the tail: %q", rec.String())
	}
	if !rec.closed {
		t.Error("Close did not close the owned writer")
	}
}

func TestHTTPServerCloseFlushesLog(t *testing.T) {
	rec := &closeRecorder{}
	log := NewBufferedLog(rec, 8192)
	log.SetClock(fixedClock())
	srv, err := Serve("127.0.0.1:0", NewRegistry(), log)
	if err != nil {
		t.Fatal(err)
	}
	log.Emit("tick")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.String(), `"type":"tick"`) {
		t.Errorf("handler shutdown did not flush buffered events: %q", rec.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	l := NewLog(io.Discard)
	l.SetClock(fixedClock())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i))
				r.Family("f", "w").With(fmt.Sprint(w % 2)).Inc()
				l.Emit("tick", "w", w)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	if got := r.Gauge("g").Value(); got != 4000 {
		t.Errorf("gauge = %v, want 4000", got)
	}
	if l.Seq() != 4000 {
		t.Errorf("seq = %d, want 4000", l.Seq())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bytes_received").Add(42)
	log := NewLog(nil)
	log.SetClock(fixedClock())
	log.Emit(EvChannelDialed, "sid", 1)
	log.Emit(EvChannelDialed, "sid", 2)

	srv, err := Serve("127.0.0.1:0", reg, log)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["bytes_received"] != 42 {
		t.Errorf("/metrics counters = %v", snap.Counters)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/events?n=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 {
		t.Fatalf("/events?n=1 returned %d lines", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("/events line not JSON: %v", err)
	}
	if ev["sid"] != float64(2) {
		t.Errorf("tail returned wrong event: %v", ev)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/events?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n accepted: %d", resp.StatusCode)
	}
}
