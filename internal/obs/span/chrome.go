package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// JSON helpers for the loosely-typed event lines.

func str(ev map[string]any, key string) string {
	s, _ := ev[key].(string)
	return s
}

func f64(ev map[string]any, key string) float64 {
	f, _ := ev[key].(float64)
	return f
}

func u64(ev map[string]any, key string) uint64 {
	f, ok := ev[key].(float64)
	if !ok || f < 0 {
		return 0
	}
	return uint64(f)
}

// evTime parses an event's "t" timestamp (RFC3339Nano, the obs.Log
// stamp format).
func evTime(ev map[string]any) (time.Time, error) {
	raw, _ := ev["t"].(string)
	t, err := time.Parse(time.RFC3339Nano, raw)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad event timestamp %q: %w", raw, err)
	}
	return t, nil
}

// spanEventKeys are the envelope keys of span_begin/span_end events;
// everything else on the line is a caller attr.
var spanEventKeys = map[string]bool{
	"seq": true, "t": true, "type": true,
	"trace": true, "span": true, "parent": true, "name": true,
	"dur_ms": true, "bytes": true, "joules": true,
}

func extraAttrs(ev map[string]any) map[string]any {
	var attrs map[string]any
	for k, v := range ev {
		if spanEventKeys[k] {
			continue
		}
		if attrs == nil {
			attrs = make(map[string]any)
		}
		attrs[k] = v
	}
	return attrs
}

// chromeEvent is one Chrome trace-event (the "X" complete-event form
// chrome://tracing and Perfetto load directly).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds from the capture epoch
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the forest in Chrome trace-event JSON.
// Traces map to tids (one lane per trace), timestamps are microseconds
// relative to the earliest span start, and each event's args carry the
// span's bytes and both energy figures. Open spans are exported with
// zero duration so a leaked span is still visible on the timeline.
func WriteChromeTrace(w io.Writer, f *Forest) error {
	if f == nil || len(f.ByID) == 0 {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	ids := make([]uint64, 0, len(f.ByID))
	var epoch time.Time
	for id, rec := range f.ByID {
		ids = append(ids, id)
		if epoch.IsZero() || rec.Start.Before(epoch) {
			epoch = rec.Start
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	tids := make(map[string]int)
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(ids))}
	for _, id := range ids {
		rec := f.ByID[id]
		tid, ok := tids[rec.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[rec.Trace] = tid
		}
		ev := chromeEvent{
			Name: rec.Name,
			Cat:  rec.Trace,
			Ph:   "X",
			TS:   float64(rec.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  rec.DurMS * 1000,
			PID:  1,
			TID:  tid,
			Args: map[string]any{
				"span":        rec.ID,
				"parent":      rec.Parent,
				"bytes":       rec.Bytes,
				"joules":      rec.Joules,
				"self_joules": rec.SelfJoules,
			},
		}
		if rec.Open {
			ev.Dur = 0
			ev.Args["leaked"] = true
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
