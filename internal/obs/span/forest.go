package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Record is one reconstructed span from a recorded events stream.
type Record struct {
	Trace  string
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	End    time.Time
	DurMS  float64
	Bytes  int64
	// Joules is the online (inclusive) estimate the span_end carried.
	Joules float64
	// SelfJoules is the offline exclusive attribution filled by
	// Attribute: the exact sampled energy of the intervals this span
	// was a live leaf for. Self-joules over a forest sum to the
	// sampled total.
	SelfJoules float64
	// Attrs holds every other key the begin/end events carried.
	Attrs map[string]any
	// Open reports a span_begin with no matching span_end (a leak).
	Open bool

	Children []*Record
}

// EnergyPoint is one cumulative-energy sample from the stream
// (energy_model_sample → joules_total).
type EnergyPoint struct {
	T time.Time
	J float64
}

// Forest is a reconstructed span forest plus the energy curve recorded
// alongside it.
type Forest struct {
	Roots []*Record
	ByID  map[uint64]*Record
	// Samples is the cumulative-energy curve in time order.
	Samples []EnergyPoint
	// Leaked are spans that began but never ended.
	Leaked []*Record
	// Dangling counts span_end events whose begin was never seen
	// (ring-buffer truncation or a partial capture).
	Dangling int
	// Unattributed is energy from intervals during which no span was
	// live, filled by Attribute.
	Unattributed float64
}

// TotalJoules returns the final cumulative sample minus the first —
// the energy the recorded curve spans.
func (f *Forest) TotalJoules() float64 {
	if len(f.Samples) == 0 {
		return 0
	}
	return f.Samples[len(f.Samples)-1].J - f.Samples[0].J
}

// FinalJoules returns the last cumulative sample — the source's
// absolute energy total at the end of the recording (what the sum of
// attributed self-joules is checked against, since Attribute anchors
// the curve at zero).
func (f *Forest) FinalJoules() float64 {
	if len(f.Samples) == 0 {
		return 0
	}
	return f.Samples[len(f.Samples)-1].J
}

// SpanCount returns how many spans the forest holds.
func (f *Forest) SpanCount() int { return len(f.ByID) }

// ReadForest reconstructs the span forest from a JSONL events stream
// (the obs.Log format): span_begin/span_end pairs become Records,
// energy_model_sample events become the energy curve, everything else
// is skipped. Span ends are anchored as Start+DurMS rather than the
// span_end event's own timestamp, so a forest survives coarse or
// slightly skewed event-log clocks.
func ReadForest(r io.Reader) (*Forest, error) {
	f := &Forest{ByID: make(map[uint64]*Record)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", lineNo, err)
		}
		typ, _ := ev["type"].(string)
		switch typ {
		case "span_begin":
			rec := &Record{
				Trace:  str(ev, "trace"),
				ID:     u64(ev, "span"),
				Parent: u64(ev, "parent"),
				Name:   str(ev, "name"),
				Open:   true,
			}
			t, err := evTime(ev)
			if err != nil {
				return nil, fmt.Errorf("span: line %d: %w", lineNo, err)
			}
			rec.Start = t
			rec.Attrs = extraAttrs(ev)
			f.ByID[rec.ID] = rec
		case "span_end":
			id := u64(ev, "span")
			rec := f.ByID[id]
			if rec == nil {
				f.Dangling++
				continue
			}
			rec.Open = false
			rec.DurMS = f64(ev, "dur_ms")
			rec.Bytes = int64(f64(ev, "bytes"))
			rec.Joules = f64(ev, "joules")
			rec.End = rec.Start.Add(time.Duration(rec.DurMS * float64(time.Millisecond)))
			for k, v := range extraAttrs(ev) {
				if rec.Attrs == nil {
					rec.Attrs = make(map[string]any)
				}
				rec.Attrs[k] = v
			}
		case "energy_model_sample":
			t, err := evTime(ev)
			if err != nil {
				return nil, fmt.Errorf("span: line %d: %w", lineNo, err)
			}
			f.Samples = append(f.Samples, EnergyPoint{T: t, J: f64(ev, "joules_total")})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Samples, func(i, j int) bool { return f.Samples[i].T.Before(f.Samples[j].T) })

	// Link children and collect roots/leaks. A span whose parent was
	// never seen (truncated capture) is promoted to a root.
	ids := make([]uint64, 0, len(f.ByID))
	for id := range f.ByID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := f.ByID[id]
		if rec.Open {
			f.Leaked = append(f.Leaked, rec)
		}
		if p := f.ByID[rec.Parent]; rec.Parent != 0 && p != nil {
			p.Children = append(p.Children, rec)
		} else {
			f.Roots = append(f.Roots, rec)
		}
	}
	return f, nil
}

// spanEdge is one begin/end boundary in the attribution sweep.
type spanEdge struct {
	t     time.Time
	begin bool
	rec   *Record
}

// Attribute replays the recorded energy curve over the forest and fills
// each Record's SelfJoules: for every interval between consecutive span
// boundaries, the curve's exact energy delta is split equally among the
// spans that were live LEAVES (live spans none of whose children were
// live) during it. Leaf-exclusive splitting is what makes self-joules
// sum to the curve total instead of multiply counting parents over
// their children; intervals with no live span book into
// Forest.Unattributed. Open (leaked) spans are skipped — their end is
// unknown.
func Attribute(f *Forest) {
	if f == nil || len(f.Samples) == 0 {
		return
	}
	curve := f.Samples
	// If spans began before the first sample, anchor the curve at zero
	// energy at the earliest span start: sources are primed when the
	// transfer starts, so cumulative energy there is the curve origin.
	var edges []spanEdge
	for _, rec := range f.ByID {
		if rec.Open {
			continue
		}
		edges = append(edges, spanEdge{t: rec.Start, begin: true, rec: rec})
		edges = append(edges, spanEdge{t: rec.End, begin: false, rec: rec})
	}
	if len(edges) == 0 {
		return
	}
	sort.Slice(edges, func(i, j int) bool {
		if !edges[i].t.Equal(edges[j].t) {
			return edges[i].t.Before(edges[j].t)
		}
		// Begins before ends at the same instant, so zero-length spans
		// still count as live for their instant.
		return edges[i].begin && !edges[j].begin
	})
	// Spans beginning before the first recorded sample get an anchor at
	// zero energy: the source is primed when the transfer starts, so the
	// cumulative curve's origin is the earliest span start. Without it
	// the energy of the prime→first-sample interval (the transfer was
	// already moving bytes) would clamp away and the self-joules sum
	// would undershoot the source total.
	if first := edges[0].t; first.Before(curve[0].T) {
		curve = append([]EnergyPoint{{T: first, J: 0}}, curve...)
	}

	energyAt := func(ts time.Time) float64 { return interpEnergy(curve, ts) }

	live := make(map[*Record]struct{})
	liveKids := make(map[*Record]int) // live children per live parent
	i := 0
	for i < len(edges) {
		t0 := edges[i].t
		// Apply every edge at t0.
		for i < len(edges) && edges[i].t.Equal(t0) {
			e := edges[i]
			if e.begin {
				live[e.rec] = struct{}{}
				if p := f.ByID[e.rec.Parent]; p != nil {
					liveKids[p]++
				}
			} else {
				delete(live, e.rec)
				if p := f.ByID[e.rec.Parent]; p != nil {
					if liveKids[p]--; liveKids[p] == 0 {
						delete(liveKids, p)
					}
				}
			}
			i++
		}
		if i >= len(edges) {
			break
		}
		t1 := edges[i].t
		dE := energyAt(t1) - energyAt(t0)
		if dE <= 0 {
			continue
		}
		var leaves []*Record
		for rec := range live {
			if liveKids[rec] == 0 {
				leaves = append(leaves, rec)
			}
		}
		if len(leaves) == 0 {
			f.Unattributed += dE
			continue
		}
		share := dE / float64(len(leaves))
		for _, rec := range leaves {
			rec.SelfJoules += share
		}
	}
	// Energy before the first edge or after the last is outside every
	// span's life.
	f.Unattributed += energyAt(edges[0].t) - curve[0].J
	f.Unattributed += curve[len(curve)-1].J - energyAt(edges[len(edges)-1].t)
}

// interpEnergy evaluates the piecewise-linear cumulative curve at ts
// (clamped flat before the first and after the last sample).
func interpEnergy(curve []EnergyPoint, ts time.Time) float64 {
	if len(curve) == 0 {
		return 0
	}
	if !ts.After(curve[0].T) {
		return curve[0].J
	}
	last := curve[len(curve)-1]
	if !ts.Before(last.T) {
		return last.J
	}
	i := sort.Search(len(curve), func(i int) bool { return !curve[i].T.Before(ts) })
	a, b := curve[i-1], curve[i]
	dt := b.T.Sub(a.T).Seconds()
	if dt <= 0 {
		return b.J
	}
	frac := ts.Sub(a.T).Seconds() / dt
	return a.J + (b.J-a.J)*frac
}

// SumSelfJoules returns the forest-wide sum of attributed self-joules,
// accumulated in span-ID order so the float total is run-stable.
func (f *Forest) SumSelfJoules() float64 {
	ids := make([]uint64, 0, len(f.ByID))
	for id := range f.ByID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var total float64
	for _, id := range ids {
		total += f.ByID[id].SelfJoules
	}
	return total
}

// CriticalPath walks root's last-finishing chain: at each node the
// child whose End is latest, until a leaf. It is the dependency chain
// that bounded the root's duration.
func CriticalPath(root *Record) []*Record {
	if root == nil {
		return nil
	}
	path := []*Record{root}
	cur := root
	for {
		var last *Record
		for _, c := range cur.Children {
			if c.Open {
				continue
			}
			if last == nil || c.End.After(last.End) {
				last = c
			}
		}
		if last == nil {
			return path
		}
		path = append(path, last)
		cur = last
	}
}
