package span

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// streamBuilder assembles a synthetic JSONL events stream with exact
// timestamps, the shape ReadForest consumes.
type streamBuilder struct {
	buf   bytes.Buffer
	seq   int
	epoch time.Time
}

func newStream() *streamBuilder {
	return &streamBuilder{epoch: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (b *streamBuilder) at(off time.Duration) string {
	return b.epoch.Add(off).Format(time.RFC3339Nano)
}

func (b *streamBuilder) line(typ string, off time.Duration, kv string) {
	b.seq++
	fmt.Fprintf(&b.buf, `{"seq":%d,"t":%q,"type":%q,%s}`+"\n", b.seq, b.at(off), typ, kv)
}

// span writes a begin at off and, when dur >= 0, an end carrying dur_ms
// (ReadForest anchors End = Start + dur_ms).
func (b *streamBuilder) span(id, parent uint64, name string, off, dur time.Duration) {
	b.line("span_begin", off, fmt.Sprintf(`"trace":"t1","span":%d,"parent":%d,"name":%q`, id, parent, name))
	if dur >= 0 {
		b.line("span_end", off+dur, fmt.Sprintf(
			`"trace":"t1","span":%d,"parent":%d,"name":%q,"dur_ms":%v,"bytes":0,"joules":0`,
			id, parent, name, float64(dur)/float64(time.Millisecond)))
	}
}

func (b *streamBuilder) energy(off time.Duration, joules float64) {
	b.line("energy_model_sample", off, fmt.Sprintf(`"joules_total":%v`, joules))
}

func (b *streamBuilder) forest(t *testing.T) *Forest {
	t.Helper()
	f, err := ReadForest(&b.buf)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestReadForestShapes(t *testing.T) {
	b := newStream()
	b.span(1, 0, NameTransfer, 0, 10*time.Second)
	b.span(2, 1, NameChunk, 0, 9*time.Second)
	b.span(3, 1, "leaky", time.Second, -1)                    // begin, no end
	b.span(4, 99, "orphan", 2*time.Second, time.Second)       // parent never seen
	b.line("span_end", 3*time.Second, `"span":77,"dur_ms":1`) // dangling end
	b.line("metric_flush", 0, `"n":1`)                        // unrelated event type

	f := b.forest(t)
	if f.SpanCount() != 4 {
		t.Errorf("SpanCount = %d, want 4", f.SpanCount())
	}
	if len(f.Leaked) != 1 || f.Leaked[0].ID != 3 {
		t.Errorf("Leaked = %+v", f.Leaked)
	}
	if f.Dangling != 1 {
		t.Errorf("Dangling = %d", f.Dangling)
	}
	// Roots: the transfer plus the orphan promoted for its missing parent.
	if len(f.Roots) != 2 {
		t.Fatalf("%d roots, want 2", len(f.Roots))
	}
	root := f.ByID[1]
	if len(root.Children) != 2 {
		t.Errorf("root has %d children, want chunk + leaky", len(root.Children))
	}
	if got := f.ByID[2].End; !got.Equal(b.epoch.Add(9 * time.Second)) {
		t.Errorf("chunk End = %v, want start+dur", got)
	}
}

func TestAttributeLeafSplit(t *testing.T) {
	// Root [0,10s] with two children both [0,10s]: the whole curve splits
	// between the two leaves, the covering parent books nothing.
	b := newStream()
	b.span(1, 0, NameTransfer, 0, 10*time.Second)
	b.span(2, 1, "a", 0, 10*time.Second)
	b.span(3, 1, "b", 0, 10*time.Second)
	b.energy(0, 0)
	b.energy(10*time.Second, 100)

	f := b.forest(t)
	Attribute(f)
	if got := f.ByID[2].SelfJoules; math.Abs(got-50) > 1e-9 {
		t.Errorf("leaf a self-joules = %v, want 50", got)
	}
	if got := f.ByID[3].SelfJoules; math.Abs(got-50) > 1e-9 {
		t.Errorf("leaf b self-joules = %v, want 50", got)
	}
	if got := f.ByID[1].SelfJoules; got != 0 {
		t.Errorf("covered parent self-joules = %v, want 0", got)
	}
	if sum := f.SumSelfJoules(); math.Abs(sum-f.FinalJoules()) > 1e-9 {
		t.Errorf("sum %v != final %v", sum, f.FinalJoules())
	}
	if f.Unattributed != 0 {
		t.Errorf("Unattributed = %v on full coverage", f.Unattributed)
	}
}

func TestAttributeGapsAndPartialCoverage(t *testing.T) {
	// Two disjoint spans with a hole between them: linear 10 W curve over
	// [0,6s] puts 20 J on each span and 20 J in the hole.
	b := newStream()
	b.span(1, 0, "first", 0, 2*time.Second)
	b.span(2, 0, "second", 4*time.Second, 2*time.Second)
	b.energy(0, 0)
	b.energy(6*time.Second, 60)

	f := b.forest(t)
	Attribute(f)
	for id, want := range map[uint64]float64{1: 20, 2: 20} {
		if got := f.ByID[id].SelfJoules; math.Abs(got-want) > 1e-9 {
			t.Errorf("span %d self-joules = %v, want %v", id, got, want)
		}
	}
	if math.Abs(f.Unattributed-20) > 1e-9 {
		t.Errorf("Unattributed = %v, want 20 (the hole)", f.Unattributed)
	}
	// Accounting identity.
	if got := f.SumSelfJoules() + f.Unattributed; math.Abs(got-f.FinalJoules()) > 1e-9 {
		t.Errorf("attributed+unattributed %v != final %v", got, f.FinalJoules())
	}
}

func TestAttributeAnchorsEarlySpans(t *testing.T) {
	// The span starts before the first recorded sample: the curve gets a
	// zero-energy anchor at the span start, so the prime-to-first-sample
	// energy still lands on the span and the sum matches the final total.
	b := newStream()
	b.span(1, 0, NameTransfer, 0, 10*time.Second)
	b.energy(5*time.Second, 50)
	b.energy(10*time.Second, 100)

	f := b.forest(t)
	Attribute(f)
	if got := f.ByID[1].SelfJoules; math.Abs(got-100) > 1e-9 {
		t.Errorf("self-joules = %v, want the full 100", got)
	}
	if got := f.FinalJoules(); got != 100 {
		t.Errorf("FinalJoules = %v", got)
	}
	if got := f.TotalJoules(); got != 50 {
		t.Errorf("TotalJoules (curve delta) = %v, want 50", got)
	}
}

func TestAttributeSkipsLeakedAndEmpty(t *testing.T) {
	b := newStream()
	b.span(1, 0, "leaky", 0, -1)
	b.energy(0, 0)
	b.energy(time.Second, 10)
	f := b.forest(t)
	Attribute(f)
	if f.ByID[1].SelfJoules != 0 {
		t.Error("leaked span got energy attributed")
	}
	Attribute(nil)                                 // must not panic
	Attribute(&Forest{ByID: map[uint64]*Record{}}) // no samples, no edges
}

func TestInterpEnergy(t *testing.T) {
	curve := []EnergyPoint{
		{T: time.Unix(0, 0), J: 0},
		{T: time.Unix(10, 0), J: 100},
	}
	cases := []struct {
		at   int64
		want float64
	}{
		{-5, 0},   // clamped before
		{0, 0},    // first point
		{5, 50},   // midpoint
		{10, 100}, // last point
		{15, 100}, // clamped after
	}
	for _, c := range cases {
		if got := interpEnergy(curve, time.Unix(c.at, 0)); got != c.want {
			t.Errorf("interpEnergy(%ds) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := interpEnergy(nil, time.Unix(0, 0)); got != 0 {
		t.Errorf("empty curve = %v", got)
	}
}

func TestCriticalPath(t *testing.T) {
	// root -> b (ends at 9s) -> b2 (ends at 8s); child a ends earlier and
	// the open child is ignored.
	b := newStream()
	b.span(1, 0, NameTransfer, 0, 10*time.Second)
	b.span(2, 1, "a", 0, 3*time.Second)
	b.span(3, 1, "b", time.Second, 8*time.Second)
	b.span(4, 3, "b2", 2*time.Second, 6*time.Second)
	b.span(5, 1, "open", 0, -1)

	f := b.forest(t)
	path := CriticalPath(f.ByID[1])
	var names []string
	for _, rec := range path {
		names = append(names, rec.Name)
	}
	if got := strings.Join(names, ">"); got != "transfer>b>b2" {
		t.Errorf("critical path = %s", got)
	}
	if CriticalPath(nil) != nil {
		t.Error("nil root gave a path")
	}
}

func TestChromeTraceExport(t *testing.T) {
	b := newStream()
	b.span(1, 0, NameTransfer, 0, 10*time.Second)
	b.span(2, 1, NameGet, time.Second, 2*time.Second)
	b.span(3, 1, "open", 0, -1)
	b.energy(0, 0)
	b.energy(10*time.Second, 100)
	f := b.forest(t)
	Attribute(f)

	var out bytes.Buffer
	if err := WriteChromeTrace(&out, f); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 3 {
		t.Fatalf("export: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.TS < 0 {
			t.Errorf("bad event %+v", ev)
		}
		if ev.Name == NameGet && ev.Dur != 2e6 {
			t.Errorf("get dur = %vus, want 2s", ev.Dur)
		}
		if ev.Name == "open" {
			if ev.Dur != 0 || ev.Args["leaked"] != true {
				t.Errorf("leaked span export %+v", ev)
			}
		}
	}

	// Empty forest: still a valid document.
	out.Reset()
	if err := WriteChromeTrace(&out, &Forest{ByID: map[uint64]*Record{}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"traceEvents":[]`) {
		t.Errorf("empty export = %s", out.String())
	}
}
