package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/didclab/eta/internal/obs"
)

// manualClock is a hand-advanced obs.Clock for deterministic span times.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// parseEvents splits a JSONL buffer into decoded event maps.
func parseEvents(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetClock(newManualClock().Now)
	tr.EnergySample(5)
	if s := tr.Root("x"); s != nil {
		t.Error("nil tracer minted a span")
	}
	if s := tr.StartChild(nil, "x"); s != nil {
		t.Error("nil tracer minted a child")
	}
	if tr.LiveCount() != 0 {
		t.Error("nil tracer has live spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteLiveSpans(&buf); err != nil || strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil tracer WriteLiveSpans = %q, %v", buf.String(), err)
	}

	var s *Span
	if s.Child("y") != nil {
		t.Error("nil span minted a child")
	}
	s.AddBytes(10)
	s.End()
	if s.Joules() != 0 || s.ID() != 0 || s.Trace() != "" {
		t.Error("nil span accessors not zero")
	}
}

func TestSpanEventsAndMetrics(t *testing.T) {
	clk := newManualClock()
	var buf bytes.Buffer
	log := obs.NewLog(&buf)
	log.SetClock(clk.Now)
	reg := obs.NewRegistry()
	tr := NewTracer(reg, log)
	tr.SetClock(clk.Now)

	root := tr.Root(NameTransfer, "label", "unit")
	clk.Advance(10 * time.Millisecond)
	child := root.Child(NameGet, "file", "f0")
	if child.Trace() != root.Trace() {
		t.Errorf("child trace %q != root trace %q", child.Trace(), root.Trace())
	}
	if tr.LiveCount() != 2 {
		t.Errorf("LiveCount = %d, want 2", tr.LiveCount())
	}
	child.AddBytes(100)
	child.AddBytes(28)
	child.AddBytes(-5) // ignored
	clk.Advance(40 * time.Millisecond)
	child.End()
	clk.Advance(50 * time.Millisecond)
	root.End("error", "boom")
	if tr.LiveCount() != 0 {
		t.Errorf("LiveCount = %d after ending everything", tr.LiveCount())
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := parseEvents(t, &buf)
	if len(evs) != 4 {
		t.Fatalf("%d events, want 2 begins + 2 ends", len(evs))
	}
	begin, end := evs[1], evs[2] // child begin, child end
	if begin["type"] != obs.EvSpanBegin || begin["name"] != NameGet || begin["file"] != "f0" {
		t.Errorf("child begin event %v", begin)
	}
	if begin["parent"].(float64) != float64(root.ID()) {
		t.Errorf("child parent = %v, root id %d", begin["parent"], root.ID())
	}
	if end["type"] != obs.EvSpanEnd {
		t.Fatalf("event order: %v", end)
	}
	if got := end["dur_ms"].(float64); got != 40 {
		t.Errorf("child dur_ms = %v, want 40", got)
	}
	if got := end["bytes"].(float64); got != 128 {
		t.Errorf("child bytes = %v, want 128", got)
	}
	if evs[3]["error"] != "boom" {
		t.Errorf("root end attrs %v", evs[3])
	}

	if got := reg.Counter("spans_started").Value(); got != 2 {
		t.Errorf("spans_started = %d", got)
	}
	if got := reg.Counter("spans_finished").Value(); got != 2 {
		t.Errorf("spans_finished = %d", got)
	}
	if got := reg.Family("spans_by_name", "name").With(NameGet).Value(); got != 1 {
		t.Errorf("spans_by_name{get} = %d", got)
	}
}

func TestRootSpansGetDistinctTraces(t *testing.T) {
	tr := NewTracer(nil, nil)
	a, b := tr.Root("a"), tr.Root("b")
	defer a.End()
	defer b.End()
	if a.Trace() == b.Trace() {
		t.Errorf("two roots share trace %q", a.Trace())
	}
	if a.ID() == b.ID() {
		t.Errorf("two spans share id %d", a.ID())
	}
}

func TestOnlineEnergyEstimate(t *testing.T) {
	clk := newManualClock()
	var buf bytes.Buffer
	log := obs.NewLog(&buf)
	tr := NewTracer(nil, log)
	tr.SetClock(clk.Now)

	tr.EnergySample(0)
	clk.Advance(1 * time.Second)
	tr.EnergySample(10) // 10 W implied

	s := tr.Root("work") // startJ = 10
	clk.Advance(2 * time.Second)
	if got := s.Joules(); got != 20 {
		t.Errorf("live Joules = %v, want 20 (10W x 2s)", got)
	}
	s.End()
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := parseEvents(t, &buf)
	endEv := evs[len(evs)-1]
	if got := endEv["joules"].(float64); got != 20 {
		t.Errorf("span_end joules = %v, want 20", got)
	}

	// Unprimed tracer estimates zero, never negative.
	tr2 := NewTracer(nil, nil)
	tr2.SetClock(clk.Now)
	s2 := tr2.Root("idle")
	clk.Advance(time.Second)
	if got := s2.Joules(); got != 0 {
		t.Errorf("unprimed Joules = %v", got)
	}
	s2.End()
}

func TestEndIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLog(&buf)
	tr := NewTracer(nil, log)
	s := tr.Root("once")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.End()
		}()
	}
	wg.Wait()
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	ends := 0
	for _, ev := range parseEvents(t, &buf) {
		if ev["type"] == obs.EvSpanEnd {
			ends++
		}
	}
	if ends != 1 {
		t.Errorf("%d span_end events after racing Ends, want 1", ends)
	}
}

func TestWriteLiveSpans(t *testing.T) {
	clk := newManualClock()
	tr := NewTracer(nil, nil)
	tr.SetClock(clk.Now)
	tr.EnergySample(0)
	clk.Advance(time.Second)
	tr.EnergySample(7)

	s := tr.Root(NameChannel, "endpoint", "a")
	s.AddBytes(512)
	clk.Advance(3 * time.Second)

	var buf bytes.Buffer
	if err := tr.WriteLiveSpans(&buf); err != nil {
		t.Fatal(err)
	}
	var live []struct {
		Name   string  `json:"name"`
		AgeMS  float64 `json:"age_ms"`
		Bytes  int64   `json:"bytes"`
		Joules float64 `json:"joules_est"`
	}
	if err := json.Unmarshal(buf.Bytes(), &live); err != nil {
		t.Fatalf("live spans not JSON: %v\n%s", err, buf.String())
	}
	if len(live) != 1 || live[0].Name != NameChannel {
		t.Fatalf("live = %+v", live)
	}
	if live[0].AgeMS != 3000 || live[0].Bytes != 512 {
		t.Errorf("age %v bytes %d", live[0].AgeMS, live[0].Bytes)
	}
	if live[0].Joules != 21 { // 7 W x 3 s
		t.Errorf("joules_est = %v, want 21", live[0].Joules)
	}

	s.End()
	buf.Reset()
	if err := tr.WriteLiveSpans(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("live spans after End = %q", got)
	}
}
