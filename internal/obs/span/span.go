// Package span is the tracing layer over the obs registry and event
// log: a stdlib-only, allocation-conscious span tracer whose spans
// carry {trace_id, span_id, parent_id, name, start, end, attrs} and
// ride the existing JSONL event stream as span_begin/span_end events,
// while being counted and timed into the registry's windowed
// histograms. It inherits every obs design rule (DESIGN.md §8, §13):
//
//   - Stdlib plus obs only; lint.sh audits the closure.
//   - Write-only: nothing on the computation path reads a span back.
//   - Nil-safe: every method on a nil *Tracer or nil *Span is a no-op,
//     so instrumentation points never guard.
//   - Clock-disciplined: all time reads flow through the injected
//     obs.Clock; the wall-clock default is an annotated seam.
//
// Energy attribution runs in two layers. Online, the tracer keeps the
// latest cumulative-energy sample (EnergySample) and the power implied
// by the last two samples; a span ending between samples extrapolates
// E(t) ≈ E_last + W_last·(t−t_last), so its span_end carries a joules
// estimate that is cheap and monotone but inclusive (a parent's joules
// overlap its children's). Offline, Attribute (forest.go) replays the
// recorded energy_model_sample curve over the finished forest and
// splits every interval's exact energy among the spans that were live
// leaves during it — exclusive self-joules that sum to the source
// total, which is what cmd/xfertrace reports and the acceptance
// criterion checks.
package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/didclab/eta/internal/obs"
)

// Span names used by the instrumented transfer path — the taxonomy
// DESIGN.md §13 documents. The tracer accepts any name; these constants
// keep call sites and the xfertrace analyzer in one vocabulary.
const (
	NameTransfer      = "transfer"       // one per Executor.Run/Resume
	NameChunk         = "chunk"          // one per plan chunk
	NameChannel       = "channel"        // one per dialed channel lifetime
	NameChannelDial   = "channel_dial"   // dial + handshake + DATA + OPEN
	NameChannelStream = "channel_stream" // one per data-stream read loop
	NameChannelRedial = "channel_redial" // backoff + re-dial after a failure
	NameGet           = "get"            // issue → settle of one ranged GET
	NameRetry         = "retry"          // one retry-budget consumption (point span)
	NameJournalFlush  = "journal_flush"  // one group-commit flush+fsync batch
	NameServerSession = "server_session" // server-side control session lifetime
	NameServerGet     = "server_get"     // server-side serve of one GET
	NameServerStream  = "server_stream"  // server-side per-stream writer loop
	NameChaosFault    = "chaos_fault"    // one injected fault (duration for stalls/outages)
)

// ID generators. Package-level atomics make span and trace IDs globally
// unique within a process without any RNG or wall-clock input — two
// tracers sharing one events log (client and server in a loopback run)
// cannot collide, and runs under an injected clock stay deterministic.
var (
	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
)

// Tracer mints spans, emits their begin/end events into an obs.Log and
// books their counts/durations into an obs.Registry. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Tracer struct {
	mu   sync.Mutex
	now  obs.Clock
	log  *obs.Log
	reg  *obs.Registry
	live map[uint64]*Span

	// Online energy state: the last cumulative sample and the power the
	// last interval implied. energyAt extrapolates between samples.
	lastT  time.Time
	lastJ  float64
	watts  float64
	primed bool

	// Cached instruments (nil and no-op without a registry).
	started  *obs.Counter
	finished *obs.Counter
	byName   *obs.Family
	hists    map[string]*obs.Histogram
}

// NewTracer builds a tracer over the given registry and event log;
// either may be nil (the corresponding output is skipped).
func NewTracer(reg *obs.Registry, log *obs.Log) *Tracer {
	return &Tracer{
		now:      time.Now, //lint:allow nodeterm wall-clock default seam; SetClock injects a deterministic clock
		log:      log,
		reg:      reg,
		live:     make(map[uint64]*Span),
		started:  reg.Counter("spans_started"),
		finished: reg.Counter("spans_finished"),
		byName:   reg.Family("spans_by_name", "name"),
		hists:    make(map[string]*obs.Histogram),
	}
}

// SetClock overrides the tracer's time source (tests, deterministic
// runs). Set it before the first span.
func (t *Tracer) SetClock(c obs.Clock) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.now = c
	t.mu.Unlock()
}

// EnergySample feeds one cumulative-energy reading (joules since the
// source was created) into the online estimator. Sources push a sample
// whenever they integrate an interval (monitor.ModelSource) and the
// executor pushes one per measurement window, so span estimates track
// whatever cadence the run actually samples at.
func (t *Tracer) EnergySample(joulesTotal float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.now()
	if t.primed {
		if dt := now.Sub(t.lastT).Seconds(); dt > 0 && joulesTotal >= t.lastJ {
			t.watts = (joulesTotal - t.lastJ) / dt
		}
	}
	t.lastT = now
	t.lastJ = joulesTotal
	t.primed = true
	t.mu.Unlock()
}

// energyAtLocked extrapolates the cumulative-energy estimate at ts from
// the last sample and the last observed power. Caller holds t.mu.
func (t *Tracer) energyAtLocked(ts time.Time) float64 {
	if !t.primed {
		return 0
	}
	return t.lastJ + t.watts*ts.Sub(t.lastT).Seconds()
}

// Root starts a root span: a new trace with no parent. attrs are
// alternating key, value pairs appended to the span_begin event.
func (t *Tracer) Root(name string, attrs ...any) *Span {
	return t.start(nil, name, attrs)
}

// StartChild starts a span under parent; a nil parent starts a root.
func (t *Tracer) StartChild(parent *Span, name string, attrs ...any) *Span {
	return t.start(parent, name, attrs)
}

func (t *Tracer) start(parent *Span, name string, attrs []any) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, id: spanSeq.Add(1)}
	if parent != nil {
		s.trace = parent.trace
		s.parent = parent.id
	} else {
		s.trace = fmt.Sprintf("t%d", traceSeq.Add(1))
	}
	t.mu.Lock()
	s.start = t.now()
	s.startJ = t.energyAtLocked(s.start)
	t.live[s.id] = s
	t.mu.Unlock()
	t.started.Inc()
	t.byName.With(name).Inc()
	kv := make([]any, 0, 8+len(attrs))
	kv = append(kv, "trace", s.trace, "span", s.id, "parent", s.parent, "name", s.name)
	kv = append(kv, attrs...)
	t.log.Emit(obs.EvSpanBegin, kv...)
	return s
}

// histFor returns the per-name duration histogram, creating it on first
// use (span_ms_<name>; the obs path is metriclint-exempt, which is what
// permits the derived name).
func (t *Tracer) histFor(name string) *obs.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		h = t.reg.Histogram("span_ms_" + name)
		t.hists[name] = h
	}
	return h
}

// end finishes a span: removes it from the live set, emits span_end and
// books the duration. Idempotent via Span.ended.
func (t *Tracer) end(s *Span, attrs []any) {
	t.mu.Lock()
	end := t.now()
	joules := t.energyAtLocked(end) - s.startJ
	if joules < 0 {
		joules = 0
	}
	delete(t.live, s.id)
	t.mu.Unlock()
	durMS := float64(end.Sub(s.start)) / float64(time.Millisecond)
	t.finished.Inc()
	t.histFor(s.name).Observe(durMS)
	kv := make([]any, 0, 14+len(attrs))
	kv = append(kv,
		"trace", s.trace, "span", s.id, "parent", s.parent, "name", s.name,
		"dur_ms", durMS, "bytes", s.bytes.Load(), "joules", joules)
	kv = append(kv, attrs...)
	t.log.Emit(obs.EvSpanEnd, kv...)
}

// LiveCount returns how many spans are currently open.
func (t *Tracer) LiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// liveSpan is the JSON shape of one live span on the /spans endpoint.
type liveSpan struct {
	Trace  string  `json:"trace"`
	Span   uint64  `json:"span"`
	Parent uint64  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Start  string  `json:"start"`
	AgeMS  float64 `json:"age_ms"`
	Bytes  int64   `json:"bytes"`
	Joules float64 `json:"joules_est"`
}

// WriteLiveSpans writes the currently open spans as a JSON array —
// the payload of the obs handler's /spans endpoint (it satisfies
// obs.SpanSource without obs importing this package).
func (t *Tracer) WriteLiveSpans(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	now := t.now()
	nowJ := t.energyAtLocked(now)
	out := make([]liveSpan, 0, len(t.live))
	for _, s := range t.live {
		out = append(out, liveSpan{
			Trace:  s.trace,
			Span:   s.id,
			Parent: s.parent,
			Name:   s.name,
			Start:  s.start.UTC().Format(time.RFC3339Nano),
			AgeMS:  float64(now.Sub(s.start)) / float64(time.Millisecond),
			Bytes:  s.bytes.Load(),
			Joules: maxF(0, nowJ-s.startJ),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Span < out[j].Span })
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Span is one live (or finished) traced operation. All methods are
// no-ops on a nil receiver; End is idempotent.
type Span struct {
	tr     *Tracer
	trace  string
	id     uint64
	parent uint64
	name   string
	start  time.Time
	startJ float64
	bytes  atomic.Int64
	ended  atomic.Bool
}

// Child starts a sub-span of s. On a nil span it returns nil (the whole
// subtree of an untraced operation stays untraced).
func (s *Span) Child(name string, attrs ...any) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s, name, attrs)
}

// AddBytes books payload bytes onto the span; the total rides the
// span_end event.
func (s *Span) AddBytes(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.bytes.Add(n)
}

// End finishes the span, emitting span_end with its duration, byte
// count and online joules estimate plus any extra attrs. Safe to call
// more than once; only the first call emits.
func (s *Span) End(attrs ...any) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.tr.end(s, attrs)
}

// Joules returns the span's current online energy estimate (cumulative
// estimate now minus at the span's start).
func (s *Span) Joules() float64 {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return maxF(0, s.tr.energyAtLocked(s.tr.now())-s.startJ)
}

// ID returns the span's process-unique ID (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Trace returns the span's trace ID ("" on nil).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}
