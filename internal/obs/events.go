package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted by the instrumented transfer path. The log
// accepts any type string; these constants are the vocabulary the
// proto/sched/monitor instrumentation uses and DESIGN.md §8 documents.
const (
	EvTransferStarted     = "transfer_started"
	EvTransferFinished    = "transfer_finished"
	EvGetIssued           = "get_issued"
	EvGetSettled          = "get_settled"
	EvChannelDialed       = "channel_dialed"
	EvChannelRedialed     = "channel_redialed"
	EvChannelPlaced       = "channel_placed"
	EvEndpointBlacklisted = "endpoint_blacklisted"
	EvEndpointRecovered   = "endpoint_recovered"
	EvRetryConsumed       = "retry_consumed"
	EvChunkRealloc        = "chunk_reallocated"
	EvEnergySample        = "energy_sample"
	EvEnergyModel         = "energy_model_sample"
	EvSessionOpened       = "session_opened"
	EvSessionClosed       = "session_closed"
	EvGetServed           = "get_served"
	EvFaultInjected       = "fault_injected"
	EvStallDetected       = "stall_detected"
	EvServerDraining      = "server_draining"
	EvServerDrained       = "server_drained"
	EvRecoveryPlanned     = "recovery_planned"
	EvSpanBegin           = "span_begin"
	EvSpanEnd             = "span_end"
)

// DefaultRingSize is how many recent events a Log retains for Tail.
const DefaultRingSize = 1024

// Log is a structured JSONL event log. Each event is one line:
//
//	{"seq":12,"t":"2026-08-06T10:00:00.123Z","type":"get_issued","file":"a.bin","length":1048576}
//
// Events always land in an in-memory ring (for the /events tail) and,
// when the log was built over a writer, are appended to it as they
// happen. Emit is safe for concurrent use; a nil *Log drops everything.
type Log struct {
	mu  sync.Mutex
	now Clock
	w   io.Writer
	// underlying is the sink beneath a buffering wrapper (NewBufferedLog);
	// Close closes it after flushing. Nil for unbuffered logs.
	underlying io.Writer
	ring       [][]byte
	next       int
	full       bool
	seq        uint64
	// dropped counts events overwritten out of the ring — the tail a
	// /events consumer can no longer fetch. Mirrored into dropCounter
	// (the registry's events_dropped) when one is attached.
	dropped     uint64
	dropCounter *Counter
	writeErr    error
}

// NewLog returns a log retaining DefaultRingSize events, streaming each
// event line to w when w is non-nil.
func NewLog(w io.Writer) *Log {
	return &Log{
		now:  time.Now, //lint:allow nodeterm wall-clock default seam; SetClock injects a deterministic clock
		w:    w,
		ring: make([][]byte, DefaultRingSize),
	}
}

// NewBufferedLog returns a log whose event lines are buffered before
// reaching w (bufSize bytes; <= 0 means 64KiB), amortizing small-write
// syscalls on hot paths. The buffer is NOT crash-safe: callers owning a
// buffered log must Flush (or Close) it on shutdown or the tail of the
// run's events is lost — exactly the failure the crash harness provokes.
// Close also closes w when it is an io.Closer, so handing a file here
// transfers ownership.
func NewBufferedLog(w io.Writer, bufSize int) *Log {
	if bufSize <= 0 {
		bufSize = 64 * 1024
	}
	l := NewLog(bufio.NewWriterSize(w, bufSize))
	l.underlying = w
	return l
}

// flusher is the subset of bufio.Writer that Flush forwards to.
type flusher interface{ Flush() error }

// Flush pushes any event lines still buffered in the log's writer down
// to the underlying sink. It is a no-op for unbuffered logs and safe on
// a nil log.
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if f, ok := l.w.(flusher); ok {
		if err := f.Flush(); err != nil && l.writeErr == nil {
			l.writeErr = err
		}
	}
	return l.writeErr
}

// Close flushes the log and closes the underlying writer when the log
// owns one that is closeable (NewBufferedLog over a file, or NewLog
// over an io.WriteCloser). Emit after Close writes into a closed sink;
// don't.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	target := l.underlying
	if target == nil {
		target = l.w
	}
	if c, ok := target.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// SetClock overrides the timestamp source (tests, deterministic runs).
func (l *Log) SetClock(c Clock) {
	if l == nil || c == nil {
		return
	}
	l.mu.Lock()
	l.now = c
	l.mu.Unlock()
}

// Emit appends one event. kv is alternating key, value pairs; values
// are JSON-marshalled (falling back to their string form when they
// cannot be), keys keep their argument order so a given call site
// always produces the same line shape.
func (l *Log) Emit(typ string, kv ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"seq":%d,"t":%q,"type":%q`, l.seq, l.now().UTC().Format(time.RFC3339Nano), typ)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok || key == "" {
			continue
		}
		val, err := json.Marshal(kv[i+1])
		if err != nil {
			val, _ = json.Marshal(fmt.Sprint(kv[i+1]))
		}
		keyJSON, _ := json.Marshal(key)
		b.WriteByte(',')
		b.Write(keyJSON)
		b.WriteByte(':')
		b.Write(val)
	}
	b.WriteString("}\n")
	line := append([]byte(nil), b.Bytes()...)
	if l.full {
		// The slot being written still holds the oldest retained event;
		// overwriting it is a drop from the tail consumers can resume
		// from (the streamed writer, if any, already has it).
		l.dropped++
		l.dropCounter.Inc()
	}
	l.ring[l.next] = line
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	if l.w != nil {
		if _, err := l.w.Write(line); err != nil && l.writeErr == nil {
			l.writeErr = err
		}
	}
}

// Tail returns copies of the most recent n event lines in emission
// order (each including its trailing newline). n <= 0 means all
// retained events.
func (l *Log) Tail(n int) [][]byte {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var lines [][]byte
	if l.full {
		lines = append(lines, l.ring[l.next:]...)
	}
	lines = append(lines, l.ring[:l.next]...)
	if n > 0 && len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := make([][]byte, len(lines))
	for i, line := range lines {
		out[i] = append([]byte(nil), line...)
	}
	return out
}

// TailSince returns copies of the retained event lines with sequence
// numbers strictly greater than since, capped at the most recent n
// (n <= 0 means no cap), plus how many requested events were already
// overwritten out of the ring — the consumer's gap. A consumer that
// remembers the last seq it saw calls TailSince(lastSeq, 0) to resume
// the stream and learns exactly what it lost instead of silently
// re-reading a truncated head.
func (l *Log) TailSince(since uint64, n int) (lines [][]byte, missed uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var all [][]byte
	if l.full {
		all = append(all, l.ring[l.next:]...)
	}
	all = append(all, l.ring[:l.next]...)
	// Retained lines carry seqs (l.seq-len(all), l.seq] in order.
	firstSeq := l.seq - uint64(len(all)) + 1
	if since+1 < firstSeq {
		missed = firstSeq - since - 1
	}
	if since >= firstSeq-1 {
		skip := since - (firstSeq - 1)
		if skip >= uint64(len(all)) {
			all = nil
		} else {
			all = all[skip:]
		}
	}
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	lines = make([][]byte, len(all))
	for i, line := range all {
		lines[i] = append([]byte(nil), line...)
	}
	return lines, missed
}

// Dropped returns how many events have been overwritten out of the
// ring so far.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// SetDropCounter mirrors future ring drops into c (typically the
// registry's events_dropped counter, wired by the HTTP handler).
func (l *Log) SetDropCounter(c *Counter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.dropCounter = c
	l.mu.Unlock()
}

// Seq returns how many events were ever emitted.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the first error the underlying writer produced, if any.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErr
}
