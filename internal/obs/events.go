package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted by the instrumented transfer path. The log
// accepts any type string; these constants are the vocabulary the
// proto/sched/monitor instrumentation uses and DESIGN.md §8 documents.
const (
	EvTransferStarted     = "transfer_started"
	EvTransferFinished    = "transfer_finished"
	EvGetIssued           = "get_issued"
	EvGetSettled          = "get_settled"
	EvChannelDialed       = "channel_dialed"
	EvChannelRedialed     = "channel_redialed"
	EvChannelPlaced       = "channel_placed"
	EvEndpointBlacklisted = "endpoint_blacklisted"
	EvEndpointRecovered   = "endpoint_recovered"
	EvRetryConsumed       = "retry_consumed"
	EvChunkRealloc        = "chunk_reallocated"
	EvEnergySample        = "energy_sample"
	EvEnergyModel         = "energy_model_sample"
	EvSessionOpened       = "session_opened"
	EvSessionClosed       = "session_closed"
	EvGetServed           = "get_served"
	EvFaultInjected       = "fault_injected"
	EvStallDetected       = "stall_detected"
	EvServerDraining      = "server_draining"
	EvServerDrained       = "server_drained"
	EvRecoveryPlanned     = "recovery_planned"
)

// DefaultRingSize is how many recent events a Log retains for Tail.
const DefaultRingSize = 1024

// Log is a structured JSONL event log. Each event is one line:
//
//	{"seq":12,"t":"2026-08-06T10:00:00.123Z","type":"get_issued","file":"a.bin","length":1048576}
//
// Events always land in an in-memory ring (for the /events tail) and,
// when the log was built over a writer, are appended to it as they
// happen. Emit is safe for concurrent use; a nil *Log drops everything.
type Log struct {
	mu  sync.Mutex
	now Clock
	w   io.Writer
	// underlying is the sink beneath a buffering wrapper (NewBufferedLog);
	// Close closes it after flushing. Nil for unbuffered logs.
	underlying io.Writer
	ring       [][]byte
	next       int
	full       bool
	seq        uint64
	writeErr   error
}

// NewLog returns a log retaining DefaultRingSize events, streaming each
// event line to w when w is non-nil.
func NewLog(w io.Writer) *Log {
	return &Log{
		now:  time.Now, //lint:allow nodeterm wall-clock default seam; SetClock injects a deterministic clock
		w:    w,
		ring: make([][]byte, DefaultRingSize),
	}
}

// NewBufferedLog returns a log whose event lines are buffered before
// reaching w (bufSize bytes; <= 0 means 64KiB), amortizing small-write
// syscalls on hot paths. The buffer is NOT crash-safe: callers owning a
// buffered log must Flush (or Close) it on shutdown or the tail of the
// run's events is lost — exactly the failure the crash harness provokes.
// Close also closes w when it is an io.Closer, so handing a file here
// transfers ownership.
func NewBufferedLog(w io.Writer, bufSize int) *Log {
	if bufSize <= 0 {
		bufSize = 64 * 1024
	}
	l := NewLog(bufio.NewWriterSize(w, bufSize))
	l.underlying = w
	return l
}

// flusher is the subset of bufio.Writer that Flush forwards to.
type flusher interface{ Flush() error }

// Flush pushes any event lines still buffered in the log's writer down
// to the underlying sink. It is a no-op for unbuffered logs and safe on
// a nil log.
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if f, ok := l.w.(flusher); ok {
		if err := f.Flush(); err != nil && l.writeErr == nil {
			l.writeErr = err
		}
	}
	return l.writeErr
}

// Close flushes the log and closes the underlying writer when the log
// owns one that is closeable (NewBufferedLog over a file, or NewLog
// over an io.WriteCloser). Emit after Close writes into a closed sink;
// don't.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	target := l.underlying
	if target == nil {
		target = l.w
	}
	if c, ok := target.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// SetClock overrides the timestamp source (tests, deterministic runs).
func (l *Log) SetClock(c Clock) {
	if l == nil || c == nil {
		return
	}
	l.mu.Lock()
	l.now = c
	l.mu.Unlock()
}

// Emit appends one event. kv is alternating key, value pairs; values
// are JSON-marshalled (falling back to their string form when they
// cannot be), keys keep their argument order so a given call site
// always produces the same line shape.
func (l *Log) Emit(typ string, kv ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"seq":%d,"t":%q,"type":%q`, l.seq, l.now().UTC().Format(time.RFC3339Nano), typ)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok || key == "" {
			continue
		}
		val, err := json.Marshal(kv[i+1])
		if err != nil {
			val, _ = json.Marshal(fmt.Sprint(kv[i+1]))
		}
		keyJSON, _ := json.Marshal(key)
		b.WriteByte(',')
		b.Write(keyJSON)
		b.WriteByte(':')
		b.Write(val)
	}
	b.WriteString("}\n")
	line := append([]byte(nil), b.Bytes()...)
	l.ring[l.next] = line
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	if l.w != nil {
		if _, err := l.w.Write(line); err != nil && l.writeErr == nil {
			l.writeErr = err
		}
	}
}

// Tail returns copies of the most recent n event lines in emission
// order (each including its trailing newline). n <= 0 means all
// retained events.
func (l *Log) Tail(n int) [][]byte {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var lines [][]byte
	if l.full {
		lines = append(lines, l.ring[l.next:]...)
	}
	lines = append(lines, l.ring[:l.next]...)
	if n > 0 && len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := make([][]byte, len(lines))
	for i, line := range lines {
		out[i] = append([]byte(nil), line...)
	}
	return out
}

// Seq returns how many events were ever emitted.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the first error the underlying writer produced, if any.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErr
}
