// Package netem is the analytic wide-area TCP path model that the
// simulated transfer executor runs on. It captures exactly the effects
// the paper's parameter tuning exploits (§2.1):
//
//   - a single TCP stream is window-limited to buffer/RTT (so
//     *parallelism* multiplies throughput on high-BDP paths),
//   - loss caps a stream at the Mathis rate MSS/RTT · C/√p,
//   - every additional stream adds congestion/overhead, so aggregate
//     throughput rolls off as stream count grows (*too many streams
//     cause network congestion and throughput decline*),
//   - each file transfer costs a control-channel round trip that
//     *pipelining* amortizes,
//   - cold connections ramp through slow start, which matters for
//     files comparable to the BDP.
package netem

import (
	"fmt"
	"math"
	"time"

	"github.com/didclab/eta/internal/units"
)

// MathisC is the constant of the Mathis steady-state TCP model
// (sqrt(3/2) for delayed-ACK-free Reno).
const MathisC = 1.22

// DefaultMSS is the Ethernet-path maximum segment size.
const DefaultMSS units.Bytes = 1500

// Path describes one end-to-end network path.
type Path struct {
	// Bandwidth is the bottleneck link capacity.
	Bandwidth units.Rate
	// RTT is the round-trip time.
	RTT time.Duration
	// MaxTCPBuffer is the administratively configured maximum TCP
	// buffer (32 MB on the paper's testbeds). The parallelism formula
	// in Algorithms 1–3 uses this value.
	MaxTCPBuffer units.Bytes
	// EffStreamBuffer is the buffer a single stream actually gets from
	// OS autotuning before parallelism is applied. It is what limits
	// an untuned single-stream transfer (GUC) far below MaxTCPBuffer.
	EffStreamBuffer units.Bytes
	// LossRate is the stationary packet loss probability.
	LossRate float64
	// MSS is the segment size; DefaultMSS when zero.
	MSS units.Bytes
	// CongestionCoeff is c in the aggregate efficiency 1/(1+c·k) for k
	// concurrent streams. Zero means no roll-off.
	CongestionCoeff float64
}

// Validate reports a descriptive error for physically meaningless paths.
func (p Path) Validate() error {
	switch {
	case p.Bandwidth <= 0:
		return fmt.Errorf("netem: non-positive bandwidth %v", p.Bandwidth)
	case p.RTT < 0:
		return fmt.Errorf("netem: negative RTT %v", p.RTT)
	case p.EffStreamBuffer <= 0:
		return fmt.Errorf("netem: non-positive effective stream buffer %v", p.EffStreamBuffer)
	case p.MaxTCPBuffer < p.EffStreamBuffer:
		return fmt.Errorf("netem: max buffer %v below effective buffer %v", p.MaxTCPBuffer, p.EffStreamBuffer)
	case p.LossRate < 0 || p.LossRate >= 1:
		return fmt.Errorf("netem: loss rate %v outside [0,1)", p.LossRate)
	case p.CongestionCoeff < 0:
		return fmt.Errorf("netem: negative congestion coefficient %v", p.CongestionCoeff)
	default:
		return nil
	}
}

func (p Path) mss() units.Bytes {
	if p.MSS > 0 {
		return p.MSS
	}
	return DefaultMSS
}

// BDP returns the bandwidth-delay product of the path.
func (p Path) BDP() units.Bytes { return units.BDP(p.Bandwidth, p.RTT) }

// StreamCap returns the steady-state throughput ceiling of one TCP
// stream: the minimum of the window limit (effective buffer over RTT)
// and the Mathis loss limit, both bounded by the link capacity.
func (p Path) StreamCap() units.Rate {
	cap := p.Bandwidth
	if p.RTT > 0 {
		window := units.RateOf(p.EffStreamBuffer, p.RTT)
		if window < cap {
			cap = window
		}
	}
	if p.LossRate > 0 && p.RTT > 0 {
		mathis := units.Rate(p.mss().Bits() / p.RTT.Seconds() * MathisC / math.Sqrt(p.LossRate))
		if mathis < cap {
			cap = mathis
		}
	}
	return cap
}

// Efficiency returns the aggregate efficiency factor for k concurrent
// streams: 1/(1 + c·k). It models the end-to-end overhead and induced
// congestion that make throughput sub-linear in stream count.
func (p Path) Efficiency(k int) float64 {
	if k <= 0 {
		return 1
	}
	return 1 / (1 + p.CongestionCoeff*float64(k))
}

// AggregateRate returns the total steady-state throughput of k
// concurrent streams: min(k·streamCap, bandwidth·efficiency(k)).
func (p Path) AggregateRate(k int) units.Rate {
	if k <= 0 {
		return 0
	}
	linear := units.Rate(float64(k)) * p.StreamCap()
	capped := units.Rate(float64(p.Bandwidth) * p.Efficiency(k))
	if linear < capped {
		return linear
	}
	return capped
}

// PerFileIdle returns the control-channel idle time paid per file at a
// given pipelining level: one RTT amortized over the pipelined request
// depth. This is the quantity pipelining exists to shrink (§2.1:
// pipelining "prevents RTT delays between sender and receiver nodes and
// keeps the transfer channel active").
func (p Path) PerFileIdle(pipelining int) time.Duration {
	if pipelining < 1 {
		pipelining = 1
	}
	return p.RTT / time.Duration(pipelining)
}

// SlowStartBytes returns the bytes a cold connection moves before its
// congestion window reaches the steady-state operating point; the
// simulator charges these at half rate. One BDP-equivalent of the
// stream's own cap is the textbook slow-start cost.
func (p Path) SlowStartBytes() units.Bytes {
	if p.RTT <= 0 {
		return 0
	}
	return p.StreamCap().BytesIn(p.RTT)
}

// PacketCount returns the number of MSS-sized packets needed to carry
// the payload, the quantity the network-device energy model consumes.
func (p Path) PacketCount(payload units.Bytes) int64 {
	if payload <= 0 {
		return 0
	}
	mss := p.mss()
	return int64((payload + mss - 1) / mss)
}
