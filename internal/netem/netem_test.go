package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/didclab/eta/internal/units"
)

// xsedeLike is a 10 Gbps, 40 ms path similar to the paper's XSEDE link.
func xsedeLike() Path {
	return Path{
		Bandwidth:       10 * units.Gbps,
		RTT:             40 * time.Millisecond,
		MaxTCPBuffer:    32 * units.MB,
		EffStreamBuffer: 4 * units.MB,
		CongestionCoeff: 0.014,
	}
}

func TestValidate(t *testing.T) {
	if err := xsedeLike().Validate(); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	bad := []Path{
		{},
		{Bandwidth: units.Gbps, RTT: -time.Second, EffStreamBuffer: units.MB, MaxTCPBuffer: units.MB},
		{Bandwidth: units.Gbps, EffStreamBuffer: 0, MaxTCPBuffer: units.MB},
		{Bandwidth: units.Gbps, EffStreamBuffer: 2 * units.MB, MaxTCPBuffer: units.MB},
		{Bandwidth: units.Gbps, EffStreamBuffer: units.MB, MaxTCPBuffer: units.MB, LossRate: 1},
		{Bandwidth: units.Gbps, EffStreamBuffer: units.MB, MaxTCPBuffer: units.MB, CongestionCoeff: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid path accepted: %+v", i, p)
		}
	}
}

func TestStreamCapWindowLimited(t *testing.T) {
	p := xsedeLike()
	// 4 MB / 40 ms = 800 Mbps.
	want := 800 * units.Mbps
	if got := p.StreamCap(); math.Abs(float64(got-want)) > 1e3 {
		t.Errorf("StreamCap = %v, want %v", got, want)
	}
}

func TestStreamCapLANIsBandwidthLimited(t *testing.T) {
	lan := Path{
		Bandwidth:       1 * units.Gbps,
		RTT:             200 * time.Microsecond,
		MaxTCPBuffer:    32 * units.MB,
		EffStreamBuffer: 1 * units.MB,
	}
	if got := lan.StreamCap(); got != 1*units.Gbps {
		t.Errorf("LAN StreamCap = %v, want full bandwidth", got)
	}
	if lan.SlowStartBytes() > lan.BDP() {
		t.Errorf("slow-start bytes %v exceed BDP %v", lan.SlowStartBytes(), lan.BDP())
	}
}

func TestStreamCapLossLimited(t *testing.T) {
	p := xsedeLike()
	p.LossRate = 0.001
	// Mathis: 1500*8/0.040 * 1.22/sqrt(0.001) = 300000 * 38.58 ≈ 11.6 Mbps.
	got := p.StreamCap()
	want := units.Rate(1500 * 8 / 0.040 * MathisC / math.Sqrt(0.001))
	if math.Abs(float64(got-want)) > 1e3 {
		t.Errorf("loss-limited StreamCap = %v, want %v", got, want)
	}
}

func TestAggregateRateMonotoneAndBounded(t *testing.T) {
	p := xsedeLike()
	f := func(kRaw uint8) bool {
		k := int(kRaw%64) + 1
		r1 := p.AggregateRate(k)
		r2 := p.AggregateRate(k + 1)
		// More streams never exceed the link and never help once the
		// efficiency roll-off dominates more than linear growth caps.
		return r1 <= p.Bandwidth && r2 <= p.Bandwidth && r1 > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if p.AggregateRate(0) != 0 {
		t.Error("zero streams should carry nothing")
	}
}

func TestAggregateRateShape(t *testing.T) {
	p := xsedeLike()
	// One 800 Mbps stream; paper's GUC base case is ≈1 Gbps on XSEDE.
	one := p.AggregateRate(1)
	if one < 700*units.Mbps || one > 900*units.Mbps {
		t.Errorf("1-stream rate %v outside GUC-like band", one)
	}
	// 24 streams (ProMC at concurrency 12 × parallelism 2) should reach
	// roughly 7–8 Gbps, the paper's peak.
	many := p.AggregateRate(24)
	if many < 7*units.Gbps || many > 8*units.Gbps {
		t.Errorf("24-stream rate %v outside ProMC-like band", many)
	}
	if many <= one {
		t.Error("parallel streams must outperform a single stream on a high-BDP path")
	}
}

func TestEfficiencyDecreasing(t *testing.T) {
	p := xsedeLike()
	prev := p.Efficiency(0)
	for k := 1; k <= 40; k++ {
		e := p.Efficiency(k)
		if e > prev || e <= 0 || e > 1 {
			t.Fatalf("efficiency not decreasing in (0,1]: k=%d e=%v prev=%v", k, e, prev)
		}
		prev = e
	}
}

func TestPerFileIdle(t *testing.T) {
	p := xsedeLike()
	if got := p.PerFileIdle(1); got != 40*time.Millisecond {
		t.Errorf("unpipelined idle = %v, want RTT", got)
	}
	if got := p.PerFileIdle(0); got != 40*time.Millisecond {
		t.Errorf("pipelining<1 should clamp to 1, got %v", got)
	}
	if got := p.PerFileIdle(8); got != 5*time.Millisecond {
		t.Errorf("idle at q=8 = %v, want 5ms", got)
	}
	// Deeper pipelining never increases idle.
	prev := p.PerFileIdle(1)
	for q := 2; q <= 32; q++ {
		cur := p.PerFileIdle(q)
		if cur > prev {
			t.Fatalf("idle grew with pipelining: q=%d %v > %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestPacketCount(t *testing.T) {
	p := xsedeLike()
	if got := p.PacketCount(0); got != 0 {
		t.Errorf("PacketCount(0) = %d", got)
	}
	if got := p.PacketCount(1); got != 1 {
		t.Errorf("PacketCount(1) = %d", got)
	}
	if got := p.PacketCount(1500); got != 1 {
		t.Errorf("PacketCount(1500) = %d", got)
	}
	if got := p.PacketCount(1501); got != 2 {
		t.Errorf("PacketCount(1501) = %d", got)
	}
	if got := p.PacketCount(150 * units.MB); got != 100000 {
		t.Errorf("PacketCount(150MB) = %d", got)
	}
}

func TestBDP(t *testing.T) {
	if got := xsedeLike().BDP(); got != 50*units.MB {
		t.Errorf("BDP = %v, want 50MB", got)
	}
}

func TestSlowStartBytes(t *testing.T) {
	p := xsedeLike()
	// Stream cap 800 Mbps × 40 ms = 4 MB.
	if got := p.SlowStartBytes(); got != 4*units.MB {
		t.Errorf("SlowStartBytes = %v, want 4MB", got)
	}
	p.RTT = 0
	if got := p.SlowStartBytes(); got != 0 {
		t.Errorf("zero-RTT slow start = %v, want 0", got)
	}
}

func TestAggregateRateDemandCrossover(t *testing.T) {
	// Below the knee aggregate grows ~linearly with streams; past it,
	// the link cap with efficiency roll-off takes over. The crossover
	// must sit where k·streamCap first exceeds the capped bandwidth.
	p := xsedeLike()
	cap := float64(p.StreamCap())
	for k := 1; k <= 32; k++ {
		got := float64(p.AggregateRate(k))
		linear := float64(k) * cap
		capped := float64(p.Bandwidth) * p.Efficiency(k)
		want := math.Min(linear, capped)
		if math.Abs(got-want) > 1 {
			t.Fatalf("k=%d: AggregateRate=%v want min(%v,%v)", k, got, linear, capped)
		}
	}
}

func TestLossDominatesWindowWhenSevere(t *testing.T) {
	p := xsedeLike()
	clean := p.StreamCap()
	p.LossRate = 0.01
	lossy := p.StreamCap()
	if lossy >= clean/10 {
		t.Errorf("1%% loss should collapse the stream cap: %v vs %v", lossy, clean)
	}
}

func TestSlowStartSmallerThanBDPWhenWindowLimited(t *testing.T) {
	// A window-limited stream never ramps past its own cap's worth of
	// in-flight data, so slow-start bytes ≤ BDP always.
	p := xsedeLike()
	if p.SlowStartBytes() > p.BDP() {
		t.Errorf("slow start %v exceeds BDP %v", p.SlowStartBytes(), p.BDP())
	}
}
