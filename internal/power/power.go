// Package power implements the paper's end-system power models (§2.2):
//
//   - the fine-grained model, Eq. 1–2:
//     P_t = C_cpu,n·u_cpu + C_mem·u_mem + C_disk·u_disk + C_nic·u_nic
//     C_cpu,n = 0.011·n² − 0.082·n + 0.344
//   - the CPU-only model with TDP-ratio scaling across machines, Eq. 3:
//     P_t = (C_cpu,n·u_cpu) · TDP_remote / TDP_local
//
// plus the one-time model-building phase: ordinary least squares over
// (utilization, power) samples, exactly the "linear regression is
// applied to derive the coefficients for each component metric" step.
package power

import (
	"fmt"
	"time"

	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/units"
)

// CPUQuad holds the quadratic coefficients (a, b, c) of
// C_cpu,n = a·n² + b·n + c.
type CPUQuad [3]float64

// PaperCPUQuad is Eq. 2 verbatim.
var PaperCPUQuad = CPUQuad{0.011, -0.082, 0.344}

// At evaluates the quadratic at n active transfer processes. n is
// clamped to at least 1: a transfer always runs in one process.
func (q CPUQuad) At(n int) float64 {
	if n < 1 {
		n = 1
	}
	fn := float64(n)
	return q[0]*fn*fn + q[1]*fn + q[2]
}

// MinAt returns the integer process count in [1, max] minimizing the
// coefficient — the "sweet spot" the paper observes at four processes
// on four-core servers.
func (q CPUQuad) MinAt(max int) int {
	best, bestV := 1, q.At(1)
	for n := 2; n <= max; n++ {
		if v := q.At(n); v < bestV {
			best, bestV = n, v
		}
	}
	return best
}

// Coefficients parameterize the fine-grained model: watts per percent
// utilization for each component, with the CPU coefficient depending on
// the active process count.
type Coefficients struct {
	CPU  CPUQuad
	Mem  float64
	Disk float64
	NIC  float64
}

// Validate reports a descriptive error for non-physical coefficients.
func (c Coefficients) Validate() error {
	if c.Mem < 0 || c.Disk < 0 || c.NIC < 0 {
		return fmt.Errorf("power: negative component coefficient %+v", c)
	}
	if c.CPU.At(1) <= 0 {
		return fmt.Errorf("power: CPU coefficient non-positive at n=1: %v", c.CPU.At(1))
	}
	return nil
}

// FineGrained is the Eq. 1 model.
type FineGrained struct {
	Coeff Coefficients
}

// Power predicts the transfer-attributable power draw for component
// utilizations u with n active transfer processes.
func (m FineGrained) Power(u endsys.Utilization, n int) units.Watts {
	u = u.Clamp()
	return units.Watts(
		m.Coeff.CPU.At(n)*u.CPU +
			m.Coeff.Mem*u.Mem +
			m.Coeff.Disk*u.Disk +
			m.Coeff.NIC*u.NIC)
}

// CPUOnly is the Eq. 3 model: CPU-utilization-only prediction scaled
// from the machine the model was built on (local) to the machine being
// predicted (remote) by the ratio of their CPU TDP values. In addition
// to the Eq. 2 process-count-dependent CPU term, the model carries a
// process-count-independent Linear term per CPU percent: during
// transfers the memory, disk and NIC load co-vary with CPU load (the
// paper's 89.71% correlation), and that absorbed power does not follow
// Eq. 2's per-process shape.
type CPUOnly struct {
	CPU       CPUQuad
	Linear    float64
	TDPLocal  units.Watts
	TDPRemote units.Watts
}

// Power predicts power from CPU utilization alone.
func (m CPUOnly) Power(uCPU float64, n int) units.Watts {
	uCPU = units.ClampF(uCPU, 0, 100)
	scale := 1.0
	if m.TDPLocal > 0 && m.TDPRemote > 0 {
		scale = float64(m.TDPRemote) / float64(m.TDPLocal)
	}
	return units.Watts((m.CPU.At(n) + m.Linear) * uCPU * scale)
}

// Meter integrates power over time into energy, tracking the average
// and peak. The zero value is ready to use.
type Meter struct {
	total   units.Joules
	elapsed time.Duration
	peak    units.Watts
}

// Add accrues power p held for duration d.
func (m *Meter) Add(p units.Watts, d time.Duration) {
	if d <= 0 {
		return
	}
	m.total += units.Energy(p, d)
	m.elapsed += d
	if p > m.peak {
		m.peak = p
	}
}

// Total returns the accumulated energy.
func (m *Meter) Total() units.Joules { return m.total }

// Elapsed returns the metered wall time.
func (m *Meter) Elapsed() time.Duration { return m.elapsed }

// Peak returns the highest power sample seen.
func (m *Meter) Peak() units.Watts { return m.peak }

// Average returns total energy over elapsed time.
func (m *Meter) Average() units.Watts { return units.Power(m.total, m.elapsed) }
