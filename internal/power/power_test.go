package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/units"
)

func TestPaperCPUQuadValues(t *testing.T) {
	// Spot-check Eq. 2 against hand computation.
	cases := []struct {
		n    int
		want float64
	}{
		{1, 0.273},
		{2, 0.224},
		{4, 0.192},
		{8, 0.392},
	}
	for _, c := range cases {
		if got := PaperCPUQuad.At(c.n); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("C_cpu,%d = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestPaperCPUQuadMinimumAtFour(t *testing.T) {
	// The paper observes the energy-per-core sweet spot at four
	// processes on the four-core XSEDE servers; Eq. 2's integer
	// minimum is indeed n = 4.
	if got := PaperCPUQuad.MinAt(12); got != 4 {
		t.Errorf("Eq. 2 minimum at n=%d, want 4", got)
	}
}

func TestCPUQuadClampsBelowOne(t *testing.T) {
	if PaperCPUQuad.At(0) != PaperCPUQuad.At(1) || PaperCPUQuad.At(-3) != PaperCPUQuad.At(1) {
		t.Error("n<1 should clamp to n=1")
	}
}

func TestFineGrainedPower(t *testing.T) {
	m := FineGrained{Coeff: Coefficients{CPU: PaperCPUQuad, Mem: 0.1, Disk: 0.05, NIC: 0.2}}
	u := endsys.Utilization{CPU: 50, Mem: 20, Disk: 10, NIC: 40}
	want := 0.273*50 + 0.1*20 + 0.05*10 + 0.2*40
	if got := m.Power(u, 1); math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("Power = %v, want %v", got, want)
	}
}

func TestFineGrainedPowerClampsUtilization(t *testing.T) {
	m := FineGrained{Coeff: Coefficients{CPU: PaperCPUQuad, NIC: 0.2}}
	over := m.Power(endsys.Utilization{CPU: 250, NIC: 300}, 1)
	capped := m.Power(endsys.Utilization{CPU: 100, NIC: 100}, 1)
	if over != capped {
		t.Errorf("unclamped power %v != capped %v", over, capped)
	}
}

func TestFineGrainedMonotoneInUtilization(t *testing.T) {
	m := FineGrained{Coeff: Coefficients{CPU: PaperCPUQuad, Mem: 0.1, Disk: 0.05, NIC: 0.2}}
	f := func(a, b uint8) bool {
		lo := float64(a % 101)
		hi := lo + float64(b%50)
		if hi > 100 {
			hi = 100
		}
		pl := m.Power(endsys.Utilization{CPU: lo, Mem: lo, Disk: lo, NIC: lo}, 2)
		ph := m.Power(endsys.Utilization{CPU: hi, Mem: hi, Disk: hi, NIC: hi}, 2)
		return ph >= pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPUOnlyTDPScaling(t *testing.T) {
	// Eq. 3: extending an Intel-built model (TDP 95 W) to an AMD server
	// (TDP 125 W) scales prediction by 125/95.
	local := CPUOnly{CPU: PaperCPUQuad, TDPLocal: 95, TDPRemote: 95}
	remote := CPUOnly{CPU: PaperCPUQuad, TDPLocal: 95, TDPRemote: 125}
	pl := local.Power(60, 2)
	pr := remote.Power(60, 2)
	if math.Abs(float64(pr)/float64(pl)-125.0/95.0) > 1e-9 {
		t.Errorf("TDP scaling wrong: local %v remote %v", pl, pr)
	}
}

func TestCPUOnlyNoTDPsMeansNoScaling(t *testing.T) {
	m := CPUOnly{CPU: PaperCPUQuad}
	if got := m.Power(50, 1); math.Abs(float64(got)-0.273*50) > 1e-9 {
		t.Errorf("unscaled power = %v", got)
	}
}

func TestCoefficientsValidate(t *testing.T) {
	good := Coefficients{CPU: PaperCPUQuad, Mem: 0.1, Disk: 0.1, NIC: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid coefficients rejected: %v", err)
	}
	if err := (Coefficients{CPU: PaperCPUQuad, Mem: -1}).Validate(); err == nil {
		t.Error("negative Mem accepted")
	}
	if err := (Coefficients{CPU: CPUQuad{0, 0, -1}}).Validate(); err == nil {
		t.Error("non-positive CPU coefficient accepted")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(100, 2*time.Second)
	m.Add(50, 2*time.Second)
	m.Add(0, -time.Second) // ignored
	if got := m.Total(); got != 300 {
		t.Errorf("Total = %v, want 300 J", got)
	}
	if got := m.Elapsed(); got != 4*time.Second {
		t.Errorf("Elapsed = %v", got)
	}
	if got := m.Average(); got != 75 {
		t.Errorf("Average = %v, want 75 W", got)
	}
	if got := m.Peak(); got != 100 {
		t.Errorf("Peak = %v, want 100 W", got)
	}
}

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.Total() != 0 || m.Average() != 0 || m.Peak() != 0 || m.Elapsed() != 0 {
		t.Error("zero meter should read zero everywhere")
	}
}

func TestMeterIntegrationMatchesClosedForm(t *testing.T) {
	// Integrating a constant 80 W in 1 ms steps for 10 s must equal
	// 800 J to floating-point accuracy.
	var m Meter
	for i := 0; i < 10000; i++ {
		m.Add(80, time.Millisecond)
	}
	if math.Abs(float64(m.Total())-800) > 1e-6 {
		t.Errorf("Total = %v, want 800 J", m.Total())
	}
	_ = units.Joules(0)
}
