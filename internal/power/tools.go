package power

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/didclab/eta/internal/endsys"
)

// Tool identifies an application-layer transfer tool whose utilization
// signature the paper's §2.2 validation replays (scp, rsync, ftp, bbcp,
// gridftp).
type Tool string

// The transfer tools the paper validates its power models against.
const (
	ToolSCP     Tool = "scp"
	ToolRsync   Tool = "rsync"
	ToolFTP     Tool = "ftp"
	ToolBBCP    Tool = "bbcp"
	ToolGridFTP Tool = "gridftp"
)

// Tools lists all validation tools in the paper's order.
var Tools = []Tool{ToolSCP, ToolRsync, ToolFTP, ToolBBCP, ToolGridFTP}

// toolProfile is the characteristic operating region of a tool:
// encryption-heavy scp burns CPU at low throughput, bbcp/gridftp move
// line-rate data with many streams, rsync adds checksum CPU and disk
// churn, plain ftp is a single lazy stream.
type toolProfile struct {
	cpu       [2]float64 // mean utilization %, jitter amplitude
	mem       [2]float64
	disk      [2]float64
	nic       [2]float64
	processes int
}

// The profiles keep memory/disk/NIC activity strongly correlated with
// CPU activity — the paper measures an 89.71% correlation between CPU
// utilization and consumed power during transfers, which is the entire
// reason the CPU-only model works. Encryption-heavy scp and
// checksum-heavy rsync deviate most from the common ratio (their CPU
// cycles buy fewer moved bytes), which is why the paper's CPU-only
// error is worst (still <8%) on exactly those two tools.
var toolProfiles = map[Tool]toolProfile{
	ToolSCP:     {cpu: [2]float64{72, 8}, mem: [2]float64{24, 3}, disk: [2]float64{36, 4}, nic: [2]float64{25, 3}, processes: 1},
	ToolRsync:   {cpu: [2]float64{58, 8}, mem: [2]float64{19, 3}, disk: [2]float64{34, 4}, nic: [2]float64{20, 3}, processes: 1},
	ToolFTP:     {cpu: [2]float64{36, 5}, mem: [2]float64{12, 2}, disk: [2]float64{18, 3}, nic: [2]float64{18, 3}, processes: 1},
	ToolBBCP:    {cpu: [2]float64{40, 6}, mem: [2]float64{13, 3}, disk: [2]float64{21, 4}, nic: [2]float64{21, 4}, processes: 4},
	ToolGridFTP: {cpu: [2]float64{44, 6}, mem: [2]float64{15, 3}, disk: [2]float64{23, 4}, nic: [2]float64{23, 4}, processes: 4},
}

// GroundTruth is the hidden "real server" whose power the validation
// experiment measures: a fine-grained linear core plus a mild CPU
// nonlinearity and measurement noise. The models under test never see
// its parameters — only its (utilization, power) samples.
type GroundTruth struct {
	Coeff     Coefficients
	NonlinCPU float64 // fraction of CPU power bent quadratically
	Noise     float64 // multiplicative measurement noise amplitude
}

// DefaultGroundTruth returns a ground truth in the paper's coefficient
// regime.
func DefaultGroundTruth() GroundTruth {
	return GroundTruth{
		Coeff:     Coefficients{CPU: PaperCPUQuad, Mem: 0.11, Disk: 0.08, NIC: 0.2},
		NonlinCPU: 0.1,
		Noise:     0.015,
	}
}

// Measure returns the "true" measured power for a utilization point.
func (g GroundTruth) Measure(u endsys.Utilization, processes int, rng *rand.Rand) float64 {
	u = u.Clamp()
	linear := float64(FineGrained{Coeff: g.Coeff}.Power(u, processes))
	bend := g.NonlinCPU * g.Coeff.CPU.At(processes) * u.CPU * (u.CPU / 100)
	p := linear + bend
	if rng != nil && g.Noise > 0 {
		p *= 1 + g.Noise*(2*rng.Float64()-1)
	}
	return p
}

// ToolTrace synthesizes n utilization/power observations of a tool
// running against the ground truth.
func ToolTrace(tool Tool, g GroundTruth, n int, seed int64) ([]Sample, error) {
	prof, ok := toolProfiles[tool]
	if !ok {
		return nil, fmt.Errorf("power: unknown tool %q", tool)
	}
	if n <= 0 {
		return nil, fmt.Errorf("power: trace length %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	jitter := func(p [2]float64) float64 {
		return p[0] + p[1]*(2*rng.Float64()-1)
	}
	samples := make([]Sample, n)
	for i := range samples {
		u := endsys.Utilization{
			CPU:  jitter(prof.cpu),
			Mem:  jitter(prof.mem),
			Disk: jitter(prof.disk),
			NIC:  jitter(prof.nic),
		}.Clamp()
		samples[i] = Sample{
			U:         u,
			Processes: prof.processes,
			Power:     g.Measure(u, prof.processes, rng),
		}
	}
	return samples, nil
}

// CalibrationSweep produces the model-building dataset for the
// fine-grained model: for each component a load ramp is applied while
// others idle, then mixed points, mirroring "for each system component
// we measure the power consumption values for varying load levels".
func CalibrationSweep(g GroundTruth, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, 0, 80)
	add := func(u endsys.Utilization, procs int) {
		samples = append(samples, Sample{U: u, Processes: procs, Power: g.Measure(u, procs, rng)})
	}
	for load := 5.0; load <= 95; load += 10 {
		add(endsys.Utilization{CPU: load}, 1)
		add(endsys.Utilization{Mem: load}, 1)
		add(endsys.Utilization{Disk: load}, 1)
		add(endsys.Utilization{NIC: load}, 1)
	}
	samples = append(samples, TransferCalibration(g, seed+1)...)
	return samples
}

// TransferCalibration produces transfer-shaped calibration points where
// memory, disk and NIC load move together with CPU load — the regime
// the CPU-only model is built in. A model fit on orthogonal component
// ramps could never attribute NIC watts to CPU percent; one fit on real
// transfers can, because the components co-vary (§2.2's 89.71%
// CPU-power correlation).
func TransferCalibration(g GroundTruth, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var samples []Sample
	for procs := 1; procs <= 8; procs++ {
		for load := 10.0; load <= 90; load += 20 {
			u := endsys.Utilization{CPU: load, Mem: load / 3, Disk: load / 2, NIC: load / 2}
			samples = append(samples, Sample{U: u, Processes: procs, Power: g.Measure(u, procs, rng)})
		}
	}
	return samples
}

// ValidationResult is one row of the §2.2 validation table.
type ValidationResult struct {
	Tool             Tool
	FineGrainedError float64 // mean absolute % error
	CPUOnlyError     float64
}

// Validate builds both models from a calibration sweep and scores them
// on fresh per-tool traces, reproducing the paper's validation: the
// fine-grained model should stay below ~6% error and the CPU-only model
// below ~8%.
func Validate(g GroundTruth, samplesPerTool int, seed int64) ([]ValidationResult, error) {
	calib := CalibrationSweep(g, seed)
	fg, err := BuildFineGrained(calib)
	if err != nil {
		return nil, fmt.Errorf("building fine-grained model: %w", err)
	}
	co, err := BuildCPUOnly(TransferCalibration(g, seed+1), 95)
	if err != nil {
		return nil, fmt.Errorf("building CPU-only model: %w", err)
	}
	fgModel := FineGrained{Coeff: fg}
	results := make([]ValidationResult, 0, len(Tools))
	for i, tool := range Tools {
		trace, err := ToolTrace(tool, g, samplesPerTool, seed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		actual := make([]float64, len(trace))
		predFG := make([]float64, len(trace))
		predCO := make([]float64, len(trace))
		for j, s := range trace {
			actual[j] = s.Power
			predFG[j] = float64(fgModel.Power(s.U, s.Processes))
			predCO[j] = float64(co.Power(s.U.CPU, s.Processes))
		}
		fgErr, err := MeanAbsPctError(predFG, actual)
		if err != nil {
			return nil, err
		}
		coErr, err := MeanAbsPctError(predCO, actual)
		if err != nil {
			return nil, err
		}
		results = append(results, ValidationResult{Tool: tool, FineGrainedError: fgErr, CPUOnlyError: coErr})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Tool < results[j].Tool })
	return results, nil
}
