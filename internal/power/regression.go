package power

import (
	"errors"
	"fmt"
	"math"

	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/units"
)

// ErrSingular is returned when a regression system has no unique
// solution (collinear or insufficient samples).
var ErrSingular = errors.New("power: singular regression system")

// FitLinear solves the ordinary least squares problem min‖Xβ−y‖₂ via
// the normal equations XᵀXβ = Xᵀy with Gaussian elimination and partial
// pivoting. Rows of x are observations; columns are features.
func FitLinear(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("power: %d observations vs %d targets", len(x), len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("power: no features")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("power: row %d has %d features, want %d", i, len(row), p)
		}
	}
	// Build XᵀX (p×p) and Xᵀy (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1) // augmented with Xᵀy
	}
	for _, row := range x {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for k, row := range x {
		for i := 0; i < p; i++ {
			xtx[i][p] += row[i] * y[k]
		}
	}
	// Gaussian elimination with partial pivoting on the augmented matrix.
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(xtx[r][col]) > math.Abs(xtx[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(xtx[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		xtx[col], xtx[pivot] = xtx[pivot], xtx[col]
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			factor := xtx[r][col] / xtx[col][col]
			for c := col; c <= p; c++ {
				xtx[r][c] -= factor * xtx[col][c]
			}
		}
	}
	beta := make([]float64, p)
	for i := 0; i < p; i++ {
		beta[i] = xtx[i][p] / xtx[i][i]
	}
	return beta, nil
}

// Sample is one observation of the model-building phase: component
// utilizations, the active process count, and the measured power.
type Sample struct {
	U         endsys.Utilization
	Processes int
	Power     float64
}

// BuildFineGrained fits the fine-grained model's four component
// coefficients from measured samples, holding the CPU process-count
// quadratic shape fixed at Eq. 2's published form but scaling it to the
// measured machine. The feature vector is
// [C_cpu,n(paper)·u_cpu / C_cpu,1(paper), u_mem, u_disk, u_nic], so the
// fitted first coefficient is the machine's C_cpu,1 and the quadratic
// is rescaled by C_cpu,1(machine)/C_cpu,1(paper).
func BuildFineGrained(samples []Sample) (Coefficients, error) {
	if len(samples) < 4 {
		return Coefficients{}, fmt.Errorf("power: %d samples, need at least 4", len(samples))
	}
	ref := PaperCPUQuad.At(1)
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = []float64{
			PaperCPUQuad.At(s.Processes) / ref * s.U.CPU,
			s.U.Mem,
			s.U.Disk,
			s.U.NIC,
		}
		y[i] = s.Power
	}
	beta, err := FitLinear(x, y)
	if err != nil {
		return Coefficients{}, err
	}
	scale := beta[0] / ref
	return Coefficients{
		CPU:  CPUQuad{PaperCPUQuad[0] * scale, PaperCPUQuad[1] * scale, PaperCPUQuad[2] * scale},
		Mem:  beta[1],
		Disk: beta[2],
		NIC:  beta[3],
	}, nil
}

// BuildCPUOnly fits the CPU-only model from transfer-shaped samples:
// one coefficient over the Eq. 2-shaped CPU feature plus one
// process-independent coefficient that captures co-varying non-CPU
// power. Samples must span at least two distinct process counts or the
// two features are collinear.
func BuildCPUOnly(samples []Sample, tdpLocal float64) (CPUOnly, error) {
	if len(samples) < 2 {
		return CPUOnly{}, errors.New("power: need at least 2 samples")
	}
	ref := PaperCPUQuad.At(1)
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = []float64{PaperCPUQuad.At(s.Processes) / ref * s.U.CPU, s.U.CPU}
		y[i] = s.Power
	}
	beta, err := FitLinear(x, y)
	if err != nil {
		return CPUOnly{}, err
	}
	scale := beta[0] / ref
	return CPUOnly{
		CPU:      CPUQuad{PaperCPUQuad[0] * scale, PaperCPUQuad[1] * scale, PaperCPUQuad[2] * scale},
		Linear:   beta[1],
		TDPLocal: units.Watts(tdpLocal),
	}, nil
}

// FitQuadratic fits a·n² + b·n + c to (n, value) points by least
// squares — the regression behind Eq. 2 itself.
func FitQuadratic(ns []int, values []float64) (CPUQuad, error) {
	if len(ns) != len(values) || len(ns) < 3 {
		return CPUQuad{}, fmt.Errorf("power: need ≥3 matched points, got %d/%d", len(ns), len(values))
	}
	x := make([][]float64, len(ns))
	for i, n := range ns {
		fn := float64(n)
		x[i] = []float64{fn * fn, fn, 1}
	}
	beta, err := FitLinear(x, values)
	if err != nil {
		return CPUQuad{}, err
	}
	return CPUQuad{beta[0], beta[1], beta[2]}, nil
}

// MeanAbsPctError returns the mean |predicted−actual|/actual across
// samples, the error metric the paper reports for model validation
// (fine-grained below 6%, CPU-only below 5–8%). Samples with
// non-positive actual power are skipped.
func MeanAbsPctError(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("power: %d predictions vs %d actuals", len(predicted), len(actual))
	}
	var sum float64
	var n int
	for i := range predicted {
		if actual[i] <= 0 {
			continue
		}
		sum += math.Abs(predicted[i]-actual[i]) / actual[i]
		n++
	}
	if n == 0 {
		return 0, errors.New("power: no usable samples")
	}
	return sum / float64(n) * 100, nil
}
