package power_test

import (
	"fmt"

	"github.com/didclab/eta/internal/endsys"
	"github.com/didclab/eta/internal/power"
)

func ExampleCPUQuad_At() {
	// Eq. 2: C_cpu,n = 0.011·n² − 0.082·n + 0.344, minimal at the
	// 4-core sweet spot.
	fmt.Printf("%.3f %.3f %.3f\n",
		power.PaperCPUQuad.At(1), power.PaperCPUQuad.At(4), power.PaperCPUQuad.At(8))
	fmt.Println("minimum at n =", power.PaperCPUQuad.MinAt(12))
	// Output:
	// 0.273 0.192 0.392
	// minimum at n = 4
}

func ExampleFineGrained_Power() {
	// Eq. 1 with illustrative coefficients: a transfer at 50% CPU,
	// 20% memory, 10% disk and 40% NIC utilization on 2 processes.
	model := power.FineGrained{Coeff: power.Coefficients{
		CPU: power.PaperCPUQuad, Mem: 0.1, Disk: 0.05, NIC: 0.2,
	}}
	u := endsys.Utilization{CPU: 50, Mem: 20, Disk: 10, NIC: 40}
	fmt.Println(model.Power(u, 2))
	// Output: 21.70W
}

func ExampleCPUOnly_Power() {
	// Eq. 3: extending a model built on a 95 W-TDP machine to a
	// 125 W-TDP machine scales the prediction by the TDP ratio.
	model := power.CPUOnly{CPU: power.PaperCPUQuad, TDPLocal: 95, TDPRemote: 125}
	fmt.Println(model.Power(60, 1))
	// Output: 21.55W
}
