package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/didclab/eta/internal/endsys"
)

func TestFitLinearRecoversExactCoefficients(t *testing.T) {
	// y = 2x₀ + 3x₁ − 0.5x₂ with no noise must be recovered exactly.
	rng := rand.New(rand.NewSource(1))
	want := []float64{2, 3, -0.5}
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		row := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		x = append(x, row)
		y = append(y, want[0]*row[0]+want[1]*row[1]+want[2]*row[2])
	}
	got, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("beta[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFitLinearSingular(t *testing.T) {
	// Perfectly collinear features have no unique solution.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := FitLinear(x, y); err == nil {
		t.Error("collinear system accepted")
	}
}

func TestFitLinearShapeErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := FitLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLinear([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FitLinear([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero features accepted")
	}
}

func TestFitQuadraticRecoversEq2(t *testing.T) {
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8}
	vals := make([]float64, len(ns))
	for i, n := range ns {
		vals[i] = PaperCPUQuad.At(n)
	}
	got, err := FitQuadratic(ns, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-PaperCPUQuad[i]) > 1e-8 {
			t.Errorf("coef %d = %v, want %v", i, got[i], PaperCPUQuad[i])
		}
	}
}

func TestBuildFineGrainedRecoversLinearTruth(t *testing.T) {
	// With a perfectly linear, noise-free ground truth the fitted model
	// must reproduce it almost exactly.
	g := GroundTruth{Coeff: Coefficients{CPU: PaperCPUQuad, Mem: 0.11, Disk: 0.08, NIC: 0.2}}
	calib := CalibrationSweep(g, 99)
	got, err := BuildFineGrained(calib)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mem-0.11) > 1e-6 || math.Abs(got.Disk-0.08) > 1e-6 || math.Abs(got.NIC-0.2) > 1e-6 {
		t.Errorf("component coefficients off: %+v", got)
	}
	if math.Abs(got.CPU.At(1)-PaperCPUQuad.At(1)) > 1e-6 {
		t.Errorf("CPU coefficient off: %v", got.CPU.At(1))
	}
}

func TestBuildFineGrainedTooFewSamples(t *testing.T) {
	if _, err := BuildFineGrained(make([]Sample, 3)); err == nil {
		t.Error("3 samples accepted")
	}
}

func TestMeanAbsPctError(t *testing.T) {
	got, err := MeanAbsPctError([]float64{110, 90}, []float64{100, 100})
	if err != nil || math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE = %v, err %v; want 10", got, err)
	}
	if _, err := MeanAbsPctError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := MeanAbsPctError([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero actuals accepted")
	}
}

func TestValidateMatchesPaperErrorBands(t *testing.T) {
	// §2.2: "the fine-grained model achieves the lowest error rate for
	// all tools... below 6% even in the worst case"; CPU-only "below 5%
	// for ftp, bbcp and gridftp and below 8% for the rest".
	results, err := Validate(DefaultGroundTruth(), 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Tools) {
		t.Fatalf("got %d results, want %d", len(results), len(Tools))
	}
	for _, r := range results {
		if r.FineGrainedError >= 6 {
			t.Errorf("%s: fine-grained error %.2f%% ≥ 6%%", r.Tool, r.FineGrainedError)
		}
		// Paper: CPU-only "below 5% for ftp, bbcp and gridftp and below
		// 8% for the rest" (scp, rsync).
		bound := 5.0
		if r.Tool == ToolSCP || r.Tool == ToolRsync {
			bound = 8.0
		}
		if r.CPUOnlyError >= bound {
			t.Errorf("%s: CPU-only error %.2f%% ≥ %.0f%%", r.Tool, r.CPUOnlyError, bound)
		}
		if r.FineGrainedError > r.CPUOnlyError {
			t.Errorf("%s: fine-grained (%.2f%%) worse than CPU-only (%.2f%%)",
				r.Tool, r.FineGrainedError, r.CPUOnlyError)
		}
	}
}

func TestToolTraceUnknownTool(t *testing.T) {
	if _, err := ToolTrace(Tool("nc"), DefaultGroundTruth(), 10, 1); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := ToolTrace(ToolSCP, DefaultGroundTruth(), 0, 1); err == nil {
		t.Error("zero-length trace accepted")
	}
}

func TestToolTraceDeterministic(t *testing.T) {
	g := DefaultGroundTruth()
	a, err := ToolTrace(ToolBBCP, g, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ToolTrace(ToolBBCP, g, 20, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}

func TestGroundTruthMeasureNonNegative(t *testing.T) {
	g := DefaultGroundTruth()
	rng := rand.New(rand.NewSource(3))
	f := func(cpu, mem, disk, nic uint8, procs uint8) bool {
		u := endsys.Utilization{
			CPU: float64(cpu % 101), Mem: float64(mem % 101),
			Disk: float64(disk % 101), NIC: float64(nic % 101),
		}
		return g.Measure(u, int(procs%8)+1, rng) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
