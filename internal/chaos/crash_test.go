package chaos_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/didclab/eta/internal/chaos"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

// Crash-recovery soak: a REAL child process (this test binary re-execed
// in child mode) transfers into a shared destination with a receipt
// journal, and the parent SIGKILLs it at scripted byte offsets. Each
// resume cycle must plan strictly less refetch than the last — the
// journal is doing its job — and the final tree must be byte-identical
// to the source. See crash.go for the harness.

const (
	crashChildEnv = "ETA_CRASH_CHILD"
	crashAddrEnv  = "ETA_CRASH_ADDR"
	crashDestEnv  = "ETA_CRASH_DEST"
	crashFsyncEnv = "ETA_CRASH_FSYNC"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		os.Exit(crashChild())
	}
	os.Exit(m.Run())
}

// crashChild is the transfer process under test: plan a verified resume
// from the journal, report the plan, fetch the gaps while journaling
// receipts, and remove the journal once the destination proves
// complete. It reports progress on stdout for RunUntilOffset and is
// built to be SIGKILLed at any instant.
func crashChild() int {
	addr := os.Getenv(crashAddrEnv)
	dest := os.Getenv(crashDestEnv)
	fsync := 2 * time.Millisecond
	if v := os.Getenv(crashFsyncEnv); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return childFail(fmt.Errorf("bad %s: %v", crashFsyncEnv, err))
		}
		fsync = d
	}
	jpath := filepath.Join(dest, proto.JournalFileName)

	client := &proto.Client{Addr: addr, Counters: &proto.Counters{}, VerifyChecksums: true}
	files, err := client.List()
	if err != nil {
		return childFail(err)
	}
	var total units.Bytes
	for _, f := range files {
		total += f.Size
	}
	plan, err := proto.PlanResume(dest, files, proto.ResumeOptions{JournalPath: jpath})
	if err != nil {
		return childFail(err)
	}
	// The plan line must precede any fetching: the parent reads it even
	// from runs it kills mid-transfer.
	fmt.Printf("PLAN skipped=%d verified=%d refetch=%d torn=%v ranges=%d total=%d\n",
		int64(plan.Skipped), int64(plan.Verified), int64(plan.Refetch),
		plan.JournalTorn, len(plan.Ranges), int64(total))
	if len(plan.Ranges) == 0 {
		os.Remove(jpath)
		fmt.Println("DONE")
		return 0
	}

	jr, err := proto.OpenJournal(jpath, proto.JournalOptions{FsyncInterval: fsync})
	if err != nil {
		return childFail(err)
	}
	client.Journal = jr
	ds := proto.NewDirSink(dest)
	ds.SyncOnClose = true
	ex := &proto.Executor{
		Client:      client,
		Sink:        &progressSink{inner: ds},
		Environment: testEnv(),
		Resume:      plan,
		MaxRetries:  4,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: files, Parallelism: 2, Pipelining: 2}
	if _, err := ex.Run(context.Background(), planForChunk(chunk, 2)); err != nil {
		return childFail(err)
	}
	if err := jr.Close(); err != nil {
		return childFail(fmt.Errorf("journal: %w", err))
	}
	final, err := proto.PlanResume(dest, files, proto.ResumeOptions{JournalPath: jpath})
	if err != nil {
		return childFail(err)
	}
	if len(final.Ranges) != 0 {
		return childFail(fmt.Errorf("still %d ranges missing after a clean run", len(final.Ranges)))
	}
	os.Remove(jpath)
	fmt.Println("DONE")
	return 0
}

func childFail(err error) int {
	fmt.Println("ERROR:", err)
	return 1
}

// progressSink forwards to the real DirSink and reports cumulative
// received bytes for the crash harness. Preallocate must forward too —
// it is what drops the partial markers recovery keys off.
type progressSink struct {
	inner *proto.DirSink
	mu    sync.Mutex
	n     int64
}

func (s *progressSink) WriteAt(name string, p []byte, off int64) (int, error) {
	n, err := s.inner.WriteAt(name, p, off)
	s.mu.Lock()
	s.n += int64(n)
	fmt.Println(chaos.FormatProgress(s.n))
	s.mu.Unlock()
	return n, err
}

func (s *progressSink) Close(name string) error { return s.inner.Close(name) }

func (s *progressSink) Preallocate(name string, size int64) error {
	return s.inner.Preallocate(name, size)
}

// planLine is the child's parsed PLAN report.
type planLine struct {
	skipped, verified, refetch, total int64
	ranges                            int
	torn                              bool
}

func parsePlan(t *testing.T, lines []string) planLine {
	t.Helper()
	for _, l := range lines {
		if !strings.HasPrefix(l, "PLAN ") {
			continue
		}
		var p planLine
		if _, err := fmt.Sscanf(l, "PLAN skipped=%d verified=%d refetch=%d torn=%t ranges=%d total=%d",
			&p.skipped, &p.verified, &p.refetch, &p.torn, &p.ranges, &p.total); err != nil {
			t.Fatalf("bad plan line %q: %v", l, err)
		}
		return p
	}
	t.Fatalf("child never reported a PLAN line; lines: %v", lines)
	return planLine{}
}

// checkPartition asserts the recovery invariant: every source byte is
// accounted for exactly once — already complete, journal-verified, or
// planned for refetch. Verified bytes never refetch.
func checkPartition(t *testing.T, p planLine) {
	t.Helper()
	if p.skipped+p.verified+p.refetch != p.total {
		t.Errorf("recovery plan does not partition the dataset: skipped=%d + verified=%d + refetch=%d != total=%d",
			p.skipped, p.verified, p.refetch, p.total)
	}
}

func runCrashChild(t *testing.T, addr, dest string, killAt int64) chaos.CrashResult {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashAddrEnv+"="+addr,
		crashDestEnv+"="+dest,
		crashFsyncEnv+"=2ms",
	)
	res, err := chaos.RunUntilOffset(cmd, killAt)
	if err != nil {
		t.Fatalf("crash child: %v (lines: %v)", err, res.Lines)
	}
	for _, l := range res.Lines {
		if strings.HasPrefix(l, "ERROR:") {
			t.Fatalf("crash child failed: %s", l)
		}
	}
	return res
}

func noLeftoverMarkers(t *testing.T, dest string) {
	t.Helper()
	err := filepath.WalkDir(dest, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), proto.PartialMarkerSuffix) {
			t.Errorf("partial marker survived a complete delivery: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/resume soak in -short mode")
	}
	ds := dataset.NewGenerator(97).Uniform(8, 768*units.KB)
	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.PerStreamRate = 80 * units.Mbps // pace it so kills land mid-flight
	})
	dest := t.TempDir()

	// Each offset is per-run NEW bytes (the child counts what it
	// receives this run), so every cycle makes durable progress before
	// dying and the planned refetch must strictly shrink.
	offsets := []int64{768 << 10, 1280 << 10, 1792 << 10}
	var prev planLine
	for i, off := range offsets {
		res := runCrashChild(t, srv.Addr(), dest, off)
		if !res.Killed {
			t.Fatalf("cycle %d: child finished before the scripted kill at %d (progress %d)", i, off, res.Progress)
		}
		p := parsePlan(t, res.Lines)
		checkPartition(t, p)
		if i == 0 {
			if p.verified != 0 || p.skipped != 0 || p.refetch != p.total {
				t.Errorf("cold start should plan a full refetch, got %+v", p)
			}
		} else {
			if p.refetch >= prev.refetch {
				t.Errorf("cycle %d: planned refetch did not strictly decrease: %d -> %d", i, prev.refetch, p.refetch)
			}
			if p.skipped+p.verified <= prev.skipped+prev.verified {
				t.Errorf("cycle %d: settled bytes did not grow: %d -> %d", i, prev.skipped+prev.verified, p.skipped+p.verified)
			}
		}
		prev = p
	}

	// Final cycle: no kill. Delivery must complete, the plan must shrink
	// once more, and the tree must be byte-identical to the source.
	res := runCrashChild(t, srv.Addr(), dest, -1)
	if res.Killed || res.ExitCode != 0 {
		t.Fatalf("final cycle did not complete cleanly: killed=%v exit=%d lines=%v", res.Killed, res.ExitCode, res.Lines)
	}
	p := parsePlan(t, res.Lines)
	checkPartition(t, p)
	if p.refetch >= prev.refetch {
		t.Errorf("final cycle: planned refetch did not strictly decrease: %d -> %d", prev.refetch, p.refetch)
	}
	assertContent(t, dest, ds)
	noLeftoverMarkers(t, dest)
	if _, err := os.Stat(filepath.Join(dest, proto.JournalFileName)); !os.IsNotExist(err) {
		t.Errorf("receipt journal survived a proven-complete delivery (stat err: %v)", err)
	}
}

func TestCrashRecoveryTornJournalTail(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/resume soak in -short mode")
	}
	ds := dataset.NewGenerator(98).Uniform(6, 768*units.KB)
	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.PerStreamRate = 80 * units.Mbps
	})
	dest := t.TempDir()

	res := runCrashChild(t, srv.Addr(), dest, 1<<20)
	if !res.Killed {
		t.Fatalf("child finished before the scripted kill (progress %d)", res.Progress)
	}
	// Sever the journal tail mid-record and garble what remains: the
	// resume must report the tear, trust nothing past it, and still
	// deliver a byte-identical tree — torn tails degrade to refetch,
	// never to corruption.
	jpath := filepath.Join(dest, proto.JournalFileName)
	if err := chaos.TornTail(jpath, 13, 64); err != nil {
		t.Fatal(err)
	}

	res = runCrashChild(t, srv.Addr(), dest, -1)
	if res.Killed || res.ExitCode != 0 {
		t.Fatalf("resume after torn tail did not complete: killed=%v exit=%d lines=%v", res.Killed, res.ExitCode, res.Lines)
	}
	p := parsePlan(t, res.Lines)
	checkPartition(t, p)
	if !p.torn {
		t.Errorf("resume did not report the torn journal tail: %+v", p)
	}
	assertContent(t, dest, ds)
	noLeftoverMarkers(t, dest)
}
