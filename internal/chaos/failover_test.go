package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

// eventsOfType returns the retained event lines of the given type.
func eventsOfType(l *obs.Log, typ string) [][]byte {
	needle := []byte(`"type":"` + typ + `"`)
	var out [][]byte
	for _, line := range l.Tail(0) {
		if bytes.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return out
}

// endpointsIn returns which endpoint indexes (0..n-1) appear in the
// given event lines' `"endpoint":i` fields.
func endpointsIn(lines [][]byte, n int) map[int]bool {
	seen := make(map[int]bool)
	for _, line := range lines {
		for i := 0; i < n; i++ {
			if bytes.Contains(line, []byte(fmt.Sprintf(`"endpoint":%d`, i))) {
				seen[i] = true
			}
		}
	}
	return seen
}

// TestFailoverReplicaKillRestart is the multi-endpoint acceptance
// scenario: a transfer striped across three real xferd-equivalent
// replicas survives one replica being killed and later restarted
// mid-transfer. The dead replica's channels fail, the endpoint is
// blacklisted and their replacements land on the two survivors; once the
// replica returns, a probe placed through the pool recovers it. Delivery
// must be byte-identical and the retry/redial books reconciled.
func TestFailoverReplicaKillRestart(t *testing.T) {
	ds := dataset.NewGenerator(60).Uniform(32, 1*units.MB)
	slow := func(c *proto.ServerConfig) {
		c.PerStreamRate = 40 * units.Mbps // the kill and restart land mid-flight
	}
	srvs := make([]*proto.Server, 3)
	eps := make([]proto.Endpoint, 3)
	for i := range srvs {
		srvs[i] = synthServer(t, ds, slow)
		eps[i] = proto.Endpoint{Addr: srvs[i].Addr(), Weight: 1}
	}
	pool, err := proto.NewEndpointPool(eps...)
	if err != nil {
		t.Fatal(err)
	}
	// One failure is proof enough on loopback, and short probation keeps
	// the replica's comeback inside the test's horizon.
	pool.FailThreshold = 1
	pool.Probation = 50 * time.Millisecond
	pool.ProbationCap = 100 * time.Millisecond

	reg := obs.NewRegistry()
	events := obs.NewLog(nil)
	dir := t.TempDir()
	exec := &proto.Executor{
		Client: &proto.Client{
			Endpoints:       pool,
			Counters:        &proto.Counters{},
			VerifyChecksums: true,
			StallTimeout:    200 * time.Millisecond,
		},
		Sink:        proto.NewDirSink(dir),
		Environment: testEnv(),
		MaxRetries:  32,
		Metrics:     reg,
		Events:      events,
		Label:       "failover",
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 2}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 3))
	if err != nil {
		t.Fatal(err)
	}

	// Kill replica 1 mid-transfer. Server.Close severs every live
	// session conn, so its channels die exactly as a crashed process's
	// would.
	time.Sleep(150 * time.Millisecond)
	victimAddr := srvs[1].Addr()
	srvs[1].Close()

	// Bring it back on the same address a little later.
	time.Sleep(200 * time.Millisecond)
	cfg := proto.ServerConfig{Store: proto.NewSynthStore(ds), Logf: t.Logf}
	slow(&cfg)
	restarted, err := proto.ListenAndServe(victimAddr, cfg)
	if err != nil {
		t.Fatalf("restarting replica on %s: %v", victimAddr, err)
	}
	t.Cleanup(func() { restarted.Close() })

	// Drive the probe through the transfer path: once the victim's
	// blacklist lapses, cycling the allocation down and back up makes
	// reconcile place fresh channels through the pool; round-robin over
	// the three eligible endpoints reaches the restarted replica within a
	// couple of cycles, its dial succeeds and the endpoint recovers.
	deadline := wallNow().Add(5 * time.Second)
	for len(eventsOfType(events, obs.EvEndpointRecovered)) == 0 {
		if wallNow().After(deadline) {
			t.Fatal("restarted replica never recovered")
		}
		if pool.HealthyCount() < 3 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if err := sess.SetTotalChannels(3); err != nil {
			t.Fatal(err)
		}
		if err := sess.SetTotalChannels(6); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive the replica kill/restart: %v", err)
	}

	// Byte-identical delivery: every file equals its canonical content.
	assertContent(t, dir, ds)
	if r.Bytes < ds.TotalSize() {
		t.Errorf("moved only %v of %v", r.Bytes, ds.TotalSize())
	}

	// The kill must have cost something, and the books must reconcile.
	snap := reg.Snapshot()
	if r.Retries == 0 {
		t.Error("no retries recorded across a replica kill")
	}
	if got := snap.Counters["retries_total"]; got != r.Retries {
		t.Errorf("retries_total = %d, report says %d", got, r.Retries)
	}
	if got := snap.Counters["channels_redialed"]; got < 1 {
		t.Errorf("channels_redialed = %d, want >= 1", got)
	}

	// Health lifecycle: the victim was blacklisted and later recovered.
	if got := eventsOfType(events, obs.EvEndpointBlacklisted); len(got) == 0 {
		t.Error("no endpoint_blacklisted event for the killed replica")
	} else if seen := endpointsIn(got, 3); !seen[1] {
		t.Errorf("blacklist events name endpoints %v, want victim 1", seen)
	}
	if got := eventsOfType(events, obs.EvEndpointRecovered); len(got) == 0 {
		t.Error("no endpoint_recovered event after the replica restart")
	} else if seen := endpointsIn(got, 3); !seen[1] {
		t.Errorf("recovery events name endpoints %v, want victim 1", seen)
	}

	// Placement actually striped across replicas.
	placed := endpointsIn(eventsOfType(events, obs.EvChannelPlaced), 3)
	if len(placed) < 2 {
		t.Errorf("channels placed on endpoints %v, want at least two distinct replicas", placed)
	}
}

// TestFailoverDeadReplicaStaysOut: when a killed replica never returns,
// the transfer still completes on the survivors — replacement channels
// avoid the blacklisted endpoint while it stays dark.
func TestFailoverDeadReplicaStaysOut(t *testing.T) {
	ds := dataset.NewGenerator(61).Uniform(16, 500*units.KB)
	slow := func(c *proto.ServerConfig) {
		c.PerStreamRate = 60 * units.Mbps
	}
	srvs := make([]*proto.Server, 3)
	eps := make([]proto.Endpoint, 3)
	for i := range srvs {
		srvs[i] = synthServer(t, ds, slow)
		eps[i] = proto.Endpoint{Addr: srvs[i].Addr(), Weight: 1}
	}
	pool, err := proto.NewEndpointPool(eps...)
	if err != nil {
		t.Fatal(err)
	}
	pool.FailThreshold = 1
	pool.Probation = 100 * time.Millisecond

	dir := t.TempDir()
	exec := &proto.Executor{
		Client: &proto.Client{
			Endpoints:       pool,
			Counters:        &proto.Counters{},
			VerifyChecksums: true,
			StallTimeout:    200 * time.Millisecond,
		},
		Sink:        proto.NewDirSink(dir),
		Environment: testEnv(),
		MaxRetries:  32,
		Events:      obs.NewLog(nil),
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 2}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 3))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	srvs[2].Close() // and it never comes back
	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive losing a replica for good: %v", err)
	}
	assertContent(t, dir, ds)
	if r.Bytes < ds.TotalSize() {
		t.Errorf("moved only %v of %v", r.Bytes, ds.TotalSize())
	}
}
