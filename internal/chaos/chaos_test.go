package chaos

import (
	"reflect"
	"testing"
	"time"
)

func TestValidateRejectsMalformedSchedules(t *testing.T) {
	cases := []struct {
		name  string
		steps []Step
	}{
		{"unknown kind", []Step{{Conn: 0, At: 10, Kind: "meteor"}}},
		{"negative conn", []Step{{Conn: -1, At: 10, Kind: Reset}}},
		{"negative offset", []Step{{Conn: 0, At: -5, Kind: Reset}}},
		{"stall without duration", []Step{{Conn: 0, At: 10, Kind: Stall}}},
		{"latency without duration", []Step{{Conn: 0, At: 10, Kind: Latency}}},
	}
	for _, tc := range cases {
		if err := Validate(tc.steps); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateAcceptsEveryKind(t *testing.T) {
	var steps []Step
	for _, k := range Kinds {
		steps = append(steps, Step{Conn: 1, At: 100, Kind: k, Duration: 10 * time.Millisecond})
	}
	if err := Validate(steps); err != nil {
		t.Fatalf("well-formed schedule rejected: %v", err)
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("empty schedule rejected: %v", err)
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	a := SeededSchedule(42, 20, 4, 1<<20)
	b := SeededSchedule(42, 20, 4, 1<<20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := SeededSchedule(43, 20, 4, 1<<20)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestSeededScheduleRespectsBounds(t *testing.T) {
	steps := SeededSchedule(7, 50, 3, 4096)
	if len(steps) != 50 {
		t.Fatalf("got %d steps, want 50", len(steps))
	}
	if err := Validate(steps); err != nil {
		t.Fatalf("seeded schedule invalid: %v", err)
	}
	for i, s := range steps {
		if s.Conn < 0 || s.Conn >= 3 {
			t.Errorf("step %d: conn %d outside [0,3)", i, s.Conn)
		}
		if s.At < 0 || s.At >= 4096 {
			t.Errorf("step %d: offset %d outside [0,4096)", i, s.At)
		}
		if s.Kind == Blackhole || s.Kind == Outage {
			t.Errorf("step %d: seeded schedule drew %s", i, s.Kind)
		}
		if s.Duration < 5*time.Millisecond || s.Duration >= 55*time.Millisecond {
			t.Errorf("step %d: duration %v outside [5ms,55ms)", i, s.Duration)
		}
	}
	if SeededSchedule(1, 0, 3, 100) != nil || SeededSchedule(1, 5, 0, 100) != nil || SeededSchedule(1, 5, 3, 0) != nil {
		t.Error("degenerate parameters should yield a nil schedule")
	}
}

func TestSortStepsIsStableByConnThenOffset(t *testing.T) {
	steps := []Step{
		{Conn: 1, At: 50, Kind: Reset},
		{Conn: 0, At: 90, Kind: Stall, Duration: time.Millisecond},
		{Conn: 1, At: 10, Kind: Corrupt},
		{Conn: 0, At: 90, Kind: Latency, Duration: time.Millisecond}, // same (conn,at): authored order kept
		{Conn: 0, At: 20, Kind: Partial},
	}
	sortSteps(steps)
	want := []Step{
		{Conn: 0, At: 20, Kind: Partial},
		{Conn: 0, At: 90, Kind: Stall, Duration: time.Millisecond},
		{Conn: 0, At: 90, Kind: Latency, Duration: time.Millisecond},
		{Conn: 1, At: 10, Kind: Corrupt},
		{Conn: 1, At: 50, Kind: Reset},
	}
	if !reflect.DeepEqual(steps, want) {
		t.Fatalf("sorted = %+v", steps)
	}
}
