package chaos_test

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/didclab/eta/internal/chaos"
	"github.com/didclab/eta/internal/obs"
)

// wallNow reads the real clock. The chaos *package* is deterministic
// (byte-offset-triggered faults), but its tests drive real TCP sockets
// whose deadlines and timeouts are inherently wall-clock.
func wallNow() time.Time {
	return time.Now() //lint:allow nodeterm real-socket deadlines and test timeouts
}

// pattern returns size deterministic bytes — the reference content the
// raw-TCP proxy tests compare against.
func pattern(size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return b
}

// patternServer writes pattern(size) to every accepted connection and
// closes it — a minimal backend for exercising the proxy's fault paths
// without the transfer protocol in the way.
func patternServer(t *testing.T, size int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = c.Write(pattern(size))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func newProxy(t *testing.T, backend string, opts chaos.Options) *chaos.Proxy {
	t.Helper()
	p, err := chaos.New(backend, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// readThrough dials the proxy and reads until EOF or error.
func readThrough(t *testing.T, addr string) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(wallNow().Add(10 * time.Second))
	got, _ := io.ReadAll(conn)
	return got
}

func TestProxyForwardsUntouchedWithoutSchedule(t *testing.T) {
	const size = 200 * 1024
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{})
	got := readThrough(t, proxy.Addr())
	if !bytes.Equal(got, pattern(size)) {
		t.Fatalf("plain forwarding changed the stream: got %d bytes", len(got))
	}
	if n := proxy.InjectedTotal(); n != 0 {
		t.Errorf("injected %d faults with an empty schedule", n)
	}
}

func TestProxyCorruptFlipsExactlyOneByte(t *testing.T) {
	const size, target = 100 * 1024, int64(64*1024 + 123)
	backend := patternServer(t, size)
	reg := obs.NewRegistry()
	var events bytes.Buffer
	proxy := newProxy(t, backend, chaos.Options{
		Schedule: []chaos.Step{{Conn: 0, At: target, Kind: chaos.Corrupt}},
		Metrics:  reg,
		Events:   obs.NewLog(&events),
	})
	got := readThrough(t, proxy.Addr())
	want := pattern(size)
	if len(got) != size {
		t.Fatalf("read %d of %d bytes", len(got), size)
	}
	for i := range got {
		switch {
		case int64(i) == target && got[i] != want[i]^0xFF:
			t.Fatalf("byte %d = %02x, want corrupted %02x", i, got[i], want[i]^0xFF)
		case int64(i) != target && got[i] != want[i]:
			t.Fatalf("byte %d damaged (%02x != %02x); corruption must touch only offset %d", i, got[i], want[i], target)
		}
	}
	if n := proxy.Injected()[chaos.Corrupt]; n != 1 {
		t.Errorf("corrupt count = %d, want 1", n)
	}
	proxy.Close() // join pipes so the event buffer is quiescent
	if got := reg.Snapshot().Counters[`chaos_faults_injected{kind="corrupt"}`]; got != 1 {
		t.Errorf(`chaos_faults_injected{kind="corrupt"} = %d, want 1`, got)
	}
	if !strings.Contains(events.String(), `"type":"fault_injected"`) {
		t.Errorf("no fault_injected event emitted: %s", events.String())
	}
}

func TestProxyResetSeversMidStream(t *testing.T) {
	const size = 512 * 1024
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{
		Schedule: []chaos.Step{{Conn: 0, At: 100 * 1024, Kind: chaos.Reset}},
	})
	got := readThrough(t, proxy.Addr())
	if len(got) >= size {
		t.Fatalf("full stream arrived through a reset (%d bytes)", len(got))
	}
	if !bytes.Equal(got, pattern(size)[:len(got)]) {
		t.Error("bytes delivered before the reset were damaged")
	}
	if n := proxy.Injected()[chaos.Reset]; n != 1 {
		t.Errorf("reset count = %d, want 1", n)
	}
}

func TestProxyPartialTruncatesThenSevers(t *testing.T) {
	const size = 512 * 1024
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{
		Schedule: []chaos.Step{{Conn: 0, At: 100 * 1024, Kind: chaos.Partial}},
	})
	got := readThrough(t, proxy.Addr())
	if len(got) >= size {
		t.Fatalf("full stream arrived through a partial write (%d bytes)", len(got))
	}
	if !bytes.Equal(got, pattern(size)[:len(got)]) {
		t.Error("bytes delivered before the truncation were damaged")
	}
}

func TestProxyStallPausesThenDeliversEverything(t *testing.T) {
	const size = 64 * 1024
	const hold = 150 * time.Millisecond
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{
		Schedule: []chaos.Step{{Conn: 0, At: 1024, Kind: chaos.Stall, Duration: hold}},
	})
	start := wallNow()
	got := readThrough(t, proxy.Addr())
	if elapsed := wallNow().Sub(start); elapsed < hold {
		t.Errorf("stream finished in %v, stall should hold it ≥%v", elapsed, hold)
	}
	if !bytes.Equal(got, pattern(size)) {
		t.Fatalf("content damaged across a stall: got %d bytes", len(got))
	}
}

func TestProxyRoutesStepsByAcceptOrder(t *testing.T) {
	const size = 64 * 1024
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{
		Schedule: []chaos.Step{{Conn: 1, At: 2048, Kind: chaos.Corrupt}},
	})
	// Conn 0 has no scripted steps and must arrive untouched; conn 1 is
	// the corruption target.
	first := readThrough(t, proxy.Addr())
	second := readThrough(t, proxy.Addr())
	if !bytes.Equal(first, pattern(size)) {
		t.Error("conn 0 damaged by a step targeting conn 1")
	}
	if bytes.Equal(second, pattern(size)) {
		t.Error("conn 1 escaped its scripted corruption")
	}
}

func TestProxyOutageDropsServiceThenRestores(t *testing.T) {
	const size = 512 * 1024
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{
		Schedule: []chaos.Step{{Conn: 0, At: 1024, Kind: chaos.Outage, Duration: 250 * time.Millisecond}},
	})
	got := readThrough(t, proxy.Addr()) // triggers the outage mid-stream
	if len(got) >= size {
		t.Fatalf("full stream arrived through an outage (%d bytes)", len(got))
	}
	// Immediately after the outage fires, new dials must fail.
	if conn, err := net.Dial("tcp", proxy.Addr()); err == nil {
		conn.Close()
		t.Fatal("dial succeeded during the outage window")
	}
	// ... and succeed again once the listener is restored.
	deadline := wallNow().Add(5 * time.Second)
	for {
		got := readThrough2(proxy.Addr())
		if bytes.Equal(got, pattern(size)) {
			break
		}
		if wallNow().After(deadline) {
			t.Fatal("service never restored after the scripted outage")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := proxy.Injected()[chaos.Outage]; n != 1 {
		t.Errorf("outage count = %d, want 1", n)
	}
}

// readThrough2 is readThrough without the test-failing dial: outage
// polling expects dials to fail for a while.
func readThrough2(addr string) []byte {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(wallNow().Add(10 * time.Second))
	got, _ := io.ReadAll(conn)
	return got
}

func TestProxyManualStopRestartKillAll(t *testing.T) {
	const size = 32 * 1024
	backend := patternServer(t, size)
	proxy := newProxy(t, backend, chaos.Options{})

	if got := readThrough(t, proxy.Addr()); !bytes.Equal(got, pattern(size)) {
		t.Fatal("baseline read through proxy failed")
	}
	proxy.Stop()
	if conn, err := net.Dial("tcp", proxy.Addr()); err == nil {
		conn.Close()
		t.Fatal("dial succeeded while stopped")
	}
	if err := proxy.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Restart(); err != nil {
		t.Fatalf("restart while listening should be a no-op: %v", err)
	}
	if got := readThrough(t, proxy.Addr()); !bytes.Equal(got, pattern(size)) {
		t.Fatal("read through restarted proxy failed")
	}

	// KillAll severs live connections but keeps accepting.
	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy.KillAll()
	_ = conn.SetReadDeadline(wallNow().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, conn); err == nil {
		// io.Copy returns nil on EOF — a severed conn may surface as EOF
		// or a reset; either way the stream must be short.
	}
	if got := readThrough(t, proxy.Addr()); !bytes.Equal(got, pattern(size)) {
		t.Fatal("new dial after KillAll failed")
	}
}
