package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
)

// forwardChunk is the proxy's forwarding buffer size. Fault offsets are
// byte-exact regardless of this value (the chunk containing a scripted
// offset is located and, for Corrupt, indexed into); it only bounds how
// much data can slip through between two schedule checks.
const forwardChunk = 32 * 1024

// Options configures a Proxy.
type Options struct {
	// Addr is the listen address; "127.0.0.1:0" when empty.
	Addr string
	// Schedule is the scripted fault sequence (see Step). Steps are
	// consumed per target connection in (Conn, At) order; steps left
	// behind on a connection that died early never fire.
	Schedule []Step
	// Events receives one fault_injected event per injected fault;
	// optional.
	Events *obs.Log
	// Metrics receives the chaos_faults_injected{kind} counter family;
	// optional.
	Metrics *obs.Registry
	// Trace, when set, roots one chaos_fault span per injected fault.
	// Instant faults (reset, corrupt, partial) are point spans; stalls,
	// black-holes and outages span the interval the fault held the
	// connection (or listener) down, so the flight recorder can overlay
	// fault windows on the transfer timeline.
	Trace *span.Tracer
}

// Proxy forwards TCP to a backend and injects scripted faults into the
// server→client direction. It also exposes the manual controls the
// resilience tests script directly: Stop (listener down + all
// connections severed), Restart (listener back up) and KillAll (sever
// connections, keep accepting).
type Proxy struct {
	backend  string
	listenAt string
	events   *obs.Log
	faults   *obs.Family
	trace    *span.Tracer

	done     chan struct{} // closed by Close; unblocks stalls and black-holes
	doneOnce sync.Once

	mu       sync.Mutex
	ln       net.Listener
	pairs    []*pair
	accepted int
	steps    map[int][]Step
	injected map[Kind]int64
	closed   bool
	wg       sync.WaitGroup
}

// pair is one proxied connection: the accepted client side, the dialed
// backend side, and a dead signal that unblocks any fault sleeping on
// the pair.
type pair struct {
	idx    int
	client net.Conn
	server net.Conn
	dead   chan struct{}
	once   sync.Once
}

// sever closes both sides and signals anything blocked on the pair.
func (pr *pair) sever() {
	pr.once.Do(func() {
		pr.client.Close()
		pr.server.Close()
		close(pr.dead)
	})
}

// New starts a proxy for backend. Close it to stop.
func New(backend string, opts Options) (*Proxy, error) {
	if err := Validate(opts.Schedule); err != nil {
		return nil, err
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", addr, err)
	}
	steps := make(map[int][]Step)
	for _, s := range opts.Schedule {
		steps[s.Conn] = append(steps[s.Conn], s)
	}
	for conn := range steps {
		sortSteps(steps[conn])
	}
	p := &Proxy{
		backend:  backend,
		listenAt: ln.Addr().String(),
		events:   opts.Events,
		faults:   opts.Metrics.Family("chaos_faults_injected", "kind"),
		trace:    opts.Trace,
		done:     make(chan struct{}),
		ln:       ln,
		steps:    steps,
		injected: make(map[Kind]int64),
	}
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the proxy's listen address. It stays stable across
// Stop/Restart cycles so clients can re-dial through an outage.
func (p *Proxy) Addr() string { return p.listenAt }

// Injected returns how many faults of each kind have fired so far.
func (p *Proxy) Injected() map[Kind]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Kind]int64, len(p.injected))
	for k, n := range p.injected {
		out[k] = n
	}
	return out
}

// InjectedTotal returns the total number of faults that have fired.
func (p *Proxy) InjectedTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, n := range p.injected {
		total += n
	}
	return total
}

// Stop closes the listener and severs every live connection; until
// Restart, dials to the proxy fail outright — a full service outage.
func (p *Proxy) Stop() {
	p.mu.Lock()
	ln := p.ln
	p.ln = nil
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.KillAll()
}

// Restart re-binds the proxy's original address after a Stop or a
// scripted outage. It is a no-op on a closed or already-listening
// proxy.
func (p *Proxy) Restart() error {
	p.mu.Lock()
	if p.closed || p.ln != nil {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	ln, err := net.Listen("tcp", p.listenAt)
	if err != nil {
		return fmt.Errorf("chaos: restart %s: %w", p.listenAt, err)
	}
	p.mu.Lock()
	if p.closed || p.ln != nil {
		p.mu.Unlock()
		ln.Close()
		return nil
	}
	p.ln = ln
	p.wg.Add(1)
	p.mu.Unlock()
	go p.acceptLoop(ln)
	return nil
}

// KillAll severs every live proxied connection (both directions) while
// leaving the listener up, so new dials still succeed.
func (p *Proxy) KillAll() {
	p.mu.Lock()
	pairs := append([]*pair(nil), p.pairs...)
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.sever()
	}
}

// Close stops the proxy for good: listener down, connections severed,
// scheduled restores cancelled, all goroutines joined.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.doneOnce.Do(func() { close(p.done) })
	p.Stop()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		pr := &pair{idx: p.accepted, client: client, server: server, dead: make(chan struct{})}
		p.accepted++
		p.pairs = append(p.pairs, pr)
		p.wg.Add(2)
		p.mu.Unlock()
		go p.pipeC2S(pr)
		go p.pipeS2C(pr)
	}
}

// pipeC2S forwards the client→server direction untouched; the fault
// model targets the data-bearing server→client direction.
func (p *Proxy) pipeC2S(pr *pair) {
	defer p.wg.Done()
	defer pr.sever()
	buf := make([]byte, forwardChunk)
	for {
		n, rerr := pr.client.Read(buf)
		if n > 0 {
			if _, werr := pr.server.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// pipeS2C forwards the server→client direction, consuming the
// connection's scripted steps as its stream offset crosses them.
func (p *Proxy) pipeS2C(pr *pair) {
	defer p.wg.Done()
	defer pr.sever()
	p.mu.Lock()
	steps := p.steps[pr.idx]
	p.mu.Unlock()
	next := 0
	var off int64
	buf := make([]byte, forwardChunk)
	for {
		n, rerr := pr.server.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			for next < len(steps) && steps[next].At < off+int64(n) {
				st := steps[next]
				next++
				fsp := p.record(pr, st, off)
				switch st.Kind {
				case Reset:
					fsp.End()
					return
				case Stall, Latency:
					resumed := p.pause(pr, st.Duration)
					fsp.End("resumed", resumed)
					if !resumed {
						return
					}
				case Blackhole:
					p.pause(pr, -1)
					fsp.End()
					return
				case Corrupt:
					idx := st.At - off
					if idx < 0 {
						idx = 0
					}
					chunk[idx] ^= 0xFF
					fsp.End()
				case Partial:
					if half := len(chunk) / 2; half > 0 {
						_, _ = pr.client.Write(chunk[:half])
					}
					fsp.End()
					return
				case Outage:
					p.beginOutage(st.Duration, fsp)
					return
				default:
					fsp.End()
				}
			}
			if _, werr := pr.client.Write(chunk); werr != nil {
				return
			}
			off += int64(n)
		}
		if rerr != nil {
			return
		}
	}
}

// pause sleeps for d (forever when d is negative) or until the pair
// dies or the proxy closes; it reports whether forwarding may resume.
func (p *Proxy) pause(pr *pair, d time.Duration) bool {
	var timer <-chan time.Time
	if d >= 0 {
		timer = time.After(d)
	}
	select {
	case <-timer: // nil — blocking forever — when d < 0
		return true
	case <-pr.dead:
		return false
	case <-p.done:
		return false
	}
}

// beginOutage takes the whole proxy down (listener and connections) and
// schedules the listener's return after d. The fault span (nil when
// untraced) stays open until the listener is back — its duration IS the
// outage window.
func (p *Proxy) beginOutage(d time.Duration, fsp *span.Span) {
	p.Stop()
	if d <= 0 {
		fsp.End("restored", false)
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		select {
		case <-time.After(d):
			_ = p.Restart()
			fsp.End("restored", true)
		case <-p.done:
			fsp.End("restored", false)
		}
	}()
}

// record books one injected fault in the counters, metrics and journal,
// and opens its chaos_fault span (nil when untraced); the caller ends
// it when the fault's effect has run its course.
func (p *Proxy) record(pr *pair, st Step, off int64) *span.Span {
	p.mu.Lock()
	p.injected[st.Kind]++
	p.mu.Unlock()
	p.faults.With(string(st.Kind)).Inc()
	fsp := p.trace.Root(span.NameChaosFault,
		"kind", string(st.Kind), "conn", pr.idx, "at", st.At)
	p.events.Emit(obs.EvFaultInjected,
		"kind", string(st.Kind),
		"conn", pr.idx,
		"at", st.At,
		"stream_off", off,
		"duration_ms", st.Duration.Milliseconds())
	return fsp
}
