// Package chaos is a deterministic, seedable fault-injection subsystem
// for the real-TCP transfer stack. Its centerpiece is Proxy, a TCP
// proxy that sits between a transfer client and server and injects
// faults from a scripted schedule: connection resets, read/write stalls
// and black-holes, partial writes, single-byte payload corruption,
// latency spikes, and full listener outages with restore.
//
// Determinism is the design constraint that separates this package from
// an ad-hoc test helper. Faults fire when a specific proxied
// connection's server→client byte stream crosses a scripted offset —
// never on wall-clock time — so a given schedule perturbs a given
// transfer at exactly the same protocol positions on every run.
// Schedules are either written by hand (when a test needs a fault at a
// precise stream offset, e.g. inside a block payload rather than its
// header) or generated from a seed with SeededSchedule. Every injected
// fault is emitted as an obs event (fault_injected) and counted in a
// chaos_faults_injected metric family, so chaos runs are replayable and
// auditable after the fact.
//
// The package deliberately depends on nothing but the standard library
// and internal/obs (scripts/lint.sh audits this), sits in the nodeterm
// analyzer's deterministic set (no wall-clock reads, no global RNG) and
// is one of the few packages allowed to spawn raw goroutines (nakedgo).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind names a fault class. The taxonomy follows how real end-to-end
// transfers die (DESIGN.md §9): fast failures (reset), silent ones
// (stall, blackhole), data damage (corrupt, partial), jitter (latency)
// and service loss (outage).
type Kind string

const (
	// Reset severs the target connection immediately: the peer sees a
	// hard transport error on its next read or write.
	Reset Kind = "reset"
	// Stall pauses server→client forwarding on the target connection
	// for Duration, then resumes. A stall longer than the client's
	// watchdog timeout models a temporarily black-holed path; a short
	// one is just a hiccup.
	Stall Kind = "stall"
	// Blackhole stops server→client forwarding on the target connection
	// forever (until the connection dies or the proxy closes). The
	// connection stays open — only a progress watchdog can tell this
	// apart from a slow link.
	Blackhole Kind = "blackhole"
	// Corrupt XORs the single byte at stream offset At with 0xFF and
	// forwards everything else untouched — the minimal integrity fault
	// a checksum must catch.
	Corrupt Kind = "corrupt"
	// Partial forwards only half of the chunk in flight when the fault
	// fires, drops the rest, and severs the connection: a truncated
	// write followed by connection loss.
	Partial Kind = "partial"
	// Latency delays the chunk in flight by Duration, then forwards it
	// and resumes normal service — a one-shot latency spike.
	Latency Kind = "latency"
	// Outage closes the proxy's listener and severs every live proxied
	// connection; new dials fail until the listener is restored after
	// Duration (restore is skipped when Duration is zero or negative —
	// use Restart for manual control).
	Outage Kind = "outage"
)

// Kinds lists every fault class, in taxonomy order.
var Kinds = []Kind{Reset, Stall, Blackhole, Corrupt, Partial, Latency, Outage}

// Step is one scripted fault. It fires when connection Conn's
// server→client stream reaches byte offset At; both coordinates are
// deterministic for a deterministic workload, which is what makes chaos
// schedules replayable.
type Step struct {
	// Conn is the proxied connection the fault targets, in accept order
	// (0 is the first connection the proxy accepted). For a transfer
	// channel the client dials the control connection first, then its
	// data streams, so conn 0 is control and conns 1..parallelism are
	// data. Outage steps use Conn only as the trigger.
	Conn int
	// At is the byte offset in the connection's server→client stream at
	// which the fault fires: the fault applies to the chunk containing
	// byte At (for Corrupt, to byte At itself).
	At int64
	// Kind is the fault class.
	Kind Kind
	// Duration parameterizes Stall, Latency and Outage.
	Duration time.Duration
}

// Validate rejects malformed schedules: unknown kinds, negative
// coordinates, or time-parameterized faults without a duration.
func Validate(schedule []Step) error {
	known := make(map[Kind]bool, len(Kinds))
	for _, k := range Kinds {
		known[k] = true
	}
	for i, s := range schedule {
		if !known[s.Kind] {
			return fmt.Errorf("chaos: step %d has unknown kind %q", i, s.Kind)
		}
		if s.Conn < 0 {
			return fmt.Errorf("chaos: step %d targets negative conn %d", i, s.Conn)
		}
		if s.At < 0 {
			return fmt.Errorf("chaos: step %d fires at negative offset %d", i, s.At)
		}
		if (s.Kind == Stall || s.Kind == Latency) && s.Duration <= 0 {
			return fmt.Errorf("chaos: step %d (%s) needs a positive duration", i, s.Kind)
		}
	}
	return nil
}

// SeededSchedule derives a deterministic schedule of n faults from a
// seed: same seed, same schedule, every time. Faults are spread over
// connections [0, conns) and stream offsets [0, window), with durations
// drawn from [5ms, 55ms). Blackhole and Outage are excluded — they
// require a watchdog (or manual Restart) to make progress, so soak
// loops script them explicitly rather than drawing them blind.
func SeededSchedule(seed int64, n, conns int, window int64) []Step {
	if n <= 0 || conns <= 0 || window <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{Reset, Stall, Corrupt, Partial, Latency}
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = Step{
			Conn:     rng.Intn(conns),
			At:       rng.Int63n(window),
			Kind:     kinds[rng.Intn(len(kinds))],
			Duration: 5*time.Millisecond + time.Duration(rng.Int63n(int64(50*time.Millisecond))),
		}
	}
	sortSteps(steps)
	return steps
}

// sortSteps orders a schedule by (Conn, At) — the order each
// connection's pipe loop consumes its steps in. The sort is stable so
// two faults scripted at the same offset keep their authored order.
func sortSteps(steps []Step) {
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].Conn != steps[j].Conn {
			return steps[i].Conn < steps[j].Conn
		}
		return steps[i].At < steps[j].At
	})
}
