package chaos_test

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"github.com/didclab/eta/internal/chaos"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/obs/span"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

// tracedEnergy is a constant-power cumulative source that records the
// energy_model_sample curve the offline attribution replays.
type tracedEnergy struct {
	start time.Time
	watts float64
	log   *obs.Log
}

func (f *tracedEnergy) Total() (units.Joules, error) {
	j := f.watts * wallNow().Sub(f.start).Seconds()
	f.log.Emit(obs.EvEnergyModel, "joules_total", j, "watts", f.watts)
	return units.Joules(j), nil
}

// TestChaosSoakTracedSpans is the tracing variant of the soak: a
// transfer through a faulting proxy — with the client, the server AND
// the proxy sharing one tracer — must still produce a balanced span
// forest (every span_begin matched by a span_end, chaos_fault spans
// included), and the offline per-span energy attribution must sum to
// the source's final total within tolerance.
func TestChaosSoakTracedSpans(t *testing.T) {
	ds := dataset.NewGenerator(64).Uniform(8, 300*units.KB)
	reg := obs.NewRegistry()
	var journal bytes.Buffer
	events := obs.NewLog(&journal)
	tracer := span.NewTracer(reg, events)

	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.Events = events
		c.Trace = tracer
	})
	proxy := newProxy(t, srv.Addr(), chaos.Options{
		Schedule: []chaos.Step{
			{Conn: 1, At: 120_000, Kind: chaos.Stall, Duration: 400 * time.Millisecond},
			{Conn: 1, At: 200_000, Kind: chaos.Reset},
			{Conn: 3, At: 150_000, Kind: chaos.Corrupt},
		},
		Metrics: reg,
		Events:  events,
		Trace:   tracer,
	})
	dir := t.TempDir()
	exec := chaosExec(t, proxy.Addr(), dir, reg, 16, 150*time.Millisecond)
	exec.Energy = &tracedEnergy{start: wallNow(), watts: 40, log: events}
	exec.Events = events
	exec.Trace = tracer
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}

	r, err := exec.Run(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatalf("traced transfer did not survive the schedule: %v", err)
	}
	assertContent(t, dir, ds)
	if r.EnergyJoules <= 0 {
		t.Errorf("Report.EnergyJoules = %v, want > 0", r.EnergyJoules)
	}
	injected := proxy.InjectedTotal()
	if injected == 0 {
		t.Fatal("no faults injected — the schedule never fired")
	}

	// Channel, server-session and chaos_fault spans all close during
	// teardown; outstanding outage/stall spans unwind on proxy.Close.
	proxy.Close()
	srv.Close()
	deadline := wallNow().Add(5 * time.Second)
	for tracer.LiveCount() > 0 {
		if wallNow().After(deadline) {
			t.Fatalf("%d spans still open after teardown", tracer.LiveCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := events.Flush(); err != nil {
		t.Fatal(err)
	}

	forest, err := span.ReadForest(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Leaked) > 0 || forest.Dangling > 0 {
		for _, rec := range forest.Leaked {
			t.Logf("leaked: %s [%s] span %d", rec.Name, rec.Trace, rec.ID)
		}
		t.Fatalf("unbalanced forest: %d leaked, %d dangling", len(forest.Leaked), forest.Dangling)
	}
	byName := map[string]int{}
	for _, rec := range forest.ByID {
		byName[rec.Name]++
	}
	if got := byName[span.NameChaosFault]; int64(got) != injected {
		t.Errorf("%d chaos_fault spans for %d injected faults", got, injected)
	}
	// The reset (and the watchdog tripping on the stall) force re-dials,
	// which the forest must show as retry + redial spans.
	if byName[span.NameChannelRedial] == 0 && byName[span.NameRetry] == 0 {
		t.Errorf("no redial or retry spans after faults (forest: %v)", byName)
	}

	span.Attribute(forest)
	total := forest.FinalJoules()
	if total <= 0 {
		t.Fatal("no energy samples in the journal")
	}
	sum := forest.SumSelfJoules()
	if rel := math.Abs(sum-total) / total; rel > 0.01 {
		t.Errorf("self-joules sum %v vs source total %v (%.2f%% off, want ≤1%%; unattributed %v)",
			sum, total, rel*100, forest.Unattributed)
	}
}
