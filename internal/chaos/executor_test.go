package chaos_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/didclab/eta/internal/chaos"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// synthServer starts a transfer server over a synthetic dataset — the
// backend every chaos proxy in this package fronts.
func synthServer(t *testing.T, ds dataset.Dataset, mutate func(*proto.ServerConfig)) *proto.Server {
	t.Helper()
	cfg := proto.ServerConfig{Store: proto.NewSynthStore(ds), Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := proto.ListenAndServe("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// testEnv describes the loopback path for the executor's environment.
func testEnv() transfer.Environment {
	return transfer.Environment{
		Path: netem.Path{
			Bandwidth:       1 * units.Gbps,
			RTT:             10 * time.Millisecond,
			MaxTCPBuffer:    4 * units.MB,
			EffStreamBuffer: 256 * units.KB,
		},
		MaxChannels:    8,
		ServersPerSite: 1,
	}
}

func planForChunk(chunk dataset.Chunk, channels int) transfer.Plan {
	return transfer.Plan{
		Chunks: []transfer.ChunkPlan{{Chunk: chunk, Channels: channels, Weight: 1, AcceptRealloc: true}},
	}
}

// assertContent proves byte-identical delivery: every file in the sink
// directory must equal its canonical synthetic content exactly — not
// just "enough bytes arrived", but the same bytes, in their final
// post-retry state.
func assertContent(t *testing.T, dir string, ds dataset.Dataset) {
	t.Helper()
	for _, f := range ds.Files {
		got, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(f.Name)))
		if err != nil {
			t.Errorf("%s never delivered: %v", f.Name, err)
			continue
		}
		want := make([]byte, f.Size)
		proto.FillSynth(f.Name, 0, want)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: delivered content differs from source (%d vs %d bytes)", f.Name, len(got), len(want))
		}
	}
}

func TestExecutorSurvivesConnectionKill(t *testing.T) {
	ds := dataset.NewGenerator(50).Uniform(30, 400*units.KB)
	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.PerStreamRate = 60 * units.Mbps // slow enough that the kill lands mid-flight
	})
	proxy := newProxy(t, srv.Addr(), chaos.Options{})

	sink := proto.NewVerifySink()
	exec := &proto.Executor{
		Client:      &proto.Client{Addr: proxy.Addr(), Counters: &proto.Counters{}, VerifyChecksums: true},
		Sink:        sink,
		Environment: testEnv(),
		MaxRetries:  4,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 3}
	plan := planForChunk(chunk, 2)

	sess, err := exec.Start(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// Let the transfer get going, then rip out every connection twice.
	for i := 0; i < 2; i++ {
		time.Sleep(150 * time.Millisecond)
		proxy.KillAll()
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive connection kill: %v", err)
	}
	// Retried files re-send bytes, so the wire count may exceed the
	// dataset size — what matters is that every file arrived complete
	// and uncorrupted.
	if r.Bytes < ds.TotalSize() {
		t.Errorf("moved only %v of %v after kills", r.Bytes, ds.TotalSize())
	}
	for _, f := range ds.Files {
		if got := sink.BytesFor(f.Name); got < int64(f.Size) {
			t.Errorf("%s incomplete after retries: %d of %d", f.Name, got, f.Size)
		}
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption after retries: %v", bad)
	}
}

func TestExecutorRedialsThroughOutage(t *testing.T) {
	// Kill the listener itself, not just the connections: every re-dial
	// fails until the proxy comes back. The executor must keep retrying
	// within its budget and complete once service is restored.
	ds := dataset.NewGenerator(52).Uniform(24, 400*units.KB)
	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.PerStreamRate = 60 * units.Mbps
	})
	proxy := newProxy(t, srv.Addr(), chaos.Options{})

	reg := obs.NewRegistry()
	sink := proto.NewVerifySink()
	exec := &proto.Executor{
		Client:      &proto.Client{Addr: proxy.Addr(), Counters: &proto.Counters{}, VerifyChecksums: true},
		Sink:        sink,
		Environment: testEnv(),
		MaxRetries:  16,
		Metrics:     reg,
		Events:      obs.NewLog(nil),
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 3}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 2))
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(150 * time.Millisecond)
	proxy.Stop()
	// Long enough that re-dials fail repeatedly (backoff starts at 5 ms),
	// short enough that the 16-attempt budget cannot be exhausted.
	time.Sleep(250 * time.Millisecond)
	if err := proxy.Restart(); err != nil {
		t.Fatal(err)
	}

	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive the outage: %v", err)
	}
	if r.Retries == 0 {
		t.Error("no retries recorded across a full outage")
	}
	if got := reg.Snapshot().Counters["retries_total"]; got != r.Retries {
		t.Errorf("retries_total = %d, report says %d", got, r.Retries)
	}
	for _, f := range ds.Files {
		if got := sink.BytesFor(f.Name); got < int64(f.Size) {
			t.Errorf("%s incomplete after outage: %d of %d", f.Name, got, f.Size)
		}
	}
	if bad := sink.Corrupt(); len(bad) > 0 {
		t.Errorf("corruption after outage: %v", bad)
	}
}

func TestExecutorFailsWithoutRetryBudget(t *testing.T) {
	ds := dataset.NewGenerator(51).Uniform(20, 500*units.KB)
	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.PerStreamRate = 40 * units.Mbps
	})
	proxy := newProxy(t, srv.Addr(), chaos.Options{})
	exec := &proto.Executor{
		Client:      &proto.Client{Addr: proxy.Addr(), Counters: &proto.Counters{}},
		Sink:        proto.NewVerifySink(),
		Environment: testEnv(),
		MaxRetries:  0,
	}
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}
	sess, err := exec.Start(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	proxy.KillAll()
	if _, err := sess.Finish(); err == nil {
		t.Error("zero-retry transfer survived a connection kill")
	}
}
