package chaos

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Process-crash harness: the piece of the chaos toolkit that kills a
// REAL process (SIGKILL — no deferred cleanup, no flushes) at a
// scripted point in its transfer, so crash-recovery tests exercise the
// same artifacts a production crash leaves behind: a preallocated
// destination full of holes, a receipt journal cut mid-batch, partial
// markers that outlive their writer. The child process cooperates only
// by printing progress lines; everything else is physics.

// ProgressPrefix is the stdout line prefix a crash-harness child uses
// to report cumulative received payload bytes ("PROGRESS 1048576").
// RunUntilOffset parses these lines to decide when to kill.
const ProgressPrefix = "PROGRESS "

// FormatProgress renders one progress line (without newline) for child
// processes reporting to RunUntilOffset.
func FormatProgress(bytes int64) string {
	return ProgressPrefix + strconv.FormatInt(bytes, 10)
}

// CrashResult is what RunUntilOffset observed of the child.
type CrashResult struct {
	// Killed reports the child was SIGKILLed at the scripted offset.
	Killed bool
	// ExitCode is the child's exit code (-1 when killed by signal).
	ExitCode int
	// Progress is the last progress value the child reported.
	Progress int64
	// Lines holds the child's non-progress stdout lines in order —
	// the channel for structured results (stats, verdicts).
	Lines []string
}

// RunUntilOffset starts cmd, reads its stdout line by line, and SIGKILLs
// the process the moment a progress line reports at least killAt bytes
// (killAt < 0 never kills — a clean reference run). It drains stdout to
// EOF and reaps the child either way. The kill is asynchronous by
// nature: a few more blocks may land (and be journaled) between the
// trigger line and the process dying — more durable state, never less,
// so offsets script a lower bound.
func RunUntilOffset(cmd *exec.Cmd, killAt int64) (CrashResult, error) {
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return CrashResult{}, err
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return CrashResult{}, err
	}
	var res CrashResult
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ProgressPrefix) {
			n, perr := strconv.ParseInt(strings.TrimSpace(line[len(ProgressPrefix):]), 10, 64)
			if perr != nil {
				continue
			}
			res.Progress = n
			if killAt >= 0 && !res.Killed && n >= killAt {
				res.Killed = true
				_ = cmd.Process.Kill()
			}
			continue
		}
		res.Lines = append(res.Lines, line)
	}
	werr := cmd.Wait()
	if cmd.ProcessState != nil {
		res.ExitCode = cmd.ProcessState.ExitCode()
	}
	if werr != nil && !res.Killed {
		if _, ok := werr.(*exec.ExitError); !ok {
			return res, werr
		}
	}
	return res, nil
}

// TornTail simulates a crash severing a file mid-write: it cuts `cut`
// bytes off the end and then XOR-garbles the last `garble` bytes that
// remain — a deterministic corruption (no RNG; fixed mask), producing
// exactly the truncated-and-trashed tail shape a torn-tolerant decoder
// must survive.
func TornTail(path string, cut, garble int64) error {
	if cut < 0 || garble < 0 {
		return fmt.Errorf("chaos: negative torn-tail cut/garble")
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - cut
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	if garble == 0 || size == 0 {
		return nil
	}
	if garble > size {
		garble = size
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, garble)
	if _, err := f.ReadAt(buf, size-garble); err != nil {
		return err
	}
	for i := range buf {
		buf[i] ^= 0x5A
	}
	if _, err := f.WriteAt(buf, size-garble); err != nil {
		return err
	}
	return f.Sync()
}
