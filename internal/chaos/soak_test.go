package chaos_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/didclab/eta/internal/chaos"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/proto"
	"github.com/didclab/eta/internal/units"
)

// chaosExec wires an executor through a chaos proxy with the stall
// watchdog armed and checksum verification on — the hardened
// configuration the fault matrix exercises.
func chaosExec(t *testing.T, proxyAddr, dir string, reg *obs.Registry, maxRetries int, stall time.Duration) *proto.Executor {
	t.Helper()
	return &proto.Executor{
		Client: &proto.Client{
			Addr:            proxyAddr,
			Counters:        &proto.Counters{},
			VerifyChecksums: true,
			StallTimeout:    stall,
		},
		Sink:        proto.NewDirSink(dir),
		Environment: testEnv(),
		MaxRetries:  maxRetries,
		Metrics:     reg,
		Events:      obs.NewLog(nil),
		Label:       "chaos",
	}
}

// TestChaosSoakFaultMatrix runs one loopback transfer per fault class.
// Every case must deliver byte-identical content; the per-kind rows
// assert how the fault was absorbed (redial, checksum re-fetch, or no
// retry at all for a plain latency spike).
func TestChaosSoakFaultMatrix(t *testing.T) {
	// One channel, parallelism 1: conn 0 is control, conn 1 the single
	// data stream, so every fault below lands on the data path. Offsets
	// fall inside the first 256 KiB block's payload (the stream is an
	// 18-byte header followed by the block).
	cases := []struct {
		name         string
		step         chaos.Step
		wantRedial   bool // the channel must be torn down and re-dialed
		wantChecksum bool // absorbed by checksum re-fetch, channel kept
		wantClean    bool // absorbed with no retries at all
	}{
		{"reset", chaos.Step{Conn: 1, At: 120_000, Kind: chaos.Reset}, true, false, false},
		{"stall", chaos.Step{Conn: 1, At: 120_000, Kind: chaos.Stall, Duration: 600 * time.Millisecond}, true, false, false},
		{"blackhole", chaos.Step{Conn: 1, At: 120_000, Kind: chaos.Blackhole}, true, false, false},
		{"corrupt", chaos.Step{Conn: 1, At: 100_000, Kind: chaos.Corrupt}, false, true, false},
		{"partial", chaos.Step{Conn: 1, At: 120_000, Kind: chaos.Partial}, true, false, false},
		{"latency", chaos.Step{Conn: 1, At: 120_000, Kind: chaos.Latency, Duration: 30 * time.Millisecond}, false, false, true},
		{"outage", chaos.Step{Conn: 1, At: 120_000, Kind: chaos.Outage, Duration: 250 * time.Millisecond}, true, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := dataset.NewGenerator(60).Uniform(8, 300*units.KB)
			srv := synthServer(t, ds, nil)
			reg := obs.NewRegistry()
			proxy := newProxy(t, srv.Addr(), chaos.Options{
				Schedule: []chaos.Step{tc.step},
				Metrics:  reg,
			})
			dir := t.TempDir()
			exec := chaosExec(t, proxy.Addr(), dir, reg, 16, 150*time.Millisecond)
			chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}

			r, err := exec.Run(context.Background(), planForChunk(chunk, 1))
			if err != nil {
				t.Fatalf("transfer did not survive %s: %v", tc.name, err)
			}
			assertContent(t, dir, ds)
			if n := proxy.InjectedTotal(); n != 1 {
				t.Errorf("injected %d faults, scripted exactly 1", n)
			}
			snap := reg.Snapshot().Counters
			if got := snap["retries_total"]; got != r.Retries {
				t.Errorf("retries_total = %d, report says %d", got, r.Retries)
			}
			redialed := snap["channels_redialed"]
			switch {
			case tc.wantRedial && redialed == 0:
				t.Errorf("%s did not force a re-dial (retries=%d)", tc.name, r.Retries)
			case tc.wantChecksum:
				if redialed != 0 {
					t.Errorf("checksum re-fetch tore the channel down (%d re-dials)", redialed)
				}
				if got := snap[`retries_by_cause{cause="checksum"}`]; got != 1 {
					t.Errorf(`retries_by_cause{cause="checksum"} = %d, want 1`, got)
				}
			case tc.wantClean && (redialed != 0 || r.Retries != 0):
				t.Errorf("%s should pass clean, saw %d re-dials and %d retries", tc.name, redialed, r.Retries)
			}
			if tc.name == "stall" || tc.name == "blackhole" {
				if got := snap["stalls_detected"]; got < 1 {
					t.Errorf("stalls_detected = %d, watchdog never fired", got)
				}
			}
		})
	}
}

// TestChaosAcceptance is the issue's end-to-end scenario: one transfer
// through a proxy scripted with a data-stream black-hole, a mid-stream
// payload corruption and a full listener outage. It must complete
// byte-identically, book the retries correctly, and leak nothing.
func TestChaosAcceptance(t *testing.T) {
	before := runtime.NumGoroutine()

	ds := dataset.NewGenerator(77).Uniform(10, 400*units.KB)
	srv := synthServer(t, ds, nil)
	reg := obs.NewRegistry()
	// Conn map for 1 channel × parallelism 1: conn 0/1 are the first
	// channel's control/data; after the black-hole forces a re-dial,
	// conns 2/3 are the replacement's. The corruption offset sits inside
	// a 256 KiB block payload on the replacement data stream; the outage
	// fires later on the same stream and auto-restores.
	proxy := newProxy(t, srv.Addr(), chaos.Options{
		Schedule: []chaos.Step{
			{Conn: 1, At: 200_000, Kind: chaos.Blackhole},
			{Conn: 3, At: 150_000, Kind: chaos.Corrupt},
			{Conn: 3, At: 900_000, Kind: chaos.Outage, Duration: 250 * time.Millisecond},
		},
		Metrics: reg,
		Events:  obs.NewLog(nil),
	})
	dir := t.TempDir()
	exec := chaosExec(t, proxy.Addr(), dir, reg, 16, 150*time.Millisecond)
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}

	sess, err := exec.Start(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("transfer did not survive the chaos schedule: %v", err)
	}

	assertContent(t, dir, ds)

	injected := proxy.Injected()
	for _, k := range []chaos.Kind{chaos.Blackhole, chaos.Corrupt, chaos.Outage} {
		if injected[k] != 1 {
			t.Errorf("injected[%s] = %d, want 1 (map: %v)", k, injected[k], injected)
		}
	}
	snap := reg.Snapshot().Counters
	if got := snap["retries_total"]; got != r.Retries {
		t.Errorf("retries_total = %d, report says %d", got, r.Retries)
	}
	if got := snap["channels_redialed"]; got < 2 {
		t.Errorf("channels_redialed = %d, black-hole + outage should force ≥2", got)
	}
	if got := snap[`retries_by_cause{cause="checksum"}`]; got != 1 {
		t.Errorf(`retries_by_cause{cause="checksum"} = %d, want exactly 1`, got)
	}
	if got := snap["stalls_detected"]; got < 1 {
		t.Errorf("stalls_detected = %d, the black-hole should trip the watchdog", got)
	}

	// Tear everything down and prove nothing leaked: the watchdog, pipe
	// and session goroutines must all unwind.
	proxy.Close()
	srv.Close()
	deadline := wallNow().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if wallNow().After(deadline) {
			buf := make([]byte, 1<<17)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d at start, %d after teardown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBlackholeHangsWithoutWatchdog demonstrates why the stall watchdog
// exists: the identical black-hole schedule that TestChaosSoakFaultMatrix
// survives makes an un-watched transfer hang indefinitely — the
// connection stays open, so nothing ever errors.
func TestBlackholeHangsWithoutWatchdog(t *testing.T) {
	ds := dataset.NewGenerator(61).Uniform(6, 300*units.KB)
	srv := synthServer(t, ds, nil)
	proxy := newProxy(t, srv.Addr(), chaos.Options{
		Schedule: []chaos.Step{{Conn: 1, At: 120_000, Kind: chaos.Blackhole}},
	})
	dir := t.TempDir()
	exec := chaosExec(t, proxy.Addr(), dir, nil, 2, 0 /* watchdog disabled */)
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 1, Pipelining: 2}

	sess, err := exec.Start(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sess.Finish()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("transfer returned (%v) through a black-hole with no watchdog — it should hang", err)
	case <-time.After(2 * time.Second):
		// Hung, as expected: bytes stopped, the socket stayed open, and
		// without a watchdog nothing converts that into an error.
	}
	// Severing the connections un-wedges it (and with the listener gone
	// the re-dial budget exhausts): the session must now unwind.
	proxy.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("hung transfer finished cleanly after losing its proxy")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session did not unwind after the proxy closed")
	}
}

// TestChaosSoakSeededSchedule drives a transfer through a seed-derived
// schedule spread over control and data connections — the replayable
// "flapping network" soak. Whatever the schedule throws (resets,
// stalls, corruptions, partial writes, latency), delivery must stay
// byte-identical and the retry books must balance.
func TestChaosSoakSeededSchedule(t *testing.T) {
	ds := dataset.NewGenerator(62).Uniform(12, 300*units.KB)
	srv := synthServer(t, ds, nil)
	reg := obs.NewRegistry()
	schedule := chaos.SeededSchedule(42, 8, 3, 1<<20)
	proxy := newProxy(t, srv.Addr(), chaos.Options{
		Schedule: schedule,
		Metrics:  reg,
		Events:   obs.NewLog(nil),
	})
	dir := t.TempDir()
	exec := chaosExec(t, proxy.Addr(), dir, reg, 32, 200*time.Millisecond)
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 2}

	r, err := exec.Run(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatalf("transfer did not survive seeded schedule %+v: %v", schedule, err)
	}
	assertContent(t, dir, ds)
	if got := reg.Snapshot().Counters["retries_total"]; got != r.Retries {
		t.Errorf("retries_total = %d, report says %d", got, r.Retries)
	}
	if n := proxy.InjectedTotal(); n > 8 {
		t.Errorf("injected %d faults from an 8-step schedule", n)
	}
	t.Logf("seeded soak: injected=%v retries=%d redials=%d",
		proxy.Injected(), r.Retries, reg.Snapshot().Counters["channels_redialed"])
}

// TestChaosSoakVectoredPath drives the vectored writev data plane
// through a seeded fault schedule: a server with observability on and
// multi-block batching enabled must deliver byte-identical content
// through corruption and resets, with the client/server retry books
// reconciled and every served block accounted to a vectored batch.
func TestChaosSoakVectoredPath(t *testing.T) {
	ds := dataset.NewGenerator(63).Uniform(10, 600*units.KB)
	srvReg := obs.NewRegistry()
	srv := synthServer(t, ds, func(c *proto.ServerConfig) {
		c.Metrics = srvReg
		c.BlockSize = 128 * 1024
		c.MaxBatchBlocks = 4
	})
	reg := obs.NewRegistry()
	schedule := chaos.SeededSchedule(7, 6, 3, 1<<20)
	proxy := newProxy(t, srv.Addr(), chaos.Options{
		Schedule: schedule,
		Metrics:  reg,
		Events:   obs.NewLog(nil),
	})
	dir := t.TempDir()
	exec := chaosExec(t, proxy.Addr(), dir, reg, 32, 200*time.Millisecond)
	chunk := dataset.Chunk{Class: dataset.Large, Files: ds.Files, Parallelism: 2, Pipelining: 2}

	r, err := exec.Run(context.Background(), planForChunk(chunk, 1))
	if err != nil {
		t.Fatalf("vectored transfer did not survive schedule %+v: %v", schedule, err)
	}
	assertContent(t, dir, ds)
	if got := reg.Snapshot().Counters["retries_total"]; got != r.Retries {
		t.Errorf("retries_total = %d, report says %d", got, r.Retries)
	}
	srvSnap := srvReg.Snapshot().Counters
	batches, blocks := srvSnap["server_writev_batches"], srvSnap["server_writev_blocks"]
	if batches == 0 || blocks == 0 {
		t.Fatalf("vectored path idle: batches=%d blocks=%d", batches, blocks)
	}
	if batches > blocks {
		t.Errorf("writev_batches %d exceeds writev_blocks %d", batches, blocks)
	}
	// Every block the server pushed left through a writev batch —
	// including blocks re-served on retry, which is why blocks is
	// compared to bytes actually served rather than the dataset size.
	wantBlocks := int64(0)
	for _, f := range ds.Files {
		wantBlocks += (int64(f.Size) + 128*1024 - 1) / (128 * 1024)
	}
	if blocks < wantBlocks {
		t.Errorf("writev_blocks = %d, want at least %d (one clean pass)", blocks, wantBlocks)
	}
	t.Logf("vectored soak: batches=%d blocks=%d retries=%d", batches, blocks, r.Retries)
}
