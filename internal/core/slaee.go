package core

import (
	"context"
	"fmt"
	"math"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// SLAResult is an SLAEE run's report plus SLA accounting.
type SLAResult struct {
	transfer.Report
	// Target is the throughput promised by the SLA.
	Target units.Rate
	// FinalConcurrency is the channel count in use when the transfer
	// finished.
	FinalConcurrency int
	// Rearranged reports whether the algorithm had to reassign
	// channels toward Large chunks after reaching maxChannel.
	Rearranged bool
}

// Deviation returns the SLA deviation ratio in percent,
// (achieved − target)/target · 100, the metric of Figs. 5c/6c/7c.
// Positive values are overshoot.
func (r SLAResult) Deviation() float64 {
	if r.Target <= 0 {
		return 0
	}
	return (float64(r.Throughput) - float64(r.Target)) / float64(r.Target) * 100
}

// AbsDeviation returns |Deviation()|.
func (r SLAResult) AbsDeviation() float64 { return math.Abs(r.Deviation()) }

// slaeeTolerance is the overshoot band used when correcting the
// initial proportional jump. Window acceptance itself is strict
// (window ≥ target): the whole-run average is dragged below the
// steady-state window rate by the ramp-up phase, so accepting windows
// below target would systematically miss the SLA.
const slaeeTolerance = 0.05

// slaeeLowerMargin is how far above target a window must be before the
// control loop sheds a channel: one concurrency step changes
// throughput coarsely, so shedding too eagerly would dip below the
// SLA and force a climb right back.
const slaeeLowerMargin = 0.12

// slaeeNegativeResponse is the relative throughput drop after a raise
// that marks the path as contention-bound (more channels make it
// slower, the single-disk LAN regime of Fig. 4). Ordinary WAN window
// noise stays well under this.
const slaeeNegativeResponse = 0.07

// SLAEE is the SLA-based Energy-Efficient transfer algorithm
// (Algorithm 3): reach `slaLevel` (a fraction of maxThroughput, e.g.
// 0.9) with as few channels as possible, because fewer channels means
// less energy. It starts at concurrency 1, jumps proportionally to the
// measured shortfall (line 11), then climbs one channel at a time;
// once at maxChannel it re-arranges channels so Large chunks receive
// more than one (line 18).
func SLAEE(ctx context.Context, exec transfer.Executor, ds dataset.Dataset,
	maxThroughput units.Rate, slaLevel float64, maxChannel int) (SLAResult, error) {
	if maxChannel < 1 {
		return SLAResult{}, fmt.Errorf("core: SLAEE maxChannel %d < 1", maxChannel)
	}
	if slaLevel <= 0 || slaLevel > 1 {
		return SLAResult{}, fmt.Errorf("core: SLA level %v outside (0,1]", slaLevel)
	}
	if maxThroughput <= 0 {
		return SLAResult{}, fmt.Errorf("core: non-positive max throughput %v", maxThroughput)
	}
	env := exec.Env()
	chunks := prepareChunks(env, ds)
	weights := chunkWeights(chunks)
	target := units.Rate(float64(maxThroughput) * slaLevel)

	plan := transfer.Plan{
		Chunks:            planFromChunks(chunks, allocateByWeight(1, weights), weights),
		ReallocOnComplete: true,
	}
	sess, err := exec.Start(ctx, plan)
	if err != nil {
		return SLAResult{}, err
	}

	conc := 1
	rearranged := false
	reached := func(thr units.Rate) bool {
		return thr >= target
	}
	sample, err := sess.Advance(transfer.SampleWindow)
	if err != nil {
		return SLAResult{}, err
	}
	// Proportional jump (Algorithm 3 lines 10–13).
	if !reached(sample.Throughput) && sample.Throughput > 0 && !sess.Done() {
		conc = units.Clamp(int(math.Round(float64(target)/float64(sample.Throughput))), 1, maxChannel)
		if err := sess.SetTotalChannels(conc); err != nil {
			return SLAResult{}, err
		}
		sample, err = sess.Advance(transfer.SampleWindow)
		if err != nil {
			return SLAResult{}, err
		}
		// The one-channel estimate extrapolates badly when the first
		// channel lands on a pipelining-bound small chunk; correct a
		// gross overshoot once, proportionally downward.
		if float64(sample.Throughput) > float64(target)*(1+slaeeTolerance) && conc > 1 && !sess.Done() {
			conc = units.Clamp(int(math.Round(float64(conc)*float64(target)/float64(sample.Throughput))), 1, maxChannel)
			if err := sess.SetTotalChannels(conc); err != nil {
				return SLAResult{}, err
			}
			sample, err = sess.Advance(transfer.SampleWindow)
			if err != nil {
				return SLAResult{}, err
			}
		}
	}
	// Continuous control loop (lines 14–22, run for the whole
	// transfer): "while seeking the desired concurrency level, it
	// calculates the throughput in every five seconds and adjusts the
	// concurrency level to reach the throughput level promised in the
	// SLA". Below target it climbs (re-arranging channels toward Large
	// chunks once the ceiling is hit); comfortably above target it
	// sheds channels to save energy. minConc remembers levels that
	// proved insufficient so the loop cannot oscillate.
	minConc := 1
	concCeil := maxChannel
	lastLowered := false
	lastRaised := false
	var prevThr units.Rate
	for !sess.Done() {
		thr := sample.Throughput
		switch {
		case lastRaised && float64(thr) < float64(prevThr)*(1-slaeeNegativeResponse) && !reached(thr):
			// Raising concurrency made things worse — the path is in
			// the contention regime (single-disk LAN, Fig. 4). Undo
			// the raise and never climb past this level again;
			// whatever throughput this system has, more channels will
			// not buy the SLA.
			conc--
			concCeil = conc
			if err := sess.SetTotalChannels(conc); err != nil {
				return SLAResult{}, err
			}
			lastRaised = false
			lastLowered = false
		case !reached(thr):
			if lastLowered {
				minConc = conc + 1
			}
			if conc < concCeil {
				conc++
				if err := sess.SetTotalChannels(conc); err != nil {
					return SLAResult{}, err
				}
				lastRaised = true
			} else if conc == maxChannel && !rearranged {
				// reArrangeChannels(): at the channel ceiling the only
				// lever left is where the channels sit; shift them
				// toward the byte-heavy Large chunks.
				if err := sess.SetAllocation(rearrangeToward(chunks, conc)); err != nil {
					return SLAResult{}, err
				}
				rearranged = true
				lastRaised = false
			} else {
				lastRaised = false
			}
			lastLowered = false
		case float64(thr) > float64(target)*(1+slaeeLowerMargin) && conc-1 >= minConc:
			conc--
			if err := sess.SetTotalChannels(conc); err != nil {
				return SLAResult{}, err
			}
			lastLowered = true
			lastRaised = false
		default:
			lastLowered = false
			lastRaised = false
		}
		prevThr = thr
		sample, err = sess.Advance(transfer.SampleWindow)
		if err != nil {
			return SLAResult{}, err
		}
		if sample.Duration == 0 {
			break
		}
	}

	r, err := sess.Finish()
	if err != nil {
		return SLAResult{}, err
	}
	r.Algorithm = NameSLAEE
	return SLAResult{
		Report:           r,
		Target:           target,
		FinalConcurrency: conc,
		Rearranged:       rearranged,
	}, nil
}

// rearrangeToward allocates n channels proportionally to chunk bytes,
// guaranteeing Large chunks more than one channel when n permits.
func rearrangeToward(chunks []dataset.Chunk, n int) []int {
	var total float64
	for _, c := range chunks {
		total += float64(c.TotalSize())
	}
	weights := make([]float64, len(chunks))
	for i, c := range chunks {
		if total > 0 {
			weights[i] = float64(c.TotalSize()) / total
		} else {
			weights[i] = 1 / float64(len(chunks))
		}
	}
	return allocateByWeight(n, weights)
}
