package core

import (
	"context"
	"fmt"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// GUCOptions configure the globus-url-copy baseline. GUC "requires
// manual tuning of protocol parameters" and "does not allow to use
// different values of protocol parameters for different files in a
// dataset" (§3); the zero value is the paper's untuned base case
// (pipelining = parallelism = concurrency = 1).
type GUCOptions struct {
	Pipelining  int
	Parallelism int
	Concurrency int
}

func (o GUCOptions) withDefaults() GUCOptions {
	if o.Pipelining < 1 {
		o.Pipelining = 1
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	return o
}

// GUC transfers the whole dataset as a single chunk with one fixed
// parameter set.
func GUC(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, opts GUCOptions) (transfer.Report, error) {
	opts = opts.withDefaults()
	chunk := dataset.Chunk{
		Class:       dataset.Large,
		Files:       ds.Files,
		Pipelining:  opts.Pipelining,
		Parallelism: opts.Parallelism,
	}
	plan := transfer.Plan{
		Chunks: []transfer.ChunkPlan{{
			Chunk:         chunk,
			Channels:      opts.Concurrency,
			AcceptRealloc: true,
		}},
		Sequential: true,
	}
	r, err := exec.Run(ctx, plan)
	if err != nil {
		return transfer.Report{}, err
	}
	r.Algorithm = NameGUC
	return r, nil
}

// Globus Online's fixed partitioning boundaries and per-class protocol
// parameters (§3: "GO uses fixed values to categorize files into groups
// (i.e. less than 50MB, larger than 250MB, and in between) and
// determine values of protocol parameters (e.g. set pipelining level 20
// and parallelism level 2 for small files)").
const (
	goSmallBoundary  = 50 * units.MB
	goMediumBoundary = 250 * units.MB
	goConcurrency    = 2
)

// GOOptions are ablation knobs for the Globus Online baseline.
type GOOptions struct {
	// PackSingleServer keeps GO's channels on one server per site
	// instead of spreading them over the pool — ablating the behaviour
	// that costs GO ~60% extra energy on XSEDE.
	PackSingleServer bool
}

// GO is the Globus Online baseline: fixed partitioning, fixed
// parameters, concurrency 2 regardless of the user's budget, chunks
// transferred one by one, and channels spread across all of the site's
// transfer servers (the behaviour that costs it ~60% extra energy on
// XSEDE).
func GO(ctx context.Context, exec transfer.Executor, ds dataset.Dataset) (transfer.Report, error) {
	return GOWith(ctx, exec, ds, GOOptions{})
}

// GOWith is GO with ablation options.
func GOWith(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, opts GOOptions) (transfer.Report, error) {
	var small, medium, large []dataset.File
	for _, f := range ds.Files {
		switch {
		case f.Size < goSmallBoundary:
			small = append(small, f)
		case f.Size <= goMediumBoundary:
			medium = append(medium, f)
		default:
			large = append(large, f)
		}
	}
	var plans []transfer.ChunkPlan
	add := func(files []dataset.File, class dataset.Class, pipe, par int) {
		if len(files) == 0 {
			return
		}
		plans = append(plans, transfer.ChunkPlan{
			Chunk: dataset.Chunk{
				Class:       class,
				Files:       files,
				Pipelining:  pipe,
				Parallelism: par,
			},
			Channels:      goConcurrency,
			AcceptRealloc: true,
		})
	}
	add(small, dataset.Small, 20, 2)
	add(medium, dataset.Medium, 5, 2)
	add(large, dataset.Large, 1, 2)
	if len(plans) == 0 {
		return transfer.Report{}, fmt.Errorf("core: GO given empty dataset")
	}
	// GO runs a fixed total of two concurrent channels; sequential mode
	// carries them from chunk to chunk.
	for i := range plans {
		if i > 0 {
			plans[i].Channels = 0
		}
	}
	plan := transfer.Plan{
		Chunks:        plans,
		Sequential:    true,
		SpreadServers: !opts.PackSingleServer,
	}
	r, err := exec.Run(ctx, plan)
	if err != nil {
		return transfer.Report{}, err
	}
	r.Algorithm = NameGO
	return r, nil
}

// SC is the Single Chunk baseline: BDP-aware partitioning and parameter
// selection like the energy-aware algorithms, but chunks are
// "transferred one by one using the parameter combination specific to
// the chunk type" at the user-chosen concurrency.
func SC(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, concurrency int) (transfer.Report, error) {
	if concurrency < 1 {
		return transfer.Report{}, fmt.Errorf("core: SC concurrency %d < 1", concurrency)
	}
	env := exec.Env()
	chunks := prepareChunks(env, ds)
	alloc := make([]int, len(chunks))
	alloc[0] = concurrency // sequential mode moves them chunk to chunk
	plan := transfer.Plan{
		Chunks:     planFromChunks(chunks, alloc, nil),
		Sequential: true,
	}
	r, err := exec.Run(ctx, plan)
	if err != nil {
		return transfer.Report{}, err
	}
	r.Algorithm = NameSC
	return r, nil
}

// ProMCOptions are ablation knobs for the Pro-active Multi Chunk
// baseline.
type ProMCOptions struct {
	// PipeliningOverride forces every chunk's pipelining depth instead
	// of the ⌈BDP/avgFileSize⌉ formula (1 ablates pipelining away).
	PipeliningOverride int
}

// ProMC is the Pro-active Multi Chunk baseline: all chunks transferred
// simultaneously with weight-proportional channel allocation, which
// "alleviates the effect of low transfer throughput of small chunks
// over the whole dataset". It is the throughput reference the
// energy-aware algorithms are compared against.
func ProMC(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, concurrency int) (transfer.Report, error) {
	return ProMCWith(ctx, exec, ds, concurrency, ProMCOptions{})
}

// ProMCWith is ProMC with ablation options.
func ProMCWith(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, concurrency int, opts ProMCOptions) (transfer.Report, error) {
	if concurrency < 1 {
		return transfer.Report{}, fmt.Errorf("core: ProMC concurrency %d < 1", concurrency)
	}
	env := exec.Env()
	chunks := prepareChunks(env, ds)
	if opts.PipeliningOverride > 0 {
		for i := range chunks {
			chunks[i].Pipelining = opts.PipeliningOverride
		}
	}
	weights := chunkWeights(chunks)
	alloc := allocateByWeight(concurrency, weights)
	plan := transfer.Plan{
		Chunks:            planFromChunks(chunks, alloc, weights),
		ReallocOnComplete: true,
	}
	r, err := exec.Run(ctx, plan)
	if err != nil {
		return transfer.Report{}, err
	}
	r.Algorithm = NameProMC
	return r, nil
}

// BFResult is the brute-force search outcome.
type BFResult struct {
	// Best is the concurrency level with the highest whole-transfer
	// throughput/energy ratio.
	Best int
	// Reports holds the full run at every probed level.
	Reports map[int]transfer.Report
}

// BestReport returns the winning run's report.
func (r BFResult) BestReport() transfer.Report { return r.Reports[r.Best] }

// BFOptions configure the brute-force search.
type BFOptions struct {
	// Workers bounds how many concurrency levels are evaluated at
	// once; values < 1 mean GOMAXPROCS. Use 1 when the executor drives
	// a real link, where concurrent probes would distort each other's
	// measurements.
	Workers int
}

// BF is the brute-force reference (§3): "a revised version of the HTEE
// algorithm in a way that it skips the search phase and runs the
// transfer with pre-defined concurrency levels", repeated for every
// level 1..maxChannel; the best throughput/energy ratio found is the
// ideal HTEE is scored against.
//
// Every level is an independent run on a fresh executor from mk, so
// the levels are evaluated concurrently; results are assembled by
// level, which keeps the outcome identical to a serial sweep.
func BF(ctx context.Context, mk func() transfer.Executor, ds dataset.Dataset, maxChannel int) (BFResult, error) {
	return BFWith(ctx, mk, ds, maxChannel, BFOptions{})
}

// BFWith is BF with search options.
func BFWith(ctx context.Context, mk func() transfer.Executor, ds dataset.Dataset, maxChannel int, opts BFOptions) (BFResult, error) {
	if maxChannel < 1 {
		return BFResult{}, fmt.Errorf("core: BF maxChannel %d < 1", maxChannel)
	}
	reports, err := sched.Map(ctx, opts.Workers, maxChannel, func(ctx context.Context, i int) (transfer.Report, error) {
		c := i + 1
		r, err := ProMC(ctx, mk(), ds, c)
		if err != nil {
			return transfer.Report{}, fmt.Errorf("core: BF at concurrency %d: %w", c, err)
		}
		r.Algorithm = NameBF
		return r, nil
	})
	if err != nil {
		return BFResult{}, err
	}
	result := BFResult{Reports: make(map[int]transfer.Report, maxChannel)}
	bestEff := -1.0
	for i, r := range reports {
		c := i + 1
		result.Reports[c] = r
		if eff := r.Efficiency(); eff > bestEff {
			bestEff = eff
			result.Best = c
		}
	}
	return result, nil
}
