package core

import (
	"context"
	"fmt"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/transfer"
)

// HTEEResult is an HTEE run's report plus the search outcome.
type HTEEResult struct {
	transfer.Report
	// ChosenConcurrency is the level the search settled on.
	ChosenConcurrency int
	// SearchEfficiency maps each probed concurrency level to its
	// measured efficiency score (see transfer.Sample.EfficiencyScore).
	SearchEfficiency map[int]float64
}

// HTEEOptions are ablation knobs for HTEE.
type HTEEOptions struct {
	// SearchStride is the concurrency increment during the search
	// phase; the paper uses 2 ("halves the search space"). 0 means 2.
	SearchStride int
}

func (o HTEEOptions) stride() int {
	if o.SearchStride < 1 {
		return 2
	}
	return o.SearchStride
}

// HTEE is the High Throughput Energy-Efficient transfer algorithm
// (Algorithm 2). It allocates channels to chunks by the
// log(size)·log(count) weights, then searches concurrency levels
// 1, 3, 5, … up to maxChannel — "instead of evaluating the performance
// of all concurrency levels in the search space, HTEE halves the search
// space by incrementing the concurrency level by two" — running each
// level for a five-second window, and finishes the transfer at the
// level with the best throughput/energy ratio.
func HTEE(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, maxChannel int) (HTEEResult, error) {
	return HTEEWith(ctx, exec, ds, maxChannel, HTEEOptions{})
}

// HTEEWith is HTEE with ablation options.
func HTEEWith(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, maxChannel int, opts HTEEOptions) (HTEEResult, error) {
	if maxChannel < 1 {
		return HTEEResult{}, fmt.Errorf("core: HTEE maxChannel %d < 1", maxChannel)
	}
	env := exec.Env()
	chunks := prepareChunks(env, ds)
	weights := chunkWeights(chunks)
	alloc := allocateByWeight(1, weights)
	plan := transfer.Plan{
		Chunks:            planFromChunks(chunks, alloc, weights),
		ReallocOnComplete: true,
	}
	sess, err := exec.Start(ctx, plan)
	if err != nil {
		return HTEEResult{}, err
	}

	// Search phase (Algorithm 2 lines 14–22). The probe windows move
	// real data; nothing is wasted.
	efficiency := make(map[int]float64)
	best, bestEff := 1, -1.0
	for active := 1; active <= maxChannel && !sess.Done(); active += opts.stride() {
		if err := sess.SetTotalChannels(active); err != nil {
			return HTEEResult{}, err
		}
		sample, err := sess.Advance(transfer.SampleWindow)
		if err != nil {
			return HTEEResult{}, err
		}
		eff := sample.EfficiencyScore()
		if sample.EndSystemEnergy <= 0 {
			// No energy data (executor without an estimator): degrade
			// gracefully to a pure throughput search rather than
			// sticking at the first probed level.
			eff = sample.Throughput.Mbit() * 1e-9
		}
		efficiency[active] = eff
		if eff > bestEff {
			best, bestEff = active, eff
		}
	}

	// Run the remainder at the most efficient level (lines 23–24).
	if !sess.Done() {
		if err := sess.SetTotalChannels(best); err != nil {
			return HTEEResult{}, err
		}
	}
	r, err := sess.Finish()
	if err != nil {
		return HTEEResult{}, err
	}
	r.Algorithm = NameHTEE
	return HTEEResult{Report: r, ChosenConcurrency: best, SearchEfficiency: efficiency}, nil
}
