package core

import (
	"context"
	"testing"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// labBed is the fastest simulated environment for unit tests.
func labBed() testbed.Testbed { return testbed.DIDCLAB() }

func labData() (testbed.Testbed, *transfer.Sim) {
	tb := labBed()
	tb.DatasetSize = 2 * units.GB // keep unit tests quick
	return tb, transfer.NewSim(tb)
}

func TestGUCRuns(t *testing.T) {
	tb, sim := labData()
	ds := tb.Dataset(1)
	r, err := GUC(context.Background(), sim, ds, GUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != NameGUC {
		t.Errorf("algorithm label = %q", r.Algorithm)
	}
	if diff := int64(r.Bytes) - int64(ds.TotalSize()); diff > 10 || diff < -10 {
		t.Errorf("GUC moved %v of %v", r.Bytes, ds.TotalSize())
	}
}

func TestGORuns(t *testing.T) {
	tb, sim := labData()
	ds := tb.Dataset(2)
	r, err := GO(context.Background(), sim, ds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != NameGO {
		t.Errorf("algorithm label = %q", r.Algorithm)
	}
}

func TestGOEmptyDataset(t *testing.T) {
	_, sim := labData()
	if _, err := GO(context.Background(), sim, dataset.Dataset{}); err == nil {
		t.Error("GO accepted an empty dataset")
	}
}

func TestSCAndProMCValidation(t *testing.T) {
	tb, sim := labData()
	ds := tb.Dataset(3)
	ctx := context.Background()
	if _, err := SC(ctx, sim, ds, 0); err == nil {
		t.Error("SC accepted concurrency 0")
	}
	if _, err := ProMC(ctx, sim, ds, 0); err == nil {
		t.Error("ProMC accepted concurrency 0")
	}
	sc, err := SC(ctx, sim, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	promc, err := ProMC(ctx, sim, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Algorithm != NameSC || promc.Algorithm != NameProMC {
		t.Error("labels wrong")
	}
}

func TestMinEUsesFewChannels(t *testing.T) {
	// On the LAN everything is one Large chunk; MinE must keep a single
	// channel regardless of the budget (lowest possible power).
	tb, sim := labData()
	ds := tb.Dataset(4)
	r1, err := MinE(context.Background(), sim, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := MinE(context.Background(), sim, ds, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Algorithm != NameMinE {
		t.Error("label wrong")
	}
	// Same single-channel plan → same energy (deterministic sim).
	if r1.EndSystemEnergy != r12.EndSystemEnergy {
		t.Errorf("MinE energy varies with budget on single-chunk LAN: %v vs %v",
			r1.EndSystemEnergy, r12.EndSystemEnergy)
	}
}

func TestHTEEValidation(t *testing.T) {
	tb, sim := labData()
	ds := tb.Dataset(5)
	if _, err := HTEE(context.Background(), sim, ds, 0); err == nil {
		t.Error("HTEE accepted maxChannel 0")
	}
	res, err := HTEE(context.Background(), sim, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChosenConcurrency < 1 || res.ChosenConcurrency > 4 {
		t.Errorf("chosen concurrency %d outside [1,4]", res.ChosenConcurrency)
	}
	if len(res.SearchEfficiency) == 0 {
		t.Error("no search samples recorded")
	}
	for level := range res.SearchEfficiency {
		if level%2 == 0 {
			t.Errorf("search probed even level %d; search is 1,3,5,…", level)
		}
	}
}

func TestSLAEEValidation(t *testing.T) {
	tb, sim := labData()
	ds := tb.Dataset(6)
	ctx := context.Background()
	if _, err := SLAEE(ctx, sim, ds, 600*units.Mbps, 0.9, 0); err == nil {
		t.Error("maxChannel 0 accepted")
	}
	if _, err := SLAEE(ctx, sim, ds, 600*units.Mbps, 0, 4); err == nil {
		t.Error("SLA level 0 accepted")
	}
	if _, err := SLAEE(ctx, sim, ds, 600*units.Mbps, 1.2, 4); err == nil {
		t.Error("SLA level >1 accepted")
	}
	if _, err := SLAEE(ctx, sim, ds, 0, 0.9, 4); err == nil {
		t.Error("zero max throughput accepted")
	}
	res, err := SLAEE(ctx, sim, ds, 600*units.Mbps, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != NameSLAEE {
		t.Error("label wrong")
	}
	if res.Target != 300*units.Mbps {
		t.Errorf("target = %v, want 300Mbps", res.Target)
	}
	if res.Deviation() < 0 {
		t.Errorf("LAN 50%% target should overshoot, got %.1f%%", res.Deviation())
	}
	if res.AbsDeviation() != res.Deviation() {
		t.Errorf("AbsDeviation mismatch: %v vs %v", res.AbsDeviation(), res.Deviation())
	}
}

func TestBFFindsBestRatio(t *testing.T) {
	tb, sim := labData()
	ds := tb.Dataset(7)
	mk := func() transfer.Executor { return sim }
	res, err := BF(context.Background(), mk, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("probed %d levels, want 4", len(res.Reports))
	}
	best := res.BestReport().Efficiency()
	for c, r := range res.Reports {
		if r.Efficiency() > best {
			t.Errorf("level %d beats declared best: %v > %v", c, r.Efficiency(), best)
		}
	}
	// LAN: more concurrency hurts, so BF must pick 1.
	if res.Best != 1 {
		t.Errorf("BF best = %d on the LAN, want 1", res.Best)
	}
	if _, err := BF(context.Background(), mk, ds, 0); err == nil {
		t.Error("BF accepted maxChannel 0")
	}
}

func TestSLAResultDeviationZeroTarget(t *testing.T) {
	var r SLAResult
	if r.Deviation() != 0 {
		t.Error("zero target should yield zero deviation")
	}
}
