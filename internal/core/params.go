// Package core implements the paper's three energy-aware data transfer
// algorithms — MinE (Algorithm 1), HTEE (Algorithm 2) and SLAEE
// (Algorithm 3) — together with the energy-agnostic baselines they are
// evaluated against: GUC (untuned globus-url-copy), GO (Globus Online),
// SC (Single Chunk), ProMC (Pro-active Multi Chunk) and the BF
// brute-force reference.
//
// Every algorithm is a function of a transfer.Executor, so the same
// code drives both the simulated testbeds and the real-TCP stack.
package core

import (
	"math"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// Algorithm names as used in reports and the paper's figure legends.
const (
	NameGUC   = "GUC"
	NameGO    = "GO"
	NameSC    = "SC"
	NameMinE  = "MinE"
	NameProMC = "ProMC"
	NameHTEE  = "HTEE"
	NameSLAEE = "SLAEE"
	NameBF    = "BF"
)

// maxPipelining bounds the pipelining depth; beyond this the control
// channel is saturated and deeper queues only waste server state.
const maxPipelining = 64

// calculateParameters fills each chunk's pipelining and parallelism
// from the paper's formulas (Algorithm 1 lines 8–9, reused verbatim by
// Algorithms 2 and 3 via "calculateParameters()"):
//
//	pipelining  = ⌈BDP / avgFileSize⌉
//	parallelism = max(min(⌈BDP/bufSize⌉, ⌈avgFileSize/bufSize⌉), 1)
func calculateParameters(env transfer.Environment, chunks []dataset.Chunk) {
	bdp := env.BDP()
	buf := env.BufferSize()
	for i := range chunks {
		avg := chunks[i].AvgFileSize()
		if avg <= 0 {
			continue
		}
		pipe := 1
		if bdp > 0 {
			pipe = units.Clamp(units.CeilDiv(bdp, avg), 1, maxPipelining)
		}
		par := 1
		if buf > 0 && bdp > 0 {
			par = units.CeilDiv(bdp, buf)
			if byFile := units.CeilDiv(avg, buf); byFile < par {
				par = byFile
			}
			if par < 1 {
				par = 1
			}
		}
		chunks[i].Pipelining = pipe
		chunks[i].Parallelism = par
	}
}

// prepareChunks partitions the dataset around the BDP, merges runt
// chunks, and fills the protocol parameters — the common preamble of
// Algorithms 1–3 ("fetchFilesFromServer; partitionFiles(files, BDP);
// calculateParameters").
func prepareChunks(env transfer.Environment, ds dataset.Dataset) []dataset.Chunk {
	chunks := dataset.PartitionAndMerge(ds, env.BDP())
	calculateParameters(env, chunks)
	return chunks
}

// chunkWeights computes the HTEE weights (Algorithm 2 lines 6–11):
// weight_i = log(size_i)·log(count_i), normalized to sum to one.
func chunkWeights(chunks []dataset.Chunk) []float64 {
	weights := make([]float64, len(chunks))
	var total float64
	for i, c := range chunks {
		weights[i] = c.Weight()
		total += weights[i]
	}
	if total <= 0 {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
		return weights
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights
}

// allocateByWeight distributes n channels over the chunks proportional
// to weights using floors (Algorithm 2 line 12), then hands the
// remainder to the largest fractional parts so all n channels are used
// and every chunk gets at least one when n allows it.
func allocateByWeight(n int, weights []float64) []int {
	alloc := make([]int, len(weights))
	if n <= 0 || len(weights) == 0 {
		return alloc
	}
	used := 0
	fracs := make([]float64, len(weights))
	for i, w := range weights {
		exact := float64(n) * w
		alloc[i] = int(math.Floor(exact))
		used += alloc[i]
		fracs[i] = exact - math.Floor(exact)
	}
	// Remainder to the biggest fractional parts, round-robin if the
	// remainder exceeds the chunk count.
	for used < n {
		best := 0
		for i := range fracs {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		alloc[best]++
		fracs[best] -= 1 // pushes it behind the others for the next round
		used++
	}
	// Never starve a chunk while another holds several channels.
	for i := range alloc {
		if alloc[i] == 0 {
			if j := richestChunk(alloc); alloc[j] > 1 {
				alloc[j]--
				alloc[i]++
			}
		}
	}
	return alloc
}

func richestChunk(alloc []int) int {
	best := 0
	for i, a := range alloc {
		if a > alloc[best] {
			best = i
		}
	}
	return best
}

// planFromChunks assembles a plan with the given per-chunk channels.
func planFromChunks(chunks []dataset.Chunk, alloc []int, weights []float64) []transfer.ChunkPlan {
	plans := make([]transfer.ChunkPlan, len(chunks))
	for i, c := range chunks {
		w := 0.0
		if weights != nil {
			w = weights[i]
		}
		plans[i] = transfer.ChunkPlan{
			Chunk:         c,
			Channels:      alloc[i],
			Weight:        w,
			AcceptRealloc: true,
		}
	}
	return plans
}
