package core

import (
	"context"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// MinEOptions are ablation knobs for MinE.
type MinEOptions struct {
	// UnpinLargeChunks lets Large chunks receive reallocated channels
	// like everyone else, ablating MinE's signature restriction ("MinE
	// assigns single channel to Large chunk regardless of its weight").
	UnpinLargeChunks bool
}

// MinE is the Minimum Energy transfer algorithm (Algorithm 1): it tunes
// pipelining, parallelism and concurrency per chunk to minimize energy
// "without any performance concern". The signature choices:
//
//   - deep pipelining and most of the channels go to the Small chunk
//     (keeping network and end-system busy instead of idling on RTTs),
//   - the Large chunk is pinned to its computed concurrency — one
//     channel in practice — because "using more concurrent channels for
//     large files causes more power consumption",
//   - chunks are transferred simultaneously (the Multi-Chunk mechanism)
//     so the throughput deficit of the pinned Large chunk is partially
//     hidden behind the other chunks.
func MinE(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, maxChannel int) (transfer.Report, error) {
	return MinEWith(ctx, exec, ds, maxChannel, MinEOptions{})
}

// MinEWith is MinE with ablation options.
func MinEWith(ctx context.Context, exec transfer.Executor, ds dataset.Dataset, maxChannel int, opts MinEOptions) (transfer.Report, error) {
	env := exec.Env()
	chunks := prepareChunks(env, ds)

	// Algorithm 1 lines 6–12, verbatim: walk chunks small → large,
	// assigning concurrency from the remaining channel budget:
	//
	//	concurrency = min(⌈BDP/avgFileSize⌉, ⌈(availChannel+1)/2⌉)
	//	availChannel -= concurrency
	//
	// The ⌈BDP/avgFileSize⌉ term is what keeps MinE's channel count —
	// and therefore its power draw — low: it only opens channels where
	// small files would otherwise leave the pipe idle. We additionally
	// guarantee one channel per chunk even at degenerate budgets
	// (maxChannel < #chunks) so no chunk starves.
	if maxChannel < len(chunks) {
		maxChannel = len(chunks)
	}
	avail := maxChannel
	bdp := env.BDP()
	alloc := make([]int, len(chunks))
	for i, c := range chunks {
		reserve := len(chunks) - i - 1 // later chunks need ≥1 each
		conc := units.CeilDiv(bdp, c.AvgFileSize())
		if byAvail := (avail + 1) / 2; byAvail < conc {
			conc = byAvail
		}
		cap := avail - reserve
		if cap < 1 {
			cap = 1
		}
		conc = units.Clamp(conc, 1, cap)
		alloc[i] = conc
		avail -= conc
	}

	plans := planFromChunks(chunks, alloc, nil)
	for i := range plans {
		// Large chunks never receive reallocated channels: MinE
		// "assigns single channel to Large chunk regardless of its
		// weight" (§2.4's comparison with HTEE).
		if plans[i].Chunk.Class == dataset.Large && !opts.UnpinLargeChunks {
			plans[i].AcceptRealloc = false
		}
	}
	plan := transfer.Plan{
		Chunks:            plans,
		ReallocOnComplete: true,
	}
	r, err := exec.Run(ctx, plan)
	if err != nil {
		return transfer.Report{}, err
	}
	r.Algorithm = NameMinE
	return r, nil
}
