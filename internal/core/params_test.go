package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/netem"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// xsedeEnv mirrors the paper's XSEDE parameters: BDP 50 MB, buffer
// 32 MB.
func xsedeEnv() transfer.Environment {
	return transfer.Environment{
		Path: netem.Path{
			Bandwidth:       10 * units.Gbps,
			RTT:             40 * time.Millisecond,
			MaxTCPBuffer:    32 * units.MB,
			EffStreamBuffer: 4 * units.MB,
		},
		MaxChannels:    20,
		ServersPerSite: 4,
	}
}

func TestCalculateParametersPaperValues(t *testing.T) {
	env := xsedeEnv()
	chunks := []dataset.Chunk{
		// Small chunk, avg 10 MB: pipelining = ⌈50/10⌉ = 5,
		// parallelism = max(min(⌈50/32⌉=2, ⌈10/32⌉=1),1) = 1.
		{Class: dataset.Small, Files: dataset.NewGenerator(1).Uniform(10, 10*units.MB).Files},
		// Large chunk, avg 2 GB: pipelining = ⌈50/2000⌉ = 1,
		// parallelism = max(min(2, 63),1) = 2.
		{Class: dataset.Large, Files: dataset.NewGenerator(2).Uniform(4, 2*units.GB).Files},
	}
	calculateParameters(env, chunks)
	if chunks[0].Pipelining != 5 || chunks[0].Parallelism != 1 {
		t.Errorf("small chunk params = (pipe %d, par %d), want (5, 1)",
			chunks[0].Pipelining, chunks[0].Parallelism)
	}
	if chunks[1].Pipelining != 1 || chunks[1].Parallelism != 2 {
		t.Errorf("large chunk params = (pipe %d, par %d), want (1, 2)",
			chunks[1].Pipelining, chunks[1].Parallelism)
	}
}

func TestCalculateParametersPipeliningCapped(t *testing.T) {
	env := xsedeEnv()
	tiny := []dataset.Chunk{
		{Class: dataset.Small, Files: dataset.NewGenerator(1).Uniform(1000, 100*units.KB).Files},
	}
	calculateParameters(env, tiny)
	if tiny[0].Pipelining != maxPipelining {
		t.Errorf("pipelining = %d, want cap %d", tiny[0].Pipelining, maxPipelining)
	}
}

func TestPrepareChunksOrdersSmallToLarge(t *testing.T) {
	env := xsedeEnv()
	g := dataset.NewGenerator(3)
	var files []dataset.File
	files = append(files, g.Uniform(20, 10*units.MB).Files...)
	for i := range files {
		files[i].Name = "s" + files[i].Name
	}
	large := g.Uniform(5, 2*units.GB)
	for i := range large.Files {
		large.Files[i].Name = "l" + large.Files[i].Name
	}
	files = append(files, large.Files...)
	chunks := prepareChunks(env, dataset.Dataset{Files: files})
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Class < chunks[i-1].Class {
			t.Fatalf("chunks out of order: %v before %v", chunks[i-1].Class, chunks[i].Class)
		}
	}
	for _, c := range chunks {
		if c.Pipelining < 1 || c.Parallelism < 1 {
			t.Errorf("chunk %v has unset parameters %+v", c.Class, c)
		}
	}
}

func TestChunkWeightsNormalized(t *testing.T) {
	g := dataset.NewGenerator(4)
	chunks := []dataset.Chunk{
		{Files: g.Uniform(100, 10*units.MB).Files},
		{Files: g.Uniform(10, 1*units.GB).Files},
	}
	w := chunkWeights(chunks)
	if math.Abs(w[0]+w[1]-1) > 1e-9 {
		t.Errorf("weights sum to %v", w[0]+w[1])
	}
	if w[0] <= 0 || w[1] <= 0 {
		t.Errorf("non-positive weights: %v", w)
	}
}

func TestAllocateByWeightProperties(t *testing.T) {
	f := func(nRaw uint8, w1Raw, w2Raw, w3Raw uint8) bool {
		n := int(nRaw%20) + 1
		ws := []float64{float64(w1Raw) + 1, float64(w2Raw) + 1, float64(w3Raw) + 1}
		var sum float64
		for _, w := range ws {
			sum += w
		}
		for i := range ws {
			ws[i] /= sum
		}
		alloc := allocateByWeight(n, ws)
		total := 0
		for _, a := range alloc {
			if a < 0 {
				return false
			}
			total += a
		}
		if total != n {
			return false
		}
		// No chunk starves while another holds several channels.
		if n >= len(ws) {
			for _, a := range alloc {
				if a == 0 {
					for _, b := range alloc {
						if b > 1 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocateByWeightProportional(t *testing.T) {
	alloc := allocateByWeight(10, []float64{0.5, 0.3, 0.2})
	if alloc[0] != 5 || alloc[1] != 3 || alloc[2] != 2 {
		t.Errorf("alloc = %v, want [5 3 2]", alloc)
	}
}

func TestAllocateByWeightDegenerate(t *testing.T) {
	if got := allocateByWeight(0, []float64{1}); got[0] != 0 {
		t.Error("zero channels should allocate nothing")
	}
	if got := allocateByWeight(5, nil); len(got) != 0 {
		t.Error("no chunks should return empty")
	}
	// One channel across three chunks: exactly one chunk gets it.
	got := allocateByWeight(1, []float64{0.4, 0.35, 0.25})
	total := 0
	for _, a := range got {
		total += a
	}
	if total != 1 {
		t.Errorf("alloc = %v, want total 1", got)
	}
}

func TestGUCOptionsDefaults(t *testing.T) {
	o := GUCOptions{}.withDefaults()
	if o.Pipelining != 1 || o.Parallelism != 1 || o.Concurrency != 1 {
		t.Errorf("defaults = %+v", o)
	}
	o = GUCOptions{Pipelining: 4, Parallelism: 2, Concurrency: 3}.withDefaults()
	if o.Pipelining != 4 || o.Parallelism != 2 || o.Concurrency != 3 {
		t.Errorf("explicit options mangled: %+v", o)
	}
}
