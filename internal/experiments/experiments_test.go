package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

// The sweep tests run the complete paper evaluation on the simulated
// testbeds and assert the qualitative claims of §3. They are the
// heart of the reproduction.

func runSweep(t *testing.T, tb testbed.Testbed) *Sweep {
	t.Helper()
	s, err := RunSweep(context.Background(), tb, DefaultSeed)
	if err != nil {
		t.Fatalf("RunSweep(%s): %v", tb.Name, err)
	}
	return s
}

func assertChecks(t *testing.T, checks []Check) {
	t.Helper()
	for _, c := range checks {
		if !c.OK {
			t.Errorf("paper claim failed: %s (%s)", c.Name, c.Detail)
		} else {
			t.Logf("ok: %s %s", c.Name, c.Detail)
		}
	}
}

func TestFig2XSEDE(t *testing.T) {
	s := runSweep(t, testbed.XSEDE())
	assertChecks(t, CheckXSEDESweep(s))
}

func TestFig3FutureGrid(t *testing.T) {
	s := runSweep(t, testbed.FutureGrid())
	assertChecks(t, CheckWANSweep(s))
}

func TestFig4DIDCLAB(t *testing.T) {
	s := runSweep(t, testbed.DIDCLAB())
	assertChecks(t, CheckDIDCLABSweep(s))
}

func TestFig5SLAXSEDE(t *testing.T) {
	s, err := RunSLA(context.Background(), testbed.XSEDE(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	assertChecks(t, CheckSLA(s, true))
}

func TestFig6SLAFutureGrid(t *testing.T) {
	s, err := RunSLA(context.Background(), testbed.FutureGrid(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	assertChecks(t, CheckSLA(s, true))
}

func TestFig7SLADIDCLAB(t *testing.T) {
	s, err := RunSLA(context.Background(), testbed.DIDCLAB(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	assertChecks(t, CheckSLA(s, false))
}

func TestFig8RatePowerCurves(t *testing.T) {
	points := RatePowerCurves(20)
	if len(points) != 21 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].Utilization != 0 || points[len(points)-1].Utilization != 1 {
		t.Error("curve does not span [0,1]")
	}
	// Non-linear sits above linear in the interior (Fig. 8's shape).
	for _, p := range points[1 : len(points)-1] {
		if p.NonLinear <= p.Linear {
			t.Errorf("at %.2f non-linear %.3f not above linear %.3f",
				p.Utilization, p.NonLinear, p.Linear)
		}
	}
	if RatePowerCurves(1)[0].Utilization != 0 {
		t.Error("degenerate step count not clamped")
	}
}

func TestFig10EnergySplit(t *testing.T) {
	ctx := context.Background()
	var splits []EnergySplit
	for _, tb := range testbed.All() {
		s, err := RunEnergySplit(ctx, tb, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: end-system %v (%.0f%%), network %v (%.0f%%)",
			s.Testbed, s.EndSystem, s.EndSystemShare, s.Network, s.NetworkShare)
		splits = append(splits, s)
	}
	assertChecks(t, CheckEnergySplit(splits))
}

func TestHeadlineEnergySaving(t *testing.T) {
	// The abstract's headline: "up to 30% energy savings with no or
	// minimal degradation in the expected transfer throughput". The
	// 90% SLA on XSEDE is the paper's showcase.
	s, err := RunSLA(context.Background(), testbed.XSEDE(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	saving := s.EnergySaving(0.90)
	if saving < 20 {
		t.Errorf("90%% SLA saves only %.0f%% energy, want ≥20%%", saving)
	}
	dev := s.Results[0.90].Deviation()
	if dev < -10 {
		t.Errorf("90%% SLA missed its throughput target by %.0f%%", dev)
	}
	t.Logf("90%% SLA: %.0f%% energy saving at %.1f%% deviation", saving, dev)
}

func TestMarkdownRenderers(t *testing.T) {
	s := runSweep(t, testbed.DIDCLAB())
	md := MarkdownSweep(s)
	for _, want := range []string{"DIDCLAB", "throughput (Mbps)", "GUC", "HTEE search outcome"} {
		if !strings.Contains(md, want) {
			t.Errorf("sweep markdown missing %q", want)
		}
	}
	csv := CSVSweep(s)
	if !strings.Contains(csv, "DIDCLAB,GUC,1,") {
		t.Error("sweep CSV missing expected row prefix")
	}

	sla, err := RunSLA(context.Background(), testbed.DIDCLAB(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if md := MarkdownSLA(sla); !strings.Contains(md, "SLA transfers") {
		t.Error("SLA markdown malformed")
	}
	if csv := CSVSLA(sla); !strings.Contains(csv, "target_pct") {
		t.Error("SLA CSV malformed")
	}
	if md := MarkdownRatePower(RatePowerCurves(4)); !strings.Contains(md, "state-based") {
		t.Error("rate-power markdown malformed")
	}
	split, err := RunEnergySplit(context.Background(), testbed.DIDCLAB(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if md := MarkdownEnergySplit([]EnergySplit{split}); !strings.Contains(md, "DIDCLAB") {
		t.Error("split markdown malformed")
	}
}

func TestFailedHelper(t *testing.T) {
	checks := []Check{{Name: "a", OK: true}, {Name: "b", OK: false}}
	failed := Failed(checks)
	if len(failed) != 1 || failed[0].Name != "b" {
		t.Errorf("Failed() = %+v", failed)
	}
}

func TestSweepDeterministic(t *testing.T) {
	a := runSweep(t, testbed.DIDCLAB())
	b := runSweep(t, testbed.DIDCLAB())
	for _, algo := range a.Algorithms() {
		for _, l := range a.Levels {
			if a.Reports[algo][l].EndSystemEnergy != b.Reports[algo][l].EndSystemEnergy {
				t.Fatalf("%s@%d energy differs across identical runs", algo, l)
			}
		}
	}
	_ = core.NameBF
}

func TestAblationsXSEDE(t *testing.T) {
	abl, err := RunAblations(context.Background(), testbed.XSEDE(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 4 {
		t.Fatalf("got %d ablations, want 4", len(abl))
	}
	for _, a := range abl {
		t.Logf("%s: throughput %+.1f%%, energy %+.1f%% %s",
			a.Name, a.ThroughputDelta(), a.EnergyDelta(), a.Extra)
	}
	assertChecks(t, CheckAblations(abl))
	if md := MarkdownAblations("XSEDE", abl); !strings.Contains(md, "MinE-unpin-large") {
		t.Error("ablation markdown malformed")
	}
}

func TestFigureBuilders(t *testing.T) {
	s := runSweep(t, testbed.DIDCLAB())
	for name, svg := range map[string]string{
		"throughput": FigureThroughput(s).SVG(),
		"energy":     FigureEnergy(s).SVG(),
		"efficiency": FigureEfficiency(s).SVG(),
	} {
		if !strings.Contains(svg, "<polyline") || !strings.Contains(svg, "GUC") {
			t.Errorf("%s figure missing content", name)
		}
	}
	sla, err := RunSLA(context.Background(), testbed.DIDCLAB(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if svg := FigureSLAThroughput(sla).SVG(); !strings.Contains(svg, "achieved") {
		t.Error("SLA throughput figure malformed")
	}
	if svg := FigureSLAEnergy(sla).SVG(); !strings.Contains(svg, "ProMC") {
		t.Error("SLA energy figure malformed")
	}
	if svg := FigureSLADeviation(sla).SVG(); !strings.Contains(svg, "deviation") {
		t.Error("SLA deviation figure malformed")
	}
	if svg := FigureRatePower(RatePowerCurves(10)).SVG(); !strings.Contains(svg, "state-based") {
		t.Error("rate-power figure malformed")
	}
	split, err := RunEnergySplit(context.Background(), testbed.DIDCLAB(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if svg := FigureEnergySplitChart([]EnergySplit{split}).SVG(); !strings.Contains(svg, "DIDCLAB") {
		t.Error("energy split figure malformed")
	}
}

func TestModelChoice(t *testing.T) {
	var mcs []ModelChoice
	for _, tb := range testbed.All() {
		mc, err := RunModelChoice(context.Background(), tb, DefaultSeed)
		if err != nil {
			t.Fatalf("%s: %v", tb.Name, err)
		}
		t.Logf("%s: fine cc=%d, cpu-only cc=%d, penalty %.1f%%",
			mc.Testbed, mc.FineGrained.ChosenConcurrency, mc.CPUOnly.ChosenConcurrency, mc.EfficiencyPenalty)
		mcs = append(mcs, mc)
	}
	assertChecks(t, CheckModelChoice(mcs))
	if md := MarkdownModelChoice(mcs); !strings.Contains(md, "CPU-only") {
		t.Error("model-choice markdown malformed")
	}
}

func TestAdaptationXSEDE(t *testing.T) {
	a, err := RunAdaptation(context.Background(), testbed.XSEDE(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("step %.0f%% at %v, target %v: static %v vs SLAEE %v (cc=%d)",
		a.StepFraction*100, a.StepAt, a.Target,
		a.StaticLateThroughput, a.SLAEELateThroughput, a.SLAEELateConcurrency)
	assertChecks(t, CheckAdaptation(a))
	if md := MarkdownAdaptation(a); !strings.Contains(md, "Congestion-step") {
		t.Error("adaptation markdown malformed")
	}
}

func TestBackgroundTrafficReducesThroughput(t *testing.T) {
	tb := testbed.XSEDE()
	ds := tb.Dataset(DefaultSeed)
	clean, err := core.ProMC(context.Background(), transfer.NewSim(tb), ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	congestedSim := transfer.NewSim(tb)
	congestedSim.Background = func(time.Duration) float64 { return 0.5 }
	congested, err := core.ProMC(context.Background(), congestedSim, ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if congested.Throughput >= clean.Throughput*75/100 {
		t.Errorf("50%% cross traffic barely hurt: clean %v vs congested %v",
			clean.Throughput, congested.Throughput)
	}
}

func TestSeedRobustnessXSEDE(t *testing.T) {
	// The paper's claims must not hinge on one lucky workload: rerun
	// the Fig. 2 checks on independently generated datasets.
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{DefaultSeed, 7, 20260101} {
		s, err := RunSweep(context.Background(), testbed.XSEDE(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range CheckXSEDESweep(s) {
			if !c.OK {
				t.Errorf("seed %d: claim failed: %s (%s)", seed, c.Name, c.Detail)
			}
		}
	}
}
