// Package experiments reproduces every table and figure of the paper's
// evaluation (§3–§4): the concurrency sweeps of Figs. 2–4, the SLA runs
// of Figs. 5–7, the rate-power curves of Fig. 8, the end-system vs.
// network split of Fig. 10, and the §2.2 power-model validation table.
// Each experiment returns a structured result that can be rendered as
// markdown/CSV and checked against the paper's qualitative claims.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

// SweepLevels are the x-axis concurrency levels of Figs. 2–4.
var SweepLevels = []int{1, 2, 4, 6, 8, 10, 12}

// DefaultSeed makes every experiment reproducible.
const DefaultSeed = 20150615

// Sweep is the Figs. 2–4 experiment: every algorithm across the
// concurrency levels of one testbed.
type Sweep struct {
	Testbed string
	Levels  []int
	// Reports maps algorithm → concurrency → completed run. GUC and GO
	// ignore concurrency; their single run is replicated across levels
	// the way the paper draws them as flat lines.
	Reports map[string]map[int]transfer.Report
	// HTEE holds the adaptive run per max-concurrency level.
	HTEE map[int]core.HTEEResult
	// BF is the brute-force reference over 1..BFMaxConcurrency.
	BF core.BFResult
}

// RunSweep executes the full Fig. 2/3/4 experiment on tb.
//
// Every (algorithm × level) cell is an independent simulation with its
// own transfer.NewSim, so the cells are fanned out on a bounded worker
// pool. Each worker writes into a pre-indexed slot keyed by its cell —
// never appending in completion order — which keeps the result
// bit-identical to a serial run (asserted by TestRunSweepDeterminism).
func RunSweep(ctx context.Context, tb testbed.Testbed, seed int64) (*Sweep, error) {
	return runSweepWorkers(ctx, tb, seed, 0)
}

// RunSweepSerial is RunSweep constrained to one worker — the serial
// baseline the engine's speedup is benchmarked against.
func RunSweepSerial(ctx context.Context, tb testbed.Testbed, seed int64) (*Sweep, error) {
	return runSweepWorkers(ctx, tb, seed, 1)
}

func runSweepWorkers(ctx context.Context, tb testbed.Testbed, seed int64, workers int) (*Sweep, error) {
	ds := tb.Dataset(seed)
	s := &Sweep{
		Testbed: tb.Name,
		Levels:  append([]int(nil), SweepLevels...),
		Reports: make(map[string]map[int]transfer.Report),
		HTEE:    make(map[int]core.HTEEResult),
	}
	sim := func() transfer.Executor { return transfer.NewSim(tb) }

	// Per-cell result slots, indexed by level position. GUC, GO and BF
	// each run once; the per-level algorithms get one slot per level.
	var guc, gor transfer.Report
	var bf core.BFResult
	scs := make([]transfer.Report, len(s.Levels))
	mines := make([]transfer.Report, len(s.Levels))
	promcs := make([]transfer.Report, len(s.Levels))
	htees := make([]core.HTEEResult, len(s.Levels))

	p := sched.New(ctx, workers)
	p.Go(func(ctx context.Context) error {
		r, err := core.GUC(ctx, sim(), ds, core.GUCOptions{})
		if err != nil {
			return fmt.Errorf("GUC: %w", err)
		}
		guc = r
		return nil
	})
	p.Go(func(ctx context.Context) error {
		r, err := core.GO(ctx, sim(), ds)
		if err != nil {
			return fmt.Errorf("GO: %w", err)
		}
		gor = r
		return nil
	})
	for i, level := range s.Levels {
		i, level := i, level
		p.Go(func(ctx context.Context) error {
			r, err := core.SC(ctx, sim(), ds, level)
			if err != nil {
				return fmt.Errorf("SC@%d: %w", level, err)
			}
			scs[i] = r
			return nil
		})
		p.Go(func(ctx context.Context) error {
			r, err := core.MinE(ctx, sim(), ds, level)
			if err != nil {
				return fmt.Errorf("MinE@%d: %w", level, err)
			}
			mines[i] = r
			return nil
		})
		p.Go(func(ctx context.Context) error {
			r, err := core.ProMC(ctx, sim(), ds, level)
			if err != nil {
				return fmt.Errorf("ProMC@%d: %w", level, err)
			}
			promcs[i] = r
			return nil
		})
		p.Go(func(ctx context.Context) error {
			r, err := core.HTEE(ctx, sim(), ds, level)
			if err != nil {
				return fmt.Errorf("HTEE@%d: %w", level, err)
			}
			htees[i] = r
			return nil
		})
	}
	p.Go(func(ctx context.Context) error {
		r, err := core.BFWith(ctx, sim, ds, tb.BFMaxConcurrency, core.BFOptions{Workers: workers})
		if err != nil {
			return fmt.Errorf("BF: %w", err)
		}
		bf = r
		return nil
	})
	if err := p.Wait(); err != nil {
		return nil, err
	}

	// Deterministic assembly in level order.
	put := func(algo string, level int, r transfer.Report) {
		if s.Reports[algo] == nil {
			s.Reports[algo] = make(map[int]transfer.Report)
		}
		s.Reports[algo][level] = r
	}
	for i, level := range s.Levels {
		put(core.NameGUC, level, guc)
		put(core.NameGO, level, gor)
		put(core.NameSC, level, scs[i])
		put(core.NameMinE, level, mines[i])
		put(core.NameProMC, level, promcs[i])
		put(core.NameHTEE, level, htees[i].Report)
		s.HTEE[level] = htees[i]
	}
	s.BF = bf
	return s, nil
}

// Algorithms returns the sweep's algorithm names in the paper's legend
// order (GUC, GO, SC, MinE, ProMC, HTEE).
func (s *Sweep) Algorithms() []string {
	order := []string{core.NameGUC, core.NameGO, core.NameSC, core.NameMinE, core.NameProMC, core.NameHTEE}
	var out []string
	for _, a := range order {
		if _, ok := s.Reports[a]; ok {
			out = append(out, a)
		}
	}
	// Anything extra (future algorithms) in stable order.
	known := make(map[string]bool, len(order))
	for _, o := range order {
		known[o] = true
	}
	var extra []string
	for a := range s.Reports {
		if !known[a] {
			extra = append(extra, a)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// BestEfficiency returns the highest whole-run throughput/energy ratio
// the brute-force search found — the paper's "best possible value"
// all panel-(c) bars are normalized against.
func (s *Sweep) BestEfficiency() float64 {
	return s.BF.BestReport().Efficiency()
}

// NormalizedEfficiency returns report r's efficiency relative to the
// brute-force best (the y-axis of Figs. 2c/3c/4c).
func (s *Sweep) NormalizedEfficiency(r transfer.Report) float64 {
	best := s.BestEfficiency()
	if best <= 0 {
		return 0
	}
	return r.Efficiency() / best
}
