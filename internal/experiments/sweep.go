// Package experiments reproduces every table and figure of the paper's
// evaluation (§3–§4): the concurrency sweeps of Figs. 2–4, the SLA runs
// of Figs. 5–7, the rate-power curves of Fig. 8, the end-system vs.
// network split of Fig. 10, and the §2.2 power-model validation table.
// Each experiment returns a structured result that can be rendered as
// markdown/CSV and checked against the paper's qualitative claims.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

// SweepLevels are the x-axis concurrency levels of Figs. 2–4.
var SweepLevels = []int{1, 2, 4, 6, 8, 10, 12}

// DefaultSeed makes every experiment reproducible.
const DefaultSeed = 20150615

// Sweep is the Figs. 2–4 experiment: every algorithm across the
// concurrency levels of one testbed.
type Sweep struct {
	Testbed string
	Levels  []int
	// Reports maps algorithm → concurrency → completed run. GUC and GO
	// ignore concurrency; their single run is replicated across levels
	// the way the paper draws them as flat lines.
	Reports map[string]map[int]transfer.Report
	// HTEE holds the adaptive run per max-concurrency level.
	HTEE map[int]core.HTEEResult
	// BF is the brute-force reference over 1..BFMaxConcurrency.
	BF core.BFResult
}

// RunSweep executes the full Fig. 2/3/4 experiment on tb.
func RunSweep(ctx context.Context, tb testbed.Testbed, seed int64) (*Sweep, error) {
	ds := tb.Dataset(seed)
	s := &Sweep{
		Testbed: tb.Name,
		Levels:  append([]int(nil), SweepLevels...),
		Reports: make(map[string]map[int]transfer.Report),
		HTEE:    make(map[int]core.HTEEResult),
	}
	put := func(algo string, level int, r transfer.Report) {
		if s.Reports[algo] == nil {
			s.Reports[algo] = make(map[int]transfer.Report)
		}
		s.Reports[algo][level] = r
	}
	sim := func() transfer.Executor { return transfer.NewSim(tb) }

	guc, err := core.GUC(ctx, sim(), ds, core.GUCOptions{})
	if err != nil {
		return nil, fmt.Errorf("GUC: %w", err)
	}
	gor, err := core.GO(ctx, sim(), ds)
	if err != nil {
		return nil, fmt.Errorf("GO: %w", err)
	}
	for _, level := range s.Levels {
		put(core.NameGUC, level, guc)
		put(core.NameGO, level, gor)

		sc, err := core.SC(ctx, sim(), ds, level)
		if err != nil {
			return nil, fmt.Errorf("SC@%d: %w", level, err)
		}
		put(core.NameSC, level, sc)

		mine, err := core.MinE(ctx, sim(), ds, level)
		if err != nil {
			return nil, fmt.Errorf("MinE@%d: %w", level, err)
		}
		put(core.NameMinE, level, mine)

		promc, err := core.ProMC(ctx, sim(), ds, level)
		if err != nil {
			return nil, fmt.Errorf("ProMC@%d: %w", level, err)
		}
		put(core.NameProMC, level, promc)

		htee, err := core.HTEE(ctx, sim(), ds, level)
		if err != nil {
			return nil, fmt.Errorf("HTEE@%d: %w", level, err)
		}
		put(core.NameHTEE, level, htee.Report)
		s.HTEE[level] = htee
	}

	bf, err := core.BF(ctx, sim(), ds, tb.BFMaxConcurrency)
	if err != nil {
		return nil, fmt.Errorf("BF: %w", err)
	}
	s.BF = bf
	return s, nil
}

// Algorithms returns the sweep's algorithm names in the paper's legend
// order (GUC, GO, SC, MinE, ProMC, HTEE).
func (s *Sweep) Algorithms() []string {
	order := []string{core.NameGUC, core.NameGO, core.NameSC, core.NameMinE, core.NameProMC, core.NameHTEE}
	var out []string
	for _, a := range order {
		if _, ok := s.Reports[a]; ok {
			out = append(out, a)
		}
	}
	// Anything extra (future algorithms) in stable order.
	var extra []string
	for a := range s.Reports {
		found := false
		for _, o := range order {
			if a == o {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, a)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// BestEfficiency returns the highest whole-run throughput/energy ratio
// the brute-force search found — the paper's "best possible value"
// all panel-(c) bars are normalized against.
func (s *Sweep) BestEfficiency() float64 {
	return s.BF.BestReport().Efficiency()
}

// NormalizedEfficiency returns report r's efficiency relative to the
// brute-force best (the y-axis of Figs. 2c/3c/4c).
func (s *Sweep) NormalizedEfficiency(r transfer.Report) float64 {
	best := s.BestEfficiency()
	if best <= 0 {
		return 0
	}
	return r.Efficiency() / best
}
