package experiments

import (
	"context"
	"fmt"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// SLATargets are the x-axis target percentages of Figs. 5–7.
var SLATargets = []float64{0.95, 0.90, 0.80, 0.70, 0.50}

// SLASweep is the Figs. 5–7 experiment on one testbed: SLAEE runs at
// every target level, referenced against the maximum throughput ProMC
// achieves at the testbed's reference concurrency.
type SLASweep struct {
	Testbed string
	// Reference is the ProMC run defining "maximum throughput" (§3:
	// concurrency 12, 12 and 1 on XSEDE, FutureGrid and DIDCLAB).
	Reference transfer.Report
	// MaxThroughput is Reference.Throughput.
	MaxThroughput units.Rate
	// Targets lists the probed SLA levels (fractions of max).
	Targets []float64
	// Results maps target level → SLAEE outcome.
	Results map[float64]core.SLAResult
}

// RunSLA executes the full Fig. 5/6/7 experiment on tb.
//
// The reference ProMC run is an input to every target cell, so it runs
// first; the SLA targets themselves are independent and fan out on the
// worker pool, assembled by target index.
func RunSLA(ctx context.Context, tb testbed.Testbed, seed int64) (*SLASweep, error) {
	ds := tb.Dataset(seed)
	ref, err := core.ProMC(ctx, transfer.NewSim(tb), ds, tb.SLARefConcurrency)
	if err != nil {
		return nil, fmt.Errorf("SLA reference ProMC@%d: %w", tb.SLARefConcurrency, err)
	}
	sweep := &SLASweep{
		Testbed:       tb.Name,
		Reference:     ref,
		MaxThroughput: ref.Throughput,
		Targets:       append([]float64(nil), SLATargets...),
		Results:       make(map[float64]core.SLAResult),
	}
	results, err := sched.Map(ctx, 0, len(sweep.Targets), func(ctx context.Context, i int) (core.SLAResult, error) {
		target := sweep.Targets[i]
		res, err := core.SLAEE(ctx, transfer.NewSim(tb), ds, ref.Throughput, target, tb.MaxConcurrency)
		if err != nil {
			return core.SLAResult{}, fmt.Errorf("SLAEE@%.0f%%: %w", target*100, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, target := range sweep.Targets {
		sweep.Results[target] = results[i]
	}
	return sweep, nil
}

// EnergySaving returns the energy saved at a target level relative to
// the maximum-throughput ProMC reference, in percent (Fig. 5b's
// comparison; the paper reports savings up to 30%).
func (s *SLASweep) EnergySaving(target float64) float64 {
	res, ok := s.Results[target]
	if !ok || s.Reference.EndSystemEnergy <= 0 {
		return 0
	}
	return (1 - float64(res.EndSystemEnergy)/float64(s.Reference.EndSystemEnergy)) * 100
}
