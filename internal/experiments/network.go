package experiments

import (
	"context"
	"fmt"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/netpower"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// RatePowerPoint is one x/y point of Fig. 8.
type RatePowerPoint struct {
	Utilization float64 // traffic rate as a fraction of capacity
	NonLinear   float64 // fraction of max dynamic power
	Linear      float64
	StateBased  float64
}

// RatePowerCurves reproduces Fig. 8: the three rate-vs-power relations
// sampled across the utilization range.
func RatePowerCurves(steps int) []RatePowerPoint {
	if steps < 2 {
		steps = 2
	}
	nl, lin, sb := netpower.NonLinearModel{}, netpower.LinearModel{}, netpower.DefaultStateBased()
	points := make([]RatePowerPoint, steps+1)
	for i := 0; i <= steps; i++ {
		u := float64(i) / float64(steps)
		points[i] = RatePowerPoint{
			Utilization: u,
			NonLinear:   nl.DynamicFraction(u),
			Linear:      lin.DynamicFraction(u),
			StateBased:  sb.DynamicFraction(u),
		}
	}
	return points
}

// EnergySplit is one bar pair of Fig. 10: where a transfer's energy
// goes on one testbed.
type EnergySplit struct {
	Testbed         string
	EndSystem       units.Joules
	Network         units.Joules
	EndSystemShare  float64 // percent
	NetworkShare    float64 // percent
	MetroRouterHops int
}

// RunEnergySplit reproduces Fig. 10: run HTEE on the testbed and
// decompose the total load-dependent energy into the end-system and
// network-infrastructure components.
func RunEnergySplit(ctx context.Context, tb testbed.Testbed, seed int64) (EnergySplit, error) {
	ds := tb.Dataset(seed)
	res, err := core.HTEE(ctx, transfer.NewSim(tb), ds, tb.MaxConcurrency)
	if err != nil {
		return EnergySplit{}, fmt.Errorf("HTEE on %s: %w", tb.Name, err)
	}
	total := float64(res.EndSystemEnergy + res.NetworkEnergy)
	split := EnergySplit{
		Testbed:   tb.Name,
		EndSystem: res.EndSystemEnergy,
		Network:   res.NetworkEnergy,
	}
	if total > 0 {
		split.EndSystemShare = float64(res.EndSystemEnergy) / total * 100
		split.NetworkShare = float64(res.NetworkEnergy) / total * 100
	}
	for _, d := range tb.NetChain {
		if d.Class == netpower.MetroRouter {
			split.MetroRouterHops++
		}
	}
	return split, nil
}

// RunEnergySplits runs RunEnergySplit on every testbed concurrently,
// returning the splits in testbed order.
func RunEnergySplits(ctx context.Context, beds []testbed.Testbed, seed int64) ([]EnergySplit, error) {
	return sched.Map(ctx, 0, len(beds), func(ctx context.Context, i int) (EnergySplit, error) {
		return RunEnergySplit(ctx, beds[i], seed)
	})
}
