package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// MarkdownSweep renders a Fig. 2/3/4-style sweep as three markdown
// tables (throughput, energy, normalized efficiency).
func MarkdownSweep(s *Sweep) string {
	var b strings.Builder
	algos := s.Algorithms()

	header := func(title string) {
		fmt.Fprintf(&b, "\n**%s — %s**\n\n", s.Testbed, title)
		b.WriteString("| algorithm |")
		for _, l := range s.Levels {
			fmt.Fprintf(&b, " cc=%d |", l)
		}
		b.WriteString("\n|---|")
		for range s.Levels {
			b.WriteString("---|")
		}
		b.WriteString("\n")
	}

	header("throughput (Mbps)")
	for _, a := range algos {
		fmt.Fprintf(&b, "| %s |", a)
		for _, l := range s.Levels {
			fmt.Fprintf(&b, " %.0f |", s.Reports[a][l].Throughput.Mbit())
		}
		b.WriteString("\n")
	}

	header("end-system energy (J)")
	for _, a := range algos {
		fmt.Fprintf(&b, "| %s |", a)
		for _, l := range s.Levels {
			fmt.Fprintf(&b, " %.0f |", float64(s.Reports[a][l].EndSystemEnergy))
		}
		b.WriteString("\n")
	}

	header("throughput/energy ratio normalized to brute-force best")
	for _, a := range algos {
		fmt.Fprintf(&b, "| %s |", a)
		for _, l := range s.Levels {
			fmt.Fprintf(&b, " %.2f |", s.NormalizedEfficiency(s.Reports[a][l]))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\nBrute force best: concurrency %d (ratio %.4f Mbps/J)\n", s.BF.Best, s.BestEfficiency())

	var levels []int
	for l := range s.HTEE {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	b.WriteString("\nHTEE search outcome: ")
	for i, l := range levels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "max=%d→%d", l, s.HTEE[l].ChosenConcurrency)
	}
	b.WriteString("\n")
	return b.String()
}

// MarkdownSLA renders a Fig. 5/6/7-style SLA sweep as a markdown table.
func MarkdownSLA(s *SLASweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n**%s — SLA transfers (max throughput %.0f Mbps, ProMC reference energy %.0f J)**\n\n",
		s.Testbed, s.MaxThroughput.Mbit(), float64(s.Reference.EndSystemEnergy))
	b.WriteString("| target %% | target Mbps | achieved Mbps | deviation %% | energy (J) | saving vs ProMC %% | final cc |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, t := range s.Targets {
		r := s.Results[t]
		fmt.Fprintf(&b, "| %.0f | %.0f | %.0f | %+.1f | %.0f | %.1f | %d |\n",
			t*100, r.Target.Mbit(), r.Throughput.Mbit(), r.Deviation(),
			float64(r.EndSystemEnergy), s.EnergySaving(t), r.FinalConcurrency)
	}
	return b.String()
}

// MarkdownEnergySplit renders Fig. 10's decomposition.
func MarkdownEnergySplit(splits []EnergySplit) string {
	var b strings.Builder
	b.WriteString("\n**End-system vs. network energy (HTEE, load-dependent only)**\n\n")
	b.WriteString("| testbed | end-system | network | end-system % | network % |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, s := range splits {
		fmt.Fprintf(&b, "| %s | %s | %s | %.0f | %.0f |\n",
			s.Testbed, s.EndSystem, s.Network, s.EndSystemShare, s.NetworkShare)
	}
	return b.String()
}

// MarkdownRatePower renders Fig. 8's three curves as a table.
func MarkdownRatePower(points []RatePowerPoint) string {
	var b strings.Builder
	b.WriteString("\n**Rate vs. dynamic power (fraction of max)**\n\n")
	b.WriteString("| utilization | non-linear | linear | state-based |\n|---|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %.2f | %.3f | %.3f | %.3f |\n", p.Utilization, p.NonLinear, p.Linear, p.StateBased)
	}
	return b.String()
}

// CSVSweep renders the sweep's throughput/energy series as CSV rows
// (one row per algorithm × level) for plotting.
func CSVSweep(s *Sweep) string {
	var b strings.Builder
	b.WriteString("testbed,algorithm,concurrency,throughput_mbps,energy_j,network_energy_j,efficiency_norm\n")
	for _, a := range s.Algorithms() {
		for _, l := range s.Levels {
			r := s.Reports[a][l]
			fmt.Fprintf(&b, "%s,%s,%d,%.1f,%.1f,%.1f,%.4f\n",
				s.Testbed, a, l, r.Throughput.Mbit(), float64(r.EndSystemEnergy),
				float64(r.NetworkEnergy), s.NormalizedEfficiency(r))
		}
	}
	return b.String()
}

// CSVSLA renders the SLA sweep as CSV rows.
func CSVSLA(s *SLASweep) string {
	var b strings.Builder
	b.WriteString("testbed,target_pct,target_mbps,achieved_mbps,deviation_pct,energy_j,saving_pct,final_concurrency\n")
	for _, t := range s.Targets {
		r := s.Results[t]
		fmt.Fprintf(&b, "%s,%.0f,%.1f,%.1f,%.2f,%.1f,%.2f,%d\n",
			s.Testbed, t*100, r.Target.Mbit(), r.Throughput.Mbit(), r.Deviation(),
			float64(r.EndSystemEnergy), s.EnergySaving(t), r.FinalConcurrency)
	}
	return b.String()
}
