package experiments

import (
	"context"
	"fmt"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/power"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

// ModelChoice is the §2.2 question carried to its operational
// conclusion: if a site can only observe CPU utilization (the CPU-only
// model, Eq. 3), do the energy-aware algorithms still make the same
// decisions as under the fine-grained model?
type ModelChoice struct {
	Testbed string
	// FineGrained / CPUOnly are the HTEE outcomes under each model.
	FineGrained core.HTEEResult
	CPUOnly     core.HTEEResult
	// ConcurrencyAgrees reports whether the chosen levels are within
	// one search step of each other.
	ConcurrencyAgrees bool
	// EfficiencyPenalty is the fine-grained-measured efficiency lost by
	// following the CPU-only model's choice, in percent.
	EfficiencyPenalty float64
}

// cpuOnlyAsFineGrained folds a CPU-only model into the fine-grained
// representation the simulator consumes: P = (C_cpu,n + Linear)·u_cpu
// is a fine-grained model whose quadratic is shifted by Linear and
// whose other components are zero.
func cpuOnlyAsFineGrained(m power.CPUOnly) power.FineGrained {
	scale := 1.0
	if m.TDPLocal > 0 && m.TDPRemote > 0 {
		scale = float64(m.TDPRemote) / float64(m.TDPLocal)
	}
	return power.FineGrained{Coeff: power.Coefficients{
		CPU: power.CPUQuad{m.CPU[0] * scale, m.CPU[1] * scale, (m.CPU[2] + m.Linear) * scale},
	}}
}

// RunModelChoice runs HTEE twice on tb — once metering energy with the
// testbed's fine-grained model, once with a CPU-only model fitted from
// transfer-shaped calibration of that same model — and compares the
// decisions. The CPU-only run's final efficiency is re-measured under
// the fine-grained model so the penalty is apples to apples.
func RunModelChoice(ctx context.Context, tb testbed.Testbed, seed int64) (ModelChoice, error) {
	ds := tb.Dataset(seed)

	fine, err := core.HTEE(ctx, transfer.NewSim(tb), ds, tb.MaxConcurrency)
	if err != nil {
		return ModelChoice{}, fmt.Errorf("HTEE under fine-grained model: %w", err)
	}

	// Build the CPU-only model the way the paper does: observe the
	// (utilization, power) behaviour of transfer-like load under the
	// testbed's own fine-grained model, then fit Eq. 3.
	truth := power.GroundTruth{Coeff: tb.Power.Coeff}
	cpuOnly, err := power.BuildCPUOnly(power.TransferCalibration(truth, seed), float64(tb.Source.TDP))
	if err != nil {
		return ModelChoice{}, fmt.Errorf("fitting CPU-only model: %w", err)
	}
	tbCPU := tb
	tbCPU.Power = cpuOnlyAsFineGrained(cpuOnly)
	cpuRun, err := core.HTEE(ctx, transfer.NewSim(tbCPU), ds, tb.MaxConcurrency)
	if err != nil {
		return ModelChoice{}, fmt.Errorf("HTEE under CPU-only model: %w", err)
	}

	// Re-measure the CPU-only decision under the fine-grained model:
	// run ProMC-style at the chosen level.
	remeasured, err := core.ProMC(ctx, transfer.NewSim(tb), ds, cpuRun.ChosenConcurrency)
	if err != nil {
		return ModelChoice{}, fmt.Errorf("re-measuring CPU-only choice: %w", err)
	}
	atFineChoice, err := core.ProMC(ctx, transfer.NewSim(tb), ds, fine.ChosenConcurrency)
	if err != nil {
		return ModelChoice{}, fmt.Errorf("re-measuring fine-grained choice: %w", err)
	}

	mc := ModelChoice{
		Testbed:     tb.Name,
		FineGrained: fine,
		CPUOnly:     cpuRun,
	}
	diff := fine.ChosenConcurrency - cpuRun.ChosenConcurrency
	if diff < 0 {
		diff = -diff
	}
	mc.ConcurrencyAgrees = diff <= 2
	if base := atFineChoice.Efficiency(); base > 0 {
		mc.EfficiencyPenalty = (1 - remeasured.Efficiency()/base) * 100
	}
	return mc, nil
}

// MarkdownModelChoice renders the comparison.
func MarkdownModelChoice(mcs []ModelChoice) string {
	out := "\n**HTEE decisions under fine-grained vs. CPU-only power models (§2.2)**\n\n"
	out += "| testbed | fine-grained choice | CPU-only choice | agrees | efficiency penalty |\n|---|---|---|---|---|\n"
	for _, mc := range mcs {
		out += fmt.Sprintf("| %s | cc=%d | cc=%d | %v | %.1f%% |\n",
			mc.Testbed, mc.FineGrained.ChosenConcurrency, mc.CPUOnly.ChosenConcurrency,
			mc.ConcurrencyAgrees, mc.EfficiencyPenalty)
	}
	return out
}

// CheckModelChoice asserts the paper's conclusion that "CPU-based
// models can give us accurate enough results where fine-grained models
// are not applicable": the decisions agree within one search step and
// the penalty is small.
func CheckModelChoice(mcs []ModelChoice) []Check {
	var checks []Check
	for _, mc := range mcs {
		checks = append(checks, check("CPU-only model picks a near-identical concurrency on "+mc.Testbed,
			mc.ConcurrencyAgrees, "fine cc=%d vs cpu-only cc=%d",
			mc.FineGrained.ChosenConcurrency, mc.CPUOnly.ChosenConcurrency))
		checks = append(checks, check("CPU-only decision costs <10% efficiency on "+mc.Testbed,
			mc.EfficiencyPenalty < 10, "penalty %.1f%%", mc.EfficiencyPenalty))
	}
	return checks
}
