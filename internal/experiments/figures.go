package experiments

import (
	"fmt"

	"github.com/didclab/eta/internal/plot"
)

// FigureThroughput builds panel (a) of Figs. 2–4: throughput vs.
// concurrency per algorithm.
func FigureThroughput(s *Sweep) plot.Chart {
	return plot.Chart{
		Title:  fmt.Sprintf("%s — throughput vs. concurrency", s.Testbed),
		XLabel: "concurrency",
		YLabel: "throughput (Mbps)",
		Series: s.series(func(a string, l int) float64 {
			return s.Reports[a][l].Throughput.Mbit()
		}),
	}
}

// FigureEnergy builds panel (b): end-system energy vs. concurrency.
func FigureEnergy(s *Sweep) plot.Chart {
	return plot.Chart{
		Title:  fmt.Sprintf("%s — end-system energy vs. concurrency", s.Testbed),
		XLabel: "concurrency",
		YLabel: "energy (J)",
		Series: s.series(func(a string, l int) float64 {
			return float64(s.Reports[a][l].EndSystemEnergy)
		}),
	}
}

// FigureEfficiency builds panel (c): throughput/energy ratio normalized
// to the brute-force best.
func FigureEfficiency(s *Sweep) plot.Chart {
	one := 1.05
	zero := 0.0
	return plot.Chart{
		Title:  fmt.Sprintf("%s — efficiency normalized to brute-force best", s.Testbed),
		XLabel: "concurrency",
		YLabel: "throughput/energy ratio (normalized)",
		YMin:   &zero,
		YMax:   &one,
		Series: s.series(func(a string, l int) float64 {
			return s.NormalizedEfficiency(s.Reports[a][l])
		}),
	}
}

func (s *Sweep) series(value func(algo string, level int) float64) []plot.Series {
	var out []plot.Series
	for _, a := range s.Algorithms() {
		ser := plot.Series{Name: a}
		for _, l := range s.Levels {
			ser.X = append(ser.X, float64(l))
			ser.Y = append(ser.Y, value(a, l))
		}
		out = append(out, ser)
	}
	return out
}

// FigureSLAThroughput builds panel (a) of Figs. 5–7: target vs.
// achieved throughput plus the ProMC maximum.
func FigureSLAThroughput(s *SLASweep) plot.Chart {
	target := plot.Series{Name: "target"}
	achieved := plot.Series{Name: "achieved"}
	max := plot.Series{Name: "max (ProMC)"}
	for _, t := range s.Targets {
		x := t * 100
		r := s.Results[t]
		target.X = append(target.X, x)
		target.Y = append(target.Y, r.Target.Mbit())
		achieved.X = append(achieved.X, x)
		achieved.Y = append(achieved.Y, r.Throughput.Mbit())
		max.X = append(max.X, x)
		max.Y = append(max.Y, s.MaxThroughput.Mbit())
	}
	zero := 0.0
	return plot.Chart{
		Title:  fmt.Sprintf("%s — SLA throughput", s.Testbed),
		XLabel: "target (% of max)",
		YLabel: "throughput (Mbps)",
		YMin:   &zero,
		Series: []plot.Series{target, achieved, max},
	}
}

// FigureSLAEnergy builds panel (b): SLAEE energy vs. the ProMC
// reference.
func FigureSLAEnergy(s *SLASweep) plot.Chart {
	energy := plot.Series{Name: "SLAEE"}
	ref := plot.Series{Name: "max-throughput ProMC"}
	for _, t := range s.Targets {
		x := t * 100
		energy.X = append(energy.X, x)
		energy.Y = append(energy.Y, float64(s.Results[t].EndSystemEnergy))
		ref.X = append(ref.X, x)
		ref.Y = append(ref.Y, float64(s.Reference.EndSystemEnergy))
	}
	zero := 0.0
	return plot.Chart{
		Title:  fmt.Sprintf("%s — SLA energy consumption", s.Testbed),
		XLabel: "target (% of max)",
		YLabel: "energy (J)",
		YMin:   &zero,
		Series: []plot.Series{energy, ref},
	}
}

// FigureSLADeviation builds panel (c): deviation ratio per target.
func FigureSLADeviation(s *SLASweep) plot.Chart {
	dev := plot.Series{Name: "deviation"}
	for i, t := range s.Targets {
		dev.X = append(dev.X, float64(i))
		dev.Y = append(dev.Y, s.Results[t].Deviation())
	}
	labels := make([]string, len(s.Targets))
	for i, t := range s.Targets {
		labels[i] = fmt.Sprintf("%.0f%%", t*100)
	}
	return plot.Chart{
		Title:       fmt.Sprintf("%s — SLA deviation ratio", s.Testbed),
		XLabel:      "target (% of max)",
		YLabel:      "deviation (%)",
		Kind:        plot.Bars,
		Series:      []plot.Series{dev},
		XTickLabels: labels,
	}
}

// FigureRatePower builds Fig. 8.
func FigureRatePower(points []RatePowerPoint) plot.Chart {
	nl := plot.Series{Name: "non-linear"}
	lin := plot.Series{Name: "linear"}
	sb := plot.Series{Name: "state-based"}
	for _, p := range points {
		x := p.Utilization * 100
		nl.X = append(nl.X, x)
		nl.Y = append(nl.Y, p.NonLinear)
		lin.X = append(lin.X, x)
		lin.Y = append(lin.Y, p.Linear)
		sb.X = append(sb.X, x)
		sb.Y = append(sb.Y, p.StateBased)
	}
	return plot.Chart{
		Title:  "Data traffic rate vs. device power (Fig. 8)",
		XLabel: "data traffic rate (%)",
		YLabel: "dynamic power (fraction of max)",
		Series: []plot.Series{nl, lin, sb},
	}
}

// FigureEnergySplitChart builds Fig. 10 as grouped bars.
func FigureEnergySplitChart(splits []EnergySplit) plot.Chart {
	end := plot.Series{Name: "end-system"}
	net := plot.Series{Name: "network"}
	labels := make([]string, len(splits))
	for i, s := range splits {
		end.X = append(end.X, float64(i))
		end.Y = append(end.Y, float64(s.EndSystem)/1000)
		net.X = append(net.X, float64(i))
		net.Y = append(net.Y, float64(s.Network)/1000)
		labels[i] = s.Testbed
	}
	return plot.Chart{
		Title:       "End-system vs. network energy (Fig. 10)",
		XLabel:      "testbed",
		YLabel:      "energy (kJ)",
		Kind:        plot.Bars,
		Series:      []plot.Series{end, net},
		XTickLabels: labels,
	}
}
