package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// Adaptation is the extension experiment: a congestion step hits the
// path mid-transfer (cross traffic claims a fraction of the bandwidth)
// and the question is whether SLAEE's five-second control loop defends
// its SLA while a statically-tuned transfer just slows down.
type Adaptation struct {
	Testbed string
	// Step describes the injected cross traffic.
	StepAt       time.Duration
	StepFraction float64
	Target       units.Rate
	// SLAEE is the adaptive run; Static is ProMC pinned at the
	// concurrency that met the target before the step.
	SLAEE  core.SLAResult
	Static transfer.Report
	// StaticLateThroughput is the static run's average throughput
	// after the step hit.
	StaticLateThroughput units.Rate
	// SLAEELateThroughput is SLAEE's average throughput after the step.
	SLAEELateThroughput units.Rate
	// SLAEELateConcurrency is the concurrency SLAEE climbed to.
	SLAEELateConcurrency int
}

// stepBackground returns a background-traffic schedule: idle until at,
// then a constant fraction.
func stepBackground(at time.Duration, fraction float64) func(time.Duration) float64 {
	return func(now time.Duration) float64 {
		if now >= at {
			return fraction
		}
		return 0
	}
}

// lateThroughput averages a sample timeline's throughput from `from`
// onward.
func lateThroughput(samples []transfer.Sample, from time.Duration) units.Rate {
	var bytes units.Bytes
	var dur time.Duration
	for _, s := range samples {
		if s.Start >= from {
			bytes += s.Bytes
			dur += s.Duration
		}
	}
	return units.RateOf(bytes, dur)
}

// RunAdaptation executes the congestion-step experiment on tb. The SLA
// target is 60% of the clean-path ProMC maximum — comfortably reachable
// before the step, demanding after it.
func RunAdaptation(ctx context.Context, tb testbed.Testbed, seed int64) (Adaptation, error) {
	ds := tb.Dataset(seed)
	ref, err := core.ProMC(ctx, transfer.NewSim(tb), ds, tb.SLARefConcurrency)
	if err != nil {
		return Adaptation{}, fmt.Errorf("clean-path reference: %w", err)
	}
	target := units.Rate(float64(ref.Throughput) * 0.6)

	// The step lands a quarter into the clean-path duration and takes
	// 35% of the link.
	stepAt := ref.Duration / 4
	const stepFraction = 0.35
	background := stepBackground(stepAt, stepFraction)

	congested := func() *transfer.Sim {
		sim := transfer.NewSim(tb)
		sim.Background = background
		return sim
	}

	// Static competitor: the lowest concurrency that met the target on
	// the clean path (what an operator would have tuned to).
	staticConc := 1
	for c := 1; c <= tb.MaxConcurrency; c++ {
		r, err := core.ProMC(ctx, transfer.NewSim(tb), ds, c)
		if err != nil {
			return Adaptation{}, err
		}
		staticConc = c
		if r.Throughput >= target {
			break
		}
	}
	static, err := core.ProMC(ctx, congested(), ds, staticConc)
	if err != nil {
		return Adaptation{}, fmt.Errorf("static run: %w", err)
	}

	slaee, err := core.SLAEE(ctx, congested(), ds, ref.Throughput, 0.6, tb.MaxConcurrency)
	if err != nil {
		return Adaptation{}, fmt.Errorf("SLAEE run: %w", err)
	}

	a := Adaptation{
		Testbed:              tb.Name,
		StepAt:               stepAt,
		StepFraction:         stepFraction,
		Target:               target,
		SLAEE:                slaee,
		Static:               static,
		StaticLateThroughput: lateThroughput(static.Samples, stepAt),
		SLAEELateThroughput:  lateThroughput(slaee.Samples, stepAt),
		SLAEELateConcurrency: slaee.FinalConcurrency,
	}
	return a, nil
}

// MarkdownAdaptation renders the experiment.
func MarkdownAdaptation(a Adaptation) string {
	return fmt.Sprintf(`
**Congestion-step adaptation on %s (extension experiment)**

Cross traffic claims %.0f%% of the link at t=%v; the SLA target is %v.

| run | post-step throughput | final concurrency | SLA met |
|---|---|---|---|
| static ProMC (pre-tuned) | %v | fixed | %v |
| SLAEE (5 s control loop) | %v | %d | %v |
`,
		a.Testbed, a.StepFraction*100, a.StepAt.Round(time.Second), a.Target,
		a.StaticLateThroughput, a.StaticLateThroughput >= a.Target,
		a.SLAEELateThroughput, a.SLAEELateConcurrency, a.SLAEELateThroughput >= units.Rate(float64(a.Target)*0.95))
}

// CheckAdaptation asserts that the control loop earns its keep: SLAEE's
// post-step throughput beats the static run's and lands near the
// target.
func CheckAdaptation(a Adaptation) []Check {
	var checks []Check
	checks = append(checks, check("SLAEE outruns the static transfer after the congestion step",
		a.SLAEELateThroughput > a.StaticLateThroughput,
		"SLAEE %v vs static %v", a.SLAEELateThroughput, a.StaticLateThroughput))
	checks = append(checks, check("SLAEE holds ≥85% of the SLA under congestion",
		float64(a.SLAEELateThroughput) >= float64(a.Target)*0.85,
		"post-step %v vs target %v", a.SLAEELateThroughput, a.Target))
	checks = append(checks, check("SLAEE climbed concurrency to compensate",
		a.SLAEELateConcurrency > 1, "final cc=%d", a.SLAEELateConcurrency))
	return checks
}
