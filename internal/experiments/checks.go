package experiments

import (
	"fmt"

	"github.com/didclab/eta/internal/core"
)

// Check is one verified claim from the paper's evaluation text.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

func check(name string, ok bool, format string, args ...any) Check {
	return Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}

// Failed returns the subset of checks that did not hold.
func Failed(checks []Check) []Check {
	var out []Check
	for _, c := range checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// CheckWANSweep verifies the claims the paper makes about both WAN
// testbeds (Figs. 2 and 3):
//
//   - ProMC achieves the highest throughput, MinE the lowest energy,
//     at (almost) every concurrency level,
//   - GUC is the slowest (lack of tuning),
//   - HTEE's whole-run efficiency reaches ≥90% of the brute-force best
//     at full budget,
//   - SC tracks MinE's throughput while consuming more energy at the
//     higher concurrency levels.
func CheckWANSweep(s *Sweep) []Check {
	var checks []Check

	peak := func(algo string) float64 {
		best := 0.0
		for _, l := range s.Levels {
			if t := s.Reports[algo][l].Throughput.Mbit(); t > best {
				best = t
			}
		}
		return best
	}
	promcPeak := peak(core.NameProMC)
	promcTop := true
	for _, a := range s.Algorithms() {
		if peak(a) > promcPeak*1.02 {
			promcTop = false
		}
	}
	mineLow := true
	for _, l := range s.Levels {
		mine := s.Reports[core.NameMinE][l]
		for _, a := range s.Algorithms() {
			if s.Reports[a][l].EndSystemEnergy < mine.EndSystemEnergy*0.98 {
				mineLow = false
			}
		}
	}
	checks = append(checks, check("ProMC highest peak throughput", promcTop,
		"ProMC peak = %.0f Mbps", promcPeak))
	checks = append(checks, check("MinE lowest energy", mineLow,
		"MinE@12 = %.0f J", float64(s.Reports[core.NameMinE][12].EndSystemEnergy)))

	gucSlowest := true
	guc := s.Reports[core.NameGUC][1]
	for _, a := range s.Algorithms() {
		if a == core.NameGUC {
			continue
		}
		if s.Reports[a][1].Throughput < guc.Throughput*0.95 {
			gucSlowest = false
		}
	}
	checks = append(checks, check("GUC lowest throughput at cc=1", gucSlowest,
		"GUC = %.0f Mbps", guc.Throughput.Mbit()))

	hteeEff := s.NormalizedEfficiency(s.Reports[core.NameHTEE][12])
	checks = append(checks, check("HTEE ≥90% of brute-force efficiency", hteeEff >= 0.90,
		"HTEE@12 normalized efficiency = %.2f", hteeEff))

	sc12 := s.Reports[core.NameSC][12]
	mine12 := s.Reports[core.NameMinE][12]
	checks = append(checks, check("SC costs ≥15% more energy than MinE at cc=12",
		float64(sc12.EndSystemEnergy) >= 1.15*float64(mine12.EndSystemEnergy),
		"SC %.0f J vs MinE %.0f J", float64(sc12.EndSystemEnergy), float64(mine12.EndSystemEnergy)))

	return checks
}

// CheckXSEDESweep adds the XSEDE-specific claims of Fig. 2: the GO
// multi-server energy premium (~60% over SC at concurrency 2) and the
// ProMC energy parabola bottoming at the 4-core sweet spot.
func CheckXSEDESweep(s *Sweep) []Check {
	checks := CheckWANSweep(s)

	go2 := s.Reports[core.NameGO][2]
	sc2 := s.Reports[core.NameSC][2]
	ratio := float64(go2.EndSystemEnergy) / float64(sc2.EndSystemEnergy)
	checks = append(checks, check("GO ≥35% more energy than SC at cc=2 (multi-server)",
		ratio >= 1.35, "GO/SC energy ratio = %.2f", ratio))
	thrRatio := float64(go2.Throughput) / float64(sc2.Throughput)
	checks = append(checks, check("GO throughput close to SC at cc=2",
		thrRatio > 0.75 && thrRatio < 1.35, "GO/SC throughput ratio = %.2f", thrRatio))

	// Energy parabola: minimum over the sweep at concurrency 4.
	minLevel, minE := 0, 0.0
	for _, l := range s.Levels {
		e := float64(s.Reports[core.NameProMC][l].EndSystemEnergy)
		if minLevel == 0 || e < minE {
			minLevel, minE = l, e
		}
	}
	checks = append(checks, check("ProMC energy minimum at cc=4 (4-core servers)",
		minLevel == 4, "minimum %.0f J at cc=%d", minE, minLevel))

	// §2.4: HTEE vs ProMC at cc=12 — less energy at modest throughput
	// loss.
	htee := s.Reports[core.NameHTEE][12]
	promc := s.Reports[core.NameProMC][12]
	eSave := 1 - float64(htee.EndSystemEnergy)/float64(promc.EndSystemEnergy)
	tLoss := 1 - float64(htee.Throughput)/float64(promc.Throughput)
	checks = append(checks, check("HTEE@12 saves ≥15% energy vs ProMC",
		eSave >= 0.15, "energy saving %.0f%%", eSave*100))
	checks = append(checks, check("HTEE@12 loses ≤25% throughput vs ProMC",
		tLoss <= 0.25, "throughput loss %.0f%%", tLoss*100))
	return checks
}

// CheckDIDCLABSweep verifies the LAN claims of Fig. 4: throughput
// degrades monotonically with concurrency (single-disk contention),
// every algorithm's best ratio sits at concurrency 1, and HTEE pays a
// small search tax but still lands at concurrency 1.
func CheckDIDCLABSweep(s *Sweep) []Check {
	var checks []Check

	monotone := true
	prev := s.Reports[core.NameProMC][1].Throughput
	for _, l := range s.Levels[1:] {
		cur := s.Reports[core.NameProMC][l].Throughput
		if cur > prev {
			monotone = false
		}
		prev = cur
	}
	checks = append(checks, check("LAN throughput declines with concurrency", monotone,
		"ProMC: %.0f Mbps @1 → %.0f Mbps @12",
		s.Reports[core.NameProMC][1].Throughput.Mbit(),
		s.Reports[core.NameProMC][12].Throughput.Mbit()))

	checks = append(checks, check("brute-force best at concurrency 1", s.BF.Best == 1,
		"BF best = %d", s.BF.Best))

	hteeChoice := s.HTEE[12].ChosenConcurrency
	checks = append(checks, check("HTEE finds concurrency 1", hteeChoice == 1,
		"HTEE chose %d", hteeChoice))

	// "All algorithms except GO are able to achieve above 90% energy
	// efficiency" — at their best operating point (concurrency 1).
	allAbove := true
	for _, a := range []string{core.NameGUC, core.NameSC, core.NameMinE, core.NameProMC, core.NameHTEE} {
		if s.NormalizedEfficiency(s.Reports[a][1]) < 0.90 {
			allAbove = false
		}
	}
	checks = append(checks, check("all non-GO algorithms ≥90% efficiency at cc=1", allAbove, ""))

	goEff := s.NormalizedEfficiency(s.Reports[core.NameGO][1])
	checks = append(checks, check("GO below the others (fixed concurrency 2)", goEff < 0.95,
		"GO efficiency = %.2f", goEff))
	return checks
}

// CheckSLA verifies the Figs. 5–7 claims for one testbed: achieved
// throughput tracks the target within the paper's deviation envelopes
// (unreachable targets excepted), energy falls as the target relaxes,
// and relaxed targets save energy versus the max-throughput reference.
func CheckSLA(s *SLASweep, wan bool) []Check {
	var checks []Check
	if wan {
		// Reachable WAN targets (≤90%) are delivered within ~10%.
		within := true
		detail := ""
		for _, t := range s.Targets {
			if t > 0.90 {
				continue
			}
			r := s.Results[t]
			if r.Deviation() < -10 {
				within = false
				detail += fmt.Sprintf("target %.0f%% deviation %.1f%%; ", t*100, r.Deviation())
			}
		}
		checks = append(checks, check("reachable SLA targets delivered (≥ target −10%)", within, "%s", detail))

		// Energy saving versus the max-throughput reference grows as
		// the target relaxes; at the 50% target it is substantial
		// (paper: up to 30%).
		save50 := s.EnergySaving(0.50)
		save95 := s.EnergySaving(0.95)
		checks = append(checks, check("relaxed SLA saves energy vs ProMC max", save50 >= 10,
			"saving at 50%% target = %.0f%%", save50))
		checks = append(checks, check("tight SLA saves less than relaxed SLA", save50 >= save95,
			"saving 95%%=%.0f%% vs 50%%=%.0f%%", save95, save50))
	} else {
		// LAN (Fig. 7): concurrency 1 is optimal for everything, so
		// low targets overshoot — deviation reaches toward +100% at
		// the 50% target.
		dev50 := s.Results[0.50].Deviation()
		checks = append(checks, check("LAN 50% target overshoots heavily", dev50 >= 50,
			"deviation at 50%% = %.0f%%", dev50))
		conc := s.Results[0.50].FinalConcurrency
		checks = append(checks, check("LAN SLAEE stays at low concurrency", conc <= 2,
			"final concurrency = %d", conc))
	}
	// Energy is (weakly) monotone in the target: tighter SLAs cost
	// more or equal energy.
	mono := true
	for i := 1; i < len(s.Targets); i++ {
		hi, lo := s.Results[s.Targets[i-1]], s.Results[s.Targets[i]]
		if float64(lo.EndSystemEnergy) > float64(hi.EndSystemEnergy)*1.10 {
			mono = false
		}
	}
	checks = append(checks, check("energy weakly monotone in SLA target", mono, ""))
	return checks
}

// CheckEnergySplit verifies Fig. 10's claims: the end-systems dominate
// the load-dependent energy on every testbed; the network share is
// largest where the metro-router count is highest (FutureGrid) and
// smallest on the single-switch LAN.
func CheckEnergySplit(splits []EnergySplit) []Check {
	var checks []Check
	byName := map[string]EnergySplit{}
	for _, s := range splits {
		byName[s.Testbed] = s
		checks = append(checks, check("end-system dominates on "+s.Testbed,
			s.EndSystemShare > 50, "end-system %.0f%%", s.EndSystemShare))
	}
	fg, fgOK := byName["FutureGrid"]
	lab, labOK := byName["DIDCLAB"]
	xs, xsOK := byName["XSEDE"]
	if fgOK && labOK && xsOK {
		checks = append(checks, check("network share largest on FutureGrid (3 metro routers)",
			fg.NetworkShare > xs.NetworkShare && fg.NetworkShare > lab.NetworkShare,
			"FG %.0f%%, XSEDE %.0f%%, LAN %.0f%%", fg.NetworkShare, xs.NetworkShare, lab.NetworkShare))
		checks = append(checks, check("network share smallest on DIDCLAB (one switch)",
			lab.NetworkShare < xs.NetworkShare,
			"LAN %.0f%% vs XSEDE %.0f%%", lab.NetworkShare, xs.NetworkShare))
	}
	return checks
}
