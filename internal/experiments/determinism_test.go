package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/obs"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
)

// The parallel experiment engine must be invisible in the results:
// every cell is an independent simulation with a fixed seed, and the
// pool assembles cells by index, so a parallel run has to be deep-equal
// to the plain serial loops the seed implementation ran. The references
// below ARE those serial loops, kept verbatim.

// serialSweepReference replicates the pre-engine RunSweep: one cell at
// a time, in level order, with a serial brute-force loop.
func serialSweepReference(ctx context.Context, tb testbed.Testbed, seed int64) (*Sweep, error) {
	ds := tb.Dataset(seed)
	s := &Sweep{
		Testbed: tb.Name,
		Levels:  append([]int(nil), SweepLevels...),
		Reports: make(map[string]map[int]transfer.Report),
		HTEE:    make(map[int]core.HTEEResult),
	}
	put := func(algo string, level int, r transfer.Report) {
		if s.Reports[algo] == nil {
			s.Reports[algo] = make(map[int]transfer.Report)
		}
		s.Reports[algo][level] = r
	}
	sim := func() transfer.Executor { return transfer.NewSim(tb) }

	guc, err := core.GUC(ctx, sim(), ds, core.GUCOptions{})
	if err != nil {
		return nil, err
	}
	gor, err := core.GO(ctx, sim(), ds)
	if err != nil {
		return nil, err
	}
	for _, level := range s.Levels {
		put(core.NameGUC, level, guc)
		put(core.NameGO, level, gor)
		sc, err := core.SC(ctx, sim(), ds, level)
		if err != nil {
			return nil, err
		}
		put(core.NameSC, level, sc)
		mine, err := core.MinE(ctx, sim(), ds, level)
		if err != nil {
			return nil, err
		}
		put(core.NameMinE, level, mine)
		promc, err := core.ProMC(ctx, sim(), ds, level)
		if err != nil {
			return nil, err
		}
		put(core.NameProMC, level, promc)
		htee, err := core.HTEE(ctx, sim(), ds, level)
		if err != nil {
			return nil, err
		}
		put(core.NameHTEE, level, htee.Report)
		s.HTEE[level] = htee
	}
	bf, err := serialBFReference(ctx, sim, ds, tb.BFMaxConcurrency)
	if err != nil {
		return nil, err
	}
	s.BF = bf
	return s, nil
}

// serialBFReference replicates the pre-engine core.BF loop: one
// concurrency level at a time, best ratio tracked as it goes.
func serialBFReference(ctx context.Context, mk func() transfer.Executor, ds dataset.Dataset, maxChannel int) (core.BFResult, error) {
	result := core.BFResult{Reports: make(map[int]transfer.Report, maxChannel)}
	bestEff := -1.0
	for c := 1; c <= maxChannel; c++ {
		r, err := core.ProMC(ctx, mk(), ds, c)
		if err != nil {
			return core.BFResult{}, err
		}
		r.Algorithm = core.NameBF
		result.Reports[c] = r
		if eff := r.Efficiency(); eff > bestEff {
			bestEff = eff
			result.Best = c
		}
	}
	return result, nil
}

func TestRunSweepDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, tb := range testbed.All() {
		tb := tb
		t.Run(tb.Name, func(t *testing.T) {
			want, err := serialSweepReference(ctx, tb, DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSweep(ctx, tb, DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal(diffSweeps(want, got))
			}
		})
	}
}

func TestRunSLADeterminism(t *testing.T) {
	ctx := context.Background()
	for _, tb := range testbed.All() {
		tb := tb
		t.Run(tb.Name, func(t *testing.T) {
			// Serial reference: the pre-engine target loop.
			ds := tb.Dataset(DefaultSeed)
			ref, err := core.ProMC(ctx, transfer.NewSim(tb), ds, tb.SLARefConcurrency)
			if err != nil {
				t.Fatal(err)
			}
			want := &SLASweep{
				Testbed:       tb.Name,
				Reference:     ref,
				MaxThroughput: ref.Throughput,
				Targets:       append([]float64(nil), SLATargets...),
				Results:       make(map[float64]core.SLAResult),
			}
			for _, target := range want.Targets {
				res, err := core.SLAEE(ctx, transfer.NewSim(tb), ds, ref.Throughput, target, tb.MaxConcurrency)
				if err != nil {
					t.Fatal(err)
				}
				want.Results[target] = res
			}

			got, err := RunSLA(ctx, tb, DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("parallel RunSLA diverged from serial reference on %s", tb.Name)
			}
		})
	}
}

// TestRunSweepDeterminismWithInstrumentation pins the telemetry
// contract: obs is write-only, so installing a live metrics registry on
// the scheduler must leave every result bit-identical to an
// uninstrumented run — while still actually counting the pool's tasks.
func TestRunSweepDeterminismWithInstrumentation(t *testing.T) {
	ctx := context.Background()
	tb := testbed.All()[0]

	bare, err := RunSweep(ctx, tb, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sched.SetMetrics(reg)
	defer sched.SetMetrics(nil)
	instrumented, err := RunSweep(ctx, tb, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatal("instrumented RunSweep diverged from bare run:\n" + diffSweeps(bare, instrumented))
	}
	snap := reg.Snapshot()
	if snap.Counters["sched_tasks_started"] == 0 ||
		snap.Counters["sched_tasks_completed"] != snap.Counters["sched_tasks_started"] {
		t.Errorf("pool counters wrong: %v", snap.Counters)
	}
	if snap.Counters["sched_tasks_failed"] != 0 {
		t.Errorf("sched_tasks_failed = %d on a clean sweep", snap.Counters["sched_tasks_failed"])
	}
}

// diffSweeps pins down the first diverging cell for a useful failure
// message.
func diffSweeps(want, got *Sweep) string {
	for algo, levels := range want.Reports {
		for level, w := range levels {
			g := got.Reports[algo][level]
			if !reflect.DeepEqual(w, g) {
				return fmt.Sprintf("cell %s@%d diverged:\nserial  %+v\nparallel %+v", algo, level, w, g)
			}
		}
	}
	if !reflect.DeepEqual(want.HTEE, got.HTEE) {
		return "HTEE search results diverged"
	}
	if !reflect.DeepEqual(want.BF, got.BF) {
		return fmt.Sprintf("BF diverged: serial best %d, parallel best %d", want.BF.Best, got.BF.Best)
	}
	return "sweeps diverged outside the report cells"
}
